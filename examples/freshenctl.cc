// freshenctl — a command-line front end for libfreshen, so the library can
// be driven from shell pipelines and real operational data.
//
// Subcommands:
//   gen   --objects N [--theta T] [--mean-rate R] [--stddev S]
//         [--alignment aligned|reverse|shuffled] [--sizes uniform|pareto]
//         [--seed K] [--out FILE]
//       Generate a synthetic catalog CSV (paper-style workload).
//
//   plan  --catalog FILE --bandwidth B [--technique pf|gf|age]
//         [--partitions K] [--kmeans I] [--size-aware]
//         [--allocation fba|ffa] [--out FILE]
//       Compute a freshening plan for a catalog CSV; prints a summary and
//       optionally writes the per-element schedule CSV.
//
//   eval  --catalog FILE --bandwidth B [--simulate]
//       Compare PF vs GF plans for a catalog (analytic; --simulate adds the
//       discrete-event check).
//
//   metrics [--objects N] [--bandwidth B] [--periods P] [--accesses A]
//           [--theta T] [--seed K]
//       Run a closed-loop mirror (OnlineFreshenLoop) for P periods and dump
//       the metrics-registry snapshot (replan counters/latency, solver
//       iterations, sync/access/bandwidth counters, estimator-error gauges).
//
//   sync-drill [--objects N] [--bandwidth B] [--periods P] [--accesses A]
//              [--error-rate E] [--stall-rate S] [--latency-mean L]
//              [--pool T] [--queue Q] [--retries R] [--seed K]
//       Fault drill for the sync executor: run the same closed loop three
//       ways — inline syncs, a PerfectSource executor (parity check), and a
//       fault-injecting SimulatedSource executor — and print the per-period
//       degradation (failed/dropped/breaker-skipped syncs, wasted bandwidth,
//       freshness). The faulted run reports into the global registry, so
//       --metrics-out exports all freshen_sync_* series.
//
//   trace [--objects N] [--bandwidth B] [--periods P] [--accesses A]
//         [--error-rate E] [--stall-rate S] [--pool T] [--queue Q]
//         [--retries R] [--seed K] [--age-slo S] [--top-k K]
//         [--trace-out FILE] [--timeline-out FILE]
//       Flight-recorder showcase: run the closed loop against a
//       fault-injecting executor with the event recorder on and the
//       staleness timeline attached, then write a Chrome trace_event JSON
//       (open it at ui.perfetto.dev) and print the per-element staleness
//       offenders and the fresh-access SLO. Defaults shrink under
//       FRESHEN_QUICK=1. --trace-out defaults to freshen_trace.json here.
//
//   convert --in FILE --out FILE [--to csv|binary]
//       Convert a catalog between CSV and the FRSHCAT1 binary format
//       (io/catalog_binary.h). The input format is auto-detected; --to
//       defaults to the opposite of the input.
//
//   replan-drill [--objects N] [--steps S] [--churn C] [--threads T]
//                [--seed K]
//       Incremental-replanning drill: push a seeded churn stream (tail
//       decay, uniform value jitter, structural appends) through a
//       DeltaReplanner, print each step's path/dirty-count/latency, and
//       memcmp-verify every step against a cold scan solve of the identical
//       problem. Non-zero exit on any byte mismatch. Defaults shrink under
//       FRESHEN_QUICK=1; --metrics-out exports the freshen_replan_* series.
//
//   serve-drill [--objects N] [--bandwidth B] [--periods P] [--accesses A]
//               [--error-rate E] [--socket PATH] [--seed K]
//       End-to-end drill of the freshend serving stack, two acts. Act 1:
//       start a FreshendDaemon with a fault-injecting executor, serve the
//       line protocol on a UNIX socket, fire ISFRESH/AGE/PLAN/STATS plus the
//       admin verbs (METRICS/HEALTH/SLO/SLOWLOG) over the socket while the
//       loop churns, then drain gracefully and verify every pinned snapshot
//       was internally consistent. Act 2: a wall-paced daemon with a
//       deliberately wrong rate prior takes a scripted source outage; the
//       drill watches the freshness SLO walk ok -> alert -> ok (live, over
//       a WATCH stream), and verifies the drift detector caught the bad
//       prior and forced an early replan. Non-zero exit if any act fails.
//
//   top   --socket PATH [--interval S] [--count N]
//       Live terminal view of a running freshend: subscribes to the admin
//       WATCH stream and renders one line per sample (periods, epoch,
//       queries, freshness, SLO state + burn rates, drift score) until the
//       stream ends (--count samples reached, daemon shutdown, or Ctrl-C).
//
// plan and eval accept --catalog-format csv|binary|auto (default auto:
// binary when the file carries the FRSHCAT1 magic, CSV otherwise).
//
// Any command accepts --metrics-out FILE and --metrics-format json|prom|csv:
// after the command runs, the registry snapshot is written to FILE (the
// `metrics` command prints to stdout when --metrics-out is omitted). Flags
// may be spelled --flag value or --flag=value.
//
// Any command also accepts --trace-out FILE (enables the global event
// recorder and writes the run's Chrome trace JSON there afterwards), and
// plan/eval/metrics/sync-drill/trace accept --timeline-out FILE (writes the
// staleness-attribution report; .json extension selects JSON, anything else
// the per-element CSV documented in EXPERIMENTS.md). plan and eval attribute
// staleness by simulating the planned schedule; metrics, sync-drill, and
// trace attribute the online loop itself.
//
// Example:
//   freshenctl gen --objects 1000 --theta 1.2 --out catalog.csv
//   freshenctl plan --catalog catalog.csv --bandwidth 500 --partitions 50
//       --kmeans 5 --out schedule.csv     (one command line)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "freshen/freshen.h"
#include "io/catalog_binary.h"
#include "io/catalog_io.h"
#include "opt/delta_replan.h"
#include "opt/water_filling.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "obs/chrome_trace.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/timeline.h"

namespace {

using namespace freshen;

// Minimal --flag value parser: flags must be followed by a value unless
// listed in kBoolFlags.
const char* const kBoolFlags[] = {"--size-aware", "--simulate"};

bool IsBoolFlag(const std::string& flag) {
  for (const char* b : kBoolFlags) {
    if (flag == b) return true;
  }
  return false;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    // --flag=value spelling.
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (IsBoolFlag(arg)) {
      flags[arg] = "1";
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      flags[arg] = argv[++i];
    }
  }
  return flags;
}

std::string GetFlag(const std::map<std::string, std::string>& flags,
                    const std::string& name, const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

double GetDouble(const std::map<std::string, std::string>& flags,
                 const std::string& name, double fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void SimulateTimeline(const ElementSet& catalog,
                      const std::vector<double>& frequencies,
                      const std::map<std::string, std::string>& flags,
                      const std::string& out);

// Loads a catalog honoring --catalog-format (csv | binary | auto).
ElementSet LoadCatalogFlagged(const std::map<std::string, std::string>& flags,
                              const std::string& path) {
  const std::string format = GetFlag(flags, "--catalog-format", "auto");
  if (format == "csv") return Unwrap(LoadCatalogCsv(path));
  if (format == "binary") return Unwrap(LoadCatalogBinary(path));
  if (format == "auto") {
    return LooksLikeBinaryCatalog(path) ? Unwrap(LoadCatalogBinary(path))
                                        : Unwrap(LoadCatalogCsv(path));
  }
  Die(Status::InvalidArgument("unknown --catalog-format " + format));
}

int RunGen(const std::map<std::string, std::string>& flags) {
  ExperimentSpec spec;
  spec.num_objects = static_cast<size_t>(GetDouble(flags, "--objects", 500));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.mean_updates_per_object = GetDouble(flags, "--mean-rate", 2.0);
  spec.update_stddev = GetDouble(flags, "--stddev", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  const std::string alignment = GetFlag(flags, "--alignment", "shuffled");
  if (alignment == "aligned") {
    spec.alignment = Alignment::kAligned;
  } else if (alignment == "reverse") {
    spec.alignment = Alignment::kReverse;
  } else if (alignment == "shuffled") {
    spec.alignment = Alignment::kShuffled;
  } else {
    Die(Status::InvalidArgument("unknown --alignment " + alignment));
  }
  const std::string sizes = GetFlag(flags, "--sizes", "uniform");
  if (sizes == "pareto") {
    spec.size_model = SizeModel::kPareto;
  } else if (sizes != "uniform") {
    Die(Status::InvalidArgument("unknown --sizes " + sizes));
  }

  const ElementSet catalog = Unwrap(GenerateCatalog(spec));
  const std::string out = GetFlag(flags, "--out", "");
  if (out.empty()) {
    std::fputs(CatalogToCsv(catalog).c_str(), stdout);
  } else {
    const Status status = SaveCatalogCsv(catalog, out);
    if (!status.ok()) Die(status);
    std::printf("wrote %zu elements to %s\n", catalog.size(), out.c_str());
  }
  return 0;
}

int RunPlan(const std::map<std::string, std::string>& flags) {
  const std::string path = GetFlag(flags, "--catalog", "");
  if (path.empty()) Die(Status::InvalidArgument("--catalog is required"));
  const double bandwidth = GetDouble(flags, "--bandwidth", 0.0);
  const ElementSet catalog = LoadCatalogFlagged(flags, path);

  const std::string technique = GetFlag(flags, "--technique", "pf");
  std::vector<double> frequencies;
  if (technique == "age") {
    // Age minimization runs outside the planner (different objective).
    CoreProblem problem = MakePerceivedProblem(
        catalog, bandwidth, flags.count("--size-aware") > 0);
    Allocation allocation = Unwrap(AgeWaterFillingSolver().Solve(problem));
    frequencies = std::move(allocation.frequencies);
  } else {
    PlannerOptions options;
    if (technique == "gf") {
      options.technique = Technique::kGeneral;
    } else if (technique != "pf") {
      Die(Status::InvalidArgument("unknown --technique " + technique));
    }
    const double partitions = GetDouble(flags, "--partitions", 0);
    if (partitions > 0) {
      options.mode = PlanMode::kPartitioned;
      options.num_partitions = static_cast<size_t>(partitions);
      options.kmeans_iterations =
          static_cast<int>(GetDouble(flags, "--kmeans", 0));
    }
    options.size_aware = flags.count("--size-aware") > 0;
    if (GetFlag(flags, "--allocation", "fba") == "ffa") {
      options.allocation_policy = AllocationPolicy::kFixedFrequency;
    }
    FreshenPlan plan =
        Unwrap(FreshenPlanner(options).Plan(catalog, bandwidth));
    frequencies = std::move(plan.frequencies);
  }

  std::printf("catalog          : %s (%zu elements)\n", path.c_str(),
              catalog.size());
  std::printf("bandwidth        : %.6g per period\n", bandwidth);
  std::printf("technique        : %s\n", technique.c_str());
  std::printf("perceived fresh. : %.6f\n",
              PerceivedFreshness(catalog, frequencies));
  std::printf("general fresh.   : %.6f\n",
              GeneralFreshness(catalog, frequencies));
  const double age = PerceivedAge(catalog, frequencies);
  std::printf("perceived age    : %s\n",
              std::isfinite(age) ? FormatDouble(age, 6).c_str() : "inf");

  const std::string out = GetFlag(flags, "--out", "");
  if (!out.empty()) {
    const Status status =
        WriteStringToFile(PlanToCsv(catalog, frequencies), out);
    if (!status.ok()) Die(status);
    std::printf("schedule written : %s\n", out.c_str());
  }
  const std::string timeline_out = GetFlag(flags, "--timeline-out", "");
  if (!timeline_out.empty()) {
    SimulateTimeline(catalog, frequencies, flags, timeline_out);
  }
  return 0;
}

int RunEval(const std::map<std::string, std::string>& flags) {
  const std::string path = GetFlag(flags, "--catalog", "");
  if (path.empty()) Die(Status::InvalidArgument("--catalog is required"));
  const double bandwidth = GetDouble(flags, "--bandwidth", 0.0);
  const ElementSet catalog = LoadCatalogFlagged(flags, path);

  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;
  const FreshenPlan pf = Unwrap(FreshenPlanner({}).Plan(catalog, bandwidth));
  const FreshenPlan gf =
      Unwrap(FreshenPlanner(gf_options).Plan(catalog, bandwidth));
  std::printf("                     PF plan    GF plan\n");
  std::printf("perceived freshness  %8.4f   %8.4f\n", pf.perceived_freshness,
              gf.perceived_freshness);
  std::printf("general freshness    %8.4f   %8.4f\n", pf.general_freshness,
              gf.general_freshness);
  if (flags.count("--simulate") > 0) {
    SimulationConfig config;
    config.horizon_periods = 100.0;
    config.accesses_per_period = 5000.0;
    config.warmup_periods = 10.0;
    MirrorSimulator simulator(catalog, config);
    const SimulationResult pf_sim = Unwrap(simulator.Run(pf.frequencies));
    const SimulationResult gf_sim = Unwrap(simulator.Run(gf.frequencies));
    std::printf("simulated PF         %8.4f   %8.4f\n",
                pf_sim.empirical_perceived_freshness,
                gf_sim.empirical_perceived_freshness);
  }
  const std::string timeline_out = GetFlag(flags, "--timeline-out", "");
  if (!timeline_out.empty()) {
    // Attribute the PF plan's staleness (its own simulation run, so the
    // ledger covers exactly one schedule).
    SimulateTimeline(catalog, pf.frequencies, flags, timeline_out);
  }
  return 0;
}

// Renders the global registry in the requested format ("json", "prom", or
// "csv"; anything else dies).
std::string FormatSnapshot(const obs::RegistrySnapshot& snapshot,
                           const std::string& format) {
  if (format == "json") return obs::FormatJson(snapshot);
  if (format == "prom" || format == "prometheus") {
    return obs::FormatPrometheus(snapshot);
  }
  if (format == "csv") return obs::FormatCsv(snapshot);
  Die(Status::InvalidArgument("unknown --metrics-format " + format));
}

// Honors --metrics-out/--metrics-format after any command. When
// `to_stdout_by_default` is set (the metrics command) the snapshot goes to
// stdout when no path was given.
void MaybeDumpMetrics(const std::map<std::string, std::string>& flags,
                      bool to_stdout_by_default) {
  const std::string out = GetFlag(flags, "--metrics-out", "");
  if (out.empty() && !to_stdout_by_default) return;
  const obs::RegistrySnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const std::string format = GetFlag(flags, "--metrics-format", "json");
  const std::string text = FormatSnapshot(snapshot, format);
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    const Status status = WriteStringToFile(text, out);
    if (!status.ok()) Die(status);
    std::printf("metrics written  : %s (%zu series, %s)\n", out.c_str(),
                snapshot.samples.size(), format.c_str());
  }
}

bool QuickMode() { return std::getenv("FRESHEN_QUICK") != nullptr; }

// Writes the attribution report to `out`: .json selects the window/offender
// JSON document, anything else the per-element CSV (EXPERIMENTS.md schema).
void WriteTimelineReport(const obs::TimelineReport& report,
                         const std::string& out) {
  const bool json =
      out.size() >= 5 && out.compare(out.size() - 5, 5, ".json") == 0;
  const std::string text = json ? obs::FormatTimelineJson(report)
                                : obs::FormatTimelineCsv(report);
  const Status status = WriteStringToFile(text, out);
  if (!status.ok()) Die(status);
  std::printf("timeline written : %s (%zu elements, %zu windows, %s)\n",
              out.c_str(), report.elements.size(), report.periods.size(),
              json ? "json" : "csv");
}

// Prints the report's headline numbers and top-k offender table.
void PrintTimelineSummary(const obs::TimelineReport& report) {
  std::printf("weighted fresh.  : %.6f (timeline-measured)\n",
              report.overall.weighted_freshness);
  std::printf("fresh accesses   : %.4f of %llu\n", report.fresh_access_ratio,
              (unsigned long long)report.overall.accesses);
  std::printf("age SLO (<=%.3g) : %.4f\n", report.age_slo,
              report.slo_access_ratio);
  if (report.overall.offenders.empty()) return;
  TableWriter table({"element", "weight", "stale time", "fresh frac",
                     "score"});
  for (const obs::TimelineElementStats& e : report.overall.offenders) {
    table.AddRow({std::to_string(e.element), FormatDouble(e.weight, 5),
                  FormatDouble(e.stale_time, 4),
                  FormatDouble(e.fresh_fraction, 4),
                  FormatDouble(e.stale_score, 6)});
  }
  std::printf("staleness offenders (top %zu):\n%s",
              report.overall.offenders.size(), table.ToText().c_str());
}

// Simulates `frequencies` over `catalog` with an attached timeline and
// writes the attribution report — the plan/eval path to --timeline-out.
void SimulateTimeline(const ElementSet& catalog,
                      const std::vector<double>& frequencies,
                      const std::map<std::string, std::string>& flags,
                      const std::string& out) {
  const bool quick = QuickMode();
  SimulationConfig config;
  config.horizon_periods =
      GetDouble(flags, "--horizon", quick ? 20.0 : 100.0);
  config.warmup_periods = 0.1 * config.horizon_periods;
  config.accesses_per_period =
      GetDouble(flags, "--sim-accesses", quick ? 500.0 : 5000.0);
  config.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  obs::StalenessTimeline::Options timeline_options;
  timeline_options.window_begin = config.warmup_periods;
  timeline_options.window_end = config.horizon_periods;
  timeline_options.age_slo = GetDouble(flags, "--age-slo", 0.25);
  timeline_options.top_k =
      static_cast<size_t>(GetDouble(flags, "--top-k", 10));
  obs::StalenessTimeline timeline = Unwrap(obs::StalenessTimeline::Create(
      AccessProbs(catalog), timeline_options));
  config.timeline = &timeline;
  MirrorSimulator simulator(catalog, config);
  const SimulationResult sim = Unwrap(simulator.Run(frequencies));
  const obs::TimelineReport report = timeline.Finalize();
  std::printf("simulated PF     : %.6f (measured %.6f)\n",
              sim.empirical_perceived_freshness,
              sim.measured_weighted_freshness);
  PrintTimelineSummary(report);
  WriteTimelineReport(report, out);
}

int RunMetrics(const std::map<std::string, std::string>& flags) {
  ExperimentSpec spec;
  spec.num_objects = static_cast<size_t>(GetDouble(flags, "--objects", 200));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  const ElementSet truth = Unwrap(GenerateCatalog(spec));

  const double bandwidth = GetDouble(
      flags, "--bandwidth", 0.25 * static_cast<double>(spec.num_objects));
  const int periods = static_cast<int>(GetDouble(flags, "--periods", 5));
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = GetDouble(flags, "--accesses", 1000.0);
  options.seed = spec.seed ^ 0x6f6c6fULL;

  const std::string timeline_out = GetFlag(flags, "--timeline-out", "");
  std::unique_ptr<obs::StalenessTimeline> timeline;
  if (!timeline_out.empty()) {
    obs::StalenessTimeline::Options timeline_options;
    timeline_options.window_end = static_cast<double>(periods);
    timeline_options.age_slo = GetDouble(flags, "--age-slo", 0.25);
    timeline_options.top_k =
        static_cast<size_t>(GetDouble(flags, "--top-k", 10));
    timeline = std::make_unique<obs::StalenessTimeline>(Unwrap(
        obs::StalenessTimeline::Create(AccessProbs(truth),
                                       timeline_options)));
    options.timeline = timeline.get();
  }
  auto loop = Unwrap(OnlineFreshenLoop::Create(truth, bandwidth, options));

  std::printf("objects   : %zu\n", truth.size());
  std::printf("bandwidth : %.6g per period\n", bandwidth);
  for (int period = 0; period < periods; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    std::printf(
        "period %3d: accesses=%llu syncs=%llu freshness=%.4f bandwidth=%.4g"
        "%s\n",
        period, (unsigned long long)stats.accesses,
        (unsigned long long)stats.syncs, stats.perceived_freshness,
        stats.bandwidth_spent, stats.replanned ? " [replanned]" : "");
  }
  if (timeline != nullptr) {
    const obs::TimelineReport report = timeline->Finalize();
    PrintTimelineSummary(report);
    WriteTimelineReport(report, timeline_out);
  }
  return 0;
}

int RunSyncDrill(const std::map<std::string, std::string>& flags) {
  ExperimentSpec spec;
  spec.num_objects = static_cast<size_t>(GetDouble(flags, "--objects", 200));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  const ElementSet truth = Unwrap(GenerateCatalog(spec));

  const double bandwidth = GetDouble(
      flags, "--bandwidth", 0.25 * static_cast<double>(spec.num_objects));
  const int periods = static_cast<int>(GetDouble(flags, "--periods", 8));
  const uint64_t loop_seed = spec.seed ^ 0x6f6c6fULL;

  const auto make_loop_options = [&](obs::MetricsRegistry* registry,
                                     sync::SyncExecutor* executor) {
    OnlineFreshenLoop::Options options;
    options.accesses_per_period = GetDouble(flags, "--accesses", 1000.0);
    options.seed = loop_seed;
    options.registry = registry;
    options.executor = executor;
    return options;
  };
  const auto make_executor_options = [&](obs::MetricsRegistry* registry) {
    sync::SyncExecutor::Options options;
    options.num_threads =
        static_cast<size_t>(GetDouble(flags, "--pool", 4));
    options.queue_capacity =
        static_cast<size_t>(GetDouble(flags, "--queue", 1024));
    options.retry.max_attempts =
        static_cast<uint32_t>(GetDouble(flags, "--retries", 2));
    options.seed = spec.seed ^ 0x73796eULL;
    options.registry = registry;
    return options;
  };

  // Pass 1: the inline baseline, in a private registry.
  obs::MetricsRegistry inline_registry;
  auto inline_loop = Unwrap(OnlineFreshenLoop::Create(
      truth, bandwidth, make_loop_options(&inline_registry, nullptr)));
  std::vector<PeriodStats> inline_periods;
  for (int period = 0; period < periods; ++period) {
    inline_periods.push_back(inline_loop.RunPeriod());
  }

  // Pass 2: the PerfectSource executor must reproduce pass 1 bit for bit.
  obs::MetricsRegistry perfect_registry;
  sync::PerfectSource perfect;
  auto perfect_executor = Unwrap(sync::SyncExecutor::Create(
      &perfect, make_executor_options(&perfect_registry)));
  auto perfect_loop = Unwrap(OnlineFreshenLoop::Create(
      truth, bandwidth,
      make_loop_options(&perfect_registry, perfect_executor.get())));
  bool parity = true;
  for (int period = 0; period < periods; ++period) {
    const PeriodStats stats = perfect_loop.RunPeriod();
    const PeriodStats& base = inline_periods[static_cast<size_t>(period)];
    parity = parity &&
             stats.perceived_freshness == base.perceived_freshness &&
             stats.mean_access_age == base.mean_access_age &&
             stats.accesses == base.accesses && stats.syncs == base.syncs &&
             stats.bandwidth_spent == base.bandwidth_spent;
  }

  // Pass 3: the fault drill, in the global registry so --metrics-out
  // exports every freshen_sync_* series.
  sync::SimulatedSource::Options source_options;
  source_options.error_rate = GetDouble(flags, "--error-rate", 0.3);
  source_options.stall_rate = GetDouble(flags, "--stall-rate", 0.05);
  source_options.mean_jitter_seconds =
      GetDouble(flags, "--latency-mean", 0.008);
  source_options.seed = spec.seed ^ 0x647268ULL;
  sync::SimulatedSource faulty = Unwrap(
      sync::SimulatedSource::Create(source_options));
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  auto faulted_executor = Unwrap(
      sync::SyncExecutor::Create(&faulty, make_executor_options(&global)));
  OnlineFreshenLoop::Options faulted_options =
      make_loop_options(&global, faulted_executor.get());
  const std::string timeline_out = GetFlag(flags, "--timeline-out", "");
  std::unique_ptr<obs::StalenessTimeline> timeline;
  if (!timeline_out.empty()) {
    obs::StalenessTimeline::Options timeline_options;
    timeline_options.window_end = static_cast<double>(periods);
    timeline_options.age_slo = GetDouble(flags, "--age-slo", 0.25);
    timeline_options.top_k =
        static_cast<size_t>(GetDouble(flags, "--top-k", 10));
    timeline = std::make_unique<obs::StalenessTimeline>(Unwrap(
        obs::StalenessTimeline::Create(AccessProbs(truth),
                                       timeline_options)));
    faulted_options.timeline = timeline.get();
  }
  auto faulted_loop =
      Unwrap(OnlineFreshenLoop::Create(truth, bandwidth, faulted_options));

  std::printf("objects    : %zu\n", truth.size());
  std::printf("bandwidth  : %.6g per period\n", bandwidth);
  std::printf("faults     : error-rate=%.3g stall-rate=%.3g\n",
              source_options.error_rate, source_options.stall_rate);
  std::printf("parity check (PerfectSource vs inline): %s\n",
              parity ? "OK" : "MISMATCH");

  TableWriter table({"period", "PF clean", "PF faulted", "failed", "dropped",
                     "skipped", "wasted bw", "breaker"});
  uint64_t total_failed = 0;
  double total_wasted = 0.0;
  for (int period = 0; period < periods; ++period) {
    const PeriodStats stats = faulted_loop.RunPeriod();
    const PeriodStats& base = inline_periods[static_cast<size_t>(period)];
    total_failed += stats.failed_syncs;
    total_wasted += stats.wasted_bandwidth;
    table.AddRow({std::to_string(period), FormatDouble(base.perceived_freshness, 4),
                  FormatDouble(stats.perceived_freshness, 4),
                  std::to_string(stats.failed_syncs),
                  std::to_string(stats.dropped_syncs),
                  std::to_string(stats.breaker_skipped_syncs),
                  FormatDouble(stats.wasted_bandwidth, 2),
                  sync::BreakerStateName(
                      faulted_executor->breaker().state())});
  }
  std::printf("%s", table.ToText().c_str());
  std::printf("totals     : failed=%llu wasted-bandwidth=%.4g "
              "breaker-opens=%llu\n",
              (unsigned long long)total_failed, total_wasted,
              (unsigned long long)faulted_executor->breaker()
                  .open_transitions());
  if (timeline != nullptr) {
    const obs::TimelineReport report = timeline->Finalize();
    PrintTimelineSummary(report);
    WriteTimelineReport(report, timeline_out);
  }
  return parity ? 0 : 1;
}

int RunTrace(const std::map<std::string, std::string>& flags) {
  const bool quick = QuickMode();
  ExperimentSpec spec;
  spec.num_objects = static_cast<size_t>(
      GetDouble(flags, "--objects", quick ? 64 : 200));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  const ElementSet truth = Unwrap(GenerateCatalog(spec));

  const double bandwidth = GetDouble(
      flags, "--bandwidth", 0.25 * static_cast<double>(spec.num_objects));
  const int periods =
      static_cast<int>(GetDouble(flags, "--periods", quick ? 3 : 8));

  // Fault-injecting executor in the global registry, same shape as the
  // sync-drill's pass 3 — the trace is most interesting when retries,
  // timeouts, and breaker transitions actually happen.
  sync::SimulatedSource::Options source_options;
  source_options.error_rate = GetDouble(flags, "--error-rate", 0.3);
  source_options.stall_rate = GetDouble(flags, "--stall-rate", 0.05);
  source_options.mean_jitter_seconds =
      GetDouble(flags, "--latency-mean", 0.008);
  source_options.seed = spec.seed ^ 0x647268ULL;
  sync::SimulatedSource faulty =
      Unwrap(sync::SimulatedSource::Create(source_options));
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  sync::SyncExecutor::Options executor_options;
  executor_options.num_threads =
      static_cast<size_t>(GetDouble(flags, "--pool", 4));
  executor_options.queue_capacity =
      static_cast<size_t>(GetDouble(flags, "--queue", 1024));
  executor_options.retry.max_attempts =
      static_cast<uint32_t>(GetDouble(flags, "--retries", 2));
  executor_options.seed = spec.seed ^ 0x73796eULL;
  executor_options.registry = &global;
  auto executor =
      Unwrap(sync::SyncExecutor::Create(&faulty, executor_options));

  obs::StalenessTimeline::Options timeline_options;
  timeline_options.window_end = static_cast<double>(periods);
  timeline_options.age_slo = GetDouble(flags, "--age-slo", 0.25);
  timeline_options.top_k =
      static_cast<size_t>(GetDouble(flags, "--top-k", 10));
  obs::StalenessTimeline timeline = Unwrap(obs::StalenessTimeline::Create(
      AccessProbs(truth), timeline_options));

  OnlineFreshenLoop::Options loop_options;
  loop_options.accesses_per_period =
      GetDouble(flags, "--accesses", quick ? 200.0 : 1000.0);
  loop_options.seed = spec.seed ^ 0x6f6c6fULL;
  loop_options.registry = &global;
  loop_options.executor = executor.get();
  loop_options.timeline = &timeline;
  auto loop = Unwrap(OnlineFreshenLoop::Create(truth, bandwidth,
                                               loop_options));

  std::printf("objects    : %zu\n", truth.size());
  std::printf("bandwidth  : %.6g per period\n", bandwidth);
  std::printf("periods    : %d\n", periods);
  for (int period = 0; period < periods; ++period) {
    loop.RunPeriod();
  }

  const obs::TimelineReport report = timeline.Finalize();
  PrintTimelineSummary(report);
  const std::string timeline_out = GetFlag(flags, "--timeline-out", "");
  if (!timeline_out.empty()) WriteTimelineReport(report, timeline_out);

  const obs::EventRecorder::Stats stats =
      obs::EventRecorder::Global().stats();
  std::printf("recorder   : emitted=%llu recorded=%llu dropped=%llu "
              "threads=%zu capacity=%zu\n",
              (unsigned long long)stats.emitted,
              (unsigned long long)stats.recorded,
              (unsigned long long)stats.dropped, stats.rings,
              stats.ring_capacity);
  return 0;
}

int RunConvert(const std::map<std::string, std::string>& flags) {
  const std::string in = GetFlag(flags, "--in", "");
  const std::string out = GetFlag(flags, "--out", "");
  if (in.empty() || out.empty()) {
    Die(Status::InvalidArgument("convert requires --in and --out"));
  }
  const bool in_binary = LooksLikeBinaryCatalog(in);
  const ElementSet catalog =
      in_binary ? Unwrap(LoadCatalogBinary(in)) : Unwrap(LoadCatalogCsv(in));
  const std::string to =
      GetFlag(flags, "--to", in_binary ? "csv" : "binary");
  Status status = Status::OK();
  if (to == "binary") {
    status = SaveCatalogBinary(catalog, out);
  } else if (to == "csv") {
    status = SaveCatalogCsv(catalog, out);
  } else {
    Die(Status::InvalidArgument("unknown --to " + to +
                                " (expected csv or binary)"));
  }
  if (!status.ok()) Die(status);
  std::printf("converted        : %s (%s) -> %s (%s), %zu elements\n",
              in.c_str(), in_binary ? "binary" : "csv", out.c_str(),
              to.c_str(), catalog.size());
  return 0;
}

// One line-protocol exchange over a connected socket: writes `request`
// (adding the newline) and reads one response line.
bool SocketExchange(int fd, const std::string& request,
                    std::string* response) {
  std::string out = request;
  out.push_back('\n');
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t n = ::write(fd, out.data() + written, out.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  response->clear();
  char ch;
  for (;;) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (ch == '\n') return true;
    response->push_back(ch);
  }
}

// Reads one newline-terminated line (used for WATCH streams, where one
// request yields many response lines).
bool ReadSocketLine(int fd, std::string* line) {
  line->clear();
  char ch;
  for (;;) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (ch == '\n') return true;
    line->push_back(ch);
  }
}

// Connects to a freshend UNIX socket; returns the fd or dies.
int ConnectUnixSocket(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    Die(Status::InvalidArgument("socket path too long: " + socket_path));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Die(Status::Internal(StrFormat("connect(%s): %s", socket_path.c_str(),
                                   std::strerror(errno))));
  }
  return fd;
}

// Minimal field extraction from the daemon's one-line JSON responses —
// enough for display and drill assertions, not a JSON parser.
std::string JsonStringField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  const size_t begin = start + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

double JsonNumberField(const std::string& line, const std::string& key,
                       double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return fallback;
  const char* text = line.c_str() + start + needle.size();
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  return end == text ? fallback : value;
}

// replan-drill: pushes a seeded churn stream (tail decay, uniform jitter,
// and structural appends) through a DeltaReplanner and memcmp-verifies every
// step against a cold scan solve of the identical problem. The drill's
// registry is the global one, so --metrics-out exports the freshen_replan_*
// series the run produced.
int RunReplanDrill(const std::map<std::string, std::string>& flags) {
  const bool quick = QuickMode();
  const size_t objects = static_cast<size_t>(
      GetDouble(flags, "--objects", quick ? 20000 : 200000));
  const int steps =
      static_cast<int>(GetDouble(flags, "--steps", quick ? 12 : 40));
  const double churn = GetDouble(flags, "--churn", 0.002);
  const uint64_t seed =
      static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));

  // Heavy-tailed weights, log-uniform change rates (bench_replan's family).
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  CoreProblem problem;
  problem.weights.resize(objects);
  problem.change_rates.resize(objects);
  problem.costs.assign(objects, 1.0);
  for (size_t i = 0; i < objects; ++i) {
    problem.weights[i] = 1.0 / std::pow(1.0 + u(rng) * 999.0, 0.8);
    problem.change_rates[i] = std::exp2(-6.0 + 12.0 * u(rng));
  }
  problem.bandwidth = 0.5 * static_cast<double>(objects);

  DeltaReplanner::Options options;
  options.threads =
      static_cast<size_t>(GetDouble(flags, "--threads", 0));
  auto replanner = Unwrap(DeltaReplanner::Create(problem, options));
  CoreProblem mirror = std::move(problem);
  KktWaterFillingSolver::Options cold_options;
  cold_options.threads = options.threads;
  const KktWaterFillingSolver cold(cold_options);

  // Unfunded elements (active, zero cold frequency): tail-churn fodder
  // whose decay provably cannot move the flip point.
  std::vector<size_t> unfunded;
  {
    const Allocation initial = replanner->MaterializeAllocation();
    for (size_t i = 0; i < objects; ++i) {
      if (initial.frequencies[i] == 0.0 && mirror.weights[i] > 0.0) {
        unfunded.push_back(i);
      }
    }
  }

  const auto same_allocation = [](const Allocation& a, const Allocation& b) {
    return a.frequencies.size() == b.frequencies.size() &&
           std::memcmp(a.frequencies.data(), b.frequencies.data(),
                       a.frequencies.size() * sizeof(double)) == 0 &&
           std::memcmp(&a.multiplier, &b.multiplier, sizeof(double)) == 0;
  };

  std::printf("objects : %zu, steps: %d, churn: %g\n", objects, steps,
              churn);
  size_t pinned = 0, warm = 0, full = 0;
  bool parity = true;
  size_t tail_cursor = 0;
  for (int step = 0; step < steps; ++step) {
    const size_t n = mirror.weights.size();
    const size_t dirty = std::max<size_t>(
        1, static_cast<size_t>(churn * static_cast<double>(n)));
    std::vector<ElementUpdate> updates;
    const uint64_t kind = rng() % 100;
    const char* shape;
    if (kind < 25 && unfunded.size() >= dirty) {
      shape = "tail";
      for (size_t j = 0; j < dirty; ++j) {
        const size_t i = unfunded[tail_cursor++ % unfunded.size()];
        updates.push_back({i, mirror.weights[i] * 0.5,
                           mirror.change_rates[i], mirror.costs[i]});
      }
    } else if (kind < 90) {
      shape = "uniform";
      for (size_t j = 0; j < dirty; ++j) {
        const size_t i = rng() % n;
        const double jitter_w = std::exp(0.1 * (u(rng) - 0.5));
        const double jitter_r = std::exp(0.1 * (u(rng) - 0.5));
        updates.push_back({i, mirror.weights[i] * jitter_w,
                           mirror.change_rates[i] * jitter_r,
                           mirror.costs[i]});
      }
    } else {
      shape = "append";
      updates.push_back({n, 1.0 / std::pow(1.0 + u(rng) * 999.0, 0.8),
                         std::exp2(-6.0 + 12.0 * u(rng)), 1.0});
    }
    const DeltaReplanner::ReplanResult result =
        Unwrap(replanner->Replan(updates));
    switch (result.path) {
      case ReplanPath::kPinned: ++pinned; break;
      case ReplanPath::kWarm: ++warm; break;
      case ReplanPath::kFull: ++full; break;
    }
    for (const ElementUpdate& update : updates) {
      if (update.index == mirror.weights.size()) {
        mirror.weights.push_back(update.weight);
        mirror.change_rates.push_back(update.change_rate);
        mirror.costs.push_back(update.cost);
      } else {
        mirror.weights[update.index] = update.weight;
        mirror.change_rates[update.index] = update.change_rate;
        mirror.costs[update.index] = update.cost;
      }
    }
    const bool match = same_allocation(replanner->MaterializeAllocation(),
                                       Unwrap(cold.Solve(mirror)));
    parity &= match;
    std::printf(
        "step %3d: %-7s path=%-6s dirty=%-5zu probes=%-3d %8.3f ms%s\n",
        step, shape, ToString(result.path), result.dirty, result.probes,
        result.replan_seconds * 1e3, match ? "" : "  BYTE MISMATCH");
  }
  std::printf("paths   : pinned=%zu warm=%zu full=%zu\n", pinned, warm,
              full);
  std::printf("replan drill : %s\n",
              parity ? "PASS (every step byte-identical to cold solve)"
                     : "FAIL");
  return parity ? 0 : 1;
}

// serve-drill act 2: the telemetry plane under a scripted outage. A
// wall-paced daemon starts with a deliberately wrong change-rate prior and
// a replan cadence parked far out, so only the drift detector can fix the
// plan — it must flag the bad prior and force the early replan. Then the
// (healthy) source goes hard-down: the freshness SLO must walk
// ok -> alert, and back to ok once the outage clears — observed both
// in-process and live over a WATCH stream on a second connection.
bool RunTelemetryAct(const ElementSet& truth, uint64_t seed, bool quick,
                     const std::string& socket_path) {
  obs::MetricsRegistry registry;
  sync::SimulatedSource::Options source_options;
  source_options.base_latency_seconds = 0.0;
  source_options.mean_jitter_seconds = 0.0;
  source_options.error_rate = 1.0;  // hard-down while faults are enabled
  source_options.seed = seed ^ 0x6f7574ULL;
  sync::SimulatedSource source =
      Unwrap(sync::SimulatedSource::Create(source_options));
  source.SetFaultsEnabled(false);  // begin healthy
  sync::SyncExecutor::Options executor_options;
  executor_options.seed = seed ^ 0x657865ULL;
  executor_options.registry = &registry;
  auto executor =
      Unwrap(sync::SyncExecutor::Create(&source, executor_options));

  serve::FreshendDaemon::Options options;
  options.loop.accesses_per_period = quick ? 400.0 : 1000.0;
  options.loop.seed = seed ^ 0x746f70ULL;
  options.loop.registry = &registry;
  options.loop.executor = executor.get();
  // Wrong by ~200x against the generated catalog's mean rate, and the
  // scheduled replan will never arrive on its own.
  options.loop.controller.replan_every_periods = 1000.0;
  options.loop.controller.prior_change_rate = 0.01;
  options.registry = &registry;
  options.period_seconds = 0.02;  // wall pacing, so WATCH samples live
  options.slo.objective = 0.9;
  options.slo.good_is_age_slo = true;
  options.slo.age_slo = 1.0;
  options.slo.fast_window_periods = 2.0;
  options.slo.slow_window_periods = 6.0;
  options.slo.warn_burn_rate = 2.0;
  options.slo.page_burn_rate = 6.0;
  options.drift.min_evidence = 2.0;
  options.drift.replan_consecutive_periods = 2;
  options.drift_replan = true;
  options.slowlog.threshold_seconds = 0.0;  // record every admin request
  // Bandwidth 2x the catalog: with syncs plentiful, "good" accesses are the
  // healthy norm and the outage is the only thing that can page.
  auto daemon = Unwrap(serve::FreshendDaemon::Create(
      truth, 2.0 * static_cast<double>(truth.size()), options));

  serve::LineServer::Options server_options;
  server_options.socket_path = socket_path;
  server_options.registry = &registry;
  auto server =
      Unwrap(serve::LineServer::Start(daemon.get(), server_options));
  if (const Status started = daemon->Start(); !started.ok()) Die(started);

  // Subscribe the live view before anything interesting happens.
  const int watch_fd = ConnectUnixSocket(socket_path);
  std::string response;
  if (!SocketExchange(watch_fd, "WATCH 0.01", &response) ||
      response.find("\"ok\":true") == std::string::npos) {
    Die(Status::Internal("WATCH subscription failed"));
  }
  std::mutex watch_mu;
  std::vector<std::string> watch_states;
  std::thread watcher([&] {
    std::string line;
    while (ReadSocketLine(watch_fd, &line)) {
      if (line.find("\"cmd\":\"watch_sample\"") != std::string::npos) {
        std::lock_guard<std::mutex> lock(watch_mu);
        watch_states.push_back(JsonStringField(line, "slo_state"));
      } else if (line.find("\"cmd\":\"watch_end\"") != std::string::npos) {
        break;
      }
    }
  });

  // Generous ceiling: the walk normally completes in well under a second.
  const auto wait_until = [](auto&& done) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  };

  const int admin = ConnectUnixSocket(socket_path);
  bool act_ok = true;
  const auto expect = [&](const char* what, bool condition) {
    if (!condition) {
      std::printf("telemetry   : FAILED at %s\n", what);
      act_ok = false;
    }
  };

  // Healthy warmup: enough periods for the drift-forced replan to land and
  // the SLO windows to fill with good periods.
  expect("warmup", wait_until([&] { return daemon->PeriodsRun() >= 6; }));
  expect("drift-forced early replan", wait_until([&] {
           return daemon->drift()->Report().replans_triggered >= 1;
         }));
  expect("clean slo", wait_until([&] {
           return daemon->slo()->state() == obs::SloState::kOk;
         }));
  SocketExchange(admin, "SLO", &response);
  expect("SLO reports the ok state",
         response.find("\"state\":\"ok\"") != std::string::npos &&
             response.find("\"drift\"") != std::string::npos);

  // The watch stream's own view, for ordering assertions: has it sampled a
  // bad state yet, and a healthy state after that?
  const auto watch_walked = [&](bool want_recovered) {
    std::lock_guard<std::mutex> lock(watch_mu);
    bool bad = false;
    for (const std::string& state : watch_states) {
      if (state == "burning" || state == "alert") {
        if (!want_recovered) return true;
        bad = true;
      } else if (bad && state == "ok") {
        return true;
      }
    }
    return false;
  };

  // Outage: every sync fails, copies age out, the burn rate must page.
  source.SetFaultsEnabled(true);
  expect("alert during outage", wait_until([&] {
           return daemon->slo()->state() == obs::SloState::kAlert;
         }));
  SocketExchange(admin, "HEALTH", &response);
  expect("HEALTH sees the alert",
         JsonStringField(response, "slo_state") == "alert");
  expect("watch streamed the outage",
         wait_until([&] { return watch_walked(false); }));

  // Recovery: faults clear; the fast window forgives within a few periods.
  source.SetFaultsEnabled(false);
  expect("recovery to ok", wait_until([&] {
           return daemon->slo()->state() == obs::SloState::kOk;
         }));
  expect("watch streamed the recovery",
         wait_until([&] { return watch_walked(true); }));

  SocketExchange(admin, "SLOWLOG", &response);
  expect("SLOWLOG recorded the admin traffic",
         JsonNumberField(response, "recorded", 0.0) >= 1.0);

  // Any input on the watch connection ends the stream; only write here —
  // the watcher thread owns the read side until it sees watch_end.
  const char nudge[] = "PING\n";
  (void)!::write(watch_fd, nudge, sizeof(nudge) - 1);
  watcher.join();
  ::close(watch_fd);
  ::close(admin);
  server->Stop();
  daemon->Stop();

  // The live stream must have seen the whole walk: healthy, then
  // burning/alert, then healthy again.
  bool saw_clean = false;
  bool saw_bad = false;
  bool saw_recovered = false;
  for (const std::string& state : watch_states) {
    if (state == "burning" || state == "alert") {
      saw_bad = true;
    } else if (state == "ok") {
      (saw_bad ? saw_recovered : saw_clean) = true;
    }
  }
  expect("watch stream saw the walk", saw_clean && saw_bad && saw_recovered);

  const obs::DriftReport drift = daemon->drift()->Report();
  std::printf("slo walk    : ok -> alert -> ok over %zu live watch samples\n",
              watch_states.size());
  std::printf("drift       : early replans=%llu aggregate score=%.3f\n",
              (unsigned long long)drift.replans_triggered,
              drift.aggregate_score);
  std::printf("telemetry   : %s\n", act_ok ? "PASS" : "FAIL");
  return act_ok;
}

int RunServeDrill(const std::map<std::string, std::string>& flags) {
  const bool quick = QuickMode();
  ExperimentSpec spec;
  spec.num_objects =
      static_cast<size_t>(GetDouble(flags, "--objects", quick ? 64 : 200));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  const ElementSet truth = Unwrap(GenerateCatalog(spec));
  const double bandwidth = GetDouble(
      flags, "--bandwidth", 0.25 * static_cast<double>(spec.num_objects));
  const uint64_t periods =
      static_cast<uint64_t>(GetDouble(flags, "--periods", quick ? 4 : 8));

  // Faulty executor so the drill exercises the publication path under
  // failed/late syncs, same shape as sync-drill's pass 3.
  sync::SimulatedSource::Options source_options;
  source_options.error_rate = GetDouble(flags, "--error-rate", 0.3);
  source_options.stall_rate = GetDouble(flags, "--stall-rate", 0.05);
  source_options.seed = spec.seed ^ 0x647268ULL;
  sync::SimulatedSource faulty =
      Unwrap(sync::SimulatedSource::Create(source_options));
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  sync::SyncExecutor::Options executor_options;
  executor_options.seed = spec.seed ^ 0x73796eULL;
  executor_options.registry = &global;
  auto executor =
      Unwrap(sync::SyncExecutor::Create(&faulty, executor_options));

  serve::FreshendDaemon::Options options;
  options.loop.accesses_per_period =
      GetDouble(flags, "--accesses", quick ? 200.0 : 1000.0);
  options.loop.seed = spec.seed ^ 0x6f6c6fULL;
  options.loop.registry = &global;
  options.loop.executor = executor.get();
  options.max_periods = periods;
  options.registry = &global;
  auto daemon =
      Unwrap(serve::FreshendDaemon::Create(truth, bandwidth, options));

  const std::string socket_path =
      GetFlag(flags, "--socket",
              StrFormat("/tmp/freshend-drill-%d.sock",
                        static_cast<int>(::getpid())));
  serve::LineServer::Options server_options;
  server_options.socket_path = socket_path;
  server_options.registry = &global;
  auto server =
      Unwrap(serve::LineServer::Start(daemon.get(), server_options));
  if (const Status started = daemon->Start(); !started.ok()) Die(started);

  // Query over the socket while the loop churns: connect once, walk the
  // catalog with every verb, and verify each answer parses as ok. Each
  // round also exercises the whole admin plane (metrics export in both
  // formats, health, SLO, slow-query ring).
  const int client = ConnectUnixSocket(socket_path);
  uint64_t sent = 0;
  uint64_t ok = 0;
  std::string response;
  while (daemon->running()) {
    for (size_t id = 0; id < std::min<size_t>(truth.size(), 32); ++id) {
      for (const char* verb : {"ISFRESH", "AGE", "PLAN"}) {
        if (!SocketExchange(client,
                            StrFormat("%s %zu", verb, id), &response)) {
          Die(Status::Internal("connection dropped mid-drill"));
        }
        ++sent;
        if (response.find("\"ok\":true") != std::string::npos) ++ok;
      }
    }
    for (const char* admin : {"STATS", "METRICS json", "METRICS prom",
                              "HEALTH", "SLO", "SLOWLOG"}) {
      if (!SocketExchange(client, admin, &response)) {
        Die(Status::Internal(
            StrFormat("connection dropped on %s", admin)));
      }
      ++sent;
      if (response.find("\"ok\":true") != std::string::npos) ++ok;
    }
  }
  // Graceful drain: loop already stopped (max_periods); stop the transport,
  // then check the final snapshot's digests from the reader side.
  SocketExchange(client, "QUIT", &response);
  ::close(client);
  server->Stop();
  daemon->Stop();
  bool consistent = false;
  uint64_t final_epoch = 0;
  if (serve::SnapshotRef snapshot = daemon->AcquireSnapshot()) {
    consistent = snapshot->CheckConsistent();
    final_epoch = snapshot->epoch();
  }
  const serve::DaemonStats stats = daemon->Stats();
  std::printf("objects     : %zu\n", truth.size());
  std::printf("periods     : %llu\n",
              (unsigned long long)stats.periods);
  std::printf("epoch       : %llu (publications=%llu reclaimed=%llu)\n",
              (unsigned long long)final_epoch,
              (unsigned long long)stats.store.publications,
              (unsigned long long)stats.store.snapshots_reclaimed);
  std::printf("queries     : %llu sent over socket, %llu ok\n",
              (unsigned long long)sent, (unsigned long long)ok);
  std::printf("consistency : %s\n", consistent ? "OK" : "FAILED");
  const bool act1 = consistent && sent > 0 && ok == sent;
  const bool act2 =
      RunTelemetryAct(truth, spec.seed, quick, socket_path + ".telemetry");
  const bool passed = act1 && act2;
  std::printf("serve drill : %s\n", passed ? "PASS" : "FAIL");
  return passed ? 0 : 1;
}

// top: subscribe to a running freshend's WATCH stream and render a live,
// one-line-per-sample view of the serving plane.
int RunTop(const std::map<std::string, std::string>& flags) {
  const std::string socket_path = GetFlag(flags, "--socket", "");
  if (socket_path.empty()) {
    Die(Status::InvalidArgument("top requires --socket PATH"));
  }
  const double interval = GetDouble(flags, "--interval", 1.0);
  const uint64_t count =
      static_cast<uint64_t>(GetDouble(flags, "--count", 0.0));

  const int fd = ConnectUnixSocket(socket_path);
  std::string line;
  const std::string subscribe =
      count > 0 ? StrFormat("WATCH %g %llu", interval,
                            (unsigned long long)count)
                : StrFormat("WATCH %g", interval);
  if (!SocketExchange(fd, subscribe, &line) ||
      line.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "WATCH rejected: %s\n", line.c_str());
    ::close(fd);
    return 1;
  }
  std::printf("%-6s %8s %8s %10s %7s %9s %6s %6s %7s %6s\n", "seq",
              "uptime", "periods", "queries", "fresh", "slo", "fast",
              "slow", "budget", "drift");
  while (ReadSocketLine(fd, &line)) {
    if (line.find("\"cmd\":\"watch_end\"") != std::string::npos) {
      std::printf("stream ended: %s after %.0f samples\n",
                  JsonStringField(line, "reason").c_str(),
                  JsonNumberField(line, "samples", 0.0));
      break;
    }
    if (line.find("\"cmd\":\"watch_sample\"") == std::string::npos) continue;
    const std::string slo_state = JsonStringField(line, "slo_state");
    std::printf(
        "%-6.0f %7.1fs %8.0f %10.0f %6.1f%% %9s %6.2f %6.2f %6.0f%% %6.2f\n",
        JsonNumberField(line, "seq", 0.0),
        JsonNumberField(line, "uptime_seconds", 0.0),
        JsonNumberField(line, "periods", 0.0),
        JsonNumberField(line, "queries", 0.0),
        100.0 * JsonNumberField(line, "perceived_freshness", 0.0),
        slo_state.empty() ? "-" : slo_state.c_str(),
        JsonNumberField(line, "fast_burn", 0.0),
        JsonNumberField(line, "slow_burn", 0.0),
        100.0 * JsonNumberField(line, "budget_remaining", 1.0),
        JsonNumberField(line, "drift_score", 0.0));
    std::fflush(stdout);
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: freshenctl <gen|plan|eval|metrics|sync-drill|trace"
                 "|convert|replan-drill|serve-drill|top> [--flags]\n"
                 "see the header of examples/freshenctl.cc for details\n");
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  // The flight recorder is on whenever this run can dump a trace: the trace
  // command always writes one, any other command only with --trace-out.
  if (command == "trace" || flags.count("--trace-out") > 0) {
    obs::EventRecorder::Global().set_enabled(true);
  }
  int rc = 2;
  if (command == "gen") {
    rc = RunGen(flags);
  } else if (command == "plan") {
    rc = RunPlan(flags);
  } else if (command == "eval") {
    rc = RunEval(flags);
  } else if (command == "metrics") {
    rc = RunMetrics(flags);
  } else if (command == "sync-drill") {
    rc = RunSyncDrill(flags);
  } else if (command == "trace") {
    rc = RunTrace(flags);
  } else if (command == "convert") {
    rc = RunConvert(flags);
  } else if (command == "replan-drill") {
    rc = RunReplanDrill(flags);
  } else if (command == "serve-drill") {
    rc = RunServeDrill(flags);
  } else if (command == "top") {
    rc = RunTop(flags);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  }
  if (obs::EventRecorder::Global().enabled()) {
    // Publish recorder accounting before the metrics dump so the
    // freshen_obs_recorder_* gauges land in --metrics-out snapshots.
    obs::EventRecorder::Global().ExportMetrics(
        obs::MetricsRegistry::Global());
    const std::string trace_out =
        GetFlag(flags, "--trace-out",
                command == "trace" ? "freshen_trace.json" : "");
    if (!trace_out.empty()) {
      const std::vector<obs::Event> events =
          obs::EventRecorder::Global().Collect();
      const Status status =
          WriteStringToFile(obs::FormatChromeTrace(events), trace_out);
      if (!status.ok()) Die(status);
      std::printf("trace written    : %s (%zu events)\n", trace_out.c_str(),
                  events.size());
    }
  }
  MaybeDumpMetrics(flags, /*to_stdout_by_default=*/command == "metrics");
  return rc;
}
