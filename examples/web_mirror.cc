// Example: an Internet mirror with realistic operational constraints — the
// full pipeline a production deployment would run:
//
//   1. LEARN the master profile from the live request log (the mirror does
//      not know user interests a priori);
//   2. ESTIMATE change rates from its own poll history (the source does not
//      announce update frequencies);
//   3. PLAN size-aware (web objects are Pareto-sized; a refresh of a video
//      costs more than a refresh of a quote) with the scalable
//      partition + k-means pipeline;
//   4. MATERIALIZE the fixed-order sync timeline and verify in simulation.
//
//   $ ./build/examples/web_mirror
#include <cstdio>

#include "freshen/freshen.h"

int main() {
  using namespace freshen;

  // Ground truth the mirror operator does NOT get to see directly.
  ExperimentSpec truth_spec;
  truth_spec.num_objects = 5000;
  truth_spec.mean_updates_per_object = 2.0;
  truth_spec.update_stddev = 2.0;
  truth_spec.theta = 1.1;
  truth_spec.alignment = Alignment::kShuffled;
  truth_spec.size_model = SizeModel::kPareto;  // Web object sizes.
  truth_spec.size_alignment = SizeAlignment::kShuffled;
  truth_spec.seed = 7;
  const ElementSet truth = GenerateCatalog(truth_spec).value();
  const double bandwidth = 2500.0;

  // 1. Learn the profile from a simulated request log (one day of traffic).
  Rng rng(1234);
  AliasTable traffic(AccessProbs(truth));
  AccessLogLearner learner(truth.size(), {.decay = 0.9, .smoothing = 0.1});
  for (int request = 0; request < 400000; ++request) {
    learner.Observe(traffic.Sample(rng));
    if (request % 50000 == 49999) learner.EndPeriod();
  }
  const std::vector<double> learned_profile = learner.Snapshot().value();
  std::printf("learned profile from %llu logged requests\n",
              static_cast<unsigned long long>(learner.NumObservations()));

  // 2. Estimate change rates from 30 historical polls per object.
  ElementSet believed = truth;
  for (size_t i = 0; i < believed.size(); ++i) {
    believed[i].access_prob = learned_profile[i];
    believed[i].change_rate =
        SimulatePollEstimate(truth[i].change_rate, /*poll_interval=*/1.0,
                             /*num_polls=*/30, truth_spec.seed + i);
  }

  // 3. Size-aware scalable planning: 100 PF/s partitions + 5 k-means steps,
  //    fixed-bandwidth intra-partition allocation (the paper's best combo).
  PlannerOptions options;
  options.mode = PlanMode::kPartitioned;
  options.partition_key = PartitionKey::kPerceivedFreshnessSize;
  options.num_partitions = 100;
  options.kmeans_iterations = 5;
  options.allocation_policy = AllocationPolicy::kFixedBandwidth;
  options.size_aware = true;
  const FreshenPlan plan =
      FreshenPlanner(options).Plan(believed, bandwidth).value();
  std::printf(
      "planned in %.1f ms (partition %.1f + kmeans %.1f + solve %.1f ms), "
      "%zu partitions\n",
      plan.timings.total_seconds * 1e3, plan.timings.partition_seconds * 1e3,
      plan.timings.kmeans_seconds * 1e3, plan.timings.solve_seconds * 1e3,
      plan.num_partitions_used);

  // How good is the plan against ground truth?
  const double pf_true = PerceivedFreshness(truth, plan.frequencies);
  PlannerOptions oracle;
  oracle.size_aware = true;
  const double pf_oracle = FreshenPlanner(oracle)
                               .Plan(truth, bandwidth)
                               .value()
                               .perceived_freshness;
  std::printf(
      "perceived freshness: %.4f planned from learned knowledge vs %.4f "
      "oracle optimum\n",
      pf_true, pf_oracle);

  // 4. Materialize one period of the sync timeline.
  const SyncSchedule schedule =
      SyncSchedule::FixedOrder(plan.frequencies, /*horizon=*/1.0).value();
  std::printf("materialized %zu sync ops for the next period (%.1f bw units)\n",
              schedule.size(), schedule.BandwidthPerPeriod(truth, 1.0));

  // ...and verify against the real workload in the simulator.
  SimulationConfig sim_config;
  sim_config.horizon_periods = 30.0;
  sim_config.accesses_per_period = 20000.0;
  sim_config.warmup_periods = 3.0;
  const SimulationResult sim =
      MirrorSimulator(truth, sim_config).Run(plan.frequencies).value();
  std::printf(
      "simulated perceived freshness %.4f over %llu accesses (analytic "
      "%.4f)\n",
      sim.empirical_perceived_freshness,
      static_cast<unsigned long long>(sim.num_accesses),
      sim.analytic_perceived_freshness);
  return 0;
}
