// freshend — the resident freshening daemon. Hosts the closed mirror loop
// (OnlineFreshenLoop) on a background thread and serves freshness queries
// over a local UNIX socket speaking the newline protocol from
// src/serve/protocol.h:
//
//   freshend --socket /tmp/freshend.sock --objects 10000 --bandwidth 2500
//   ... elsewhere ...
//   printf 'ISFRESH 42\nSTATS\nQUIT\n' | nc -U /tmp/freshend.sock
//
// Flags:
//   --socket PATH         socket to serve on (default /tmp/freshend.sock)
//   --catalog FILE        load the catalog (CSV or FRSHCAT1 binary,
//                         auto-detected; --catalog-format csv|binary|auto
//                         overrides) instead of generating one
//   --objects N           synthetic catalog size when --catalog is absent
//   --theta T             synthetic catalog Zipf skew
//   --bandwidth B         sync bandwidth per period (default objects / 4)
//   --periods P           stop after P loop periods (0 = run until signal)
//   --period-seconds S    pace the loop to S wall seconds per period
//   --accesses A          simulated accesses per period
//   --threshold F         IsFresh probability threshold (default 0.5)
//   --error-rate E        sync fault injection (0 disables the executor)
//   --seed K              randomness seed
//   --metrics-out FILE    write the final metrics snapshot (JSON) on exit
//   --slo-objective F     freshness SLO: target good-access fraction
//   --age-slo S           age threshold (periods) scoring accesses as good
//   --slo-age-mode 0|1    1: "good" means within --age-slo; 0: strictly
//                         fresh (default)
//   --drift-replan 0|1    1: sustained estimator drift forces an early
//                         replan (default 0: detect and report only)
//   --slowlog-threshold S SLOWLOG records requests handled slower than S
//   --slowlog-capacity N  SLOWLOG ring size
//
// The admin plane (METRICS/HEALTH/SLO/SLOWLOG/WATCH) is always served;
// `freshenctl top --socket PATH` renders the WATCH stream live.
//
// SIGTERM/SIGINT trigger a graceful drain: the loop finishes its period and
// publishes its final snapshot, the server stops accepting, in-flight
// connections finish, the socket file is removed, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include <unistd.h>

#include "common/string_util.h"
#include "freshen/freshen.h"
#include "io/catalog_binary.h"
#include "io/catalog_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/daemon.h"
#include "serve/server.h"

namespace {

using namespace freshen;

// Signal flag: the handler only sets this; the main thread does the drain.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", arg.c_str());
      std::exit(2);
    }
    flags[arg] = argv[++i];
  }
  return flags;
}

std::string GetFlag(const std::map<std::string, std::string>& flags,
                    const std::string& name, const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

double GetDouble(const std::map<std::string, std::string>& flags,
                 const std::string& name, double fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "freshend: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

ElementSet LoadOrGenerateCatalog(
    const std::map<std::string, std::string>& flags) {
  const std::string path = GetFlag(flags, "--catalog", "");
  if (!path.empty()) {
    const std::string format = GetFlag(flags, "--catalog-format", "auto");
    if (format == "csv") return Unwrap(LoadCatalogCsv(path));
    if (format == "binary") return Unwrap(LoadCatalogBinary(path));
    if (format != "auto") {
      Die(Status::InvalidArgument("unknown --catalog-format " + format));
    }
    return LooksLikeBinaryCatalog(path) ? Unwrap(LoadCatalogBinary(path))
                                        : Unwrap(LoadCatalogCsv(path));
  }
  ExperimentSpec spec;
  spec.num_objects =
      static_cast<size_t>(GetDouble(flags, "--objects", 1000));
  spec.theta = GetDouble(flags, "--theta", 1.0);
  spec.seed = static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));
  return Unwrap(GenerateCatalog(spec));
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  const ElementSet truth = LoadOrGenerateCatalog(flags);
  const double bandwidth = GetDouble(
      flags, "--bandwidth", 0.25 * static_cast<double>(truth.size()));
  const uint64_t seed =
      static_cast<uint64_t>(GetDouble(flags, "--seed", 20030305));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  // Optional fault-injecting executor, for drills against a flaky source.
  std::unique_ptr<sync::SimulatedSource> faulty;
  std::unique_ptr<sync::SyncExecutor> executor;
  const double error_rate = GetDouble(flags, "--error-rate", 0.0);
  if (error_rate > 0.0) {
    sync::SimulatedSource::Options source_options;
    source_options.error_rate = error_rate;
    source_options.seed = seed ^ 0x647268ULL;
    faulty = std::make_unique<sync::SimulatedSource>(
        Unwrap(sync::SimulatedSource::Create(source_options)));
    sync::SyncExecutor::Options executor_options;
    executor_options.seed = seed ^ 0x73796eULL;
    executor_options.registry = &registry;
    executor =
        Unwrap(sync::SyncExecutor::Create(faulty.get(), executor_options));
  }

  serve::FreshendDaemon::Options options;
  options.loop.accesses_per_period = GetDouble(flags, "--accesses", 1000.0);
  options.loop.seed = seed ^ 0x6f6c6fULL;
  options.loop.registry = &registry;
  options.loop.executor = executor.get();
  options.freshness_threshold = GetDouble(flags, "--threshold", 0.5);
  options.period_seconds = GetDouble(flags, "--period-seconds", 0.05);
  options.max_periods =
      static_cast<uint64_t>(GetDouble(flags, "--periods", 0));
  options.registry = &registry;
  options.slo.objective =
      GetDouble(flags, "--slo-objective", options.slo.objective);
  options.slo.age_slo = GetDouble(flags, "--age-slo", options.slo.age_slo);
  options.slo.good_is_age_slo =
      GetDouble(flags, "--slo-age-mode",
                options.slo.good_is_age_slo ? 1.0 : 0.0) != 0.0;
  options.drift_replan = GetDouble(flags, "--drift-replan", 0.0) != 0.0;
  options.slowlog.threshold_seconds = GetDouble(
      flags, "--slowlog-threshold", options.slowlog.threshold_seconds);
  options.slowlog.capacity = static_cast<size_t>(GetDouble(
      flags, "--slowlog-capacity",
      static_cast<double>(options.slowlog.capacity)));
  auto daemon =
      Unwrap(serve::FreshendDaemon::Create(truth, bandwidth, options));

  serve::LineServer::Options server_options;
  server_options.socket_path =
      GetFlag(flags, "--socket", "/tmp/freshend.sock");
  server_options.registry = &registry;
  auto server =
      Unwrap(serve::LineServer::Start(daemon.get(), server_options));

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // Client disconnects must not kill us.

  if (const Status started = daemon->Start(); !started.ok()) Die(started);
  std::printf("freshend: serving %zu elements on %s (pid %d)\n",
              truth.size(), server->socket_path().c_str(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  // Run until a signal arrives or the loop finishes its --periods budget.
  while (g_shutdown_requested == 0 && daemon->running()) {
    ::usleep(50 * 1000);
  }

  // Graceful drain: finish the period and final publication, stop the
  // transport (in-flight requests complete), then report.
  std::printf("freshend: draining...\n");
  daemon->Stop();
  server->Stop();
  const serve::DaemonStats stats = daemon->Stats();
  const serve::ServerStats transport = server->stats();
  std::printf(
      "freshend: drained after %llu periods (epoch %llu, %llu queries, "
      "%llu connections, %llu refused)\n",
      (unsigned long long)stats.periods,
      (unsigned long long)stats.snapshot.epoch,
      (unsigned long long)stats.queries,
      (unsigned long long)transport.accepted,
      (unsigned long long)transport.rejected);

  const std::string metrics_out = GetFlag(flags, "--metrics-out", "");
  if (!metrics_out.empty()) {
    const Status written = WriteStringToFile(
        obs::FormatJson(registry.Snapshot()), metrics_out);
    if (!written.ok()) Die(written);
    std::printf("freshend: metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
