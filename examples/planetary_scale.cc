// Example: planning at web-search scale — the paper's "mirrors with
// millions of elements" scenario. Exact optimization over every element is
// what the paper calls intolerable for a schedule that must be recomputed
// whenever contents or interests shift; this example plans for 2,000,000
// objects with the partition + k-means pipeline in well under a second of
// solve time and compares against the exact KKT optimum.
//
//   $ ./build/examples/planetary_scale          # ~2M objects
//   $ FRESHEN_QUICK=1 ./build/examples/planetary_scale   # 200k objects
#include <cstdio>
#include <cstdlib>

#include "freshen/freshen.h"

int main() {
  using namespace freshen;

  const char* quick = std::getenv("FRESHEN_QUICK");
  const size_t n =
      (quick != nullptr && quick[0] != '\0' && quick[0] != '0') ? 200000
                                                                : 2000000;
  ExperimentSpec spec;
  spec.num_objects = n;
  spec.mean_updates_per_object = 2.0;
  spec.update_stddev = 2.0;
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  spec.syncs_per_period = 0.5 * static_cast<double>(n);
  const ElementSet catalog = GenerateCatalog(spec).value();
  std::printf("catalog: %zu objects, bandwidth %.0f syncs/period\n", n,
              spec.syncs_per_period);

  // Scalable plan: 100 PF partitions, 10 k-means iterations.
  PlannerOptions scalable;
  scalable.mode = PlanMode::kPartitioned;
  scalable.partition_key = PartitionKey::kPerceivedFreshness;
  scalable.num_partitions = 100;
  scalable.kmeans_iterations = 10;
  const FreshenPlan heuristic =
      FreshenPlanner(scalable).Plan(catalog, spec.syncs_per_period).value();
  std::printf(
      "partition+kmeans plan: PF %.4f in %.2f s total "
      "(partition %.2f s, kmeans %.2f s, solve %.4f s)\n",
      heuristic.perceived_freshness, heuristic.timings.total_seconds,
      heuristic.timings.partition_seconds, heuristic.timings.kmeans_seconds,
      heuristic.timings.solve_seconds);

  // Exact optimum for reference (feasible only because our solver exploits
  // the problem's separability — a generic NLP package cannot do this; see
  // bench_solver_scaling).
  const FreshenPlan exact =
      FreshenPlanner({}).Plan(catalog, spec.syncs_per_period).value();
  std::printf("exact KKT optimum:     PF %.4f in %.2f s\n",
              exact.perceived_freshness, exact.timings.total_seconds);
  std::printf(
      "heuristic reaches %.1f%% of optimal perceived freshness with a "
      "schedule it can\nrecompute continuously as profiles drift.\n",
      100.0 * heuristic.perceived_freshness / exact.perceived_freshness);
  return 0;
}
