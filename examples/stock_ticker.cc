// Example: a stock-quote mirror for day traders — the paper's motivating
// case where user interest ALIGNS with volatility ("volatile stocks might be
// more interesting to day-traders purely due to their volatility"). This is
// exactly the configuration where interest-blind freshening collapses:
// General Freshening starves the volatile symbols everyone is watching.
//
//   $ ./build/examples/stock_ticker
//
// Builds a 2,000-symbol catalog whose update rates follow a gamma
// distribution and whose (Zipf) popularity is aligned with volatility,
// plans with GF and PF, and verifies the gap in the discrete-event
// simulator.
#include <cstdio>

#include "freshen/freshen.h"

int main() {
  using namespace freshen;

  // 1. The symbol universe. Quote pages update as a Poisson process; the
  //    per-period rates are gamma(mean 4, sigma 3) — a heavy spread from
  //    sleepy utilities to meme stocks.
  ExperimentSpec spec;
  spec.num_objects = 2000;
  spec.mean_updates_per_object = 4.0;
  spec.update_stddev = 3.0;
  spec.theta = 1.2;                      // Trader attention is highly skewed
  spec.alignment = Alignment::kAligned;  // ...and tracks volatility.
  spec.syncs_per_period = 1000.0;        // Quota: 1000 quote fetches/period.
  spec.seed = 42;
  const ElementSet symbols = GenerateCatalog(spec).value();

  std::printf("stock ticker mirror: %zu symbols, %.0f fetches/period\n",
              symbols.size(), spec.syncs_per_period);

  // 2. Plan with both techniques.
  PlannerOptions pf_options;  // Perceived Freshening (profile-aware).
  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;
  const FreshenPlan pf =
      FreshenPlanner(pf_options).Plan(symbols, spec.syncs_per_period).value();
  const FreshenPlan gf =
      FreshenPlanner(gf_options).Plan(symbols, spec.syncs_per_period).value();

  // 3. How the two planners treat the 5 hottest and 5 coldest symbols.
  std::printf("\nsymbol  volatility  popularity  f_PF     f_GF\n");
  auto print_symbol = [&](size_t i) {
    std::printf("%6zu  %10.2f  %10.5f  %6.2f  %6.2f\n", i,
                symbols[i].change_rate, symbols[i].access_prob,
                pf.frequencies[i], gf.frequencies[i]);
  };
  for (size_t i = 0; i < 5; ++i) print_symbol(i);
  std::printf("   ...\n");
  for (size_t i = symbols.size() - 5; i < symbols.size(); ++i) {
    print_symbol(i);
  }

  // 4. What traders actually experience (analytic + simulated).
  SimulationConfig sim_config;
  sim_config.horizon_periods = 50.0;
  sim_config.accesses_per_period = 20000.0;
  sim_config.warmup_periods = 5.0;
  MirrorSimulator simulator(symbols, sim_config);
  const SimulationResult pf_sim = simulator.Run(pf.frequencies).value();
  const SimulationResult gf_sim = simulator.Run(gf.frequencies).value();

  std::printf("\n                         PF plan   GF plan\n");
  std::printf("perceived freshness     %7.4f   %7.4f   (analytic)\n",
              pf.perceived_freshness, gf.perceived_freshness);
  std::printf("perceived freshness     %7.4f   %7.4f   (simulated)\n",
              pf_sim.empirical_perceived_freshness,
              gf_sim.empirical_perceived_freshness);
  std::printf("mean quote age          %7.4f   %7.4f   (simulated, periods)\n",
              pf_sim.empirical_perceived_age,
              gf_sim.empirical_perceived_age);
  std::printf(
      "\nGeneral Freshening gives the volatile, heavily-watched symbols "
      "almost no bandwidth\n(they are 'hopeless' for average freshness); "
      "profile-aware freshening fetches exactly\nthose symbols and the "
      "perceived freshness multiplies.\n");
  return 0;
}
