// Quickstart: plan application-aware freshening for a tiny hand-built mirror
// and compare it against the interest-blind baseline.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API: build a catalog, aggregate user
// profiles, plan with PF and GF, inspect the schedules, and verify the plans
// in the discrete-event simulator.
#include <cstdio>

#include "freshen/freshen.h"

int main() {
  using namespace freshen;  // Example code only; library code never does this.

  // 1. The mirror: five objects with known source change rates (per period).
  //    Think of them as: a volatile stock quote, a news index page, a
  //    product list, a documentation page, and an archived report.
  const std::vector<double> change_rates = {5.0, 3.0, 1.0, 0.3, 0.05};

  // 2. Users tell us what they care about. Two user profiles, the second
  //    twice as important (e.g. a paying customer).
  auto trader = UserProfile::FromWeights({8, 1, 1, 0, 0}).value();
  auto analyst = UserProfile::FromWeights({1, 2, 2, 4, 1}).value();
  const std::vector<double> master =
      AggregateProfiles({trader, analyst}, {1.0, 2.0}).value();

  const ElementSet mirror = MakeElementSet(change_rates, master);
  const double bandwidth = 4.0;  // Four refreshes per period, total.

  // 3. Plan with Perceived Freshening (ours) and General Freshening
  //    (the interest-blind prior work).
  PlannerOptions pf_options;
  pf_options.technique = Technique::kPerceived;
  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;

  const FreshenPlan pf = FreshenPlanner(pf_options).Plan(mirror, bandwidth).value();
  const FreshenPlan gf = FreshenPlanner(gf_options).Plan(mirror, bandwidth).value();

  std::printf("object  lambda  p_master  f_PF    f_GF\n");
  for (size_t i = 0; i < mirror.size(); ++i) {
    std::printf("%6zu  %6.2f  %8.3f  %5.2f  %5.2f\n", i,
                mirror[i].change_rate, mirror[i].access_prob,
                pf.frequencies[i], gf.frequencies[i]);
  }
  std::printf("\nperceived freshness:  PF plan %.4f   GF plan %.4f\n",
              pf.perceived_freshness, gf.perceived_freshness);
  std::printf("general freshness:    PF plan %.4f   GF plan %.4f\n",
              pf.general_freshness, gf.general_freshness);

  // 4. Materialize the first few sync operations of the PF plan.
  const SyncSchedule schedule =
      SyncSchedule::FixedOrder(pf.frequencies, /*horizon=*/2.0).value();
  std::printf("\nfirst sync operations (2 periods):\n");
  for (size_t i = 0; i < schedule.size() && i < 8; ++i) {
    std::printf("  t=%.3f  sync object %zu\n", schedule.events()[i].time,
                schedule.events()[i].element);
  }

  // 5. Verify both plans empirically in the simulator.
  SimulationConfig config;
  config.horizon_periods = 200.0;
  config.accesses_per_period = 2000.0;
  MirrorSimulator simulator(mirror, config);
  const SimulationResult pf_sim = simulator.Run(pf.frequencies).value();
  const SimulationResult gf_sim = simulator.Run(gf.frequencies).value();
  std::printf(
      "\nsimulated perceived freshness: PF %.4f (analytic %.4f), GF %.4f\n",
      pf_sim.empirical_perceived_freshness,
      pf_sim.analytic_perceived_freshness,
      gf_sim.empirical_perceived_freshness);
  return 0;
}
