// Edge-case hardening across modules: ties, saturation, degenerate
// catalogs, and extreme parameter regimes that the main suites do not
// exercise.
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/metrics.h"
#include "opt/kkt.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "partition/partitioner.h"
#include "schedule/schedule.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace freshen {
namespace {

TEST(SolverEdgeTest, IdenticalElementsShareBandwidthEqually) {
  // Perfect symmetry must survive the multiplier search and the residual
  // hand-off: identical elements get identical frequencies.
  const ElementSet elements =
      MakeElementSet({2.0, 2.0, 2.0, 2.0}, {0.25, 0.25, 0.25, 0.25});
  const Allocation allocation =
      KktWaterFillingSolver()
          .Solve(MakePerceivedProblem(elements, 3.0, false))
          .value();
  for (double f : allocation.frequencies) {
    EXPECT_NEAR(f, 0.75, 1e-9);
  }
}

TEST(SolverEdgeTest, HugeBandwidthSaturatesFreshness) {
  const ElementSet elements = MakeElementSet({1.0, 4.0}, {0.5, 0.5});
  const Allocation allocation =
      KktWaterFillingSolver()
          .Solve(MakePerceivedProblem(elements, 1e6, false))
          .value();
  EXPECT_GT(PerceivedFreshness(elements, allocation.frequencies), 0.99999);
  EXPECT_NEAR(allocation.bandwidth_used, 1e6, 1e-3);
}

TEST(SolverEdgeTest, TinyBandwidthFundsOnlyTheBestElement) {
  // With a sliver of bandwidth, only elements whose marginal tops the very
  // high water level receive anything.
  const ElementSet elements =
      MakeElementSet({1.0, 1.0, 1.0}, {0.8, 0.15, 0.05});
  const Allocation allocation =
      KktWaterFillingSolver()
          .Solve(MakePerceivedProblem(elements, 1e-4, false))
          .value();
  EXPECT_GT(allocation.frequencies[0], 0.0);
  EXPECT_NEAR(allocation.bandwidth_used, 1e-4, 1e-12);
  // The hottest element dominates the tiny budget.
  EXPECT_GT(allocation.frequencies[0],
            100.0 * (allocation.frequencies[1] + allocation.frequencies[2] +
                     1e-12));
}

TEST(SolverEdgeTest, ExtremeRateSpreadStaysFinite) {
  const ElementSet elements =
      MakeElementSet({1e-9, 1.0, 1e9}, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const CoreProblem problem = MakePerceivedProblem(elements, 10.0, false);
  const Allocation allocation =
      KktWaterFillingSolver().Solve(problem).value();
  for (double f : allocation.frequencies) {
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_GE(f, 0.0);
  }
  EXPECT_NEAR(allocation.bandwidth_used, 10.0, 1e-8);
  const KktReport report = VerifyKkt(problem, allocation, 1e-4);
  EXPECT_TRUE(report.satisfied) << report.ToString();
}

TEST(SolverEdgeTest, ManyIdenticalPlusOneOutlierTies) {
  // 100 identical cold elements + 1 hot one: the identical block must get
  // identical allocations and KKT must hold despite massive ties.
  std::vector<double> rates(101, 1.0);
  std::vector<double> probs(101, 0.005);
  probs[100] = 0.5;
  const ElementSet elements = MakeElementSet(rates, probs);
  const CoreProblem problem = MakePerceivedProblem(elements, 30.0, false);
  const Allocation allocation =
      KktWaterFillingSolver().Solve(problem).value();
  for (int i = 1; i < 100; ++i) {
    EXPECT_NEAR(allocation.frequencies[i], allocation.frequencies[0], 1e-9);
  }
  EXPECT_GT(allocation.frequencies[100], allocation.frequencies[0]);
}

TEST(PlannerEdgeTest, SingleElementCatalog) {
  const ElementSet elements = MakeElementSet({3.0}, {1.0});
  for (auto mode : {PlanMode::kExact, PlanMode::kPartitioned}) {
    PlannerOptions options;
    options.mode = mode;
    options.num_partitions = 5;  // Clamped to 1.
    const FreshenPlan plan =
        FreshenPlanner(options).Plan(elements, 2.0).value();
    EXPECT_NEAR(plan.frequencies[0], 2.0, 1e-9);
  }
}

TEST(PlannerEdgeTest, AllElementsNeverChange) {
  // Nothing to do: PF is 1 regardless; the plan must be feasible and sane.
  const ElementSet elements = MakeElementSet({0.0, 0.0}, {0.5, 0.5});
  const FreshenPlan plan = FreshenPlanner({}).Plan(elements, 5.0).value();
  EXPECT_DOUBLE_EQ(plan.perceived_freshness, 1.0);
  for (double f : plan.frequencies) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(PlannerEdgeTest, PartitionedWithMorePartitionsThanElements) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0}, {0.3, 0.3, 0.4});
  PlannerOptions options;
  options.mode = PlanMode::kPartitioned;
  options.num_partitions = 50;
  const FreshenPlan plan = FreshenPlanner(options).Plan(elements, 2.0).value();
  EXPECT_EQ(plan.num_partitions_used, 3u);
  // K = N: identical to exact.
  const FreshenPlan exact = FreshenPlanner({}).Plan(elements, 2.0).value();
  EXPECT_NEAR(plan.perceived_freshness, exact.perceived_freshness, 1e-9);
}

TEST(PlannerEdgeTest, KMeansOnTinyCatalog) {
  const ElementSet elements = MakeElementSet({1.0, 5.0}, {0.9, 0.1});
  PlannerOptions options;
  options.mode = PlanMode::kPartitioned;
  options.num_partitions = 2;
  options.kmeans_iterations = 10;
  const FreshenPlan plan = FreshenPlanner(options).Plan(elements, 1.0).value();
  EXPECT_NEAR(plan.bandwidth_used, 1.0, 1e-9);
}

TEST(PartitionEdgeTest, AllEqualKeysStillPartitionEvenly) {
  // Identical elements: sort keys tie everywhere; the contiguous cut must
  // still produce balanced partitions.
  const ElementSet elements =
      MakeElementSet(std::vector<double>(10, 2.0),
                     std::vector<double>(10, 0.1));
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 3).value();
  ASSERT_EQ(partitions.size(), 3u);
  EXPECT_EQ(partitions[0].members.size(), 4u);
  EXPECT_EQ(partitions[1].members.size(), 3u);
  EXPECT_EQ(partitions[2].members.size(), 3u);
}

TEST(SimulatorEdgeTest, NoAccessStreamStillMeasuresGeneralFreshness) {
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  SimulationConfig config;
  config.horizon_periods = 200.0;
  config.accesses_per_period = 0.0;
  config.warmup_periods = 10.0;
  const SimulationResult result =
      MirrorSimulator(elements, config).Run({2.0}).value();
  EXPECT_EQ(result.num_accesses, 0u);
  EXPECT_DOUBLE_EQ(result.empirical_perceived_freshness, 0.0);
  EXPECT_NEAR(result.empirical_general_freshness,
              FixedOrderFreshness(2.0, 2.0), 0.02);
}

TEST(SimulatorEdgeTest, StaticCatalogIsAlwaysFresh) {
  const ElementSet elements = MakeElementSet({0.0, 0.0}, {0.7, 0.3});
  SimulationConfig config;
  config.horizon_periods = 20.0;
  config.accesses_per_period = 100.0;
  config.warmup_periods = 1.0;
  const SimulationResult result =
      MirrorSimulator(elements, config).Run({0.0, 0.0}).value();
  EXPECT_DOUBLE_EQ(result.empirical_perceived_freshness, 1.0);
  EXPECT_DOUBLE_EQ(result.empirical_general_freshness, 1.0);
}

TEST(ScheduleEdgeTest, VeryHighFrequencyProducesDenseTimeline) {
  const auto schedule = SyncSchedule::FixedOrder({1000.0}, 1.0).value();
  EXPECT_EQ(schedule.size(), 1000u);
}

TEST(WorkloadEdgeTest, SingleObjectCatalog) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 1;
  const ElementSet elements = GenerateCatalog(spec).value();
  ASSERT_EQ(elements.size(), 1u);
  EXPECT_DOUBLE_EQ(elements[0].access_prob, 1.0);
}

TEST(WorkloadEdgeTest, ExtremeSkewConcentratesAlmostEverything) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 4.0;  // Far beyond the paper's 1.6.
  const ElementSet elements = GenerateCatalog(spec).value();
  EXPECT_GT(elements[0].access_prob, 0.9);
}

}  // namespace
}  // namespace freshen
