// Tests for the freshend serving subsystem: epoch-based reclamation,
// snapshot building with structural sharing, the lock-free snapshot store,
// the daemon's query API, and the line protocol.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "obs/metrics.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/slowlog.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "workload/generator.h"

namespace freshen {
namespace serve {
namespace {

// ---- EpochDomain ----------------------------------------------------------

TEST(EpochDomainTest, AdvanceOpensSuccessiveEpochs) {
  EpochDomain domain;
  EXPECT_EQ(domain.CurrentEpoch(), 0u);
  EXPECT_EQ(domain.Advance(), 1u);
  EXPECT_EQ(domain.Advance(), 2u);
  EXPECT_EQ(domain.CurrentEpoch(), 2u);
}

TEST(EpochDomainTest, PinReturnsCurrentEpochAndCounts) {
  EpochDomain domain;
  domain.Advance();
  EXPECT_EQ(domain.PinnedReaders(), 0u);
  const uint64_t pinned = domain.Pin();
  EXPECT_EQ(pinned, 1u);
  EXPECT_EQ(domain.PinnedReaders(), 1u);
  EXPECT_EQ(domain.MinPinnedEpoch(), 1u);
  domain.Unpin();
  EXPECT_EQ(domain.PinnedReaders(), 0u);
  EXPECT_EQ(domain.MinPinnedEpoch(), EpochDomain::kIdle);
}

TEST(EpochDomainTest, RetiredObjectSurvivesUntilReaderLeaves) {
  EpochDomain domain;
  domain.Advance();  // Epoch 1 current.
  const uint64_t pinned = domain.Pin();
  ASSERT_EQ(pinned, 1u);

  domain.Advance();  // Epoch 2; the epoch-1 object is superseded.
  bool freed = false;
  domain.Retire(1, [&freed] { freed = true; });
  EXPECT_EQ(domain.TryReclaim(), 0u);  // Reader still pinned at 1.
  EXPECT_FALSE(freed);

  domain.Unpin();
  EXPECT_EQ(domain.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
  EXPECT_EQ(domain.RetiredCount(), 0u);
}

TEST(EpochDomainTest, ReaderAtNewerEpochDoesNotProtectOlderGarbage) {
  EpochDomain domain;
  domain.Advance();  // 1
  domain.Advance();  // 2
  bool freed = false;
  domain.Retire(1, [&freed] { freed = true; });
  domain.Advance();           // 3
  const uint64_t pinned = domain.Pin();  // Pinned at 3.
  EXPECT_EQ(pinned, 3u);
  EXPECT_EQ(domain.TryReclaim(), 1u);  // 1 < 3: reclaimable.
  EXPECT_TRUE(freed);
  domain.Unpin();
}

TEST(EpochDomainTest, DrainAllFreesEverything) {
  EpochDomain domain;
  domain.Advance();
  int freed = 0;
  domain.Retire(1, [&freed] { ++freed; });
  domain.Advance();
  domain.Retire(2, [&freed] { ++freed; });
  EXPECT_EQ(domain.DrainAll(), 2u);
  EXPECT_EQ(freed, 2);
}

TEST(EpochDomainTest, EpochPinIsRaii) {
  EpochDomain domain;
  domain.Advance();
  {
    EpochPin pin(domain);
    EXPECT_EQ(pin.epoch(), 1u);
    EXPECT_EQ(domain.PinnedReaders(), 1u);
  }
  EXPECT_EQ(domain.PinnedReaders(), 0u);
}

TEST(EpochDomainTest, ManyThreadsPinConcurrently) {
  EpochDomain domain;
  domain.Advance();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<size_t> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 1000; ++i) {
        const uint64_t e = domain.Pin();
        if (e == 0 || e == EpochDomain::kIdle) failures.fetch_add(1);
        domain.Unpin();
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(domain.PinnedReaders(), 0u);
}

// ---- SnapshotBuilder ------------------------------------------------------

std::vector<double> Column(size_t n, double value) {
  return std::vector<double>(n, value);
}

TEST(SnapshotBuilderTest, FirstPublishRequiresMarkAllDirty) {
  SnapshotBuilder builder(100);
  const auto columns = Column(100, 1.0);
  auto result =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns);
  EXPECT_FALSE(result.ok());
}

TEST(SnapshotBuilderTest, PublishesConsistentSnapshot) {
  const size_t n = 10000;
  SnapshotBuilder builder(n);
  builder.MarkAllDirty();
  const auto columns = Column(n, 0.5);
  auto snapshot =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns)
          .value();
  EXPECT_EQ(snapshot->size(), n);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_TRUE(snapshot->CheckConsistent());
  const ElementView view = snapshot->Lookup(n - 1);
  EXPECT_DOUBLE_EQ(view.frequency, 0.5);
  EXPECT_DOUBLE_EQ(view.last_sync_time, 0.5);
}

TEST(SnapshotBuilderTest, CleanShardsAreSharedDirtyShardsRebuilt) {
  const size_t n = 20000;  // Several shards at the 4096 grain.
  SnapshotBuilder builder(n);
  ASSERT_GT(builder.NumShards(), 2u);
  builder.MarkAllDirty();
  auto columns = Column(n, 1.0);
  auto first =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns)
          .value();

  // Touch exactly one element; only its shard should rebuild.
  columns[0] = 2.0;
  builder.MarkDirty(0);
  EXPECT_EQ(builder.DirtyShards(), 1u);
  auto second =
      builder.Publish(2, 0, 1.0, columns, columns, columns, columns, columns)
          .value();

  EXPECT_EQ(second->stats().shards_rebuilt, 1u);
  EXPECT_NE(first->shards()[0].get(), second->shards()[0].get());
  for (size_t s = 1; s < first->shards().size(); ++s) {
    EXPECT_EQ(first->shards()[s].get(), second->shards()[s].get())
        << "shard " << s << " should be structurally shared";
  }
  EXPECT_TRUE(second->CheckConsistent());
  EXPECT_DOUBLE_EQ(second->Lookup(0).frequency, 2.0);
  // The first snapshot is untouched by the second publication.
  EXPECT_TRUE(first->CheckConsistent());
  EXPECT_DOUBLE_EQ(first->Lookup(0).frequency, 1.0);
  EXPECT_NE(first->combined_digest(), second->combined_digest());
}

// ---- SnapshotStore --------------------------------------------------------

std::shared_ptr<const ServeSnapshot> MakeSnapshot(SnapshotBuilder& builder,
                                                  uint64_t epoch, size_t n,
                                                  double value) {
  builder.MarkAllDirty();
  const auto columns = Column(n, value);
  return builder
      .Publish(epoch, 0, 0.0, columns, columns, columns, columns, columns)
      .value();
}

TEST(SnapshotStoreTest, EmptyBeforeFirstPublish) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotRef ref = store.Acquire();
  EXPECT_FALSE(ref);
}

TEST(SnapshotStoreTest, PublishThenAcquire) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  EXPECT_EQ(store.Publish(MakeSnapshot(builder, 1, 64, 1.0)), 1u);
  SnapshotRef ref = store.Acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->epoch(), 1u);
  EXPECT_TRUE(ref->CheckConsistent());
}

TEST(SnapshotStoreTest, HeldRefDelaysReclamation) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  store.Publish(MakeSnapshot(builder, 1, 64, 1.0));
  SnapshotRef held = store.Acquire();
  ASSERT_TRUE(held);

  store.Publish(MakeSnapshot(builder, 2, 64, 2.0));
  StoreStats stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 1u);
  EXPECT_EQ(stats.snapshots_reclaimed, 0u);
  EXPECT_EQ(stats.retired_pending, 1u);
  // The held ref still reads the old snapshot, consistently.
  EXPECT_EQ(held->epoch(), 1u);
  EXPECT_DOUBLE_EQ(held->Lookup(0).frequency, 1.0);
  EXPECT_TRUE(held->CheckConsistent());

  held = SnapshotRef();  // Release; next publication reclaims.
  store.Publish(MakeSnapshot(builder, 3, 64, 3.0));
  stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 2u);
  EXPECT_GE(stats.snapshots_reclaimed, 1u);
}

TEST(SnapshotStoreTest, DrainReclaimsEverything) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  for (uint64_t e = 1; e <= 5; ++e) {
    store.Publish(MakeSnapshot(builder, e, 64, static_cast<double>(e)));
  }
  store.Drain();
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 4u);
  EXPECT_EQ(stats.snapshots_reclaimed, 4u);
  EXPECT_EQ(stats.retired_pending, 0u);
}

// ---- FreshendDaemon -------------------------------------------------------

ElementSet TestCatalog(size_t n) {
  ExperimentSpec spec;
  spec.num_objects = n;
  spec.theta = 1.0;
  spec.seed = 99;
  return GenerateCatalog(spec).value();
}

FreshendDaemon::Options DaemonOptions(obs::MetricsRegistry* registry) {
  FreshendDaemon::Options options;
  options.loop.accesses_per_period = 50.0;
  options.loop.seed = 7;
  options.loop.registry = registry;
  options.registry = registry;
  return options;
}

TEST(FreshendDaemonTest, CreatePublishesInitialSnapshot) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(200), 50.0, DaemonOptions(&registry))
          .value();
  EXPECT_FALSE(daemon->running());
  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_TRUE(snapshot->CheckConsistent());

  // Before any period: nothing synced, published_at = 0 => everything is
  // trivially fresh with zero expected age.
  const FreshnessVerdict verdict = daemon->IsFresh(0).value();
  EXPECT_EQ(verdict.epoch, 1u);
  EXPECT_DOUBLE_EQ(verdict.fresh_probability, 1.0);
  EXPECT_TRUE(verdict.fresh);
  const AgeEstimate age = daemon->ExpectedAge(0).value();
  EXPECT_DOUBLE_EQ(age.expected_age, 0.0);
}

TEST(FreshendDaemonTest, RejectsBadOptionsAndBadIds) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.freshness_threshold = 1.5;
  EXPECT_FALSE(FreshendDaemon::Create(TestCatalog(10), 5.0, options).ok());

  auto daemon =
      FreshendDaemon::Create(TestCatalog(10), 5.0, DaemonOptions(&registry))
          .value();
  EXPECT_FALSE(daemon->IsFresh(10).ok());
  EXPECT_FALSE(daemon->ExpectedAge(999).ok());
  EXPECT_FALSE(daemon->GetPlan(10).ok());
}

TEST(FreshendDaemonTest, RunsPeriodsAndPublishesEachBoundary) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.max_periods = 4;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(200), 50.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  while (daemon->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon->Stop();
  EXPECT_EQ(daemon->PeriodsRun(), 4u);

  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  // Initial publish + one per period.
  EXPECT_EQ(snapshot->epoch(), 5u);
  EXPECT_DOUBLE_EQ(snapshot->stats().published_at, 4.0);
  EXPECT_TRUE(snapshot->CheckConsistent());

  // Something synced by now; its freshness math must be in range.
  bool found_synced = false;
  for (size_t i = 0; i < daemon->size() && !found_synced; ++i) {
    if (snapshot->Lookup(i).last_sync_time > 0.0) {
      found_synced = true;
      const FreshnessVerdict verdict = daemon->IsFresh(i).value();
      EXPECT_GT(verdict.fresh_probability, 0.0);
      EXPECT_LE(verdict.fresh_probability, 1.0);
      const AgeEstimate age = daemon->ExpectedAge(i).value();
      EXPECT_GE(age.expected_age, 0.0);
      EXPECT_LE(age.expected_age, age.elapsed + 1e-12);
    }
  }
  EXPECT_TRUE(found_synced);

  const DaemonStats stats = daemon->Stats();
  EXPECT_EQ(stats.periods, 4u);
  EXPECT_EQ(stats.store.publications, 5u);
  EXPECT_FALSE(stats.running);
}

// Delta publication: a delta-mode controller with a wide deadband never
// re-submits anything (beliefs drift inside the band), every boundary
// replan is a provable plan no-op, and the daemon skips the O(N) rebuild —
// only the initial publish is a full one. Synced shards still republish
// with their refreshed believed change rate.
TEST(FreshendDaemonTest, UnchangedPlansPublishOnlySyncedShards) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.loop.accesses_per_period = 0.0;  // Keep the learned profile flat.
  options.loop.controller.delta.enable = true;
  options.loop.controller.delta.threads = 1;
  options.loop.controller.delta.value_deadband = 50.0;
  options.max_periods = 4;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(100), 25.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  while (daemon->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon->Stop();

  // One full publish (the initial snapshot), four delta publishes.
  const double full = registry
                          .GetCounter("freshen_serve_publishes_total",
                                      {{"kind", "full"}})
                          ->value();
  const double delta = registry
                           .GetCounter("freshen_serve_publishes_total",
                                       {{"kind", "delta"}})
                           ->value();
  EXPECT_DOUBLE_EQ(full, 1.0);
  EXPECT_DOUBLE_EQ(delta, 4.0);

  // Epochs still advance once per boundary and the snapshot stays
  // consistent; synced shards carry fresh last-sync times.
  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot->epoch(), 5u);
  EXPECT_TRUE(snapshot->CheckConsistent());
  bool found_synced = false;
  for (size_t i = 0; i < daemon->size(); ++i) {
    if (snapshot->Lookup(i).last_sync_time > 0.0) found_synced = true;
  }
  EXPECT_TRUE(found_synced);
}

TEST(FreshendDaemonTest, StopIsIdempotentAndQueriesSurviveIt) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.max_periods = 2;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(50), 12.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  daemon->Stop();
  daemon->Stop();
  EXPECT_FALSE(daemon->running());
  EXPECT_TRUE(daemon->IsFresh(0).ok());
  EXPECT_TRUE(daemon->Stats().snapshot.epoch >= 1u);
}

TEST(FreshendDaemonTest, GetPlanExposesFrequencyAndShare) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(100), 25.0, DaemonOptions(&registry))
          .value();
  double total_share = 0.0;
  for (size_t i = 0; i < daemon->size(); ++i) {
    const PlanEntry entry = daemon->GetPlan(i).value();
    EXPECT_GE(entry.frequency, 0.0);
    if (entry.frequency > 0.0) {
      EXPECT_DOUBLE_EQ(entry.interval, 1.0 / entry.frequency);
    } else {
      EXPECT_TRUE(std::isinf(entry.interval));
    }
    total_share += entry.bandwidth_share;
  }
  // The plan respects the bandwidth budget (elements have size 1 here or
  // larger; the cold-start plan spends at most the budget).
  EXPECT_LE(total_share, 25.0 * (1.0 + 1e-9));
}

// ---- Protocol -------------------------------------------------------------

TEST(ProtocolTest, AnswersEveryVerb) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  ProtocolResponse response = HandleRequestLine(*daemon, "ISFRESH 3");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"cmd\":\"isfresh\""), std::string::npos);
  EXPECT_FALSE(response.close);

  response = HandleRequestLine(*daemon, "age 3");  // Case-insensitive.
  EXPECT_NE(response.line.find("\"expected_age\""), std::string::npos);

  response = HandleRequestLine(*daemon, "PLAN 0");
  EXPECT_NE(response.line.find("\"frequency\""), std::string::npos);

  response = HandleRequestLine(*daemon, "STATS");
  EXPECT_NE(response.line.find("\"epoch\":1"), std::string::npos);

  response = HandleRequestLine(*daemon, "PING");
  EXPECT_NE(response.line.find("\"cmd\":\"ping\""), std::string::npos);

  response = HandleRequestLine(*daemon, "QUIT");
  EXPECT_TRUE(response.close);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  for (const char* bad :
       {"", "   ", "FROB 1", "ISFRESH", "ISFRESH x", "ISFRESH -1",
        "ISFRESH 1 2 3", "AGE 99999"}) {
    const ProtocolResponse response = HandleRequestLine(*daemon, bad);
    EXPECT_NE(response.line.find("\"ok\":false"), std::string::npos)
        << "request: \"" << bad << "\" answered: " << response.line;
    EXPECT_FALSE(response.close);
  }
}

// ---- SlowQueryLog ---------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log({.capacity = 8, .threshold_seconds = 0.010});
  EXPECT_FALSE(log.Record("PING", "ping", 0.001, 1.0));
  EXPECT_TRUE(log.Record("STATS", "stats", 0.050, 2.0));
  EXPECT_EQ(log.total_recorded(), 1u);
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].command, "stats");
  EXPECT_DOUBLE_EQ(entries[0].seconds, 0.050);
}

TEST(SlowQueryLogTest, RingOverwritesOldestAndListsNewestFirst) {
  SlowQueryLog log({.capacity = 3, .threshold_seconds = 0.0});
  for (int i = 1; i <= 5; ++i) {
    log.Record("CMD " + std::to_string(i), "cmd", 0.001 * i, i);
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Newest first: ids 5, 4, 3; 1 and 2 were overwritten.
  EXPECT_EQ(entries[0].id, 5u);
  EXPECT_EQ(entries[1].id, 4u);
  EXPECT_EQ(entries[2].id, 3u);
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.total_recorded(), 5u);  // Totals survive a clear.
}

TEST(SlowQueryLogTest, TruncatesOversizedRequests) {
  SlowQueryLog log({.capacity = 2, .threshold_seconds = 0.0});
  log.Record(std::string(1000, 'x'), "unknown", 0.001, 1.0);
  const std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].request.size(), 128u);
}

// ---- Admin telemetry protocol --------------------------------------------

TEST(ProtocolTest, MetricsRoundTripsJsonAndProm) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();

  ProtocolResponse response = HandleRequestLine(*daemon, "METRICS");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"format\":\"json\""), std::string::npos);
  EXPECT_NE(response.line.find("\"series\":"), std::string::npos);
  // The embedded payload is the registry's JSON document inlined: it must
  // carry the build-info gauge and no raw newlines (single-line protocol).
  EXPECT_NE(response.line.find("\"payload\":{\"metrics\":["),
            std::string::npos);
  EXPECT_NE(response.line.find("freshen_build_info"), std::string::npos);
  EXPECT_EQ(response.line.find('\n'), std::string::npos);

  response = HandleRequestLine(*daemon, "METRICS prom");
  EXPECT_NE(response.line.find("\"format\":\"prom\""), std::string::npos);
  // Prometheus text is newline-separated; embedded it must be escaped.
  EXPECT_NE(response.line.find("\\n"), std::string::npos);
  EXPECT_EQ(response.line.find('\n'), std::string::npos);
  EXPECT_NE(response.line.find("# TYPE"), std::string::npos);

  response = HandleRequestLine(*daemon, "METRICS xml");
  EXPECT_NE(response.line.find("\"ok\":false"), std::string::npos);
}

TEST(ProtocolTest, HealthReportsHealthyDaemon) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  const ProtocolResponse response = HandleRequestLine(*daemon, "HEALTH");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.line.find("\"slo_state\":\"ok\""), std::string::npos);
  EXPECT_NE(response.line.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(response.line.find("\"rejected_connections\":0"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"overflow_disconnects\":0"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"recorder_dropped\":"), std::string::npos);
  EXPECT_NE(response.line.find("\"drift_replan_recommended\":false"),
            std::string::npos);
}

TEST(ProtocolTest, HealthDegradesOnSaturationCounters) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  registry.GetCounter("freshen_serve_rejected_total")->Increment();
  const ProtocolResponse response = HandleRequestLine(*daemon, "HEALTH");
  EXPECT_NE(response.line.find("\"status\":\"degraded\""),
            std::string::npos);
}

TEST(ProtocolTest, SloReportsStateWindowsAndDrift) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  const ProtocolResponse response = HandleRequestLine(*daemon, "SLO");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"state\":\"ok\""), std::string::npos);
  EXPECT_NE(response.line.find("\"objective\":"), std::string::npos);
  EXPECT_NE(response.line.find("\"fast\":{\"window_periods\":"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"slow\":{\"window_periods\":"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"budget_remaining\":"), std::string::npos);
  // Drift detection is on by default, so the report embeds its state.
  EXPECT_NE(response.line.find("\"drift\":{\"aggregate_score\":"),
            std::string::npos);
}

TEST(ProtocolTest, SloErrorsWhenMonitorDisabled) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.enable_slo = false;
  options.enable_drift = false;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, options).value();
  const ProtocolResponse response = HandleRequestLine(*daemon, "SLO");
  EXPECT_NE(response.line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.line.find("not enabled"), std::string::npos);
  // HEALTH still answers, with the SLO fields nulled out.
  const ProtocolResponse health = HandleRequestLine(*daemon, "HEALTH");
  EXPECT_NE(health.line.find("\"slo_state\":null"), std::string::npos);
  EXPECT_NE(health.line.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ProtocolTest, SlowlogCapturesCommandsNewestFirst) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.slowlog.threshold_seconds = 0.0;  // Log every command.
  options.slowlog.capacity = 4;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, options).value();
  HandleRequestLine(*daemon, "PING");
  HandleRequestLine(*daemon, "ISFRESH 3");
  const ProtocolResponse response = HandleRequestLine(*daemon, "SLOWLOG");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"threshold_seconds\":0"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"capacity\":4"), std::string::npos);
  // Newest first: the most recent entry before SLOWLOG is ISFRESH.
  const size_t isfresh = response.line.find("\"request\":\"ISFRESH 3\"");
  const size_t ping = response.line.find("\"request\":\"PING\"");
  EXPECT_NE(isfresh, std::string::npos);
  EXPECT_NE(ping, std::string::npos);
  EXPECT_LT(isfresh, ping);
  // The SLOWLOG command itself was recorded too (after answering).
  EXPECT_GE(daemon->slow_log()->total_recorded(), 3u);
}

TEST(ProtocolTest, WatchAcksValidRequestsAndRejectsMalformed) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  ProtocolResponse response = HandleRequestLine(*daemon, "WATCH 0.5 3");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"interval_seconds\":0.5"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"count\":3"), std::string::npos);
  EXPECT_DOUBLE_EQ(response.watch_interval_seconds, 0.5);
  EXPECT_EQ(response.watch_count, 3u);
  EXPECT_FALSE(response.close);

  response = HandleRequestLine(*daemon, "WATCH 2");
  EXPECT_DOUBLE_EQ(response.watch_interval_seconds, 2.0);
  EXPECT_EQ(response.watch_count, 0u);  // Unbounded.

  for (const char* bad : {"WATCH", "WATCH abc", "WATCH 0", "WATCH 1e9",
                          "WATCH 0.5 x", "WATCH 0.5 -1", "WATCH 1 2 3"}) {
    response = HandleRequestLine(*daemon, bad);
    EXPECT_NE(response.line.find("\"ok\":false"), std::string::npos)
        << "request: " << bad << " answered: " << response.line;
    EXPECT_DOUBLE_EQ(response.watch_interval_seconds, 0.0)
        << "request: " << bad;
  }
}

TEST(ProtocolTest, StatsCarriesUptimeAndBuildInfo) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  const ProtocolResponse response = HandleRequestLine(*daemon, "STATS");
  EXPECT_NE(response.line.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(response.line.find("\"build\":{\"version\":"),
            std::string::npos);
  EXPECT_NE(response.line.find("\"cxx_standard\":"), std::string::npos);
}

TEST(ProtocolTest, CommandLatencyHistogramPoolsUnknownVerbs) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  HandleRequestLine(*daemon, "PING");
  HandleRequestLine(*daemon, "FROB 1");
  HandleRequestLine(*daemon, "XYZZY");
  const size_t size_after_two_unknowns = registry.size();
  HandleRequestLine(*daemon, "ANOTHER_INVENTED_VERB");
  // Invented verbs pool under cmd="unknown": the registry must not grow.
  EXPECT_EQ(registry.size(), size_after_two_unknowns);
  EXPECT_EQ(registry
                .GetHistogram("freshen_serve_command_seconds",
                              obs::LatencySecondsBuckets(),
                              {{"cmd", "unknown"}})
                ->count(),
            3u);
  EXPECT_EQ(registry
                .GetHistogram("freshen_serve_command_seconds",
                              obs::LatencySecondsBuckets(), {{"cmd", "ping"}})
                ->count(),
            1u);
}

TEST(ProtocolTest, FormatWatchSampleIsOneJsonLine) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  const std::string sample = FormatWatchSample(*daemon, 7);
  EXPECT_NE(sample.find("\"cmd\":\"watch_sample\""), std::string::npos);
  EXPECT_NE(sample.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(sample.find("\"slo_state\":\"ok\""), std::string::npos);
  EXPECT_NE(sample.find("\"drift_score\":"), std::string::npos);
  EXPECT_EQ(sample.find('\n'), std::string::npos);
}

// ---- WATCH over a live socket --------------------------------------------

int ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WriteLine(int fd, const std::string& line) {
  std::string out = line + "\n";
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t n = ::write(fd, out.data() + written, out.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool ReadLine(int fd, std::string* line) {
  line->clear();
  char ch;
  for (;;) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (ch == '\n') return true;
    line->push_back(ch);
  }
}

TEST(LineServerTest, WatchStreamsCountSamplesThenEnds) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  options.socket_path = testing::TempDir() + "serve_test_watch.sock";
  options.registry = &registry;
  auto server = LineServer::Start(daemon.get(), options).value();

  const int client = ConnectUnix(options.socket_path);
  ASSERT_GE(client, 0);
  ASSERT_TRUE(WriteLine(client, "WATCH 0.01 3"));
  std::string line;
  ASSERT_TRUE(ReadLine(client, &line));  // The ack.
  EXPECT_NE(line.find("\"cmd\":\"watch\""), std::string::npos);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(ReadLine(client, &line)) << "sample " << seq;
    EXPECT_NE(line.find("\"cmd\":\"watch_sample\""), std::string::npos);
    EXPECT_NE(line.find("\"seq\":" + std::to_string(seq)),
              std::string::npos);
  }
  ASSERT_TRUE(ReadLine(client, &line));
  EXPECT_NE(line.find("\"cmd\":\"watch_end\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"count\""), std::string::npos);

  // The stream ended cleanly: the same connection answers again.
  ASSERT_TRUE(WriteLine(client, "PING"));
  ASSERT_TRUE(ReadLine(client, &line));
  EXPECT_NE(line.find("\"cmd\":\"ping\""), std::string::npos);
  WriteLine(client, "QUIT");
  ::close(client);
  server->Stop();
}

TEST(LineServerTest, WatchAnyClientInputEndsTheStream) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  options.socket_path = testing::TempDir() + "serve_test_watch_stop.sock";
  options.registry = &registry;
  auto server = LineServer::Start(daemon.get(), options).value();

  const int client = ConnectUnix(options.socket_path);
  ASSERT_GE(client, 0);
  ASSERT_TRUE(WriteLine(client, "WATCH 60"));  // Unbounded, slow cadence.
  std::string line;
  ASSERT_TRUE(ReadLine(client, &line));  // Ack.
  // Client-side cancel: any input ends the stream with reason "client",
  // and the pipelined request is answered afterwards.
  ASSERT_TRUE(WriteLine(client, "PING"));
  ASSERT_TRUE(ReadLine(client, &line));
  EXPECT_NE(line.find("\"cmd\":\"watch_end\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"client\""), std::string::npos);
  ASSERT_TRUE(ReadLine(client, &line));
  EXPECT_NE(line.find("\"cmd\":\"ping\""), std::string::npos);
  WriteLine(client, "QUIT");
  ::close(client);
  server->Stop();
}

TEST(LineServerTest, WatchClientDisconnectLeavesServerHealthy) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  options.socket_path = testing::TempDir() + "serve_test_watch_drop.sock";
  options.registry = &registry;
  auto server = LineServer::Start(daemon.get(), options).value();

  const int client = ConnectUnix(options.socket_path);
  ASSERT_GE(client, 0);
  ASSERT_TRUE(WriteLine(client, "WATCH 0.01"));  // Unbounded stream.
  std::string line;
  ASSERT_TRUE(ReadLine(client, &line));  // Ack.
  ASSERT_TRUE(ReadLine(client, &line));  // At least one sample arrives.
  EXPECT_NE(line.find("\"cmd\":\"watch_sample\""), std::string::npos);
  ::close(client);  // Vanish mid-stream.

  // The server must shrug it off and keep serving new connections.
  const int second = ConnectUnix(options.socket_path);
  ASSERT_GE(second, 0);
  ASSERT_TRUE(WriteLine(second, "HEALTH"));
  ASSERT_TRUE(ReadLine(second, &line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  WriteLine(second, "QUIT");
  ::close(second);
  server->Stop();
  EXPECT_GE(server->stats().accepted, 2u);
}

// ---- LineServer shutdown ordering ----------------------------------------

TEST(LineServerTest, StartStopWithoutTrafficIsClean) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  options.socket_path = testing::TempDir() + "serve_test_clean.sock";
  options.registry = &registry;
  auto server = LineServer::Start(daemon.get(), options).value();
  EXPECT_TRUE(server->running());
  server->Stop();
  EXPECT_FALSE(server->running());
  server->Stop();  // Idempotent.
}

TEST(LineServerTest, RejectsBadOptions) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  EXPECT_FALSE(LineServer::Start(daemon.get(), options).ok());
  options.socket_path = "x";
  EXPECT_FALSE(LineServer::Start(nullptr, options).ok());
  options.socket_path = std::string(200, 'a');
  EXPECT_FALSE(LineServer::Start(daemon.get(), options).ok());
}

}  // namespace
}  // namespace serve
}  // namespace freshen
