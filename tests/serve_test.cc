// Tests for the freshend serving subsystem: epoch-based reclamation,
// snapshot building with structural sharing, the lock-free snapshot store,
// the daemon's query API, and the line protocol.
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch.h"
#include "obs/metrics.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "workload/generator.h"

namespace freshen {
namespace serve {
namespace {

// ---- EpochDomain ----------------------------------------------------------

TEST(EpochDomainTest, AdvanceOpensSuccessiveEpochs) {
  EpochDomain domain;
  EXPECT_EQ(domain.CurrentEpoch(), 0u);
  EXPECT_EQ(domain.Advance(), 1u);
  EXPECT_EQ(domain.Advance(), 2u);
  EXPECT_EQ(domain.CurrentEpoch(), 2u);
}

TEST(EpochDomainTest, PinReturnsCurrentEpochAndCounts) {
  EpochDomain domain;
  domain.Advance();
  EXPECT_EQ(domain.PinnedReaders(), 0u);
  const uint64_t pinned = domain.Pin();
  EXPECT_EQ(pinned, 1u);
  EXPECT_EQ(domain.PinnedReaders(), 1u);
  EXPECT_EQ(domain.MinPinnedEpoch(), 1u);
  domain.Unpin();
  EXPECT_EQ(domain.PinnedReaders(), 0u);
  EXPECT_EQ(domain.MinPinnedEpoch(), EpochDomain::kIdle);
}

TEST(EpochDomainTest, RetiredObjectSurvivesUntilReaderLeaves) {
  EpochDomain domain;
  domain.Advance();  // Epoch 1 current.
  const uint64_t pinned = domain.Pin();
  ASSERT_EQ(pinned, 1u);

  domain.Advance();  // Epoch 2; the epoch-1 object is superseded.
  bool freed = false;
  domain.Retire(1, [&freed] { freed = true; });
  EXPECT_EQ(domain.TryReclaim(), 0u);  // Reader still pinned at 1.
  EXPECT_FALSE(freed);

  domain.Unpin();
  EXPECT_EQ(domain.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
  EXPECT_EQ(domain.RetiredCount(), 0u);
}

TEST(EpochDomainTest, ReaderAtNewerEpochDoesNotProtectOlderGarbage) {
  EpochDomain domain;
  domain.Advance();  // 1
  domain.Advance();  // 2
  bool freed = false;
  domain.Retire(1, [&freed] { freed = true; });
  domain.Advance();           // 3
  const uint64_t pinned = domain.Pin();  // Pinned at 3.
  EXPECT_EQ(pinned, 3u);
  EXPECT_EQ(domain.TryReclaim(), 1u);  // 1 < 3: reclaimable.
  EXPECT_TRUE(freed);
  domain.Unpin();
}

TEST(EpochDomainTest, DrainAllFreesEverything) {
  EpochDomain domain;
  domain.Advance();
  int freed = 0;
  domain.Retire(1, [&freed] { ++freed; });
  domain.Advance();
  domain.Retire(2, [&freed] { ++freed; });
  EXPECT_EQ(domain.DrainAll(), 2u);
  EXPECT_EQ(freed, 2);
}

TEST(EpochDomainTest, EpochPinIsRaii) {
  EpochDomain domain;
  domain.Advance();
  {
    EpochPin pin(domain);
    EXPECT_EQ(pin.epoch(), 1u);
    EXPECT_EQ(domain.PinnedReaders(), 1u);
  }
  EXPECT_EQ(domain.PinnedReaders(), 0u);
}

TEST(EpochDomainTest, ManyThreadsPinConcurrently) {
  EpochDomain domain;
  domain.Advance();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<size_t> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 1000; ++i) {
        const uint64_t e = domain.Pin();
        if (e == 0 || e == EpochDomain::kIdle) failures.fetch_add(1);
        domain.Unpin();
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(domain.PinnedReaders(), 0u);
}

// ---- SnapshotBuilder ------------------------------------------------------

std::vector<double> Column(size_t n, double value) {
  return std::vector<double>(n, value);
}

TEST(SnapshotBuilderTest, FirstPublishRequiresMarkAllDirty) {
  SnapshotBuilder builder(100);
  const auto columns = Column(100, 1.0);
  auto result =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns);
  EXPECT_FALSE(result.ok());
}

TEST(SnapshotBuilderTest, PublishesConsistentSnapshot) {
  const size_t n = 10000;
  SnapshotBuilder builder(n);
  builder.MarkAllDirty();
  const auto columns = Column(n, 0.5);
  auto snapshot =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns)
          .value();
  EXPECT_EQ(snapshot->size(), n);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_TRUE(snapshot->CheckConsistent());
  const ElementView view = snapshot->Lookup(n - 1);
  EXPECT_DOUBLE_EQ(view.frequency, 0.5);
  EXPECT_DOUBLE_EQ(view.last_sync_time, 0.5);
}

TEST(SnapshotBuilderTest, CleanShardsAreSharedDirtyShardsRebuilt) {
  const size_t n = 20000;  // Several shards at the 4096 grain.
  SnapshotBuilder builder(n);
  ASSERT_GT(builder.NumShards(), 2u);
  builder.MarkAllDirty();
  auto columns = Column(n, 1.0);
  auto first =
      builder.Publish(1, 0, 0.0, columns, columns, columns, columns, columns)
          .value();

  // Touch exactly one element; only its shard should rebuild.
  columns[0] = 2.0;
  builder.MarkDirty(0);
  EXPECT_EQ(builder.DirtyShards(), 1u);
  auto second =
      builder.Publish(2, 0, 1.0, columns, columns, columns, columns, columns)
          .value();

  EXPECT_EQ(second->stats().shards_rebuilt, 1u);
  EXPECT_NE(first->shards()[0].get(), second->shards()[0].get());
  for (size_t s = 1; s < first->shards().size(); ++s) {
    EXPECT_EQ(first->shards()[s].get(), second->shards()[s].get())
        << "shard " << s << " should be structurally shared";
  }
  EXPECT_TRUE(second->CheckConsistent());
  EXPECT_DOUBLE_EQ(second->Lookup(0).frequency, 2.0);
  // The first snapshot is untouched by the second publication.
  EXPECT_TRUE(first->CheckConsistent());
  EXPECT_DOUBLE_EQ(first->Lookup(0).frequency, 1.0);
  EXPECT_NE(first->combined_digest(), second->combined_digest());
}

// ---- SnapshotStore --------------------------------------------------------

std::shared_ptr<const ServeSnapshot> MakeSnapshot(SnapshotBuilder& builder,
                                                  uint64_t epoch, size_t n,
                                                  double value) {
  builder.MarkAllDirty();
  const auto columns = Column(n, value);
  return builder
      .Publish(epoch, 0, 0.0, columns, columns, columns, columns, columns)
      .value();
}

TEST(SnapshotStoreTest, EmptyBeforeFirstPublish) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotRef ref = store.Acquire();
  EXPECT_FALSE(ref);
}

TEST(SnapshotStoreTest, PublishThenAcquire) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  EXPECT_EQ(store.Publish(MakeSnapshot(builder, 1, 64, 1.0)), 1u);
  SnapshotRef ref = store.Acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->epoch(), 1u);
  EXPECT_TRUE(ref->CheckConsistent());
}

TEST(SnapshotStoreTest, HeldRefDelaysReclamation) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  store.Publish(MakeSnapshot(builder, 1, 64, 1.0));
  SnapshotRef held = store.Acquire();
  ASSERT_TRUE(held);

  store.Publish(MakeSnapshot(builder, 2, 64, 2.0));
  StoreStats stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 1u);
  EXPECT_EQ(stats.snapshots_reclaimed, 0u);
  EXPECT_EQ(stats.retired_pending, 1u);
  // The held ref still reads the old snapshot, consistently.
  EXPECT_EQ(held->epoch(), 1u);
  EXPECT_DOUBLE_EQ(held->Lookup(0).frequency, 1.0);
  EXPECT_TRUE(held->CheckConsistent());

  held = SnapshotRef();  // Release; next publication reclaims.
  store.Publish(MakeSnapshot(builder, 3, 64, 3.0));
  stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 2u);
  EXPECT_GE(stats.snapshots_reclaimed, 1u);
}

TEST(SnapshotStoreTest, DrainReclaimsEverything) {
  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(64);
  for (uint64_t e = 1; e <= 5; ++e) {
    store.Publish(MakeSnapshot(builder, e, 64, static_cast<double>(e)));
  }
  store.Drain();
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.snapshots_retired, 4u);
  EXPECT_EQ(stats.snapshots_reclaimed, 4u);
  EXPECT_EQ(stats.retired_pending, 0u);
}

// ---- FreshendDaemon -------------------------------------------------------

ElementSet TestCatalog(size_t n) {
  ExperimentSpec spec;
  spec.num_objects = n;
  spec.theta = 1.0;
  spec.seed = 99;
  return GenerateCatalog(spec).value();
}

FreshendDaemon::Options DaemonOptions(obs::MetricsRegistry* registry) {
  FreshendDaemon::Options options;
  options.loop.accesses_per_period = 50.0;
  options.loop.seed = 7;
  options.loop.registry = registry;
  options.registry = registry;
  return options;
}

TEST(FreshendDaemonTest, CreatePublishesInitialSnapshot) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(200), 50.0, DaemonOptions(&registry))
          .value();
  EXPECT_FALSE(daemon->running());
  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot->epoch(), 1u);
  EXPECT_TRUE(snapshot->CheckConsistent());

  // Before any period: nothing synced, published_at = 0 => everything is
  // trivially fresh with zero expected age.
  const FreshnessVerdict verdict = daemon->IsFresh(0).value();
  EXPECT_EQ(verdict.epoch, 1u);
  EXPECT_DOUBLE_EQ(verdict.fresh_probability, 1.0);
  EXPECT_TRUE(verdict.fresh);
  const AgeEstimate age = daemon->ExpectedAge(0).value();
  EXPECT_DOUBLE_EQ(age.expected_age, 0.0);
}

TEST(FreshendDaemonTest, RejectsBadOptionsAndBadIds) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.freshness_threshold = 1.5;
  EXPECT_FALSE(FreshendDaemon::Create(TestCatalog(10), 5.0, options).ok());

  auto daemon =
      FreshendDaemon::Create(TestCatalog(10), 5.0, DaemonOptions(&registry))
          .value();
  EXPECT_FALSE(daemon->IsFresh(10).ok());
  EXPECT_FALSE(daemon->ExpectedAge(999).ok());
  EXPECT_FALSE(daemon->GetPlan(10).ok());
}

TEST(FreshendDaemonTest, RunsPeriodsAndPublishesEachBoundary) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.max_periods = 4;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(200), 50.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  while (daemon->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon->Stop();
  EXPECT_EQ(daemon->PeriodsRun(), 4u);

  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  // Initial publish + one per period.
  EXPECT_EQ(snapshot->epoch(), 5u);
  EXPECT_DOUBLE_EQ(snapshot->stats().published_at, 4.0);
  EXPECT_TRUE(snapshot->CheckConsistent());

  // Something synced by now; its freshness math must be in range.
  bool found_synced = false;
  for (size_t i = 0; i < daemon->size() && !found_synced; ++i) {
    if (snapshot->Lookup(i).last_sync_time > 0.0) {
      found_synced = true;
      const FreshnessVerdict verdict = daemon->IsFresh(i).value();
      EXPECT_GT(verdict.fresh_probability, 0.0);
      EXPECT_LE(verdict.fresh_probability, 1.0);
      const AgeEstimate age = daemon->ExpectedAge(i).value();
      EXPECT_GE(age.expected_age, 0.0);
      EXPECT_LE(age.expected_age, age.elapsed + 1e-12);
    }
  }
  EXPECT_TRUE(found_synced);

  const DaemonStats stats = daemon->Stats();
  EXPECT_EQ(stats.periods, 4u);
  EXPECT_EQ(stats.store.publications, 5u);
  EXPECT_FALSE(stats.running);
}

// Delta publication: a delta-mode controller with a wide deadband never
// re-submits anything (beliefs drift inside the band), every boundary
// replan is a provable plan no-op, and the daemon skips the O(N) rebuild —
// only the initial publish is a full one. Synced shards still republish
// with their refreshed believed change rate.
TEST(FreshendDaemonTest, UnchangedPlansPublishOnlySyncedShards) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.loop.accesses_per_period = 0.0;  // Keep the learned profile flat.
  options.loop.controller.delta.enable = true;
  options.loop.controller.delta.threads = 1;
  options.loop.controller.delta.value_deadband = 50.0;
  options.max_periods = 4;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(100), 25.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  while (daemon->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon->Stop();

  // One full publish (the initial snapshot), four delta publishes.
  const double full = registry
                          .GetCounter("freshen_serve_publishes_total",
                                      {{"kind", "full"}})
                          ->value();
  const double delta = registry
                           .GetCounter("freshen_serve_publishes_total",
                                       {{"kind", "delta"}})
                           ->value();
  EXPECT_DOUBLE_EQ(full, 1.0);
  EXPECT_DOUBLE_EQ(delta, 4.0);

  // Epochs still advance once per boundary and the snapshot stays
  // consistent; synced shards carry fresh last-sync times.
  SnapshotRef snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(snapshot);
  EXPECT_EQ(snapshot->epoch(), 5u);
  EXPECT_TRUE(snapshot->CheckConsistent());
  bool found_synced = false;
  for (size_t i = 0; i < daemon->size(); ++i) {
    if (snapshot->Lookup(i).last_sync_time > 0.0) found_synced = true;
  }
  EXPECT_TRUE(found_synced);
}

TEST(FreshendDaemonTest, StopIsIdempotentAndQueriesSurviveIt) {
  obs::MetricsRegistry registry;
  auto options = DaemonOptions(&registry);
  options.max_periods = 2;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(50), 12.0, options).value();
  ASSERT_TRUE(daemon->Start().ok());
  daemon->Stop();
  daemon->Stop();
  EXPECT_FALSE(daemon->running());
  EXPECT_TRUE(daemon->IsFresh(0).ok());
  EXPECT_TRUE(daemon->Stats().snapshot.epoch >= 1u);
}

TEST(FreshendDaemonTest, GetPlanExposesFrequencyAndShare) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(100), 25.0, DaemonOptions(&registry))
          .value();
  double total_share = 0.0;
  for (size_t i = 0; i < daemon->size(); ++i) {
    const PlanEntry entry = daemon->GetPlan(i).value();
    EXPECT_GE(entry.frequency, 0.0);
    if (entry.frequency > 0.0) {
      EXPECT_DOUBLE_EQ(entry.interval, 1.0 / entry.frequency);
    } else {
      EXPECT_TRUE(std::isinf(entry.interval));
    }
    total_share += entry.bandwidth_share;
  }
  // The plan respects the bandwidth budget (elements have size 1 here or
  // larger; the cold-start plan spends at most the budget).
  EXPECT_LE(total_share, 25.0 * (1.0 + 1e-9));
}

// ---- Protocol -------------------------------------------------------------

TEST(ProtocolTest, AnswersEveryVerb) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  ProtocolResponse response = HandleRequestLine(*daemon, "ISFRESH 3");
  EXPECT_NE(response.line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.line.find("\"cmd\":\"isfresh\""), std::string::npos);
  EXPECT_FALSE(response.close);

  response = HandleRequestLine(*daemon, "age 3");  // Case-insensitive.
  EXPECT_NE(response.line.find("\"expected_age\""), std::string::npos);

  response = HandleRequestLine(*daemon, "PLAN 0");
  EXPECT_NE(response.line.find("\"frequency\""), std::string::npos);

  response = HandleRequestLine(*daemon, "STATS");
  EXPECT_NE(response.line.find("\"epoch\":1"), std::string::npos);

  response = HandleRequestLine(*daemon, "PING");
  EXPECT_NE(response.line.find("\"cmd\":\"ping\""), std::string::npos);

  response = HandleRequestLine(*daemon, "QUIT");
  EXPECT_TRUE(response.close);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  for (const char* bad :
       {"", "   ", "FROB 1", "ISFRESH", "ISFRESH x", "ISFRESH -1",
        "ISFRESH 1 2 3", "AGE 99999"}) {
    const ProtocolResponse response = HandleRequestLine(*daemon, bad);
    EXPECT_NE(response.line.find("\"ok\":false"), std::string::npos)
        << "request: \"" << bad << "\" answered: " << response.line;
    EXPECT_FALSE(response.close);
  }
}

// ---- LineServer shutdown ordering ----------------------------------------

TEST(LineServerTest, StartStopWithoutTrafficIsClean) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  options.socket_path = testing::TempDir() + "serve_test_clean.sock";
  options.registry = &registry;
  auto server = LineServer::Start(daemon.get(), options).value();
  EXPECT_TRUE(server->running());
  server->Stop();
  EXPECT_FALSE(server->running());
  server->Stop();  // Idempotent.
}

TEST(LineServerTest, RejectsBadOptions) {
  obs::MetricsRegistry registry;
  auto daemon =
      FreshendDaemon::Create(TestCatalog(20), 5.0, DaemonOptions(&registry))
          .value();
  LineServer::Options options;
  EXPECT_FALSE(LineServer::Start(daemon.get(), options).ok());
  options.socket_path = "x";
  EXPECT_FALSE(LineServer::Start(nullptr, options).ok());
  options.socket_path = std::string(200, 'a');
  EXPECT_FALSE(LineServer::Start(daemon.get(), options).ok());
}

}  // namespace
}  // namespace serve
}  // namespace freshen
