// Tests for the statistics substrate.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace freshen {
namespace {

TEST(KahanSumTest, CompensatesSmallTerms) {
  KahanSum acc;
  acc.Add(1.0);
  for (int i = 0; i < 10000000; ++i) acc.Add(1e-16);
  EXPECT_NEAR(acc.Total(), 1.0 + 1e-9, 1e-12);
  EXPECT_EQ(acc.Count(), 10000001u);
}

TEST(KahanSumTest, EmptyIsZero) {
  KahanSum acc;
  EXPECT_EQ(acc.Total(), 0.0);
  EXPECT_EQ(acc.Count(), 0u);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_EQ(stats.Count(), 8u);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.StdDev(), 0.0);
}

TEST(RunningStatsTest, StableUnderLargeOffset) {
  RunningStats stats;
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) stats.Add(x);
  EXPECT_NEAR(stats.Mean(), 1e9 + 10, 1e-3);
  EXPECT_NEAR(stats.Variance(), 30.0, 1e-6);
}

TEST(SumMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Sum({1.5, 2.5}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(HistogramTest, BinsAndOverflow) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);   // underflow
  hist.Add(0.0);    // bin 0
  hist.Add(1.99);   // bin 0
  hist.Add(2.0);    // bin 1
  hist.Add(9.99);   // bin 4
  hist.Add(10.0);   // overflow
  hist.Add(100.0);  // overflow
  EXPECT_EQ(hist.BinCount(0), 2u);
  EXPECT_EQ(hist.BinCount(1), 1u);
  EXPECT_EQ(hist.BinCount(4), 1u);
  EXPECT_EQ(hist.Underflow(), 1u);
  EXPECT_EQ(hist.Overflow(), 2u);
  EXPECT_EQ(hist.TotalCount(), 7u);
  EXPECT_DOUBLE_EQ(hist.BinLow(1), 2.0);
}

TEST(HistogramTest, ChiSquareIsSmallForMatchingDistribution) {
  Histogram hist(0.0, 1.0, 10);
  // 10,000 evenly spread points.
  for (int i = 0; i < 10000; ++i) hist.Add((i + 0.5) / 10000.0);
  const double chi2 = hist.ChiSquare(std::vector<double>(10, 0.1));
  EXPECT_LT(chi2, 1.0);  // Deterministic near-perfect fit.
}

TEST(HistogramTest, ChiSquareDetectsMismatch) {
  Histogram hist(0.0, 1.0, 2);
  for (int i = 0; i < 1000; ++i) hist.Add(0.25);  // Everything in bin 0.
  const double chi2 = hist.ChiSquare({0.5, 0.5});
  EXPECT_GT(chi2, 500.0);
}

TEST(HistogramTest, ToStringMentionsCounts) {
  Histogram hist(0.0, 1.0, 2);
  hist.Add(0.1);
  const std::string text = hist.ToString();
  EXPECT_NE(text.find("[0, 0.5): 1"), std::string::npos);
}

}  // namespace
}  // namespace freshen
