// Tests for the freshen::obs subsystem: registry semantics, concurrent
// updates, span nesting, exporter golden output, and the end-to-end
// "OnlineFreshenLoop run exports everything operators need" guarantee.
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mirror/online_loop.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace freshen {
namespace {

using obs::Labels;
using obs::MetricsRegistry;

TEST(MetricsRegistryTest, SameSeriesReturnsSamePointer) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("freshen_test_total");
  obs::Counter* b = registry.GetCounter("freshen_test_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);

  // Different labels are a different series; label order is irrelevant.
  obs::Counter* labelled = registry.GetCounter(
      "freshen_test_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_NE(labelled, a);
  EXPECT_EQ(labelled, registry.GetCounter("freshen_test_total",
                                          {{"b", "2"}, {"a", "1"}}));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, CounterGaugeSemantics) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  counter->Increment();
  counter->Add(2.5);
  EXPECT_DOUBLE_EQ(counter->value(), 3.5);

  obs::Gauge* gauge = registry.GetGauge("g");
  gauge->Set(7.0);
  gauge->Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), -1.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAreInclusiveUpperEdges) {
  MetricsRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("h", {1.0, 2.0});
  histogram->Record(0.5);   // <= 1 -> bucket 0.
  histogram->Record(1.0);   // == edge -> bucket 0 (inclusive).
  histogram->Record(1.5);   // bucket 1.
  histogram->Record(99.0);  // overflow bucket.
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 102.0);
}

TEST(MetricsRegistryTest, BucketHelpers) {
  const std::vector<double> exp = obs::ExponentialBuckets(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const std::vector<double> lin = obs::LinearBuckets(0.0, 5.0, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.0, 5.0, 10.0}));
  EXPECT_TRUE(std::is_sorted(obs::LatencySecondsBuckets().begin(),
                             obs::LatencySecondsBuckets().end()));
  EXPECT_TRUE(std::is_sorted(obs::IterationCountBuckets().begin(),
                             obs::IterationCountBuckets().end()));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Histogram* histogram =
      registry.GetHistogram("h", obs::LinearBuckets(0.0, 1.0, 8));
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        histogram->Record(static_cast<double>(t % 4));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(counter->value(),
                   static_cast<double>(kThreads) * kIncrements);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, histogram->count());
}

TEST(MetricsRegistryTest, DisabledRegistryDropsUpdatesAndResetKeepsHandles) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Gauge* gauge = registry.GetGauge("g");
  obs::Histogram* histogram = registry.GetHistogram("h", {1.0});

  registry.set_enabled(false);
  counter->Increment();
  gauge->Set(3.0);
  histogram->Record(0.5);
  EXPECT_DOUBLE_EQ(counter->value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);

  registry.set_enabled(true);
  counter->Add(5.0);
  EXPECT_DOUBLE_EQ(counter->value(), 5.0);
  registry.Reset();
  // Cached handles stay valid and usable after Reset.
  EXPECT_DOUBLE_EQ(counter->value(), 0.0);
  counter->Increment();
  EXPECT_DOUBLE_EQ(counter->value(), 1.0);
}

TEST(MetricsRegistryTest, SnapshotFind) {
  MetricsRegistry registry;
  registry.GetCounter("a", {{"k", "v"}})->Add(2.0);
  registry.GetGauge("b")->Set(1.0);
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_NE(snapshot.Find("a"), nullptr);
  EXPECT_EQ(snapshot.Find("a")->kind, obs::MetricKind::kCounter);
  ASSERT_NE(snapshot.Find("a", {{"k", "v"}}), nullptr);
  EXPECT_EQ(snapshot.Find("a", {{"k", "other"}}), nullptr);
  EXPECT_EQ(snapshot.Find("missing"), nullptr);
}

TEST(ScopedSpanTest, NestedSpansBuildHierarchicalPaths) {
  MetricsRegistry registry;
  EXPECT_EQ(obs::CurrentSpanPath(), "");
  {
    obs::ScopedSpan outer("replan", registry);
    EXPECT_EQ(outer.path(), "replan");
    EXPECT_EQ(obs::CurrentSpanPath(), "replan");
    {
      obs::ScopedSpan middle("solve", registry);
      EXPECT_EQ(middle.path(), "replan/solve");
      obs::ScopedSpan inner("kkt_verify", registry);
      EXPECT_EQ(inner.path(), "replan/solve/kkt_verify");
      EXPECT_EQ(obs::CurrentSpanPath(), "replan/solve/kkt_verify");
    }
    EXPECT_EQ(obs::CurrentSpanPath(), "replan");
  }
  EXPECT_EQ(obs::CurrentSpanPath(), "");

  // Every close recorded one observation under its full path.
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  for (const char* path : {"replan", "replan/solve",
                           "replan/solve/kkt_verify"}) {
    const obs::MetricSample* sample =
        snapshot.Find(obs::kSpanHistogramName, {{"span", path}});
    ASSERT_NE(sample, nullptr) << path;
    EXPECT_EQ(sample->count, 1u) << path;
  }
}

TEST(ScopedSpanTest, SpanStacksArePerThread) {
  MetricsRegistry registry;
  obs::ScopedSpan outer("main_thread", registry);
  std::string other_thread_path;
  std::thread worker([&] {
    obs::ScopedSpan span("worker", registry);
    other_thread_path = span.path();
  });
  worker.join();
  // The worker's span did not nest under this thread's open span.
  EXPECT_EQ(other_thread_path, "worker");
}

// A small fixed registry whose export output is compared byte-for-byte.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry* const registry = [] {
    auto* r = new MetricsRegistry();
    r->GetHistogram("freshen_test_latency", {1.0, 2.0});
    r->GetHistogram("freshen_test_latency", {1.0, 2.0})->Record(0.5);
    r->GetHistogram("freshen_test_latency", {1.0, 2.0})->Record(1.5);
    r->GetHistogram("freshen_test_latency", {1.0, 2.0})->Record(5.0);
    r->GetCounter("freshen_test_requests_total", {{"kind", "unit"}})
        ->Add(3.0);
    r->GetGauge("freshen_test_temperature")->Set(1.5);
    return r;
  }();
  return *registry;
}

TEST(ExportTest, JsonGolden) {
  const std::string expected = R"({"metrics":[
  {"name":"freshen_test_latency","type":"histogram","labels":{},"count":3,"sum":7,"buckets":[{"le":"1","count":1},{"le":"2","count":2},{"le":"+Inf","count":3}]},
  {"name":"freshen_test_requests_total","type":"counter","labels":{"kind":"unit"},"value":3},
  {"name":"freshen_test_temperature","type":"gauge","labels":{},"value":1.5}
]}
)";
  EXPECT_EQ(obs::FormatJson(GoldenRegistry().Snapshot()), expected);
}

TEST(ExportTest, PrometheusGolden) {
  const std::string expected =
      "# TYPE freshen_test_latency histogram\n"
      "freshen_test_latency_bucket{le=\"1\"} 1\n"
      "freshen_test_latency_bucket{le=\"2\"} 2\n"
      "freshen_test_latency_bucket{le=\"+Inf\"} 3\n"
      "freshen_test_latency_sum 7\n"
      "freshen_test_latency_count 3\n"
      "# TYPE freshen_test_requests_total counter\n"
      "freshen_test_requests_total{kind=\"unit\"} 3\n"
      "# TYPE freshen_test_temperature gauge\n"
      "freshen_test_temperature 1.5\n";
  EXPECT_EQ(obs::FormatPrometheus(GoldenRegistry().Snapshot()), expected);
}

// Prometheus exposition conformance for histograms: buckets are cumulative
// and non-decreasing, and the +Inf bucket equals the series' _count — the
// invariant scrape pipelines (and recording rules computing quantiles)
// assume. Known-answer over the golden registry's text output.
TEST(ExportTest, PrometheusHistogramBucketsConformToExposition) {
  const std::string text =
      obs::FormatPrometheus(GoldenRegistry().Snapshot());
  std::istringstream lines(text);
  std::string line;
  uint64_t last_cumulative = 0;
  uint64_t inf_bucket = 0;
  uint64_t count_value = 0;
  bool saw_inf = false;
  bool saw_count = false;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const uint64_t value = std::strtoull(line.c_str() + space + 1,
                                         nullptr, 10);
    if (line.rfind("freshen_test_latency_bucket", 0) == 0) {
      EXPECT_GE(value, last_cumulative) << "buckets must be cumulative";
      last_cumulative = value;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket = value;
        saw_inf = true;
      }
    } else if (line.rfind("freshen_test_latency_count", 0) == 0) {
      count_value = value;
      saw_count = true;
    }
  }
  ASSERT_TRUE(saw_inf);
  ASSERT_TRUE(saw_count);
  EXPECT_EQ(inf_bucket, count_value);
}

// The same invariant under a write race: Record() bumps buckets, then the
// count, then the sum, so a snapshot taken mid-record could once report
// _count > the +Inf bucket. Snapshot() now derives the count from the
// copied buckets; hammer it concurrently and verify every sample agrees.
TEST(MetricsRegistryTest, SnapshotHistogramCountMatchesBucketsUnderRace) {
  MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("h", obs::LinearBuckets(0.0, 1.0, 4));
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        histogram->Record(static_cast<double>((i++ + t) % 6));
      }
    });
  }
  for (int round = 0; round < 2000; ++round) {
    const obs::RegistrySnapshot snapshot = registry.Snapshot();
    const obs::MetricSample* sample = snapshot.Find("h");
    ASSERT_NE(sample, nullptr);
    uint64_t bucket_total = 0;
    for (uint64_t c : sample->bucket_counts) bucket_total += c;
    EXPECT_EQ(sample->count, bucket_total)
        << "+Inf bucket must equal _count in every snapshot";
  }
  done.store(true, std::memory_order_release);
  for (std::thread& writer : writers) writer.join();
}

TEST(ExportTest, CsvGolden) {
  const std::string expected =
      "metric,labels,type,value,count,sum\n"
      "freshen_test_latency,,histogram,,3,7\n"
      "freshen_test_requests_total,kind=unit,counter,3,,\n"
      "freshen_test_temperature,,gauge,1.5,,\n";
  EXPECT_EQ(obs::FormatCsv(GoldenRegistry().Snapshot()), expected);
}

TEST(ExportTest, SinksWriteTheirFormat) {
  std::ostringstream json_out;
  std::ostringstream prom_out;
  std::ostringstream csv_out;
  obs::JsonSink json_sink(json_out);
  obs::PrometheusSink prom_sink(prom_out);
  obs::CsvSink csv_sink(csv_out);
  obs::NullSink null_sink;
  const obs::RegistrySnapshot snapshot = GoldenRegistry().Snapshot();
  EXPECT_TRUE(json_sink.Export(snapshot).ok());
  EXPECT_TRUE(prom_sink.Export(snapshot).ok());
  EXPECT_TRUE(csv_sink.Export(snapshot).ok());
  EXPECT_TRUE(null_sink.Export(snapshot).ok());
  EXPECT_EQ(json_out.str(), obs::FormatJson(snapshot));
  EXPECT_EQ(prom_out.str(), obs::FormatPrometheus(snapshot));
  EXPECT_EQ(csv_out.str(), obs::FormatCsv(snapshot));

  // MetricsSink is the pluggable seam: any sink consumes any snapshot.
  obs::MetricsSink* sink = &json_sink;
  EXPECT_TRUE(sink->Export(snapshot).ok());
}

// Acceptance: one full OnlineFreshenLoop run must export, at minimum, the
// replan count + latency histogram, a solver iteration histogram, the
// sync/access counters, the bandwidth-spent counter, and the estimator
// lambda-error gauge.
TEST(ObsIntegrationTest, OnlineLoopRunExportsOperationalMetrics) {
  MetricsRegistry::Global().Reset();
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 60;
  spec.syncs_per_period = 30.0;
  const ElementSet truth = GenerateCatalog(spec).value();
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 1000.0;
  options.controller.prior_change_rate = 2.0;
  options.seed = 4;
  auto loop = OnlineFreshenLoop::Create(truth, 30.0, options).value();
  for (int period = 0; period < 3; ++period) loop.RunPeriod();

  const obs::RegistrySnapshot snapshot = loop.SnapshotMetrics();
  const obs::MetricSample* replans =
      snapshot.Find("freshen_adaptive_replans_total");
  ASSERT_NE(replans, nullptr);
  EXPECT_GE(replans->value, 3.0);  // Initial plan + one per period.

  const obs::MetricSample* replan_latency =
      snapshot.Find("freshen_adaptive_replan_seconds");
  ASSERT_NE(replan_latency, nullptr);
  EXPECT_EQ(replan_latency->kind, obs::MetricKind::kHistogram);
  EXPECT_GE(replan_latency->count, 3u);

  const obs::MetricSample* solver_iterations = snapshot.Find(
      "freshen_solver_iterations", {{"solver", "water_filling"}});
  ASSERT_NE(solver_iterations, nullptr);
  EXPECT_EQ(solver_iterations->kind, obs::MetricKind::kHistogram);
  EXPECT_GE(solver_iterations->count, 3u);
  EXPECT_GT(solver_iterations->sum, 0.0);

  const obs::MetricSample* syncs =
      snapshot.Find("freshen_mirror_syncs_total");
  ASSERT_NE(syncs, nullptr);
  EXPECT_GT(syncs->value, 0.0);
  const obs::MetricSample* accesses =
      snapshot.Find("freshen_mirror_accesses_total");
  ASSERT_NE(accesses, nullptr);
  EXPECT_GT(accesses->value, 0.0);
  const obs::MetricSample* bandwidth =
      snapshot.Find("freshen_mirror_bandwidth_spent_total");
  ASSERT_NE(bandwidth, nullptr);
  EXPECT_GT(bandwidth->value, 0.0);
  const obs::MetricSample* lambda_error =
      snapshot.Find("freshen_mirror_lambda_error");
  ASSERT_NE(lambda_error, nullptr);
  EXPECT_GT(lambda_error->value, 0.0);

  // The span hierarchy is visible in the export: the initial plan solved
  // outside any period ("replan/solve"), while every boundary replan nested
  // under the running period ("period/replan/solve").
  const obs::MetricSample* initial_solve =
      snapshot.Find(obs::kSpanHistogramName, {{"span", "replan/solve"}});
  ASSERT_NE(initial_solve, nullptr);
  EXPECT_EQ(initial_solve->count, 1u);
  const obs::MetricSample* period_solve = snapshot.Find(
      obs::kSpanHistogramName, {{"span", "period/replan/solve"}});
  ASSERT_NE(period_solve, nullptr);
  EXPECT_GE(period_solve->count, 3u);

  // And all of it serializes in every wire format without dying.
  EXPECT_FALSE(obs::FormatJson(snapshot).empty());
  EXPECT_FALSE(obs::FormatPrometheus(snapshot).empty());
  EXPECT_FALSE(obs::FormatCsv(snapshot).empty());
}

// Regression: label values containing the k=v list's own separators (commas,
// quotes, equals) used to corrupt the CSV labels column. They must now be
// quoted/escaped, and TableWriter must still parse the whole row as one cell
// per column.
TEST(ExportTest, CsvLabelsSurviveSeparatorsInValues) {
  EXPECT_EQ(obs::CsvLabelEscape("plain"), "plain");
  EXPECT_EQ(obs::CsvLabelEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(obs::CsvLabelEscape("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(obs::CsvLabelEscape("k=v"), "\"k=v\"");
  EXPECT_EQ(obs::CsvLabelEscape("back\\slash"), "\"back\\\\slash\"");

  MetricsRegistry registry;
  registry.GetCounter("freshen_escape_total",
                      {{"source", "mirror,eu-west\"1\""}})
      ->Increment();
  const std::string csv = obs::FormatCsv(registry.Snapshot());
  // The labels cell is itself RFC-4180 quoted by TableWriter (it contains a
  // comma and quotes); after unquoting it must read as one k=v pair whose
  // value is the escaped original.
  EXPECT_NE(csv.find("source=\"\"mirror,eu-west\\\"\"1\\\"\"\"\""),
            std::string::npos)
      << csv;
  // The data row must still have exactly 6 columns: the embedded comma sits
  // inside a quoted cell, so exactly one extra comma shows up relative to a
  // plain-label row.
  const size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string row = csv.substr(header_end + 1);
  size_t commas = 0;
  bool in_quotes = false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i] == '"') in_quotes = !in_quotes;
    if (row[i] == ',' && !in_quotes) ++commas;
  }
  EXPECT_EQ(commas, 5u) << row;
}

// Un-escapes a Prometheus label value per the exposition format (the only
// escapes are \\, \", and \n).
std::string PromUnescapeLabelValue(const std::string& value) {
  std::string out;
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 1 < value.size()) {
      const char next = value[i + 1];
      if (next == '\\') {
        out += '\\';
        ++i;
        continue;
      }
      if (next == '"') {
        out += '"';
        ++i;
        continue;
      }
      if (next == 'n') {
        out += '\n';
        ++i;
        continue;
      }
    }
    out += value[i];
  }
  return out;
}

TEST(ExportTest, PromLabelEscapeRoundTrips) {
  const std::string cases[] = {
      "plain",
      "back\\slash",
      "say \"hi\"",
      "two\nlines",
      "tab\tand\rcr stay raw",
      "all: \\ \" \n together",
  };
  for (const std::string& original : cases) {
    const std::string escaped = obs::PromEscapeLabelValue(original);
    // The escaped form must never contain a raw newline (it would split the
    // series line) and must never use JSON-only escapes like \t.
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << original;
    EXPECT_EQ(escaped.find("\\t"), std::string::npos) << original;
    EXPECT_EQ(PromUnescapeLabelValue(escaped), original);
  }
}

// The Prometheus exporter must use the Prometheus escaper, not the JSON one:
// a tab in a label value passes through raw instead of becoming \t.
TEST(ExportTest, PrometheusSeriesUseExpositionEscapes) {
  MetricsRegistry registry;
  registry.GetGauge("freshen_escape_gauge", {{"path", "a\tb\nc\"d\\e"}})
      ->Set(1.0);
  const std::string prom = obs::FormatPrometheus(registry.Snapshot());
  EXPECT_NE(prom.find("path=\"a\tb\\nc\\\"d\\\\e\""), std::string::npos)
      << prom;
}

}  // namespace
}  // namespace freshen
