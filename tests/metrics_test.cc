// Tests for analytic metric evaluation (perceived/general freshness, age,
// bandwidth accounting).
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "model/freshness.h"
#include "model/metrics.h"

namespace freshen {
namespace {

TEST(PerceivedFreshnessTest, WeightsBySumOfAccessProbs) {
  const ElementSet elements = MakeElementSet({1.0, 1.0}, {0.9, 0.1});
  // Element 0 perfectly fresh (huge f), element 1 never synced.
  const double pf = PerceivedFreshness(elements, {1e12, 0.0});
  EXPECT_NEAR(pf, 0.9, 1e-9);
}

TEST(PerceivedFreshnessTest, UnaccessedElementIrrelevant) {
  // "If a given item is never accessed, it does not contribute … regardless
  // of how stale its value is."
  const ElementSet a = MakeElementSet({1.0, 50.0}, {1.0, 0.0});
  const ElementSet b = MakeElementSet({1.0, 0.001}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(PerceivedFreshness(a, {2.0, 0.0}),
                   PerceivedFreshness(b, {2.0, 0.0}));
}

TEST(PerceivedFreshnessTest, EqualsGeneralUnderUniformProfile) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0, 4.0}, {0.25, 0.25, 0.25, 0.25});
  const std::vector<double> freqs = {1.0, 0.5, 2.0, 0.0};
  EXPECT_NEAR(PerceivedFreshness(elements, freqs),
              GeneralFreshness(elements, freqs), 1e-12);
}

TEST(GeneralFreshnessTest, AveragesElementFreshness) {
  const ElementSet elements = MakeElementSet({1.0, 1.0}, {0.9, 0.1});
  const double gf = GeneralFreshness(elements, {1e12, 0.0});
  EXPECT_NEAR(gf, 0.5, 1e-9);
}

TEST(GeneralFreshnessTest, PolicyParameterRespected) {
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  EXPECT_DOUBLE_EQ(GeneralFreshness(elements, {1.0}, SyncPolicy::kPoisson),
                   PoissonSyncFreshness(1.0, 2.0));
}

TEST(PerceivedAgeTest, ZeroWhenAlwaysFresh) {
  const ElementSet elements = MakeElementSet({0.0}, {1.0});
  EXPECT_DOUBLE_EQ(PerceivedAge(elements, {0.0}), 0.0);
}

TEST(PerceivedAgeTest, SkipsUnaccessedElements) {
  // Element 1 is never accessed and never synced; its infinite age must not
  // poison the metric.
  const ElementSet elements = MakeElementSet({1.0, 1.0}, {1.0, 0.0});
  const double age = PerceivedAge(elements, {2.0, 0.0});
  EXPECT_TRUE(std::isfinite(age));
  EXPECT_NEAR(age, FixedOrderAge(2.0, 1.0), 1e-12);
}

TEST(PerceivedAgeTest, WeightsByProfile) {
  const ElementSet elements = MakeElementSet({1.0, 1.0}, {0.75, 0.25});
  const double age = PerceivedAge(elements, {1.0, 2.0});
  EXPECT_NEAR(age,
              0.75 * FixedOrderAge(1.0, 1.0) + 0.25 * FixedOrderAge(2.0, 1.0),
              1e-12);
}

TEST(BandwidthUsedTest, WeightsBySize) {
  const ElementSet elements = MakeElementSet({1.0, 1.0}, {0.5, 0.5}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(BandwidthUsed(elements, {1.0, 2.0}), 8.0);
}

TEST(MetricsDeathTest, MismatchedLengthsAbort) {
  const ElementSet elements = MakeElementSet({1.0}, {1.0});
  EXPECT_DEATH(PerceivedFreshness(elements, {1.0, 2.0}), "CHECK");
  EXPECT_DEATH(GeneralFreshness(elements, {}), "CHECK");
  EXPECT_DEATH(BandwidthUsed(elements, {}), "CHECK");
}

}  // namespace
}  // namespace freshen
