// Tests for poll-based change-rate estimation and sampling-based change
// ratios.
#include <cmath>

#include <gtest/gtest.h>

#include "estimate/change_estimator.h"

namespace freshen {
namespace {

TEST(ChangeRateEstimatorTest, FailsBeforeAnyPoll) {
  ChangeRateEstimator estimator(1.0);
  EXPECT_FALSE(estimator.EstimatedRate().ok());
}

TEST(ChangeRateEstimatorTest, NoChangesGivesNearZeroRate) {
  ChangeRateEstimator estimator(1.0);
  for (int i = 0; i < 100; ++i) estimator.RecordPoll(false);
  const double rate = estimator.EstimatedRate().value();
  EXPECT_GE(rate, 0.0);
  EXPECT_LT(rate, 0.01);
}

TEST(ChangeRateEstimatorTest, AllChangesStaysFinite) {
  // The naive estimator -log(1 - x/n)/tau diverges when x == n; the
  // bias-reduced form must not.
  ChangeRateEstimator estimator(1.0);
  for (int i = 0; i < 50; ++i) estimator.RecordPoll(true);
  const double rate = estimator.EstimatedRate().value();
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_GT(rate, 3.0);
}

TEST(ChangeRateEstimatorTest, ExactFormulaValue) {
  ChangeRateEstimator estimator(2.0);
  for (int i = 0; i < 6; ++i) estimator.RecordPoll(i < 2);  // x=2, n=6.
  EXPECT_EQ(estimator.num_polls(), 6u);
  EXPECT_EQ(estimator.num_changes(), 2u);
  const double expected = -std::log((6.0 - 2.0 + 0.5) / 6.5) / 2.0;
  EXPECT_NEAR(estimator.EstimatedRate().value(), expected, 1e-12);
}

class PollRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PollRecoveryTest, RecoversTrueRateWithManyPolls) {
  const double true_rate = GetParam();
  // Poll at interval such that change probability is informative (~0.5):
  // tau = 0.7 / rate keeps 1 - e^{-rate tau} around 0.5.
  const double tau = 0.7 / true_rate;
  const double estimate = SimulatePollEstimate(true_rate, tau, 20000, 1234);
  EXPECT_NEAR(estimate, true_rate, 0.05 * true_rate)
      << "true rate " << true_rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, PollRecoveryTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 20.0));

TEST(PollRecoveryTest, TooCoarsePollingUnderestimates) {
  // When nearly every poll sees a change, the estimator saturates around
  // log(2n) / tau, far below a very fast true rate.
  const double estimate = SimulatePollEstimate(100.0, 1.0, 1000, 77);
  EXPECT_LT(estimate, 20.0);
}

TEST(SampleChangeRatioTest, MatchesExpectedFractionOnHomogeneousSet) {
  // All elements at rate 1, window 1: P(change) = 1 - 1/e ~ 0.632.
  const std::vector<double> rates(500, 1.0);
  const double ratio = SampleChangeRatio(rates, 20000, 1.0, 5);
  EXPECT_NEAR(ratio, 1.0 - std::exp(-1.0), 0.02);
}

TEST(SampleChangeRatioTest, SampleSizeClampedToPopulation) {
  const std::vector<double> rates = {1000.0, 1000.0};
  const double ratio = SampleChangeRatio(rates, 10, 1.0, 6);
  EXPECT_NEAR(ratio, 1.0, 1e-12);
}

TEST(SampleChangeRatioTest, ZeroRatesNeverChange) {
  const std::vector<double> rates(10, 0.0);
  EXPECT_DOUBLE_EQ(SampleChangeRatio(rates, 10, 5.0, 7), 0.0);
}

}  // namespace
}  // namespace freshen
