// Tests for poll-based change-rate estimation and sampling-based change
// ratios.
#include <cmath>

#include <gtest/gtest.h>

#include "estimate/change_estimator.h"
#include "rng/rng.h"

namespace freshen {
namespace {

TEST(ChangeRateEstimatorTest, FailsBeforeAnyPoll) {
  ChangeRateEstimator estimator(1.0);
  EXPECT_FALSE(estimator.EstimatedRate().ok());
}

TEST(ChangeRateEstimatorTest, NoChangesGivesNearZeroRate) {
  ChangeRateEstimator estimator(1.0);
  for (int i = 0; i < 100; ++i) estimator.RecordPoll(false);
  const double rate = estimator.EstimatedRate().value();
  EXPECT_GE(rate, 0.0);
  EXPECT_LT(rate, 0.01);
}

TEST(ChangeRateEstimatorTest, AllChangesStaysFinite) {
  // The naive estimator -log(1 - x/n)/tau diverges when x == n; the
  // bias-reduced form must not.
  ChangeRateEstimator estimator(1.0);
  for (int i = 0; i < 50; ++i) estimator.RecordPoll(true);
  const double rate = estimator.EstimatedRate().value();
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_GT(rate, 3.0);
}

TEST(ChangeRateEstimatorTest, ExactFormulaValue) {
  ChangeRateEstimator estimator(2.0);
  for (int i = 0; i < 6; ++i) estimator.RecordPoll(i < 2);  // x=2, n=6.
  EXPECT_EQ(estimator.num_polls(), 6u);
  EXPECT_EQ(estimator.num_changes(), 2u);
  const double expected = -std::log((6.0 - 2.0 + 0.5) / 6.5) / 2.0;
  EXPECT_NEAR(estimator.EstimatedRate().value(), expected, 1e-12);
}

class PollRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PollRecoveryTest, RecoversTrueRateWithManyPolls) {
  const double true_rate = GetParam();
  // Poll at interval such that change probability is informative (~0.5):
  // tau = 0.7 / rate keeps 1 - e^{-rate tau} around 0.5.
  const double tau = 0.7 / true_rate;
  const double estimate = SimulatePollEstimate(true_rate, tau, 20000, 1234);
  EXPECT_NEAR(estimate, true_rate, 0.05 * true_rate)
      << "true rate " << true_rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, PollRecoveryTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 20.0));

TEST(PollRecoveryTest, TooCoarsePollingUnderestimates) {
  // When nearly every poll sees a change, the estimator saturates around
  // log(2n) / tau, far below a very fast true rate.
  const double estimate = SimulatePollEstimate(100.0, 1.0, 1000, 77);
  EXPECT_LT(estimate, 20.0);
}

TEST(ChangeRateEstimatorTest, ZeroDetectionsFlooredAwayFromZero) {
  // lambda_hat = 0 exactly would drop the element from the solver's active
  // set permanently (never scheduled -> never polled -> never recovers).
  // The floor must be positive, match -log(n/(n+1/2))/tau, and decay as
  // silent evidence accumulates.
  ChangeRateEstimator estimator(2.0);
  estimator.RecordPoll(false);
  const double one = estimator.EstimatedRate().value();
  EXPECT_GT(one, 0.0);
  EXPECT_NEAR(one, -std::log(1.0 / 1.5) / 2.0, 1e-15);
  for (int i = 0; i < 99; ++i) estimator.RecordPoll(false);
  const double hundred = estimator.EstimatedRate().value();
  EXPECT_GT(hundred, 0.0);
  EXPECT_LT(hundred, one);
  EXPECT_NEAR(hundred, -std::log(100.0 / 100.5) / 2.0, 1e-15);
  // One detection immediately dominates the floor.
  estimator.RecordPoll(true);
  EXPECT_GT(estimator.EstimatedRate().value(), hundred);
}

TEST(ChangeRateEstimatorTest, ZeroObservationWindowsAreIgnored) {
  ChangeRateEstimator estimator(1.0);
  estimator.RecordPoll(true, 0.0);    // Duplicate timestamp.
  estimator.RecordPoll(true, -3.0);   // Clock step backwards.
  estimator.RecordPoll(true, std::nan(""));
  EXPECT_EQ(estimator.num_polls(), 0u);
  EXPECT_FALSE(estimator.EstimatedRate().ok());
  // Irregular but positive gaps feed the mean-gap form.
  estimator.RecordPoll(true, 1.0);
  estimator.RecordPoll(false, 3.0);
  const double expected = BiasReducedRate(2, 1, 2.0);
  EXPECT_NEAR(estimator.EstimatedRate().value(), expected, 1e-15);
}

TEST(StreamingRateEstimatorTest, ConvergesToTrueRate) {
  for (double true_rate : {0.2, 1.0, 5.0}) {
    StreamingRateEstimator estimator;
    Rng rng(42);
    const double tau = 0.7 / true_rate;
    const double p_change = -std::expm1(-true_rate * tau);
    for (int i = 0; i < 50000; ++i) {
      estimator.ObservePoll(rng.NextBool(p_change), tau);
    }
    EXPECT_NEAR(estimator.rate(), true_rate, 0.1 * true_rate)
        << "true rate " << true_rate;
  }
}

TEST(StreamingRateEstimatorTest, IgnoresZeroObservationWindows) {
  StreamingRateEstimator estimator;
  const double before = estimator.rate();
  estimator.ObservePoll(true, 0.0);
  estimator.ObservePoll(true, -1.0);
  estimator.ObservePoll(false, std::nan(""));
  EXPECT_EQ(estimator.observations(), 0u);
  EXPECT_EQ(estimator.rate(), before);
}

TEST(StreamingRateEstimatorTest, ClampKeepsEstimateOutOfAbsorbingStates) {
  StreamingRateEstimator::Options options;
  options.initial_rate = 1.0;
  options.min_rate = 0.01;
  options.max_rate = 10.0;
  StreamingRateEstimator estimator(options);
  // A run of silent polls over long gaps drives the estimate down hard —
  // but never to (or below) zero.
  for (int i = 0; i < 1000; ++i) estimator.ObservePoll(false, 100.0);
  EXPECT_GE(estimator.rate(), options.min_rate);
  // And a run of detections over tiny gaps never escapes the ceiling.
  for (int i = 0; i < 1000; ++i) estimator.ObservePoll(true, 1e-4);
  EXPECT_LE(estimator.rate(), options.max_rate);
}

TEST(SampleChangeRatioTest, MatchesExpectedFractionOnHomogeneousSet) {
  // All elements at rate 1, window 1: P(change) = 1 - 1/e ~ 0.632.
  const std::vector<double> rates(500, 1.0);
  const double ratio = SampleChangeRatio(rates, 20000, 1.0, 5);
  EXPECT_NEAR(ratio, 1.0 - std::exp(-1.0), 0.02);
}

TEST(SampleChangeRatioTest, SampleSizeClampedToPopulation) {
  const std::vector<double> rates = {1000.0, 1000.0};
  const double ratio = SampleChangeRatio(rates, 10, 1.0, 6);
  EXPECT_NEAR(ratio, 1.0, 1e-12);
}

TEST(SampleChangeRatioTest, ZeroRatesNeverChange) {
  const std::vector<double> rates(10, 0.0);
  EXPECT_DOUBLE_EQ(SampleChangeRatio(rates, 10, 5.0, 7), 0.0);
}

}  // namespace
}  // namespace freshen
