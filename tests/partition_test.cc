// Tests for the sort-based partitioners, the transformed problem, and
// FFA/FBA allocation expansion.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "model/element.h"
#include "model/freshness.h"
#include "partition/allocation.h"
#include "partition/partitioner.h"
#include "partition/transformed.h"
#include "stats/descriptive.h"
#include "workload/generator.h"

namespace freshen {
namespace {

ElementSet SmallCatalog() {
  return MakeElementSet({4.0, 1.0, 3.0, 2.0, 5.0, 0.5},
                        {0.1, 0.3, 0.05, 0.25, 0.05, 0.25},
                        {1.0, 2.0, 0.5, 1.0, 4.0, 0.25});
}

TEST(PartitionKeyTest, Names) {
  EXPECT_EQ(ToString(PartitionKey::kAccessProb), "P_PARTITIONING");
  EXPECT_EQ(ToString(PartitionKey::kChangeRate), "LAMBDA_PARTITIONING");
  EXPECT_EQ(ToString(PartitionKey::kProbOverLambda),
            "P_OVER_LAMBDA_PARTITIONING");
  EXPECT_EQ(ToString(PartitionKey::kPerceivedFreshness), "PF_PARTITIONING");
  EXPECT_EQ(ToString(PartitionKey::kPerceivedFreshnessSize),
            "PF_OVER_S_PARTITIONING");
  EXPECT_EQ(ToString(PartitionKey::kSize), "SIZE_PARTITIONING");
}

TEST(PartitionKeyTest, SortKeysComputeDocumentedQuantities) {
  Element e;
  e.change_rate = 2.0;
  e.access_prob = 0.4;
  e.size = 2.0;
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kAccessProb, e), 0.4);
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kChangeRate, e), 2.0);
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kProbOverLambda, e), 0.2);
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kPerceivedFreshness, e),
                   0.4 * FixedOrderFreshness(1.0, 2.0));
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kPerceivedFreshnessSize, e),
                   0.4 * FixedOrderFreshness(0.5, 2.0));
  EXPECT_DOUBLE_EQ(PartitionSortKey(PartitionKey::kSize, e), 2.0);
}

TEST(BuildPartitionsTest, CoversEveryElementExactlyOnce) {
  const ElementSet elements = SmallCatalog();
  for (size_t k : {1u, 2u, 3u, 4u, 6u}) {
    const auto partitions =
        BuildPartitions(elements, PartitionKey::kAccessProb, k).value();
    EXPECT_EQ(partitions.size(), k);
    std::set<size_t> seen;
    for (const auto& part : partitions) {
      for (size_t i : part.members) {
        EXPECT_TRUE(seen.insert(i).second) << "duplicate member " << i;
      }
    }
    EXPECT_EQ(seen.size(), elements.size());
  }
}

TEST(BuildPartitionsTest, SizesDifferByAtMostOne) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  const ElementSet elements = GenerateCatalog(spec).value();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 7).value();
  size_t min_size = elements.size();
  size_t max_size = 0;
  for (const auto& part : partitions) {
    min_size = std::min(min_size, part.members.size());
    max_size = std::max(max_size, part.members.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(BuildPartitionsTest, GroupsAreContiguousInSortedKeyOrder) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kChangeRate, 3).value();
  // Every key in partition j must be <= every key in partition j+1.
  double prev_max = -1e300;
  for (const auto& part : partitions) {
    double lo = 1e300;
    double hi = -1e300;
    for (size_t i : part.members) {
      lo = std::min(lo, elements[i].change_rate);
      hi = std::max(hi, elements[i].change_rate);
    }
    EXPECT_GE(lo, prev_max);
    prev_max = hi;
  }
}

TEST(BuildPartitionsTest, RepresentativeIsMemberMean) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 2).value();
  for (const auto& part : partitions) {
    KahanSum p;
    KahanSum l;
    KahanSum s;
    for (size_t i : part.members) {
      p.Add(elements[i].access_prob);
      l.Add(elements[i].change_rate);
      s.Add(elements[i].size);
    }
    const double inv = 1.0 / static_cast<double>(part.members.size());
    EXPECT_NEAR(part.rep_access_prob, p.Total() * inv, 1e-15);
    EXPECT_NEAR(part.rep_change_rate, l.Total() * inv, 1e-15);
    EXPECT_NEAR(part.rep_size, s.Total() * inv, 1e-15);
  }
}

TEST(BuildPartitionsTest, MorePartitionsThanElementsClamps) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 100).value();
  EXPECT_EQ(partitions.size(), elements.size());
  for (const auto& part : partitions) EXPECT_EQ(part.members.size(), 1u);
}

TEST(BuildPartitionsTest, RejectsBadInput) {
  EXPECT_FALSE(BuildPartitions({}, PartitionKey::kAccessProb, 3).ok());
  EXPECT_FALSE(
      BuildPartitions(SmallCatalog(), PartitionKey::kAccessProb, 0).ok());
}

TEST(TransformedProblemTest, WeightsAndCostsScaleByCount) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 2).value();
  const CoreProblem problem =
      BuildTransformedProblem(partitions, 10.0, /*size_aware=*/true);
  ASSERT_EQ(problem.size(), 2u);
  for (size_t j = 0; j < 2; ++j) {
    const double n_j = static_cast<double>(partitions[j].members.size());
    EXPECT_NEAR(problem.weights[j], n_j * partitions[j].rep_access_prob,
                1e-15);
    EXPECT_NEAR(problem.costs[j], n_j * partitions[j].rep_size, 1e-15);
    EXPECT_DOUBLE_EQ(problem.change_rates[j],
                     partitions[j].rep_change_rate);
  }
  EXPECT_DOUBLE_EQ(problem.bandwidth, 10.0);
}

TEST(TransformedProblemTest, SizeBlindCostsAreCounts) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 3).value();
  const CoreProblem problem =
      BuildTransformedProblem(partitions, 6.0, /*size_aware=*/false);
  for (size_t j = 0; j < partitions.size(); ++j) {
    EXPECT_DOUBLE_EQ(problem.costs[j],
                     static_cast<double>(partitions[j].members.size()));
  }
}

TEST(AllocationTest, PolicyNames) {
  EXPECT_EQ(ToString(AllocationPolicy::kFixedFrequency), "FFA");
  EXPECT_EQ(ToString(AllocationPolicy::kFixedBandwidth), "FBA");
}

TEST(AllocationTest, FfaGivesEveryMemberThePartitionFrequency) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 2).value();
  const std::vector<double> part_freqs = {1.5, 0.25};
  const auto freqs = ExpandAllocation(elements, partitions, part_freqs,
                                      AllocationPolicy::kFixedFrequency)
                         .value();
  for (size_t j = 0; j < partitions.size(); ++j) {
    for (size_t i : partitions[j].members) {
      EXPECT_DOUBLE_EQ(freqs[i], part_freqs[j]);
    }
  }
}

TEST(AllocationTest, FbaEqualizesBandwidthWithinPartition) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kSize, 2).value();
  const std::vector<double> part_freqs = {2.0, 1.0};
  const auto freqs = ExpandAllocation(elements, partitions, part_freqs,
                                      AllocationPolicy::kFixedBandwidth)
                         .value();
  for (size_t j = 0; j < partitions.size(); ++j) {
    const double expected_bandwidth =
        partitions[j].rep_size * part_freqs[j];
    for (size_t i : partitions[j].members) {
      EXPECT_NEAR(freqs[i] * elements[i].size, expected_bandwidth, 1e-12);
    }
  }
}

TEST(AllocationTest, BothPoliciesPreservePartitionBandwidthTotals) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshnessSize, 3)
          .value();
  const std::vector<double> part_freqs = {1.0, 2.0, 0.5};
  for (auto policy : {AllocationPolicy::kFixedFrequency,
                      AllocationPolicy::kFixedBandwidth}) {
    const auto freqs =
        ExpandAllocation(elements, partitions, part_freqs, policy).value();
    for (size_t j = 0; j < partitions.size(); ++j) {
      double spend = 0.0;
      for (size_t i : partitions[j].members) {
        spend += freqs[i] * elements[i].size;
      }
      const double expected =
          part_freqs[j] * partitions[j].rep_size *
          static_cast<double>(partitions[j].members.size());
      EXPECT_NEAR(spend, expected, 1e-12) << ToString(policy) << " " << j;
    }
  }
}

TEST(AllocationTest, EqualSizesMakePoliciesIdentical) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0, 4.0}, {0.25, 0.25, 0.25, 0.25});
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kChangeRate, 2).value();
  const std::vector<double> part_freqs = {1.0, 3.0};
  const auto ffa = ExpandAllocation(elements, partitions, part_freqs,
                                    AllocationPolicy::kFixedFrequency)
                       .value();
  const auto fba = ExpandAllocation(elements, partitions, part_freqs,
                                    AllocationPolicy::kFixedBandwidth)
                       .value();
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_NEAR(ffa[i], fba[i], 1e-12);
  }
}

TEST(AllocationTest, RejectsMalformedInput) {
  const ElementSet elements = SmallCatalog();
  const auto partitions =
      BuildPartitions(elements, PartitionKey::kAccessProb, 2).value();
  // Wrong frequency count.
  EXPECT_FALSE(ExpandAllocation(elements, partitions, {1.0},
                                AllocationPolicy::kFixedFrequency)
                   .ok());
  // Negative frequency.
  EXPECT_FALSE(ExpandAllocation(elements, partitions, {1.0, -2.0},
                                AllocationPolicy::kFixedFrequency)
                   .ok());
  // Partition that misses elements.
  std::vector<Partition> partial = {partitions[0]};
  EXPECT_FALSE(ExpandAllocation(elements, partial, {1.0},
                                AllocationPolicy::kFixedFrequency)
                   .ok());
}

}  // namespace
}  // namespace freshen
