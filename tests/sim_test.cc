// Tests for the discrete-event simulator — above all, that the empirical
// Freshness Evaluator agrees with the analytic closed forms (the paper:
// "The results … have been verified using both modes").
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/metrics.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace freshen {
namespace {

SimulationConfig LongConfig() {
  SimulationConfig config;
  config.horizon_periods = 400.0;
  config.accesses_per_period = 2000.0;
  config.warmup_periods = 20.0;
  config.seed = 99;
  return config;
}

TEST(SimulatorTest, NeverChangingElementAlwaysFresh) {
  const ElementSet elements = MakeElementSet({0.0}, {1.0});
  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run({0.0}).value();
  EXPECT_DOUBLE_EQ(result.empirical_perceived_freshness, 1.0);
  EXPECT_DOUBLE_EQ(result.empirical_general_freshness, 1.0);
  EXPECT_DOUBLE_EQ(result.empirical_perceived_age, 0.0);
  EXPECT_EQ(result.num_updates, 0u);
}

TEST(SimulatorTest, NeverSyncedElementGoesStale) {
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run({0.0}).value();
  // After warmup the copy is almost surely stale forever.
  EXPECT_LT(result.empirical_perceived_freshness, 0.01);
  EXPECT_EQ(result.num_syncs, 0u);
  EXPECT_GT(result.empirical_perceived_age, 1.0);
}

TEST(SimulatorTest, SingleElementMatchesClosedForm) {
  // F(f=2, lambda=2) = (1 - e^{-1}) ~ 0.632.
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run({2.0}).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              FixedOrderFreshness(2.0, 2.0), 0.01);
  EXPECT_NEAR(result.empirical_general_freshness,
              FixedOrderFreshness(2.0, 2.0), 0.01);
}

TEST(SimulatorTest, SingleElementAgeMatchesClosedForm) {
  const ElementSet elements = MakeElementSet({3.0}, {1.0});
  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run({1.5}).value();
  EXPECT_NEAR(result.empirical_perceived_age, FixedOrderAge(1.5, 3.0),
              0.01);
}

TEST(SimulatorTest, EmpiricalMatchesAnalyticOnRealisticCatalog) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 100;  // Keep the event count modest.
  spec.syncs_per_period = 50.0;
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = GenerateCatalog(spec).value();
  const FreshenPlan plan = FreshenPlanner({}).Plan(elements, 50.0).value();

  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run(plan.frequencies).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              result.analytic_perceived_freshness, 0.015);
  EXPECT_NEAR(result.empirical_general_freshness,
              result.analytic_general_freshness, 0.015);
  EXPECT_GT(result.num_accesses, 100000u);
  EXPECT_GT(result.num_updates, 10000u);
  EXPECT_GT(result.num_syncs, 10000u);
}

TEST(SimulatorTest, PfPlanBeatsGfPlanEmpirically) {
  // The paper's headline, measured rather than computed.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 100;
  spec.syncs_per_period = 50.0;
  spec.theta = 1.4;
  spec.alignment = Alignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();
  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;
  const FreshenPlan pf = FreshenPlanner({}).Plan(elements, 50.0).value();
  const FreshenPlan gf =
      FreshenPlanner(gf_options).Plan(elements, 50.0).value();
  MirrorSimulator sim(elements, LongConfig());
  const double pf_observed =
      sim.Run(pf.frequencies).value().empirical_perceived_freshness;
  const double gf_observed =
      sim.Run(gf.frequencies).value().empirical_perceived_freshness;
  EXPECT_GT(pf_observed, gf_observed + 0.05);
}

TEST(SimulatorTest, DeterministicInSeed) {
  const ElementSet elements = MakeElementSet({1.0, 3.0}, {0.6, 0.4});
  SimulationConfig config;
  config.horizon_periods = 50.0;
  config.accesses_per_period = 500.0;
  config.seed = 5;
  MirrorSimulator sim(elements, config);
  const SimulationResult a = sim.Run({1.0, 1.0}).value();
  const SimulationResult b = sim.Run({1.0, 1.0}).value();
  EXPECT_EQ(a.empirical_perceived_freshness, b.empirical_perceived_freshness);
  EXPECT_EQ(a.num_updates, b.num_updates);
}

TEST(SimulatorTest, WarmupExcludesInitialFreshBias) {
  // With no warmup, the initially-fresh mirror inflates freshness; warmup
  // must reduce the measured value for a rarely-synced catalog.
  const ElementSet elements = MakeElementSet({0.2}, {1.0});
  SimulationConfig no_warmup;
  no_warmup.horizon_periods = 30.0;
  no_warmup.warmup_periods = 0.0;
  no_warmup.accesses_per_period = 5000.0;
  SimulationConfig with_warmup = no_warmup;
  with_warmup.warmup_periods = 15.0;
  const double without =
      MirrorSimulator(elements, no_warmup).Run({0.0}).value()
          .empirical_general_freshness;
  const double with_w =
      MirrorSimulator(elements, with_warmup).Run({0.0}).value()
          .empirical_general_freshness;
  EXPECT_GT(without, with_w);
}

TEST(SimulatorTest, RejectsInvalidInput) {
  const ElementSet elements = MakeElementSet({1.0}, {1.0});
  SimulationConfig config;
  MirrorSimulator sim(elements, config);
  EXPECT_FALSE(sim.Run({1.0, 2.0}).ok());  // Wrong length.
  EXPECT_FALSE(sim.Run({-1.0}).ok());      // Negative frequency.

  SimulationConfig bad_warmup;
  bad_warmup.warmup_periods = 200.0;
  bad_warmup.horizon_periods = 100.0;
  EXPECT_FALSE(MirrorSimulator(elements, bad_warmup).Run({1.0}).ok());

  SimulationConfig bad_horizon;
  bad_horizon.horizon_periods = 0.0;
  bad_horizon.warmup_periods = 0.0;
  EXPECT_FALSE(MirrorSimulator(elements, bad_horizon).Run({1.0}).ok());
}

TEST(SimulatorTest, PoissonPolicyFreshnessLowerThanFixedOrder) {
  // Indirect check of the policy formulas: a fixed-order schedule achieves
  // the fixed-order closed form, which exceeds the Poisson-policy form.
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  MirrorSimulator sim(elements, LongConfig());
  const SimulationResult result = sim.Run({2.0}).value();
  EXPECT_GT(result.empirical_perceived_freshness,
            PoissonSyncFreshness(2.0, 2.0) + 0.02);
}

TEST(SimulatorTest, PoissonPolicyMatchesItsClosedForm) {
  // Under the memoryless policy the empirical freshness must match
  // f / (f + lambda), not the fixed-order form.
  const ElementSet elements = MakeElementSet({2.0}, {1.0});
  SimulationConfig config = LongConfig();
  config.sync_policy = SyncPolicy::kPoisson;
  MirrorSimulator sim(elements, config);
  const SimulationResult result = sim.Run({2.0}).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              PoissonSyncFreshness(2.0, 2.0), 0.015);
  EXPECT_NEAR(result.analytic_perceived_freshness,
              PoissonSyncFreshness(2.0, 2.0), 1e-12);
  // And it is measurably worse than fixed order at the same frequencies.
  SimulationConfig fixed_config = LongConfig();
  const SimulationResult fixed =
      MirrorSimulator(elements, fixed_config).Run({2.0}).value();
  EXPECT_GT(fixed.empirical_perceived_freshness,
            result.empirical_perceived_freshness + 0.02);
}

}  // namespace
}  // namespace freshen
