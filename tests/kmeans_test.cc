// Tests for the k-means partition refiner: invariants (coverage, distortion
// never increases), convergence, empty-cluster handling, and the refinement
// actually improving the freshening objective on a realistic workload.
#include <set>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/element.h"
#include "partition/kmeans.h"
#include "partition/partitioner.h"
#include "workload/generator.h"

namespace freshen {
namespace {

ElementSet TestCatalog(size_t n = 200) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = n;
  spec.alignment = Alignment::kShuffled;
  return GenerateCatalog(spec).value();
}

TEST(KMeansTest, ZeroIterationsPreservesPartitions) {
  const ElementSet elements = TestCatalog();
  const auto initial =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 10).value();
  KMeansRefiner refiner(elements, {});
  const auto refined = refiner.Refine(initial, 0).value();
  ASSERT_EQ(refined.size(), initial.size());
  for (size_t j = 0; j < initial.size(); ++j) {
    EXPECT_EQ(refined[j].members.size(), initial[j].members.size());
  }
}

TEST(KMeansTest, EveryElementStaysCoveredExactlyOnce) {
  const ElementSet elements = TestCatalog();
  const auto initial =
      BuildPartitions(elements, PartitionKey::kAccessProb, 12).value();
  KMeansRefiner refiner(elements, {});
  const auto refined = refiner.Refine(initial, 5).value();
  std::set<size_t> seen;
  for (const auto& part : refined) {
    EXPECT_FALSE(part.members.empty());
    for (size_t i : part.members) {
      EXPECT_TRUE(seen.insert(i).second);
    }
  }
  EXPECT_EQ(seen.size(), elements.size());
}

TEST(KMeansTest, DistortionNeverIncreasesWithIterations) {
  const ElementSet elements = TestCatalog(400);
  const auto initial =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 15).value();
  KMeansRefiner refiner(elements, {});
  double prev = refiner.Distortion(initial);
  for (int iters : {1, 2, 3, 5, 8}) {
    const auto refined = refiner.Refine(initial, iters).value();
    const double cur = refiner.Distortion(refined);
    EXPECT_LE(cur, prev + 1e-12) << "iters=" << iters;
    prev = cur;
  }
}

TEST(KMeansTest, ConvergesOnSeparatedClusters) {
  // Two well-separated blobs must be recovered regardless of a bad start.
  ElementSet elements;
  for (int i = 0; i < 20; ++i) {
    Element e;
    e.access_prob = 0.001 + 1e-6 * i;
    e.change_rate = 1.0 + 1e-3 * i;
    elements.push_back(e);
  }
  for (int i = 0; i < 20; ++i) {
    Element e;
    e.access_prob = 0.049 - 1e-6 * i;
    e.change_rate = 9.0 - 1e-3 * i;
    elements.push_back(e);
  }
  // Bad but non-degenerate initial split: 30 / 10. (A perfectly symmetric
  // interleaved split would give both clusters identical centroids — a
  // stationary point Lloyd correctly never leaves.)
  std::vector<Partition> initial(2);
  for (size_t i = 0; i < elements.size(); ++i) {
    initial[i < 30 ? 0 : 1].members.push_back(i);
  }
  for (auto& part : initial) RecomputeRepresentative(elements, part);

  KMeansRefiner refiner(elements, {});
  const auto refined = refiner.Refine(initial, 20).value();
  ASSERT_EQ(refined.size(), 2u);
  // Each cluster should be one blob: all members on the same side.
  for (const auto& part : refined) {
    const bool first_low = part.members[0] < 20;
    for (size_t i : part.members) {
      EXPECT_EQ(i < 20, first_low);
    }
  }
}

TEST(KMeansTest, RefinementImprovesPerceivedFreshness) {
  // The paper's headline §4.1.3 result: a few iterations of k-means on top
  // of PF-partitioning improve perceived freshness.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = GenerateCatalog(spec).value();

  PlannerOptions base;
  base.mode = PlanMode::kPartitioned;
  base.partition_key = PartitionKey::kPerceivedFreshness;
  base.num_partitions = 20;
  base.kmeans_iterations = 0;
  const double pf0 = FreshenPlanner(base)
                         .Plan(elements, spec.syncs_per_period)
                         .value()
                         .perceived_freshness;

  base.kmeans_iterations = 10;
  const double pf10 = FreshenPlanner(base)
                          .Plan(elements, spec.syncs_per_period)
                          .value()
                          .perceived_freshness;
  EXPECT_GT(pf10, pf0);
}

TEST(KMeansTest, RejectsMalformedInitialPartitions) {
  const ElementSet elements = TestCatalog(50);
  KMeansRefiner refiner(elements, {});
  EXPECT_FALSE(refiner.Refine({}, 3).ok());

  // Duplicated member.
  std::vector<Partition> dup(1);
  dup[0].members = {0, 0};
  EXPECT_FALSE(refiner.Refine(dup, 1).ok());

  // Missing members.
  std::vector<Partition> partial(1);
  partial[0].members = {0, 1, 2};
  EXPECT_FALSE(refiner.Refine(partial, 1).ok());

  const auto initial =
      BuildPartitions(elements, PartitionKey::kAccessProb, 4).value();
  EXPECT_FALSE(refiner.Refine(initial, -1).ok());
}

TEST(KMeansTest, NormalizationOptionChangesClustering) {
  // With raw lambda (no normalization) the lambda axis dominates; the
  // option must have an observable effect on some workload.
  const ElementSet elements = TestCatalog(300);
  const auto initial =
      BuildPartitions(elements, PartitionKey::kAccessProb, 8).value();
  KMeansRefiner sum_norm(
      elements, {.lambda_normalization = LambdaNormalization::kSumToOne});
  KMeansRefiner raw(elements,
                    {.lambda_normalization = LambdaNormalization::kNone});
  const auto a = sum_norm.Refine(initial, 5).value();
  const auto b = raw.Refine(initial, 5).value();
  // Compare the multisets of cluster sizes; they should differ.
  std::multiset<size_t> sizes_a;
  std::multiset<size_t> sizes_b;
  for (const auto& part : a) sizes_a.insert(part.members.size());
  for (const auto& part : b) sizes_b.insert(part.members.size());
  EXPECT_NE(sizes_a, sizes_b);
}

}  // namespace
}  // namespace freshen
