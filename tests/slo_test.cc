// Tests for the live telemetry plane: the sliding-window freshness SLO
// monitor (obs/slo.h), the estimator drift detector (obs/drift.h), and
// their wiring into OnlineFreshenLoop (drift-forced early replans). All
// period clocks here are virtual — the tests drive ObservePeriod/EndPeriod
// directly, so every state transition is deterministic.
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mirror/online_loop.h"
#include "model/element.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace freshen {
namespace {

using obs::DriftDetector;
using obs::DriftReport;
using obs::SloMonitor;
using obs::SloReport;
using obs::SloState;

// ---- SloMonitor -----------------------------------------------------------

SloMonitor::Options TightSloOptions(obs::MetricsRegistry* registry) {
  SloMonitor::Options options;
  options.objective = 0.9;  // Error budget 0.1.
  options.fast_window_periods = 2.0;
  options.slow_window_periods = 4.0;
  options.warn_burn_rate = 2.0;
  options.page_burn_rate = 8.0;
  options.registry = registry;
  return options;
}

TEST(SloMonitorTest, CreateValidatesOptions) {
  obs::MetricsRegistry registry;
  auto options = TightSloOptions(&registry);
  EXPECT_TRUE(SloMonitor::Create(options).ok());

  auto bad = options;
  bad.objective = 1.0;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.objective = 0.0;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.age_slo = -1.0;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.fast_window_periods = 0.5;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.slow_window_periods = bad.fast_window_periods;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.slow_window_periods = 1e9;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.warn_burn_rate = 0.0;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
  bad = options;
  bad.page_burn_rate = 0.5 * bad.warn_burn_rate;
  EXPECT_FALSE(SloMonitor::Create(bad).ok());
}

// The acceptance drill in unit form: a healthy stream, then a burst outage
// (all accesses bad), then recovery — ok -> burning -> alert -> burning ->
// ok, with every transition counted.
TEST(SloMonitorTest, BurstOutageWalksOkBurningAlertAndBack) {
  obs::MetricsRegistry registry;
  auto monitor = SloMonitor::Create(TightSloOptions(&registry)).value();

  // Four perfect periods: state ok, no transitions.
  for (int t = 1; t <= 4; ++t) {
    monitor.ObservePeriod(static_cast<double>(t), 100, 100, 100);
  }
  EXPECT_EQ(monitor.state(), SloState::kOk);
  EXPECT_EQ(monitor.Report().transitions, 0u);

  // Outage period 5: fast window bad ratio 100/200 = 0.5, burn 5 >= warn 2
  // but < page 8 -> burning.
  monitor.ObservePeriod(5.0, 100, 0, 0);
  EXPECT_EQ(monitor.state(), SloState::kBurning);
  SloReport report = monitor.Report();
  EXPECT_EQ(report.transitions, 1u);
  EXPECT_DOUBLE_EQ(report.last_transition_time, 5.0);
  EXPECT_DOUBLE_EQ(report.fast.bad_ratio, 0.5);
  EXPECT_DOUBLE_EQ(report.fast.burn_rate, 5.0);

  // Outage period 6: fast burn 10 >= page AND slow burn (200/400 bad) 5 >=
  // warn -> alert.
  monitor.ObservePeriod(6.0, 100, 0, 0);
  EXPECT_EQ(monitor.state(), SloState::kAlert);
  report = monitor.Report();
  EXPECT_EQ(report.transitions, 2u);
  EXPECT_DOUBLE_EQ(report.fast.burn_rate, 10.0);
  EXPECT_DOUBLE_EQ(report.slow.burn_rate, 5.0);
  EXPECT_DOUBLE_EQ(report.budget_remaining, 0.0);

  // Recovery period 7: fast window still holds one outage period -> burn 5
  // -> back to burning (alert de-escalates as soon as paging burn clears).
  monitor.ObservePeriod(7.0, 100, 100, 100);
  EXPECT_EQ(monitor.state(), SloState::kBurning);
  EXPECT_EQ(monitor.Report().transitions, 3u);

  // Recovery period 8: fast window all good -> ok.
  monitor.ObservePeriod(8.0, 100, 100, 100);
  EXPECT_EQ(monitor.state(), SloState::kOk);
  report = monitor.Report();
  EXPECT_EQ(report.transitions, 4u);
  EXPECT_DOUBLE_EQ(report.last_transition_time, 8.0);

  // Whole-run totals: 8 periods, 2 fully bad.
  EXPECT_EQ(report.total_accesses, 800u);
  EXPECT_EQ(report.total_good, 600u);
  EXPECT_DOUBLE_EQ(report.overall_good_ratio, 0.75);

  // The same walk through the registry's eyes.
  EXPECT_DOUBLE_EQ(registry.GetGauge("freshen_slo_state")->value(), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("freshen_slo_transitions", {{"to", "alert"}})
          ->value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("freshen_slo_transitions", {{"to", "burning"}})
          ->value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("freshen_slo_transitions", {{"to", "ok"}})->value(),
      1.0);
}

TEST(SloMonitorTest, WindowsShorterThanHistoryCountOnlySeenPeriods) {
  obs::MetricsRegistry registry;
  auto monitor = SloMonitor::Create(TightSloOptions(&registry)).value();
  monitor.ObservePeriod(1.0, 50, 40, 45);
  const SloReport report = monitor.Report();
  EXPECT_EQ(report.fast.periods, 1u);
  EXPECT_EQ(report.slow.periods, 1u);
  EXPECT_EQ(report.slow.accesses, 50u);
  EXPECT_DOUBLE_EQ(report.slow.bad_ratio, 0.2);
  EXPECT_DOUBLE_EQ(report.now, 1.0);
}

TEST(SloMonitorTest, AgeSloModeCountsAgeGoodAccesses) {
  obs::MetricsRegistry registry;
  auto options = TightSloOptions(&registry);
  options.good_is_age_slo = true;
  options.age_slo = 0.5;
  auto monitor = SloMonitor::Create(options).value();
  EXPECT_DOUBLE_EQ(monitor.age_slo(), 0.5);
  // 0 strictly fresh, but all within the age SLO: a perfect period.
  monitor.ObservePeriod(1.0, 100, 0, 100);
  monitor.ObservePeriod(2.0, 100, 0, 100);
  EXPECT_EQ(monitor.state(), SloState::kOk);
  const SloReport report = monitor.Report();
  EXPECT_EQ(report.total_good, 200u);
  EXPECT_TRUE(report.good_is_age_slo);
}

TEST(SloMonitorTest, GoodCountsAreClampedToAccesses) {
  obs::MetricsRegistry registry;
  auto monitor = SloMonitor::Create(TightSloOptions(&registry)).value();
  monitor.ObservePeriod(1.0, 10, 999, 999);  // Feeder bug: clamp, not UB.
  const SloReport report = monitor.Report();
  EXPECT_EQ(report.total_good, 10u);
  EXPECT_DOUBLE_EQ(report.fast.bad_ratio, 0.0);
}

TEST(SloMonitorTest, EmptyMonitorReportsHealthyDefaults) {
  obs::MetricsRegistry registry;
  auto monitor = SloMonitor::Create(TightSloOptions(&registry)).value();
  const SloReport report = monitor.Report();
  EXPECT_EQ(report.state, SloState::kOk);
  EXPECT_EQ(report.fast.periods, 0u);
  EXPECT_DOUBLE_EQ(report.overall_good_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.budget_remaining, 1.0);
}

TEST(SloStateNameTest, CoversAllStates) {
  EXPECT_STREQ(obs::SloStateName(SloState::kOk), "ok");
  EXPECT_STREQ(obs::SloStateName(SloState::kBurning), "burning");
  EXPECT_STREQ(obs::SloStateName(SloState::kAlert), "alert");
}

// Readers hammer Report()/state() while the writer streams periods; every
// sampled report must be internally coherent. Run under `ctest -L tsan` in
// a FRESHEN_SANITIZE=thread build.
TEST(SloMonitorTest, ConcurrentReadersSeeCoherentReports) {
  obs::MetricsRegistry registry;
  auto options = TightSloOptions(&registry);
  auto monitor = SloMonitor::Create(options).value();

  std::atomic<bool> done{false};
  std::atomic<size_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const SloReport report = monitor.Report();
        const bool ok =
            report.fast.good <= report.fast.accesses &&
            report.slow.good <= report.slow.accesses &&
            report.fast.periods <= 2 && report.slow.periods <= 4 &&
            report.total_good <= report.total_accesses &&
            report.budget_remaining >= 0.0 &&
            report.budget_remaining <= 1.0 &&
            static_cast<uint8_t>(report.state) <= 2;
        if (!ok) violations.fetch_add(1);
      }
    });
  }
  for (int t = 1; t <= 5000; ++t) {
    // Alternate good and bad periods so state churns constantly.
    const uint64_t fresh = (t % 3 == 0) ? 0 : 100;
    monitor.ObservePeriod(static_cast<double>(t), 100, fresh, fresh);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0u);
}

// ---- DriftDetector --------------------------------------------------------

DriftDetector::Options SmallDriftOptions(size_t n,
                                         obs::MetricsRegistry* registry) {
  DriftDetector::Options options;
  options.num_elements = n;
  options.min_evidence = 3.0;
  options.top_k = 4;
  options.registry = registry;
  return options;
}

TEST(DriftDetectorTest, CreateValidatesOptions) {
  obs::MetricsRegistry registry;
  auto options = SmallDriftOptions(8, &registry);
  EXPECT_TRUE(DriftDetector::Create(options).ok());

  auto bad = options;
  bad.num_elements = 0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.decay = 0.0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.decay = 1.5;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.min_evidence = 0.5;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.top_k = 0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.flag_threshold = 0.0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.replan_consecutive_periods = 0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
  bad = options;
  bad.rate_floor = 0.0;
  EXPECT_FALSE(DriftDetector::Create(bad).ok());
}

// Feed evidence exactly consistent with the planned rate: with 10 polls at
// gap 0.5 and 4 detected changes, the bias-reduced estimate is
// -ln(0.6)/0.5 = 1.0217 against planned 1.0 — a near-zero score, no flags.
TEST(DriftDetectorTest, MatchedRatesScoreNearZero) {
  obs::MetricsRegistry registry;
  auto detector = DriftDetector::Create(SmallDriftOptions(4, &registry))
                      .value();
  for (size_t element = 0; element < 4; ++element) {
    for (int poll = 0; poll < 10; ++poll) {
      detector.ObserveSync(element, /*changed=*/poll < 4, /*gap=*/0.5);
    }
  }
  detector.EndPeriod(1.0, std::vector<double>(4, 1.0));
  const DriftReport report = detector.Report();
  EXPECT_EQ(report.scored_elements, 4u);
  EXPECT_EQ(report.flagged_elements, 0u);
  EXPECT_LT(report.aggregate_score, 0.1);
  EXPECT_FALSE(report.replan_recommended);
  EXPECT_DOUBLE_EQ(report.now, 1.0);
  ASSERT_EQ(report.top.size(), 4u);
  EXPECT_NEAR(report.top[0].observed_rate, -std::log(0.6) / 0.5, 1e-12);
}

// The acceptance scenario: most elements behave as planned, two shifted to
// a much hotter rate. The shifted pair must top the offender list, be
// flagged, and carry observed >> planned.
TEST(DriftDetectorTest, LambdaShiftPutsShiftedElementsInTopK) {
  obs::MetricsRegistry registry;
  auto detector = DriftDetector::Create(SmallDriftOptions(10, &registry))
                      .value();
  for (size_t element = 0; element < 10; ++element) {
    const bool shifted = element == 3 || element == 7;
    for (int poll = 0; poll < 10; ++poll) {
      // Shifted elements change on every poll; matched ones at the planned
      // 40% detection ratio.
      detector.ObserveSync(element, shifted || poll < 4, 0.5);
    }
  }
  detector.EndPeriod(1.0, std::vector<double>(10, 1.0));
  const DriftReport report = detector.Report();
  EXPECT_EQ(report.scored_elements, 10u);
  EXPECT_EQ(report.flagged_elements, 2u);
  ASSERT_GE(report.top.size(), 2u);
  const bool top_pair_is_shifted =
      (report.top[0].element == 3 && report.top[1].element == 7) ||
      (report.top[0].element == 7 && report.top[1].element == 3);
  EXPECT_TRUE(top_pair_is_shifted)
      << "top offenders: " << report.top[0].element << ", "
      << report.top[1].element;
  EXPECT_GT(report.top[0].observed_rate, 10.0 * report.top[0].planned_rate);
  EXPECT_GE(report.top[0].score, report.top[1].score);
  EXPECT_GT(report.max_score, detector.options().flag_threshold);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("freshen_drift_flagged_elements")->value(), 2.0);
}

// Sustained aggregate drift arms the recommendation only after the
// configured number of consecutive periods, and AcknowledgeReplan clears
// it and counts the triggered replan.
TEST(DriftDetectorTest, RecommendationDebouncesAndAcknowledges) {
  obs::MetricsRegistry registry;
  auto options = SmallDriftOptions(2, &registry);
  options.decay = 1.0;  // Keep the evidence hot across periods.
  options.replan_consecutive_periods = 2;
  auto detector = DriftDetector::Create(options).value();
  const std::vector<double> planned(2, 1e-3);  // Everything looks shifted.

  const auto feed = [&detector] {
    for (size_t element = 0; element < 2; ++element) {
      for (int poll = 0; poll < 5; ++poll) {
        detector.ObserveSync(element, true, 0.5);
      }
    }
  };

  feed();
  detector.EndPeriod(1.0, planned);
  EXPECT_FALSE(detector.replan_recommended());  // 1 of 2 periods above.
  EXPECT_EQ(detector.Report().periods_above_threshold, 1u);

  feed();
  detector.EndPeriod(2.0, planned);
  EXPECT_TRUE(detector.replan_recommended());
  EXPECT_TRUE(detector.Report().replan_recommended);

  detector.AcknowledgeReplan();
  EXPECT_FALSE(detector.replan_recommended());
  const DriftReport report = detector.Report();
  EXPECT_EQ(report.replans_triggered, 1u);
  EXPECT_EQ(report.periods_above_threshold, 0u);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("freshen_drift_replans_triggered")->value(), 1.0);

  // A calm period resets the debounce entirely.
  feed();
  detector.EndPeriod(3.0, std::vector<double>{13.86, 13.86});
  EXPECT_FALSE(detector.replan_recommended());
  EXPECT_EQ(detector.Report().periods_above_threshold, 0u);
}

TEST(DriftDetectorTest, IgnoresBadObservationsAndThinEvidence) {
  obs::MetricsRegistry registry;
  auto detector = DriftDetector::Create(SmallDriftOptions(4, &registry))
                      .value();
  detector.ObserveSync(99, true, 0.5);   // Out of range: dropped.
  detector.ObserveSync(0, true, 0.0);    // Non-positive gap: dropped.
  detector.ObserveSync(0, true, -1.0);   // Negative gap: dropped.
  detector.ObserveSync(0, true, 0.5);    // 1 poll < min_evidence 3.
  detector.ObserveSync(1, true, 0.5);
  detector.ObserveSync(1, true, 0.5);
  detector.EndPeriod(1.0, std::vector<double>(4, 1.0));
  const DriftReport report = detector.Report();
  EXPECT_EQ(report.scored_elements, 0u);
  EXPECT_TRUE(report.top.empty());
  EXPECT_DOUBLE_EQ(report.aggregate_score, 0.0);
}

TEST(DriftDetectorTest, EvidenceDecaysBelowScoringThreshold) {
  obs::MetricsRegistry registry;
  auto options = SmallDriftOptions(1, &registry);
  options.decay = 0.5;
  auto detector = DriftDetector::Create(options).value();
  for (int poll = 0; poll < 4; ++poll) {
    detector.ObserveSync(0, true, 0.5);
  }
  detector.EndPeriod(1.0, {1.0});
  EXPECT_EQ(detector.Report().scored_elements, 1u);
  // No new syncs: 4 -> 2 -> 1 effective polls; below min_evidence 3 the
  // element stops being scored.
  detector.EndPeriod(2.0, {1.0});
  EXPECT_EQ(detector.Report().scored_elements, 0u);
}

// ---- OnlineFreshenLoop wiring --------------------------------------------

ElementSet UniformHotCatalog(size_t n, double change_rate) {
  std::vector<double> rates(n, change_rate);
  std::vector<double> probs(n, 1.0 / static_cast<double>(n));
  return MakeElementSet(rates, probs);
}

// The loop feeds the SLO monitor one sample per period boundary.
TEST(LoopTelemetryTest, SloMonitorReceivesEveryPeriod) {
  obs::MetricsRegistry registry;
  auto monitor = SloMonitor::Create(TightSloOptions(&registry)).value();

  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 200.0;
  options.seed = 42;
  options.registry = &registry;
  options.slo = &monitor;
  auto loop = OnlineFreshenLoop::Create(UniformHotCatalog(16, 1.0), 8.0,
                                        options)
                  .value();
  for (int period = 0; period < 3; ++period) loop.RunPeriod();

  const SloReport report = monitor.Report();
  EXPECT_DOUBLE_EQ(report.now, 3.0);
  EXPECT_EQ(report.fast.periods, 2u);
  EXPECT_EQ(report.slow.periods, 3u);
  EXPECT_GT(report.total_accesses, 0u);
  EXPECT_LE(report.total_good, report.total_accesses);
}

// A sustained true-rate shift against a stale plan must arm the detector
// and — with drift_replan on — force an early replan long before the
// controller's own cadence (1000 periods here). The control loop with
// drift_replan off sees the same drift but keeps the stale plan.
TEST(LoopTelemetryTest, DriftReplanForcesEarlyReplanOnLambdaShift) {
  const size_t n = 32;
  // Truth: hot elements (rate 4); the controller believes 0.01 and, with a
  // 1000-period cadence, would never correct on its own.
  const ElementSet truth = UniformHotCatalog(n, 4.0);

  const auto make_loop = [&](obs::MetricsRegistry* registry,
                             DriftDetector* detector, bool drift_replan) {
    OnlineFreshenLoop::Options options;
    options.controller.replan_every_periods = 1000.0;
    options.controller.prior_change_rate = 0.01;
    options.accesses_per_period = 100.0;
    options.seed = 7;
    options.registry = registry;
    options.drift = detector;
    options.drift_replan = drift_replan;
    // Bandwidth 2N: every element syncs ~2x per period, plenty of polls.
    return OnlineFreshenLoop::Create(truth, 2.0 * n, options).value();
  };

  obs::MetricsRegistry acting_registry;
  DriftDetector::Options drift_options;
  drift_options.num_elements = n;
  drift_options.min_evidence = 2.0;
  drift_options.replan_consecutive_periods = 2;
  drift_options.registry = &acting_registry;
  auto detector = DriftDetector::Create(drift_options).value();
  auto loop = make_loop(&acting_registry, &detector, /*drift_replan=*/true);

  EXPECT_EQ(loop.controller().num_replans(), 1u);  // Cold-start plan only.
  bool replanned = false;
  for (int period = 0; period < 6 && !replanned; ++period) {
    replanned = loop.RunPeriod().replanned;
  }
  EXPECT_TRUE(replanned);
  EXPECT_GT(loop.controller().num_replans(), 1u);
  EXPECT_GE(detector.Report().replans_triggered, 1u);
  // The forced replan resolved against fresh beliefs: the planned rates
  // moved off the 0.01 prior.
  EXPECT_GT(loop.controller().PlannedChangeRates()[0], 0.1);

  // Control: same drift, no authority to act. The plan stays cold.
  obs::MetricsRegistry passive_registry;
  drift_options.registry = &passive_registry;
  auto passive_detector = DriftDetector::Create(drift_options).value();
  auto passive_loop =
      make_loop(&passive_registry, &passive_detector, /*drift_replan=*/false);
  for (int period = 0; period < 6; ++period) {
    EXPECT_FALSE(passive_loop.RunPeriod().replanned);
  }
  EXPECT_EQ(passive_loop.controller().num_replans(), 1u);
  EXPECT_TRUE(passive_detector.replan_recommended());
  EXPECT_DOUBLE_EQ(passive_loop.controller().PlannedChangeRates()[0], 0.01);
}

}  // namespace
}  // namespace freshen
