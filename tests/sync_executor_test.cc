// Tests for the concurrent sync executor and its OnlineFreshenLoop
// integration: determinism, failure semantics, breaker behavior,
// backpressure, and the PerfectSource bit-for-bit parity guarantee. Runs
// under TSan via the `tsan` ctest label.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mirror/online_loop.h"
#include "obs/metrics.h"
#include "sync/executor.h"
#include "sync/source.h"
#include "workload/generator.h"

namespace freshen {
namespace sync {
namespace {

std::vector<SyncTask> MakeTasks(size_t count, double start = 0.0,
                                double spacing = 0.01) {
  std::vector<SyncTask> tasks;
  tasks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tasks.push_back({i % 8, start + spacing * static_cast<double>(i), 1.0});
  }
  return tasks;
}

TEST(SyncExecutorTest, ValidatesOptions) {
  PerfectSource source;
  EXPECT_FALSE(SyncExecutor::Create(nullptr, {}).ok());
  SyncExecutor::Options options;
  options.num_threads = 0;
  EXPECT_FALSE(SyncExecutor::Create(&source, options).ok());
  options = {};
  options.queue_capacity = 0;
  EXPECT_FALSE(SyncExecutor::Create(&source, options).ok());
  options = {};
  options.period_seconds = 0.0;
  EXPECT_FALSE(SyncExecutor::Create(&source, options).ok());
  options = {};
  options.retry.max_attempts = 0;
  EXPECT_FALSE(SyncExecutor::Create(&source, options).ok());
  options = {};
  options.breaker.failure_threshold = 0;
  EXPECT_FALSE(SyncExecutor::Create(&source, options).ok());
}

TEST(SyncExecutorTest, PerfectSourceAppliesEverythingAtScheduledTime) {
  obs::MetricsRegistry registry;
  PerfectSource source;
  SyncExecutor::Options options;
  options.registry = &registry;
  auto executor = SyncExecutor::Create(&source, options).value();
  const std::vector<SyncTask> tasks = MakeTasks(100);
  const std::vector<SyncOutcome> outcomes = executor->Execute(tasks);
  ASSERT_EQ(outcomes.size(), tasks.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].kind, SyncOutcomeKind::kApplied);
    EXPECT_EQ(outcomes[i].attempts, 1u);
    EXPECT_DOUBLE_EQ(outcomes[i].apply_time, outcomes[i].scheduled_time);
    EXPECT_EQ(outcomes[i].wasted_bandwidth, 0.0);
  }
  EXPECT_EQ(executor->last_stats().applied, 100u);
  EXPECT_EQ(executor->last_stats().failed, 0u);
  EXPECT_EQ(executor->breaker().state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(
      registry.Snapshot().Find("freshen_sync_applied_total")->value, 100.0);
}

TEST(SyncExecutorTest, OutcomesAreSortedByScheduledTime) {
  obs::MetricsRegistry registry;
  PerfectSource source;
  SyncExecutor::Options options;
  options.registry = &registry;
  auto executor = SyncExecutor::Create(&source, options).value();
  std::vector<SyncTask> tasks = {{0, 0.9, 1.0}, {1, 0.1, 1.0}, {2, 0.5, 1.0}};
  const std::vector<SyncOutcome> outcomes = executor->Execute(tasks);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].element, 1u);
  EXPECT_EQ(outcomes[1].element, 2u);
  EXPECT_EQ(outcomes[2].element, 0u);
}

TEST(SyncExecutorTest, DeterministicAcrossRuns) {
  SimulatedSource::Options source_options;
  source_options.error_rate = 0.3;
  source_options.stall_rate = 0.05;
  source_options.seed = 11;
  const auto run = [&source_options]() {
    obs::MetricsRegistry registry;
    SimulatedSource source = SimulatedSource::Create(source_options).value();
    SyncExecutor::Options options;
    options.registry = &registry;
    options.num_threads = 4;
    auto executor = SyncExecutor::Create(&source, options).value();
    std::vector<SyncOutcome> all;
    for (int batch = 0; batch < 3; ++batch) {
      const std::vector<SyncOutcome> outcomes =
          executor->Execute(MakeTasks(80, static_cast<double>(batch)));
      all.insert(all.end(), outcomes.begin(), outcomes.end());
    }
    return all;
  };
  const std::vector<SyncOutcome> a = run();
  const std::vector<SyncOutcome> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].element, b[i].element);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_DOUBLE_EQ(a[i].apply_time, b[i].apply_time);
    EXPECT_DOUBLE_EQ(a[i].wasted_bandwidth, b[i].wasted_bandwidth);
  }
}

TEST(SyncExecutorTest, DeadSourceTripsTheBreakerAndStopsBurningBandwidth) {
  obs::MetricsRegistry registry;
  SimulatedSource::Options source_options;
  source_options.error_rate = 1.0;
  SimulatedSource source = SimulatedSource::Create(source_options).value();
  SyncExecutor::Options options;
  options.registry = &registry;
  options.retry.max_attempts = 2;
  options.breaker.failure_threshold = 3;
  options.breaker.open_duration_seconds = 100.0;  // Stays open all batch.
  auto executor = SyncExecutor::Create(&source, options).value();
  const std::vector<SyncOutcome> outcomes = executor->Execute(MakeTasks(50));
  EXPECT_EQ(executor->breaker().state(), BreakerState::kOpen);
  EXPECT_GE(executor->breaker().open_transitions(), 1u);
  const ExecuteStats& stats = executor->last_stats();
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_GT(stats.failed, 0u);
  // Most of the batch must have been refused locally instead of burning
  // bandwidth on a dead source.
  EXPECT_GT(stats.breaker_open, 30u);
  EXPECT_EQ(stats.failed + stats.breaker_open, 50u);
  // Wasted bandwidth only for tasks that actually attempted.
  EXPECT_DOUBLE_EQ(stats.wasted_bandwidth,
                   static_cast<double>(stats.attempts));
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_GT(snapshot.Find("freshen_sync_breaker_skipped_total")->value, 0.0);
  EXPECT_GT(snapshot.Find("freshen_sync_breaker_opens_total")->value, 0.0);
  EXPECT_GT(snapshot.Find("freshen_sync_wasted_bandwidth_total")->value, 0.0);
}

TEST(SyncExecutorTest, BreakerHalfOpensAndRecoversAcrossBatches) {
  SimulatedSource::Options source_options;
  source_options.error_rate = 1.0;
  SimulatedSource source = SimulatedSource::Create(source_options).value();
  SyncExecutor::Options options;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration_seconds = 0.5;
  obs::MetricsRegistry registry;
  options.registry = &registry;
  auto executor = SyncExecutor::Create(&source, options).value();
  executor->Execute(MakeTasks(20, /*start=*/0.0));
  ASSERT_EQ(executor->breaker().state(), BreakerState::kOpen);
  // Fault clears; the next batch (later times) probes and re-closes.
  source.SetFaultsEnabled(false);
  const std::vector<SyncOutcome> recovered =
      executor->Execute(MakeTasks(20, /*start=*/5.0));
  EXPECT_EQ(executor->breaker().state(), BreakerState::kClosed);
  EXPECT_GT(executor->last_stats().applied, 15u);
  (void)recovered;
}

TEST(SyncExecutorTest, QueueOverflowDropsFailFast) {
  obs::MetricsRegistry registry;
  PerfectSource source;
  SyncExecutor::Options options;
  options.registry = &registry;
  options.num_threads = 1;
  options.queue_capacity = 1;
  auto executor = SyncExecutor::Create(&source, options).value();
  // A burst far larger than the queue: some tasks must drop. (Workers drain
  // concurrently, so the exact count is timing-dependent; drops are recorded
  // deterministically per run in the outcome list.)
  const std::vector<SyncOutcome> outcomes = executor->Execute(MakeTasks(5000));
  const ExecuteStats& stats = executor->last_stats();
  EXPECT_EQ(stats.applied + stats.dropped, 5000u);
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("freshen_sync_dropped_total")->value,
                   static_cast<double>(stats.dropped));
  (void)outcomes;
}

TEST(SyncExecutorTest, TimeoutsCutOffStalledFetches) {
  obs::MetricsRegistry registry;
  SimulatedSource::Options source_options;
  source_options.stall_rate = 1.0;
  source_options.stall_latency_seconds = 60.0;
  SimulatedSource source = SimulatedSource::Create(source_options).value();
  SyncExecutor::Options options;
  options.registry = &registry;
  options.retry.max_attempts = 2;
  options.retry.attempt_timeout_seconds = 0.5;
  options.breaker.failure_threshold = 1000;  // Keep the breaker out of it.
  auto executor = SyncExecutor::Create(&source, options).value();
  const std::vector<SyncOutcome> outcomes = executor->Execute(MakeTasks(10));
  for (const SyncOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.kind, SyncOutcomeKind::kFailed);
    EXPECT_EQ(outcome.attempts, 2u);
  }
  // Every recorded latency is capped at the attempt timeout.
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* latency = snapshot.Find(
      "freshen_sync_fetch_latency_seconds", {{"source", "simulated"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 20u);
  EXPECT_DOUBLE_EQ(latency->sum, 20u * 0.5);
}

// --- OnlineFreshenLoop integration ---------------------------------------

ElementSet TestCatalog(size_t objects = 60, uint64_t seed = 20030305) {
  ExperimentSpec spec;
  spec.num_objects = objects;
  spec.theta = 1.0;
  spec.seed = seed;
  return GenerateCatalog(spec).value();
}

struct LoopRun {
  std::vector<PeriodStats> periods;
};

// Runs `periods` loop periods with an optional executor, all state isolated
// in a private registry.
LoopRun RunLoop(const ElementSet& truth, SyncExecutor* executor, int periods,
                obs::MetricsRegistry* registry) {
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 500.0;
  options.seed = 41;
  options.registry = registry;
  options.executor = executor;
  auto loop =
      OnlineFreshenLoop::Create(truth, /*bandwidth=*/30.0, options).value();
  LoopRun run;
  for (int period = 0; period < periods; ++period) {
    run.periods.push_back(loop.RunPeriod());
  }
  return run;
}

TEST(OnlineLoopSyncTest, PerfectExecutorMatchesInlinePathBitForBit) {
  const ElementSet truth = TestCatalog();
  obs::MetricsRegistry inline_registry;
  const LoopRun inline_run = RunLoop(truth, nullptr, 8, &inline_registry);

  PerfectSource source;
  obs::MetricsRegistry executor_registry;
  SyncExecutor::Options executor_options;
  executor_options.registry = &executor_registry;
  auto executor = SyncExecutor::Create(&source, executor_options).value();
  const LoopRun executor_run =
      RunLoop(truth, executor.get(), 8, &executor_registry);

  ASSERT_EQ(inline_run.periods.size(), executor_run.periods.size());
  for (size_t p = 0; p < inline_run.periods.size(); ++p) {
    const PeriodStats& a = inline_run.periods[p];
    const PeriodStats& b = executor_run.periods[p];
    EXPECT_EQ(a.accesses, b.accesses) << "period " << p;
    EXPECT_EQ(a.syncs, b.syncs) << "period " << p;
    EXPECT_DOUBLE_EQ(a.bandwidth_spent, b.bandwidth_spent) << "period " << p;
    EXPECT_DOUBLE_EQ(a.perceived_freshness, b.perceived_freshness)
        << "period " << p;
    EXPECT_DOUBLE_EQ(a.mean_access_age, b.mean_access_age) << "period " << p;
    EXPECT_EQ(a.replanned, b.replanned) << "period " << p;
    EXPECT_EQ(b.failed_syncs, 0u);
    EXPECT_EQ(b.wasted_bandwidth, 0.0);
  }
}

TEST(OnlineLoopSyncTest, InjectedFaultsDegradeFreshnessAndRecover) {
  const ElementSet truth = TestCatalog();
  const int periods = 10;

  obs::MetricsRegistry perfect_registry;
  const LoopRun perfect_run = RunLoop(truth, nullptr, periods,
                                      &perfect_registry);

  SimulatedSource::Options source_options;
  source_options.error_rate = 0.3;
  source_options.seed = 5;
  SimulatedSource source = SimulatedSource::Create(source_options).value();
  SyncExecutor::Options executor_options;
  obs::MetricsRegistry faulted_registry;
  executor_options.registry = &faulted_registry;
  executor_options.retry.max_attempts = 2;  // Leave failures visible.
  auto executor = SyncExecutor::Create(&source, executor_options).value();

  OnlineFreshenLoop::Options loop_options;
  loop_options.accesses_per_period = 500.0;
  loop_options.seed = 41;
  loop_options.registry = &faulted_registry;
  loop_options.executor = executor.get();
  auto loop =
      OnlineFreshenLoop::Create(truth, /*bandwidth=*/30.0, loop_options)
          .value();

  double perfect_mean = 0.0;
  double faulted_mean = 0.0;
  uint64_t failed = 0;
  double wasted = 0.0;
  for (int period = 0; period < periods; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    perfect_mean += perfect_run.periods[period].perceived_freshness;
    faulted_mean += stats.perceived_freshness;
    failed += stats.failed_syncs;
    wasted += stats.wasted_bandwidth;
  }
  // 30% failures => strictly lower perceived freshness on the same
  // seed/plan, visible failed syncs, and visible wasted bandwidth.
  EXPECT_LT(faulted_mean, perfect_mean);
  EXPECT_GT(failed, 0u);
  EXPECT_GT(wasted, 0.0);

  // Faults clear: the loop recovers within a few periods.
  source.SetFaultsEnabled(false);
  double last_faulted = 0.0;
  for (int period = 0; period < 4; ++period) {
    last_faulted = loop.RunPeriod().perceived_freshness;
  }
  // Steady-state perfect freshness on this workload (averaged for a stable
  // reference band).
  const double perfect_reference = perfect_mean / periods;
  EXPECT_GT(last_faulted, perfect_reference - 0.1);
}

TEST(OnlineLoopSyncTest, BreakerSkipsShowUpInPeriodStats) {
  const ElementSet truth = TestCatalog();
  SimulatedSource::Options source_options;
  source_options.error_rate = 1.0;
  SimulatedSource source = SimulatedSource::Create(source_options).value();
  obs::MetricsRegistry registry;
  SyncExecutor::Options executor_options;
  executor_options.registry = &registry;
  executor_options.retry.max_attempts = 1;
  executor_options.breaker.failure_threshold = 3;
  executor_options.breaker.open_duration_seconds = 10.0;  // > one period.
  auto executor = SyncExecutor::Create(&source, executor_options).value();
  const LoopRun run = RunLoop(truth, executor.get(), 3, &registry);
  uint64_t skipped = 0;
  uint64_t applied = 0;
  for (const PeriodStats& stats : run.periods) {
    skipped += stats.breaker_skipped_syncs;
    applied += stats.syncs;
  }
  EXPECT_GT(skipped, 0u);
  EXPECT_EQ(applied, 0u);  // Nothing ever succeeds against a dead source.
}

}  // namespace
}  // namespace sync
}  // namespace freshen
