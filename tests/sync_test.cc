// Unit tests for the sync building blocks: retry/backoff math (property
// test), the circuit-breaker state machine, and the fault-injecting sources.
#include <cmath>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "sync/circuit_breaker.h"
#include "sync/retry.h"
#include "sync/source.h"

namespace freshen {
namespace sync {
namespace {

TEST(RetryPolicyTest, ValidatesFields) {
  EXPECT_TRUE(ValidateRetryPolicy(RetryPolicy{}).ok());
  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_FALSE(ValidateRetryPolicy(zero_attempts).ok());
  RetryPolicy zero_base;
  zero_base.base_delay_seconds = 0.0;
  EXPECT_FALSE(ValidateRetryPolicy(zero_base).ok());
  RetryPolicy cap_below_base;
  cap_below_base.base_delay_seconds = 1.0;
  cap_below_base.max_delay_seconds = 0.5;
  EXPECT_FALSE(ValidateRetryPolicy(cap_below_base).ok());
  RetryPolicy zero_timeout;
  zero_timeout.attempt_timeout_seconds = 0.0;
  EXPECT_FALSE(ValidateRetryPolicy(zero_timeout).ok());
}

// Property: 10k decorrelated-jitter draws all stay within [base, cap], and
// the walk actually uses the upper range (it is not stuck at the base).
TEST(RetryPolicyTest, DecorrelatedJitterStaysWithinBaseAndCap) {
  RetryPolicy policy;
  policy.base_delay_seconds = 0.05;
  policy.max_delay_seconds = 2.0;
  Rng rng(12345);
  double delay = 0.0;  // "No previous delay" before the first retry.
  double max_seen = 0.0;
  for (int draw = 0; draw < 10000; ++draw) {
    delay = NextBackoffDelay(rng, policy, delay);
    ASSERT_GE(delay, policy.base_delay_seconds);
    ASSERT_LE(delay, policy.max_delay_seconds);
    max_seen = std::max(max_seen, delay);
    if (draw % 7 == 6) delay = 0.0;  // Restart the walk now and then.
  }
  EXPECT_GT(max_seen, 0.5 * policy.max_delay_seconds);
}

TEST(RetryPolicyTest, DegenerateEqualBaseAndCap) {
  RetryPolicy policy;
  policy.base_delay_seconds = 0.25;
  policy.max_delay_seconds = 0.25;
  Rng rng(9);
  for (int draw = 0; draw < 100; ++draw) {
    EXPECT_DOUBLE_EQ(NextBackoffDelay(rng, policy, 0.25), 0.25);
  }
}

CircuitBreaker MakeBreaker(uint32_t failures, double cooldown,
                           uint32_t successes = 1) {
  CircuitBreaker::Options options;
  options.failure_threshold = failures;
  options.open_duration_seconds = cooldown;
  options.success_threshold = successes;
  return CircuitBreaker::Create(options).value();
}

TEST(CircuitBreakerTest, ValidatesOptions) {
  CircuitBreaker::Options options;
  options.failure_threshold = 0;
  EXPECT_FALSE(CircuitBreaker::Create(options).ok());
  options = {};
  options.open_duration_seconds = 0.0;
  EXPECT_FALSE(CircuitBreaker::Create(options).ok());
  options = {};
  options.half_open_max_probes = 0;
  EXPECT_FALSE(CircuitBreaker::Create(options).ok());
  options = {};
  options.success_threshold = 0;
  EXPECT_FALSE(CircuitBreaker::Create(options).ok());
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker = MakeBreaker(3, 10.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(1.0);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // A success resets the consecutive count.
  breaker.RecordSuccess(3.0);
  breaker.RecordFailure(4.0);
  breaker.RecordFailure(5.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(6.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 1u);
  // Open: requests refused until the cool-down elapses.
  EXPECT_FALSE(breaker.AllowRequest(7.0));
  EXPECT_FALSE(breaker.AllowRequest(15.9));
}

TEST(CircuitBreakerTest, HalfOpenProbeRecloses) {
  CircuitBreaker breaker = MakeBreaker(2, 5.0);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Cool-down elapsed: exactly one probe is admitted.
  EXPECT_TRUE(breaker.AllowRequest(5.0));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest(5.1));  // Probe still in flight.
  breaker.RecordSuccess(5.2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(5.3));
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  CircuitBreaker breaker = MakeBreaker(2, 5.0);
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.0);
  ASSERT_TRUE(breaker.AllowRequest(5.0));
  breaker.RecordFailure(5.5);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 2u);
  // The cool-down restarted at 5.5, so 9.0 is still refused.
  EXPECT_FALSE(breaker.AllowRequest(9.0));
  EXPECT_TRUE(breaker.AllowRequest(10.5));
}

TEST(CircuitBreakerTest, SuccessThresholdRequiresMultipleProbes) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_duration_seconds = 1.0;
  options.half_open_max_probes = 2;
  options.success_threshold = 2;
  CircuitBreaker breaker = CircuitBreaker::Create(options).value();
  breaker.RecordFailure(0.0);
  ASSERT_TRUE(breaker.AllowRequest(1.0));
  ASSERT_TRUE(breaker.AllowRequest(1.0));
  EXPECT_FALSE(breaker.AllowRequest(1.0));  // Probe budget exhausted.
  breaker.RecordSuccess(1.1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordSuccess(1.2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerStateNameTest, CoversAllStates) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

TEST(PerfectSourceTest, AlwaysSucceedsInstantly) {
  PerfectSource source;
  for (uint64_t seq = 0; seq < 100; ++seq) {
    const FetchResult result = source.Fetch({seq % 7, 0.5, seq, 0});
    EXPECT_TRUE(result.status.ok());
    EXPECT_EQ(result.latency_seconds, 0.0);
  }
}

TEST(SimulatedSourceTest, ValidatesOptions) {
  SimulatedSource::Options options;
  options.error_rate = 1.5;
  EXPECT_FALSE(SimulatedSource::Create(options).ok());
  options = {};
  options.error_rate = 0.7;
  options.stall_rate = 0.7;
  EXPECT_FALSE(SimulatedSource::Create(options).ok());
  options = {};
  options.base_latency_seconds = -1.0;
  EXPECT_FALSE(SimulatedSource::Create(options).ok());
  options = {};
  options.outage_interval_seconds = 1.0;
  options.outage_duration_seconds = 2.0;
  EXPECT_FALSE(SimulatedSource::Create(options).ok());
}

TEST(SimulatedSourceTest, DeterministicInSeedSeqAndAttempt) {
  SimulatedSource::Options options;
  options.error_rate = 0.4;
  options.stall_rate = 0.1;
  options.seed = 99;
  SimulatedSource a = SimulatedSource::Create(options).value();
  SimulatedSource b = SimulatedSource::Create(options).value();
  for (uint64_t seq = 0; seq < 500; ++seq) {
    const FetchRequest request{seq % 11, 0.25, seq, uint32_t(seq % 3)};
    const FetchResult ra = a.Fetch(request);
    const FetchResult rb = b.Fetch(request);
    EXPECT_EQ(ra.status.code(), rb.status.code());
    EXPECT_DOUBLE_EQ(ra.latency_seconds, rb.latency_seconds);
  }
}

TEST(SimulatedSourceTest, ErrorRateIsRespected) {
  SimulatedSource::Options options;
  options.error_rate = 0.3;
  options.seed = 7;
  SimulatedSource source = SimulatedSource::Create(options).value();
  int errors = 0;
  const uint64_t trials = 10000;
  for (uint64_t seq = 0; seq < trials; ++seq) {
    if (!source.Fetch({0, 0.0, seq, 0}).status.ok()) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / static_cast<double>(trials), 0.3,
              0.02);
}

TEST(SimulatedSourceTest, StallsExceedTheStallLatency) {
  SimulatedSource::Options options;
  options.stall_rate = 1.0;
  options.stall_latency_seconds = 60.0;
  SimulatedSource source = SimulatedSource::Create(options).value();
  const FetchResult result = source.Fetch({0, 0.0, 0, 0});
  EXPECT_TRUE(result.status.ok());  // The executor's timeout cuts it off.
  EXPECT_DOUBLE_EQ(result.latency_seconds, 60.0);
}

TEST(SimulatedSourceTest, OutageWindowFailsFast) {
  SimulatedSource::Options options;
  options.outage_interval_seconds = 10.0;
  options.outage_duration_seconds = 2.0;
  SimulatedSource source = SimulatedSource::Create(options).value();
  // Scheduled inside the window (t mod 10 < 2): hard down.
  EXPECT_EQ(source.Fetch({0, 11.0, 0, 0}).status.code(),
            StatusCode::kUnavailable);
  // Outside the window: up.
  EXPECT_TRUE(source.Fetch({0, 15.0, 1, 0}).status.ok());
}

TEST(SimulatedSourceTest, FaultSwitchClearsEverything) {
  SimulatedSource::Options options;
  options.error_rate = 1.0;
  SimulatedSource source = SimulatedSource::Create(options).value();
  EXPECT_FALSE(source.Fetch({0, 0.0, 0, 0}).status.ok());
  source.SetFaultsEnabled(false);
  EXPECT_TRUE(source.Fetch({0, 0.0, 1, 0}).status.ok());
  source.SetFaultsEnabled(true);
  EXPECT_FALSE(source.Fetch({0, 0.0, 2, 0}).status.ok());
}

}  // namespace
}  // namespace sync
}  // namespace freshen
