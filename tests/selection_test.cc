// Tests for mirror-content selection (future-work §7 extension).
#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/metrics.h"
#include "selection/selection.h"
#include "workload/generator.h"

namespace freshen {
namespace {

TEST(SelectionTest, RuleNames) {
  EXPECT_EQ(ToString(SelectionRule::kByAccessProb), "BY_ACCESS_PROB");
  EXPECT_EQ(ToString(SelectionRule::kByProbOverLambda), "BY_P_OVER_LAMBDA");
  EXPECT_EQ(ToString(SelectionRule::kByPfValuePerByte),
            "BY_PF_VALUE_PER_BYTE");
}

TEST(SelectionTest, RespectsCapacity) {
  const ElementSet elements =
      MakeElementSet({1.0, 1.0, 1.0}, {0.5, 0.3, 0.2}, {2.0, 2.0, 2.0});
  const auto selection =
      SelectMirrorContents(elements, 4.0, SelectionRule::kByAccessProb)
          .value();
  EXPECT_EQ(selection.chosen.size(), 2u);
  EXPECT_LE(selection.storage_used, 4.0);
}

TEST(SelectionTest, PopularityRulePicksHottest) {
  const ElementSet elements =
      MakeElementSet({1.0, 1.0, 1.0}, {0.2, 0.5, 0.3});
  const auto selection =
      SelectMirrorContents(elements, 2.0, SelectionRule::kByAccessProb)
          .value();
  ASSERT_EQ(selection.chosen.size(), 2u);
  EXPECT_EQ(selection.chosen[0], 1u);
  EXPECT_EQ(selection.chosen[1], 2u);
  EXPECT_NEAR(selection.access_coverage, 0.8, 1e-12);
}

TEST(SelectionTest, SkipsOversizedAndContinues) {
  // A huge top-ranked object must not block smaller useful ones.
  const ElementSet elements =
      MakeElementSet({1.0, 1.0}, {0.9, 0.1}, {100.0, 1.0});
  const auto selection =
      SelectMirrorContents(elements, 2.0, SelectionRule::kByAccessProb)
          .value();
  ASSERT_EQ(selection.chosen.size(), 1u);
  EXPECT_EQ(selection.chosen[0], 1u);
}

TEST(SelectionTest, PfValueRulePrefersKeepableObjects) {
  // Equal popularity and size; one object changes so fast it cannot be kept
  // fresh — the PF-value rule must prefer the slow changer.
  const ElementSet elements =
      MakeElementSet({100.0, 0.5}, {0.5, 0.5}, {1.0, 1.0});
  const auto selection =
      SelectMirrorContents(elements, 1.0, SelectionRule::kByPfValuePerByte)
          .value();
  ASSERT_EQ(selection.chosen.size(), 1u);
  EXPECT_EQ(selection.chosen[0], 1u);
}

TEST(SelectionTest, SubcatalogExtractsChosenElements) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0}, {0.2, 0.3, 0.5}, {1.0, 2.0, 3.0});
  const ElementSet sub = Subcatalog(elements, {2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0].change_rate, 3.0);
  EXPECT_DOUBLE_EQ(sub[1].change_rate, 1.0);
}

TEST(SelectionTest, RejectsInvalidInput) {
  EXPECT_FALSE(
      SelectMirrorContents({}, 1.0, SelectionRule::kByAccessProb).ok());
  const ElementSet elements = MakeElementSet({1.0}, {1.0});
  EXPECT_FALSE(
      SelectMirrorContents(elements, 0.0, SelectionRule::kByAccessProb).ok());
}

TEST(SelectionTest, EndToEndPlannedFreshnessImprovesWithSmartSelection) {
  // With a tight storage budget, selecting by PF-value then planning beats
  // selecting by raw popularity when hot objects are hopelessly volatile.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 200;
  spec.theta = 0.8;
  spec.alignment = Alignment::kAligned;  // Hot objects change fastest.
  const ElementSet elements = GenerateCatalog(spec).value();
  const double capacity = 50.0;
  const double bandwidth = 25.0;

  double pf_by_rule[2] = {0.0, 0.0};
  const SelectionRule rules[2] = {SelectionRule::kByAccessProb,
                                  SelectionRule::kByPfValuePerByte};
  for (int r = 0; r < 2; ++r) {
    const auto selection =
        SelectMirrorContents(elements, capacity, rules[r]).value();
    const ElementSet sub = Subcatalog(elements, selection.chosen);
    const FreshenPlan plan = FreshenPlanner({}).Plan(sub, bandwidth).value();
    pf_by_rule[r] = plan.perceived_freshness;
  }
  // PF-value selection should not lose; usually it wins clearly.
  EXPECT_GE(pf_by_rule[1], pf_by_rule[0] - 1e-9);
}

}  // namespace
}  // namespace freshen
