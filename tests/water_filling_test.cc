// Tests for the exact KKT solver — including the paper's Table 1, which the
// solver must reproduce to two decimals.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "model/element.h"
#include "opt/kkt.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "rng/rng.h"

namespace freshen {
namespace {

// The paper's running example (§2.2.1): five equal-sized elements changing
// at 1..5 times/day, bandwidth 5 syncs/day.
ElementSet ToyCatalog(const std::vector<double>& probs) {
  return MakeElementSet({1.0, 2.0, 3.0, 4.0, 5.0}, probs);
}

Allocation SolvePf(const ElementSet& elements, double bandwidth,
                   bool size_aware = false) {
  KktWaterFillingSolver solver;
  auto result = solver.Solve(
      MakePerceivedProblem(elements, bandwidth, size_aware));
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(WaterFillingTable1Test, UniformProfileP1MatchesPaperRowB) {
  // P1 = uniform: Table 1 row (b) = (1.15, 1.36, 1.35, 1.14, 0.00). This is
  // also exactly the prior work's (Cho & Garcia-Molina) solution.
  const ElementSet elements = ToyCatalog({0.2, 0.2, 0.2, 0.2, 0.2});
  const Allocation allocation = SolvePf(elements, 5.0);
  const std::vector<double> expected = {1.15, 1.36, 1.35, 1.14, 0.00};
  ASSERT_EQ(allocation.frequencies.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(allocation.frequencies[i], expected[i], 0.005)
        << "element " << i;
  }
}

TEST(WaterFillingTable1Test, ProportionalProfileP2MatchesPaperRowC) {
  // P2 = (1..5)/15: p_i proportional to lambda_i, so optimal f_i is exactly
  // proportional to lambda_i: (0.33, 0.67, 1.00, 1.33, 1.67).
  const ElementSet elements =
      ToyCatalog({1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15});
  const Allocation allocation = SolvePf(elements, 5.0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(allocation.frequencies[i], (i + 1) / 3.0, 0.005)
        << "element " << i;
  }
}

TEST(WaterFillingTable1Test, ReverseProfileP3MatchesPaperRowD) {
  // P3 = (5..1)/15: Table 1 row (d) = (1.68, 1.83, 1.49, 0.00, 0.00).
  const ElementSet elements =
      ToyCatalog({5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15});
  const Allocation allocation = SolvePf(elements, 5.0);
  const std::vector<double> expected = {1.68, 1.83, 1.49, 0.00, 0.00};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(allocation.frequencies[i], expected[i], 0.01)
        << "element " << i;
  }
}

TEST(WaterFillingTest, BudgetMetExactly) {
  const ElementSet elements = ToyCatalog({0.1, 0.3, 0.2, 0.25, 0.15});
  const Allocation allocation = SolvePf(elements, 5.0);
  EXPECT_NEAR(allocation.bandwidth_used, 5.0, 1e-9);
}

TEST(WaterFillingTest, KktConditionsHoldOnToyExamples) {
  for (const auto& probs :
       {std::vector<double>{0.2, 0.2, 0.2, 0.2, 0.2},
        std::vector<double>{1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15},
        std::vector<double>{5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15,
                            1.0 / 15}}) {
    const ElementSet elements = ToyCatalog(probs);
    const CoreProblem problem = MakePerceivedProblem(elements, 5.0, false);
    KktWaterFillingSolver solver;
    const Allocation allocation = solver.Solve(problem).value();
    const KktReport report = VerifyKkt(problem, allocation, 1e-6);
    EXPECT_TRUE(report.satisfied) << report.ToString();
  }
}

TEST(WaterFillingTest, ZeroWeightElementGetsNothing) {
  ElementSet elements = ToyCatalog({0.5, 0.5, 0.0, 0.0, 0.0});
  const Allocation allocation = SolvePf(elements, 5.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[2], 0.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[3], 0.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[4], 0.0);
}

TEST(WaterFillingTest, ZeroChangeRateElementGetsNothing) {
  ElementSet elements = MakeElementSet({0.0, 2.0}, {0.9, 0.1});
  const Allocation allocation = SolvePf(elements, 1.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[0], 0.0);
  EXPECT_NEAR(allocation.frequencies[1], 1.0, 1e-9);
}

TEST(WaterFillingTest, NothingUsefulToSpendOn) {
  // All elements either never change or are never accessed.
  ElementSet elements = MakeElementSet({0.0, 5.0}, {1.0, 0.0});
  const Allocation allocation = SolvePf(elements, 3.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[0], 0.0);
  EXPECT_DOUBLE_EQ(allocation.frequencies[1], 0.0);
  EXPECT_DOUBLE_EQ(allocation.bandwidth_used, 0.0);
  // Objective is 1.0: the never-changing, always-accessed element is fresh.
  EXPECT_DOUBLE_EQ(allocation.objective, 1.0);
}

TEST(WaterFillingTest, SingleElementTakesAllBandwidth) {
  ElementSet elements = MakeElementSet({3.0}, {1.0});
  const Allocation allocation = SolvePf(elements, 2.5);
  EXPECT_NEAR(allocation.frequencies[0], 2.5, 1e-9);
}

TEST(WaterFillingTest, MoreBandwidthNeverHurts) {
  const ElementSet elements = ToyCatalog({0.3, 0.25, 0.2, 0.15, 0.1});
  double prev_objective = -1.0;
  for (double bandwidth : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const Allocation allocation = SolvePf(elements, bandwidth);
    EXPECT_GT(allocation.objective, prev_objective) << bandwidth;
    prev_objective = allocation.objective;
  }
}

TEST(WaterFillingTest, ObjectiveBeatsProportionalAndUniformBaselines) {
  const ElementSet elements = ToyCatalog({0.5, 0.05, 0.05, 0.1, 0.3});
  const double bandwidth = 5.0;
  const CoreProblem problem =
      MakePerceivedProblem(elements, bandwidth, false);
  const Allocation allocation =
      KktWaterFillingSolver().Solve(problem).value();
  const std::vector<double> uniform(5, 1.0);
  std::vector<double> proportional(5);
  for (size_t i = 0; i < 5; ++i) {
    proportional[i] = bandwidth * elements[i].access_prob;
  }
  EXPECT_GE(allocation.objective, problem.Objective(uniform) - 1e-12);
  EXPECT_GE(allocation.objective, problem.Objective(proportional) - 1e-12);
}

TEST(WaterFillingTest, SizeAwareConstraintUsesSizes) {
  // Two identical elements except size; size-aware optimum syncs the small
  // one more often.
  ElementSet elements = MakeElementSet({2.0, 2.0}, {0.5, 0.5}, {1.0, 4.0});
  const Allocation allocation = SolvePf(elements, 4.0, /*size_aware=*/true);
  EXPECT_GT(allocation.frequencies[0], allocation.frequencies[1]);
  EXPECT_NEAR(allocation.frequencies[0] + 4.0 * allocation.frequencies[1],
              4.0, 1e-9);
}

TEST(WaterFillingTest, SizeAwareKktHolds) {
  ElementSet elements = MakeElementSet({1.0, 2.0, 3.0, 4.0}, //
                                       {0.4, 0.3, 0.2, 0.1}, //
                                       {0.5, 1.0, 2.0, 4.0});
  const CoreProblem problem = MakePerceivedProblem(elements, 6.0, true);
  const Allocation allocation =
      KktWaterFillingSolver().Solve(problem).value();
  const KktReport report = VerifyKkt(problem, allocation, 1e-6);
  EXPECT_TRUE(report.satisfied) << report.ToString();
}

TEST(WaterFillingTest, GeneralProblemIgnoresProfile) {
  // GF must produce the same schedule regardless of the profile.
  const ElementSet a = ToyCatalog({0.9, 0.025, 0.025, 0.025, 0.025});
  const ElementSet b = ToyCatalog({0.2, 0.2, 0.2, 0.2, 0.2});
  KktWaterFillingSolver solver;
  const Allocation fa = solver.Solve(MakeGeneralProblem(a, 5.0)).value();
  const Allocation fb = solver.Solve(MakeGeneralProblem(b, 5.0)).value();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(fa.frequencies[i], fb.frequencies[i], 1e-9);
  }
}

TEST(WaterFillingTest, RejectsInvalidProblems) {
  KktWaterFillingSolver solver;
  CoreProblem empty;
  empty.bandwidth = 1.0;
  EXPECT_FALSE(solver.Solve(empty).ok());

  CoreProblem bad_bandwidth;
  bad_bandwidth.weights = {1.0};
  bad_bandwidth.change_rates = {1.0};
  bad_bandwidth.costs = {1.0};
  bad_bandwidth.bandwidth = 0.0;
  EXPECT_FALSE(solver.Solve(bad_bandwidth).ok());

  CoreProblem negative_weight;
  negative_weight.weights = {-0.1};
  negative_weight.change_rates = {1.0};
  negative_weight.costs = {1.0};
  negative_weight.bandwidth = 1.0;
  EXPECT_FALSE(solver.Solve(negative_weight).ok());

  CoreProblem zero_cost;
  zero_cost.weights = {0.5};
  zero_cost.change_rates = {1.0};
  zero_cost.costs = {0.0};
  zero_cost.bandwidth = 1.0;
  EXPECT_FALSE(solver.Solve(zero_cost).ok());

  CoreProblem mismatched;
  mismatched.weights = {0.5, 0.5};
  mismatched.change_rates = {1.0};
  mismatched.costs = {1.0, 1.0};
  mismatched.bandwidth = 1.0;
  EXPECT_FALSE(solver.Solve(mismatched).ok());
}

// Property sweep: KKT conditions hold on random instances of varying size.
class WaterFillingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WaterFillingPropertyTest, RandomInstanceSatisfiesKkt) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919);
  CoreProblem problem;
  problem.bandwidth = 0.0;
  for (int i = 0; i < n; ++i) {
    problem.weights.push_back(rng.NextDoubleIn(0.0, 1.0));
    problem.change_rates.push_back(rng.NextDoubleIn(0.01, 10.0));
    problem.costs.push_back(rng.NextDoubleIn(0.1, 5.0));
  }
  problem.bandwidth = 0.3 * n;
  const Allocation allocation =
      KktWaterFillingSolver().Solve(problem).value();
  const KktReport report = VerifyKkt(problem, allocation, 1e-5);
  EXPECT_TRUE(report.satisfied) << "n=" << n << " " << report.ToString();
  EXPECT_NEAR(allocation.bandwidth_used, problem.bandwidth,
              1e-9 * problem.bandwidth);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WaterFillingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 100, 500, 2000,
                                           10000));

}  // namespace
}  // namespace freshen
