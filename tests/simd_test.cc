// common/simd.h + model/freshness_batch.h — the SIMD transcendental layer
// under the water-filling solvers. The load-bearing contracts:
//
//   * Batch == Ref bitwise, per element, at EVERY length. The batch drivers
//     pad tails to full vectors, and lane independence means padding (and
//     which lanes share a vector) cannot change any element's value. Tails
//     are where that breaks if it breaks, so every length in
//     [1, 2*lanes + 3] is exercised.
//   * Seeds are hints only: an out-of-bracket or non-positive seed falls
//     back to the cold analytic seed bitwise; a good seed converges to the
//     same root to ~ulp.
//   * Accuracy: the kernels agree with an independent long-double oracle
//     (series-based near zero, where the direct forms cancel) to ~1e-11,
//     and with the libm-based scalars in model/freshness.h to ~1e-10 —
//     close, but never assumed bitwise.
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "model/freshness.h"
#include "model/freshness_batch.h"

namespace freshen {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

double RelDiff(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return scale == 0.0 ? 0.0 : std::fabs(a - b) / scale;
}

// Log-uniform sample in [lo, hi].
double LogUniform(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> u(std::log(lo), std::log(hi));
  return std::exp(u(rng));
}

// ---------------------------------------------------------------------------
// Independent long-double oracle for g and h. The direct forms
// 1 - (1+r)e^{-r} and r^2/2 - g(r) cancel catastrophically for small r even
// in 80-bit arithmetic (ulp(1) = 5.4e-20 vs g(r) ~ r^2/2), so below 0.5 the
// oracle uses the exact alternating series
//   g(r) = sum_{k>=2} (-1)^k (k-1)/k! r^k,
//   h(r) = sum_{k>=3} (-1)^{k+1} (k-1)/k! r^k,
// truncated far below long-double epsilon.
// ---------------------------------------------------------------------------

long double OracleG(long double r) {
  if (r >= 0.5L) return 1.0L - (1.0L + r) * std::exp(-r);
  long double sum = 0.0L;
  long double factorial = 2.0L;  // k! starting at k = 2.
  long double power = r * r;     // r^k.
  long double sign = 1.0L;       // (-1)^k.
  for (int k = 2; k <= 48; ++k) {
    sum += sign * (k - 1) / factorial * power;
    factorial *= (k + 1);
    power *= r;
    sign = -sign;
  }
  return sum;
}

long double OracleH(long double r) {
  if (r >= 0.5L) return r * r / 2.0L - OracleG(r);
  long double sum = 0.0L;
  long double factorial = 6.0L;  // 3!
  long double power = r * r * r;
  long double sign = 1.0L;  // (-1)^{k+1} at k = 3.
  for (int k = 3; k <= 48; ++k) {
    sum += sign * (k - 1) / factorial * power;
    factorial *= (k + 1);
    power *= r;
    sign = -sign;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// simd.h batch primitives: batch == scalar-ref bitwise at every tail length.
// ---------------------------------------------------------------------------

using ScalarFn = double (*)(double);
using BatchFn = void (*)(const double*, double*, size_t);

void CheckBatchMatchesRef(BatchFn batch, ScalarFn ref, double lo, double hi,
                          const char* name) {
  std::mt19937_64 rng(0xC0FFEEu);
  std::uniform_real_distribution<double> u(lo, hi);
  const size_t lanes = simd::kLanes;
  for (size_t n = 1; n <= 2 * lanes + 3; ++n) {
    std::vector<double> x(n), out(n, -1e300);
    for (double& v : x) v = u(rng);
    batch(x.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(out[i], ref(x[i])))
          << name << " n=" << n << " i=" << i << " x=" << x[i]
          << " batch=" << out[i] << " ref=" << ref(x[i]);
    }
  }
}

TEST(SimdBatchTest, ExpBatchMatchesRefBitwiseAtAllTailLengths) {
  CheckBatchMatchesRef(simd::ExpBatch, simd::ExpRef, -700.0, 700.0, "exp");
}

TEST(SimdBatchTest, Expm1BatchMatchesRefBitwiseAtAllTailLengths) {
  CheckBatchMatchesRef(simd::Expm1Batch, simd::Expm1Ref, -40.0, 40.0,
                       "expm1");
}

TEST(SimdBatchTest, Log1pBatchMatchesRefBitwiseAtAllTailLengths) {
  CheckBatchMatchesRef(simd::Log1pBatch, simd::Log1pRef, -0.999999, 1e6,
                       "log1p");
}

TEST(SimdBatchTest, LogPosBatchMatchesRefBitwiseAtAllTailLengths) {
  // Positive-normal domain across many binades (padding uses 0.0 internally
  // only for lanes past the tail, which are discarded).
  std::mt19937_64 rng(0xBEEFu);
  const size_t lanes = simd::kLanes;
  for (size_t n = 1; n <= 2 * lanes + 3; ++n) {
    std::vector<double> x(n), out(n, -1e300);
    for (double& v : x) v = LogUniform(rng, 1e-290, 1e290);
    simd::LogPosBatch(x.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(out[i], simd::LogPosRef(x[i])))
          << "logpos n=" << n << " i=" << i << " x=" << x[i];
    }
  }
}

TEST(SimdBatchTest, PrimitivesMatchLibmClosely) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> ue(-700.0, 700.0);
  std::uniform_real_distribution<double> um(-30.0, 30.0);
  for (int i = 0; i < 20000; ++i) {
    const double xe = ue(rng);
    EXPECT_LE(RelDiff(simd::ExpRef(xe), std::exp(xe)), 1e-15) << "x=" << xe;
    const double xm = um(rng);
    EXPECT_LE(RelDiff(simd::Expm1Ref(xm), std::expm1(xm)), 1e-15)
        << "x=" << xm;
    const double xl = std::exp(um(rng)) - 1.0;  // log1p domain, wide range.
    EXPECT_LE(RelDiff(simd::Log1pRef(xl), std::log1p(xl)), 1e-15)
        << "x=" << xl;
    const double xp = LogUniform(rng, 1e-290, 1e290);
    EXPECT_LE(RelDiff(simd::LogPosRef(xp), std::log(xp)), 1e-15)
        << "x=" << xp;
  }
}

TEST(SimdBatchTest, LogPosIsAccurateForTinyArguments) {
  // The motivating case for LogPos over log1p(x-1): v << 1, where the
  // (v-1)+1 round trip would lose everything. This is what fixed the
  // h^{-1} cold seed at y ~ 1e-14.
  for (double v : {1e-300, 1e-100, 3e-14, 1e-8, 0.1, 1.0 - 1e-16}) {
    EXPECT_LE(RelDiff(simd::LogPosRef(v), std::log(v)), 1e-15) << "v=" << v;
  }
}

// ---------------------------------------------------------------------------
// freshness_batch kernels.
// ---------------------------------------------------------------------------

TEST(FreshnessBatchTest, BackendIsReported) {
  const std::string backend = BatchKernelBackend();
  EXPECT_TRUE(backend == "avx512" || backend == "avx2" || backend == "neon" ||
              backend == "scalar")
      << backend;
  EXPECT_GE(BatchKernelLanes(), 1u);
  EXPECT_EQ(BatchKernelLanes(), simd::kLanes);
}

TEST(FreshnessBatchTest, GainMatchesRefBitwiseAtAllTailLengths) {
  std::mt19937_64 rng(11);
  const size_t lanes = BatchKernelLanes();
  for (size_t n = 1; n <= 2 * lanes + 3; ++n) {
    std::vector<double> r(n), out(n, -1.0);
    for (double& v : r) v = LogUniform(rng, 1e-12, 700.0);
    BatchMarginalGainG(r.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(out[i], RefMarginalGainG(r[i])))
          << "n=" << n << " i=" << i << " r=" << r[i];
    }
  }
}

TEST(FreshnessBatchTest, InverseGMatchesRefBitwiseAtAllTailLengths) {
  std::mt19937_64 rng(12);
  const size_t lanes = BatchKernelLanes();
  for (size_t n = 1; n <= 2 * lanes + 3; ++n) {
    std::vector<double> y(n), seeds(n), out(n, -1.0);
    for (size_t i = 0; i < n; ++i) {
      y[i] = LogUniform(rng, 1e-14, 1.0 - 1e-9);
      // Mix of cold (0), garbage (out-of-bracket), and plausible seeds:
      // each lane's result must still match the one-lane reference given
      // the same seed.
      const int kind = static_cast<int>(rng() % 3);
      seeds[i] = kind == 0 ? 0.0 : kind == 1 ? 1e9 : std::sqrt(2.0 * y[i]);
    }
    BatchInverseMarginalGainG(y.data(), seeds.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(out[i], RefInverseMarginalGainG(y[i], seeds[i])))
          << "n=" << n << " i=" << i << " y=" << y[i] << " seed=" << seeds[i];
    }
    // nullptr seeds == all-cold.
    std::vector<double> cold(n, -1.0);
    BatchInverseMarginalGainG(y.data(), nullptr, cold.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(cold[i], RefInverseMarginalGainG(y[i], 0.0)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(FreshnessBatchTest, InverseHMatchesRefBitwiseAtAllTailLengths) {
  std::mt19937_64 rng(13);
  const size_t lanes = BatchKernelLanes();
  for (size_t n = 1; n <= 2 * lanes + 3; ++n) {
    std::vector<double> y(n), out(n, -1.0);
    for (double& v : y) v = LogUniform(rng, 1e-14, 1e8);
    BatchInverseAgeMarginalKernelH(y.data(), nullptr, out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(SameBits(out[i], RefInverseAgeMarginalKernelH(y[i], 0.0)))
          << "n=" << n << " i=" << i << " y=" << y[i];
    }
  }
}

TEST(FreshnessBatchTest, OutOfBracketSeedsFallBackToColdBitwise) {
  // The seeds-are-hints contract: a rejected seed must not merely converge
  // near the cold answer, it must take the cold path exactly.
  std::mt19937_64 rng(14);
  for (int i = 0; i < 2000; ++i) {
    const double yg = LogUniform(rng, 1e-13, 1.0 - 1e-9);
    for (double bad : {0.0, -3.0, 1e12}) {
      EXPECT_TRUE(SameBits(RefInverseMarginalGainG(yg, bad),
                           RefInverseMarginalGainG(yg, 0.0)))
          << "y=" << yg << " seed=" << bad;
    }
    const double yh = LogUniform(rng, 1e-13, 1e7);
    for (double bad : {0.0, -3.0, 1e12}) {
      EXPECT_TRUE(SameBits(RefInverseAgeMarginalKernelH(yh, bad),
                           RefInverseAgeMarginalKernelH(yh, 0.0)))
          << "y=" << yh << " seed=" << bad;
    }
  }
}

TEST(FreshnessBatchTest, WarmSeedsConvergeToTheColdRoot) {
  // A good (in-bracket) seed may take a different iteration path but must
  // land in the same stopping band as the cold start — the property that
  // lets the multiplier search warm-start every probe without perturbing
  // the lattice predicate. The band is set by the step-based convergence
  // criterion, ~1e-13 relative at worst (h near its cube-root regime);
  // the lattice search's margin budget assumes < 1e-12.
  std::mt19937_64 rng(15);
  for (int i = 0; i < 5000; ++i) {
    const double yg = LogUniform(rng, 1e-13, 1.0 - 1e-9);
    const double cold_g = RefInverseMarginalGainG(yg, 0.0);
    // Perturbed true root and a mediocre guess, both in-bracket.
    for (double seed : {cold_g * 1.01, cold_g * 0.5 + 1e-8}) {
      EXPECT_LE(RelDiff(RefInverseMarginalGainG(yg, seed), cold_g), 1e-12)
          << "y=" << yg << " seed=" << seed;
    }
    const double yh = LogUniform(rng, 1e-13, 1e7);
    const double cold_h = RefInverseAgeMarginalKernelH(yh, 0.0);
    for (double seed : {cold_h * 1.01, cold_h * 0.5 + 1e-10}) {
      EXPECT_LE(RelDiff(RefInverseAgeMarginalKernelH(yh, seed), cold_h),
                1e-12)
          << "y=" << yh << " seed=" << seed;
    }
  }
}

TEST(FreshnessBatchTest, InverseGRoundTripsAgainstOracle) {
  std::mt19937_64 rng(16);
  double worst = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double y = LogUniform(rng, 1e-14, 1.0 - 1e-12);
    const double r = RefInverseMarginalGainG(y, 0.0);
    ASSERT_GT(r, 0.0) << "y=" << y;
    const long double back = OracleG(static_cast<long double>(r));
    const double rel = static_cast<double>(
        std::fabs(back - static_cast<long double>(y)) / y);
    worst = std::max(worst, rel);
    ASSERT_LE(rel, 1e-11) << "y=" << y << " r=" << r;
  }
  // The implementation currently achieves ~3e-14; the bound above leaves
  // headroom without letting a cancellation regression (the old direct-form
  // seams were ~1e-3 at tiny y) slip through.
  EXPECT_LE(worst, 1e-11);
}

TEST(FreshnessBatchTest, InverseHRoundTripsAgainstOracle) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double y = LogUniform(rng, 1e-14, 1e8);
    const double r = RefInverseAgeMarginalKernelH(y, 0.0);
    ASSERT_GT(r, 0.0) << "y=" << y;
    const long double back = OracleH(static_cast<long double>(r));
    const double rel = static_cast<double>(
        std::fabs(back - static_cast<long double>(y)) / y);
    ASSERT_LE(rel, 1e-11) << "y=" << y << " r=" << r;
  }
}

TEST(FreshnessBatchTest, AgreesWithLibmScalarsClosely) {
  // The batch kernels deliberately do NOT replace model/freshness.h; the
  // two implementations agree tightly but never bitwise by contract.
  std::mt19937_64 rng(18);
  for (int i = 0; i < 5000; ++i) {
    const double r = LogUniform(rng, 1e-6, 100.0);
    EXPECT_LE(RelDiff(RefMarginalGainG(r), MarginalGainG(r)), 1e-10)
        << "r=" << r;
    const double yg = LogUniform(rng, 1e-8, 1.0 - 1e-9);
    EXPECT_LE(RelDiff(RefInverseMarginalGainG(yg, 0.0),
                      InverseMarginalGainG(yg)),
              1e-9)
        << "y=" << yg;
    const double yh = LogUniform(rng, 1e-6, 1e6);
    EXPECT_LE(RelDiff(RefInverseAgeMarginalKernelH(yh, 0.0),
                      InverseAgeMarginalKernelH(yh)),
              1e-9)
        << "y=" << yh;
  }
}

}  // namespace
}  // namespace freshen
