// Property-based sweeps (parameterized gtest): invariants that must hold
// across randomized instances of every major component.
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/metrics.h"
#include "opt/kkt.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "partition/kmeans.h"
#include "rng/rng.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace freshen {
namespace {

// Random-but-reproducible catalog keyed by a single integer.
ElementSet RandomCatalog(int key, size_t n, bool sized) {
  Rng rng(static_cast<uint64_t>(key) * 1000003 + 17);
  std::vector<double> rates(n);
  std::vector<double> probs(n);
  std::vector<double> sizes(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    rates[i] = rng.NextDoubleIn(0.0, 12.0);
    probs[i] = rng.NextDoubleIn(0.0, 1.0);
    if (sized) sizes[i] = rng.NextDoubleIn(0.05, 20.0);
  }
  // Normalize probs; leave a few zeros to exercise edge cases.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 13 == 7) probs[i] = 0.0;
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return MakeElementSet(rates, probs, sizes);
}

class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  // No randomly generated feasible allocation may beat the KKT optimum.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 60, /*sized=*/true);
  const double bandwidth = 25.0;
  const CoreProblem problem = MakePerceivedProblem(elements, bandwidth, true);
  const Allocation optimum = KktWaterFillingSolver().Solve(problem).value();

  Rng rng(static_cast<uint64_t>(key) + 5);
  for (int trial = 0; trial < 40; ++trial) {
    // Random point on the budget surface.
    std::vector<double> point(elements.size());
    double spend = 0.0;
    for (size_t i = 0; i < point.size(); ++i) {
      point[i] = rng.NextDouble();
      spend += point[i] * problem.costs[i];
    }
    for (double& f : point) f *= bandwidth / spend;
    EXPECT_LE(problem.Objective(point), optimum.objective + 1e-9)
        << "key=" << key << " trial=" << trial;
  }
}

TEST_P(SolverPropertyTest, SizeAwareOptimumDominatesSizeBlindRescaled) {
  // The §5 claim as an invariant: after normalizing both to the true sized
  // budget, the size-aware optimum is at least as good.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 80, /*sized=*/true);
  PlannerOptions aware;
  aware.size_aware = true;
  PlannerOptions blind;
  blind.size_aware = false;
  const double bandwidth = 30.0;
  const double pf_aware = FreshenPlanner(aware)
                              .Plan(elements, bandwidth)
                              .value()
                              .perceived_freshness;
  const double pf_blind = FreshenPlanner(blind)
                              .Plan(elements, bandwidth)
                              .value()
                              .perceived_freshness;
  EXPECT_GE(pf_aware, pf_blind - 1e-9) << "key=" << key;
}

TEST_P(SolverPropertyTest, MultiplierEqualsMarginalValueOfBandwidth) {
  // Envelope theorem: dObjective/dBandwidth == the Lagrange multiplier.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 50, /*sized=*/false);
  const double bandwidth = 20.0;
  const CoreProblem problem =
      MakePerceivedProblem(elements, bandwidth, false);
  CoreProblem nudged = problem;
  const double h = 1e-4;
  nudged.bandwidth += h;
  KktWaterFillingSolver solver;
  const Allocation base = solver.Solve(problem).value();
  const Allocation plus = solver.Solve(nudged).value();
  const double numeric = (plus.objective - base.objective) / h;
  EXPECT_NEAR(numeric, base.multiplier,
              1e-3 * base.multiplier + 1e-9)
      << "key=" << key;
}

TEST_P(SolverPropertyTest, PartitionedNeverBeatsExact) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 120, /*sized=*/false);
  const double bandwidth = 40.0;
  const double exact = FreshenPlanner({})
                           .Plan(elements, bandwidth)
                           .value()
                           .perceived_freshness;
  for (size_t k : {3u, 10u, 30u}) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.num_partitions = k;
    options.kmeans_iterations = key % 4;
    const double heuristic = FreshenPlanner(options)
                                 .Plan(elements, bandwidth)
                                 .value()
                                 .perceived_freshness;
    EXPECT_LE(heuristic, exact + 1e-9) << "key=" << key << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, SolverPropertyTest,
                         ::testing::Range(0, 12));

class SimulatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorPropertyTest, EmpiricalTracksAnalyticFreshness) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 40, /*sized=*/false);
  // A deliberately arbitrary (non-optimal) schedule: the agreement must
  // hold for ANY frequency vector, not just planner output.
  Rng rng(static_cast<uint64_t>(key) * 31 + 1);
  std::vector<double> freqs(elements.size());
  for (double& f : freqs) f = rng.NextDoubleIn(0.0, 3.0);
  SimulationConfig config;
  config.horizon_periods = 250.0;
  config.accesses_per_period = 1500.0;
  config.warmup_periods = 25.0;
  config.seed = static_cast<uint64_t>(key);
  const SimulationResult result =
      MirrorSimulator(elements, config).Run(freqs).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              result.analytic_perceived_freshness, 0.025)
      << "key=" << key;
  EXPECT_NEAR(result.empirical_general_freshness,
              result.analytic_general_freshness, 0.025)
      << "key=" << key;
}

INSTANTIATE_TEST_SUITE_P(Keys, SimulatorPropertyTest,
                         ::testing::Range(0, 8));

class KMeansPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansPropertyTest, RefinePreservesCoverageAndDistortion) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 200, /*sized=*/false);
  const auto initial =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness,
                      5 + static_cast<size_t>(key) * 3)
          .value();
  KMeansRefiner refiner(elements, {});
  const auto refined = refiner.Refine(initial, 6).value();
  size_t covered = 0;
  for (const auto& part : refined) covered += part.members.size();
  EXPECT_EQ(covered, elements.size());
  EXPECT_LE(refiner.Distortion(refined),
            refiner.Distortion(initial) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Keys, KMeansPropertyTest, ::testing::Range(0, 10));

TEST_P(SolverPropertyTest, ProblemIsScaleInvariant) {
  // F depends only on lambda/f, so scaling every change rate AND the budget
  // by c yields the same perceived freshness with frequencies scaled by c.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 70, /*sized=*/false);
  const double bandwidth = 30.0;
  const double c = 3.5;
  ElementSet scaled = elements;
  for (Element& e : scaled) e.change_rate *= c;

  const FreshenPlan base = FreshenPlanner({}).Plan(elements, bandwidth).value();
  const FreshenPlan big =
      FreshenPlanner({}).Plan(scaled, bandwidth * c).value();
  EXPECT_NEAR(base.perceived_freshness, big.perceived_freshness, 1e-9)
      << "key=" << key;
  for (size_t i = 0; i < elements.size(); ++i) {
    // Individual frequencies agree loosely: the element at the funding
    // cutoff absorbs the budget residual (see water_filling.cc), and its
    // share is rounding-dependent — objective-neutral, since its marginal
    // equals the multiplier across the whole gap. The tight guarantee is
    // the objective equality asserted above.
    EXPECT_NEAR(big.frequencies[i], c * base.frequencies[i],
                0.02 * (1.0 + c * base.frequencies[i]))
        << "key=" << key << " i=" << i;
  }
}

}  // namespace
}  // namespace freshen
