// Property-based sweeps (parameterized gtest): invariants that must hold
// across randomized instances of every major component.
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/freshness.h"
#include "model/metrics.h"
#include "opt/kkt.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "partition/kmeans.h"
#include "rng/rng.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace freshen {
namespace {

// Random-but-reproducible catalog keyed by a single integer.
ElementSet RandomCatalog(int key, size_t n, bool sized) {
  Rng rng(static_cast<uint64_t>(key) * 1000003 + 17);
  std::vector<double> rates(n);
  std::vector<double> probs(n);
  std::vector<double> sizes(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    rates[i] = rng.NextDoubleIn(0.0, 12.0);
    probs[i] = rng.NextDoubleIn(0.0, 1.0);
    if (sized) sizes[i] = rng.NextDoubleIn(0.05, 20.0);
  }
  // Normalize probs; leave a few zeros to exercise edge cases.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 13 == 7) probs[i] = 0.0;
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return MakeElementSet(rates, probs, sizes);
}

class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  // No randomly generated feasible allocation may beat the KKT optimum.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 60, /*sized=*/true);
  const double bandwidth = 25.0;
  const CoreProblem problem = MakePerceivedProblem(elements, bandwidth, true);
  const Allocation optimum = KktWaterFillingSolver().Solve(problem).value();

  Rng rng(static_cast<uint64_t>(key) + 5);
  for (int trial = 0; trial < 40; ++trial) {
    // Random point on the budget surface.
    std::vector<double> point(elements.size());
    double spend = 0.0;
    for (size_t i = 0; i < point.size(); ++i) {
      point[i] = rng.NextDouble();
      spend += point[i] * problem.costs[i];
    }
    for (double& f : point) f *= bandwidth / spend;
    EXPECT_LE(problem.Objective(point), optimum.objective + 1e-9)
        << "key=" << key << " trial=" << trial;
  }
}

TEST_P(SolverPropertyTest, SizeAwareOptimumDominatesSizeBlindRescaled) {
  // The §5 claim as an invariant: after normalizing both to the true sized
  // budget, the size-aware optimum is at least as good.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 80, /*sized=*/true);
  PlannerOptions aware;
  aware.size_aware = true;
  PlannerOptions blind;
  blind.size_aware = false;
  const double bandwidth = 30.0;
  const double pf_aware = FreshenPlanner(aware)
                              .Plan(elements, bandwidth)
                              .value()
                              .perceived_freshness;
  const double pf_blind = FreshenPlanner(blind)
                              .Plan(elements, bandwidth)
                              .value()
                              .perceived_freshness;
  EXPECT_GE(pf_aware, pf_blind - 1e-9) << "key=" << key;
}

TEST_P(SolverPropertyTest, MultiplierEqualsMarginalValueOfBandwidth) {
  // Envelope theorem: dObjective/dBandwidth == the Lagrange multiplier.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 50, /*sized=*/false);
  const double bandwidth = 20.0;
  const CoreProblem problem =
      MakePerceivedProblem(elements, bandwidth, false);
  CoreProblem nudged = problem;
  const double h = 1e-4;
  nudged.bandwidth += h;
  KktWaterFillingSolver solver;
  const Allocation base = solver.Solve(problem).value();
  const Allocation plus = solver.Solve(nudged).value();
  const double numeric = (plus.objective - base.objective) / h;
  EXPECT_NEAR(numeric, base.multiplier,
              1e-3 * base.multiplier + 1e-9)
      << "key=" << key;
}

TEST_P(SolverPropertyTest, PartitionedNeverBeatsExact) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 120, /*sized=*/false);
  const double bandwidth = 40.0;
  const double exact = FreshenPlanner({})
                           .Plan(elements, bandwidth)
                           .value()
                           .perceived_freshness;
  for (size_t k : {3u, 10u, 30u}) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.num_partitions = k;
    options.kmeans_iterations = key % 4;
    const double heuristic = FreshenPlanner(options)
                                 .Plan(elements, bandwidth)
                                 .value()
                                 .perceived_freshness;
    EXPECT_LE(heuristic, exact + 1e-9) << "key=" << key << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Keys, SolverPropertyTest,
                         ::testing::Range(0, 12));

class SimulatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorPropertyTest, EmpiricalTracksAnalyticFreshness) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 40, /*sized=*/false);
  // A deliberately arbitrary (non-optimal) schedule: the agreement must
  // hold for ANY frequency vector, not just planner output.
  Rng rng(static_cast<uint64_t>(key) * 31 + 1);
  std::vector<double> freqs(elements.size());
  for (double& f : freqs) f = rng.NextDoubleIn(0.0, 3.0);
  SimulationConfig config;
  config.horizon_periods = 250.0;
  config.accesses_per_period = 1500.0;
  config.warmup_periods = 25.0;
  config.seed = static_cast<uint64_t>(key);
  const SimulationResult result =
      MirrorSimulator(elements, config).Run(freqs).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              result.analytic_perceived_freshness, 0.025)
      << "key=" << key;
  EXPECT_NEAR(result.empirical_general_freshness,
              result.analytic_general_freshness, 0.025)
      << "key=" << key;
}

INSTANTIATE_TEST_SUITE_P(Keys, SimulatorPropertyTest,
                         ::testing::Range(0, 8));

class KMeansPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansPropertyTest, RefinePreservesCoverageAndDistortion) {
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 200, /*sized=*/false);
  const auto initial =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness,
                      5 + static_cast<size_t>(key) * 3)
          .value();
  KMeansRefiner refiner(elements, {});
  const auto refined = refiner.Refine(initial, 6).value();
  size_t covered = 0;
  for (const auto& part : refined) covered += part.members.size();
  EXPECT_EQ(covered, elements.size());
  EXPECT_LE(refiner.Distortion(refined),
            refiner.Distortion(initial) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Keys, KMeansPropertyTest, ::testing::Range(0, 10));

// ---- Inverse-kernel round trips -----------------------------------------
// The water-filling solvers stand on g^{-1} and h^{-1}; their documented
// contract is |g(g^{-1}(y)) - y| <= 1e-12. Sweep y log-spaced across the
// whole domain so both the small-r series branch and the direct evaluation
// (and the crossover between them) are hit.

TEST(KernelRoundTripTest, MarginalGainGRoundTripsAcrossDomain) {
  // g maps [0, inf) onto [0, 1); log-space y from deep in the series branch
  // (g(r) ~ r^2/2, so y = 1e-18 -> r ~ 2e-9) up to nearly 1.
  for (int e = -180; e <= -1; ++e) {
    const double y = std::pow(10.0, static_cast<double>(e) / 10.0);
    const double r = InverseMarginalGainG(y);
    ASSERT_GT(r, 0.0) << "y=" << y;
    EXPECT_NEAR(MarginalGainG(r), y, 1e-12) << "y=" << y << " r=" << r;
  }
  // Close to the top of the range (r grows like -log(1-y)).
  for (double y : {0.9, 0.99, 0.999, 0.999999, 1.0 - 1e-9}) {
    const double r = InverseMarginalGainG(y);
    EXPECT_NEAR(MarginalGainG(r), y, 1e-12) << "y=" << y << " r=" << r;
  }
}

TEST(KernelRoundTripTest, MarginalGainGRoundTripsAtSeriesCrossover) {
  // freshness.cc switches from the Taylor series to direct evaluation at
  // r = 1e-4; the inverse must round-trip on both sides of the seam.
  for (double r : {1e-5, 9e-5, 9.9e-5, 1e-4, 1.01e-4, 1.1e-4, 1e-3}) {
    const double y = MarginalGainG(r);
    const double back = InverseMarginalGainG(y);
    EXPECT_NEAR(MarginalGainG(back), y, 1e-12) << "r=" << r;
    // The value-level contract (1e-12) pins the root only to within
    // 1e-12 / g'(r); add a relative floor for the arithmetic itself.
    EXPECT_NEAR(back, r, 2e-12 / MarginalGainGPrime(r) + 1e-9 * r)
        << "r=" << r;
  }
}

TEST(KernelRoundTripTest, AgeMarginalKernelHRoundTripsAcrossDomain) {
  // h maps [0, inf) onto [0, inf): cover the series branch (h(r) ~ r^3/3),
  // the crossover region, and the quadratic tail (h(r) ~ r^2/2 - 1).
  for (int e = -180; e <= 120; ++e) {
    const double y = std::pow(10.0, static_cast<double>(e) / 10.0);
    const double r = InverseAgeMarginalKernelH(y);
    ASSERT_GT(r, 0.0) << "y=" << y;
    EXPECT_NEAR(AgeMarginalKernelH(r), y, 1e-12 * std::max(1.0, y))
        << "y=" << y << " r=" << r;
  }
}

TEST(KernelRoundTripTest, AgeMarginalKernelHRoundTripsAtSeriesCrossover) {
  // The h series/direct seam sits at r = 1e-3.
  for (double r : {1e-4, 9e-4, 9.9e-4, 1e-3, 1.01e-3, 1.1e-3, 1e-2}) {
    const double y = AgeMarginalKernelH(r);
    const double back = InverseAgeMarginalKernelH(y);
    EXPECT_NEAR(AgeMarginalKernelH(back), y, 1e-12 * std::max(1.0, y))
        << "r=" << r;
    EXPECT_NEAR(back, r, 2e-12 / AgeMarginalKernelHPrime(r) + 1e-9 * r)
        << "r=" << r;
  }
}

TEST(KernelRoundTripTest, WarmStartedInversesMatchColdStart) {
  // The solvers' warm-started overloads must land on the same root as the
  // cold start — a bad guess may cost iterations, never correctness. Guesses
  // span below, near, above, and nonsense.
  for (int e = -120; e <= -1; e += 7) {
    const double y = std::pow(10.0, static_cast<double>(e) / 10.0);
    const double cold = InverseMarginalGainG(y);
    for (double guess : {cold * 0.5, cold * 0.999, cold, cold * 1.001,
                         cold * 2.0, 0.0, -3.0, 1e300}) {
      EXPECT_NEAR(MarginalGainG(InverseMarginalGainG(y, guess)), y, 1e-12)
          << "y=" << y << " guess=" << guess;
    }
  }
  for (int e = -120; e <= 120; e += 11) {
    const double y = std::pow(10.0, static_cast<double>(e) / 10.0);
    const double cold = InverseAgeMarginalKernelH(y);
    for (double guess :
         {cold * 0.5, cold, cold * 2.0, 0.0, -1.0, 1e300}) {
      EXPECT_NEAR(AgeMarginalKernelH(InverseAgeMarginalKernelH(y, guess)), y,
                  1e-12 * std::max(1.0, y))
          << "y=" << y << " guess=" << guess;
    }
  }
}

TEST_P(SolverPropertyTest, ProblemIsScaleInvariant) {
  // F depends only on lambda/f, so scaling every change rate AND the budget
  // by c yields the same perceived freshness with frequencies scaled by c.
  const int key = GetParam();
  const ElementSet elements = RandomCatalog(key, 70, /*sized=*/false);
  const double bandwidth = 30.0;
  const double c = 3.5;
  ElementSet scaled = elements;
  for (Element& e : scaled) e.change_rate *= c;

  const FreshenPlan base = FreshenPlanner({}).Plan(elements, bandwidth).value();
  const FreshenPlan big =
      FreshenPlanner({}).Plan(scaled, bandwidth * c).value();
  EXPECT_NEAR(base.perceived_freshness, big.perceived_freshness, 1e-9)
      << "key=" << key;
  for (size_t i = 0; i < elements.size(); ++i) {
    // Individual frequencies agree loosely: the element at the funding
    // cutoff absorbs the budget residual (see water_filling.cc), and its
    // share is rounding-dependent — objective-neutral, since its marginal
    // equals the multiplier across the whole gap. The tight guarantee is
    // the objective equality asserted above.
    EXPECT_NEAR(big.frequencies[i], c * base.frequencies[i],
                0.02 * (1.0 + c * base.frequencies[i]))
        << "key=" << key << " i=" << i;
  }
}

}  // namespace
}  // namespace freshen
