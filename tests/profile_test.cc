// Tests for user profiles, master-profile aggregation, and the request-log
// learner.
#include <vector>

#include <gtest/gtest.h>

#include "profile/learner.h"
#include "profile/profile.h"
#include "rng/alias_table.h"
#include "rng/rng.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

TEST(NormalizeProbabilitiesTest, Normalizes) {
  const auto probs = NormalizeProbabilities({2.0, 6.0}).value();
  EXPECT_DOUBLE_EQ(probs[0], 0.25);
  EXPECT_DOUBLE_EQ(probs[1], 0.75);
}

TEST(NormalizeProbabilitiesTest, RejectsBadInput) {
  EXPECT_FALSE(NormalizeProbabilities({}).ok());
  EXPECT_FALSE(NormalizeProbabilities({0.0, 0.0}).ok());
  EXPECT_FALSE(NormalizeProbabilities({1.0, -0.5}).ok());
  EXPECT_FALSE(
      NormalizeProbabilities({1.0, std::numeric_limits<double>::infinity()})
          .ok());
}

TEST(UserProfileTest, FromWeightsNormalizes) {
  const auto profile = UserProfile::FromWeights({1.0, 3.0}).value();
  EXPECT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.probabilities()[1], 0.75);
}

TEST(UserProfileTest, FromAccessCounts) {
  const auto profile = UserProfile::FromAccessCounts({10, 30, 60}).value();
  EXPECT_DOUBLE_EQ(profile.probabilities()[2], 0.6);
}

TEST(AggregateProfilesTest, EqualWeightAggregation) {
  const auto a = UserProfile::FromWeights({1.0, 0.0}).value();
  const auto b = UserProfile::FromWeights({0.0, 1.0}).value();
  const auto master = AggregateProfiles({a, b}).value();
  EXPECT_DOUBLE_EQ(master[0], 0.5);
  EXPECT_DOUBLE_EQ(master[1], 0.5);
}

TEST(AggregateProfilesTest, WeightedAggregationFavorsImportantUsers) {
  // "individual profiles can be weighted … to give higher priority to more
  // important users (e.g., generals or higher paying customers)".
  const auto corporal = UserProfile::FromWeights({1.0, 0.0}).value();
  const auto general = UserProfile::FromWeights({0.0, 1.0}).value();
  const auto master = AggregateProfiles({corporal, general}, {1.0, 3.0}).value();
  EXPECT_DOUBLE_EQ(master[0], 0.25);
  EXPECT_DOUBLE_EQ(master[1], 0.75);
}

TEST(AggregateProfilesTest, RejectsMismatchedShapes) {
  const auto a = UserProfile::FromWeights({1.0, 1.0}).value();
  const auto b = UserProfile::FromWeights({1.0, 1.0, 1.0}).value();
  EXPECT_FALSE(AggregateProfiles({a, b}).ok());
  EXPECT_FALSE(AggregateProfiles({a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(AggregateProfiles({a}, {-1.0}).ok());
  EXPECT_FALSE(AggregateProfiles({}).ok());
}

TEST(AggregateProfilesTest, MasterSumsToOne) {
  const auto a = UserProfile::FromWeights({5.0, 2.0, 3.0}).value();
  const auto b = UserProfile::FromWeights({1.0, 1.0, 8.0}).value();
  const auto master = AggregateProfiles({a, b}, {0.3, 0.7}).value();
  EXPECT_NEAR(Sum(master), 1.0, 1e-12);
}

TEST(AccessLogLearnerTest, CountsConvergeToTrueProfile) {
  // Feed accesses drawn from a known profile; the snapshot converges.
  const std::vector<double> truth = {0.5, 0.3, 0.15, 0.05};
  AliasTable table(truth);
  Rng rng(41);
  AccessLogLearner learner(truth.size(), {});
  for (int i = 0; i < 200000; ++i) learner.Observe(table.Sample(rng));
  const auto estimate = learner.Snapshot().value();
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(estimate[i], truth[i], 0.01) << i;
  }
  EXPECT_EQ(learner.NumObservations(), 200000u);
}

TEST(AccessLogLearnerTest, SnapshotFailsWithNoDataAndNoSmoothing) {
  AccessLogLearner learner(3, {});
  EXPECT_FALSE(learner.Snapshot().ok());
}

TEST(AccessLogLearnerTest, SmoothingGivesColdStartUniform) {
  AccessLogLearner::Options options;
  options.smoothing = 1.0;
  AccessLogLearner learner(4, options);
  const auto estimate = learner.Snapshot().value();
  for (double p : estimate) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(AccessLogLearnerTest, DecayForgetsOldInterest) {
  AccessLogLearner::Options options;
  options.decay = 0.5;
  AccessLogLearner learner(2, options);
  // Period 1: everyone hits element 0.
  for (int i = 0; i < 1000; ++i) learner.Observe(0);
  learner.EndPeriod();
  // Periods 2-6: interest moves to element 1.
  for (int period = 0; period < 5; ++period) {
    for (int i = 0; i < 1000; ++i) learner.Observe(1);
    learner.EndPeriod();
  }
  const auto estimate = learner.Snapshot().value();
  EXPECT_GT(estimate[1], 0.9);
}

TEST(AccessLogLearnerTest, NoDecayKeepsAllHistory) {
  AccessLogLearner learner(2, {});
  learner.Observe(0);
  learner.EndPeriod();
  learner.Observe(1);
  const auto estimate = learner.Snapshot().value();
  EXPECT_DOUBLE_EQ(estimate[0], 0.5);
}

}  // namespace
}  // namespace freshen
