// Tests for catalog generation: specs, alignments, determinism, and the
// statistical properties the paper's setup prescribes.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "stats/descriptive.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen {
namespace {

TEST(SpecTest, IdealCaseMatchesTable2) {
  const ExperimentSpec spec = ExperimentSpec::IdealCase();
  EXPECT_EQ(spec.num_objects, 500u);
  EXPECT_DOUBLE_EQ(spec.mean_updates_per_object, 2.0);  // 1000 updates.
  EXPECT_DOUBLE_EQ(spec.update_stddev, 1.0);
  EXPECT_DOUBLE_EQ(spec.syncs_per_period, 250.0);
}

TEST(SpecTest, BigCaseMatchesTable3) {
  const ExperimentSpec spec = ExperimentSpec::BigCase();
  EXPECT_EQ(spec.num_objects, 500000u);
  EXPECT_DOUBLE_EQ(spec.update_stddev, 2.0);
  EXPECT_DOUBLE_EQ(spec.syncs_per_period, 250000.0);
  EXPECT_DOUBLE_EQ(spec.theta, 1.0);
}

TEST(SpecTest, EnumNames) {
  EXPECT_EQ(ToString(Alignment::kAligned), "aligned");
  EXPECT_EQ(ToString(Alignment::kReverse), "reverse");
  EXPECT_EQ(ToString(Alignment::kShuffled), "shuffled");
  EXPECT_EQ(ToString(SizeModel::kUniform), "uniform");
  EXPECT_EQ(ToString(SizeModel::kPareto), "pareto");
}

TEST(GeneratorTest, DeterministicInSeed) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  const ElementSet a = GenerateCatalog(spec).value();
  const ElementSet b = GenerateCatalog(spec).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].change_rate, b[i].change_rate);
    EXPECT_EQ(a[i].access_prob, b[i].access_prob);
    EXPECT_EQ(a[i].size, b[i].size);
  }
  spec.seed += 1;
  const ElementSet c = GenerateCatalog(spec).value();
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].change_rate != c[i].change_rate) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(GeneratorTest, ProfileIsZipfOverRank) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  const ElementSet elements = GenerateCatalog(spec).value();
  // Access probs sum to 1 and decrease with rank.
  EXPECT_NEAR(Sum(AccessProbs(elements)), 1.0, 1e-9);
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_LT(elements[i].access_prob, elements[i - 1].access_prob);
  }
  // Rank-2 probability is half of rank-1 at theta = 1.
  EXPECT_NEAR(elements[0].access_prob / elements[1].access_prob, 2.0, 1e-9);
}

TEST(GeneratorTest, ChangeRatesHaveRequestedMoments) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 100000;  // Big sample for tight moments.
  const std::vector<double> rates = DrawChangeRates(spec);
  RunningStats stats;
  for (double r : rates) stats.Add(r);
  EXPECT_NEAR(stats.Mean(), 2.0, 0.03);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.03);
}

TEST(GeneratorTest, AlignedPutsVolatileFirst) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_GE(elements[i - 1].change_rate, elements[i].change_rate);
  }
}

TEST(GeneratorTest, ReversePutsStableFirst) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kReverse;
  const ElementSet elements = GenerateCatalog(spec).value();
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_LE(elements[i - 1].change_rate, elements[i].change_rate);
  }
}

TEST(GeneratorTest, AlignmentsAreTheSameMultiset) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kAligned;
  auto aligned = ChangeRates(GenerateCatalog(spec).value());
  spec.alignment = Alignment::kShuffled;
  auto shuffled = ChangeRates(GenerateCatalog(spec).value());
  std::sort(aligned.begin(), aligned.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(aligned, shuffled);
}

TEST(GeneratorTest, ShuffledBreaksRankCorrelation) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = GenerateCatalog(spec).value();
  // Spearman-ish check: correlation between rank and rate should be weak.
  const size_t n = elements.size();
  double mean_rate = Mean(ChangeRates(elements));
  double num = 0.0;
  double den_rank = 0.0;
  double den_rate = 0.0;
  const double mean_rank = (static_cast<double>(n) - 1.0) / 2.0;
  for (size_t i = 0; i < n; ++i) {
    const double dr = static_cast<double>(i) - mean_rank;
    const double dv = elements[i].change_rate - mean_rate;
    num += dr * dv;
    den_rank += dr * dr;
    den_rate += dv * dv;
  }
  const double corr = num / std::sqrt(den_rank * den_rate);
  EXPECT_LT(std::fabs(corr), 0.1);
}

TEST(GeneratorTest, UniformSizesAreAllMeanSize) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.size_model = SizeModel::kUniform;
  const ElementSet elements = GenerateCatalog(spec).value();
  for (const Element& e : elements) EXPECT_DOUBLE_EQ(e.size, 1.0);
}

TEST(GeneratorTest, ParetoSizesRespectShapeAndAlignment) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.size_model = SizeModel::kPareto;
  spec.size_alignment = SizeAlignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();
  for (size_t i = 1; i < elements.size(); ++i) {
    EXPECT_GE(elements[i - 1].size, elements[i].size);
  }
  // Minimum is the Pareto scale for mean 1.0 at shape 1.1.
  const double min_size =
      std::min_element(elements.begin(), elements.end(),
                       [](const Element& a, const Element& b) {
                         return a.size < b.size;
                       })
          ->size;
  EXPECT_GE(min_size, 1.0 * (1.1 - 1.0) / 1.1 - 1e-12);
}

TEST(GeneratorTest, RejectsInvalidSpecs) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 0;
  EXPECT_FALSE(GenerateCatalog(spec).ok());

  spec = ExperimentSpec::IdealCase();
  spec.mean_updates_per_object = 0.0;
  EXPECT_FALSE(GenerateCatalog(spec).ok());

  spec = ExperimentSpec::IdealCase();
  spec.update_stddev = -1.0;
  EXPECT_FALSE(GenerateCatalog(spec).ok());

  spec = ExperimentSpec::IdealCase();
  spec.theta = -0.1;
  EXPECT_FALSE(GenerateCatalog(spec).ok());

  spec = ExperimentSpec::IdealCase();
  spec.size_model = SizeModel::kPareto;
  spec.pareto_shape = 1.0;  // Mean undefined.
  EXPECT_FALSE(GenerateCatalog(spec).ok());
}

TEST(ElementSetTest, ColumnHelpersRoundTrip) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0}, {0.7, 0.3}, {2.0, 5.0});
  EXPECT_EQ(ChangeRates(elements), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(AccessProbs(elements), (std::vector<double>{0.7, 0.3}));
  EXPECT_EQ(Sizes(elements), (std::vector<double>{2.0, 5.0}));
}

TEST(ElementSetTest, DefaultSizeIsOne) {
  const ElementSet elements = MakeElementSet({1.0}, {1.0});
  EXPECT_DOUBLE_EQ(elements[0].size, 1.0);
}

}  // namespace
}  // namespace freshen
