// Tests for the logging and timing utilities.
#include <algorithm>
#include <mutex>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/timer.h"

namespace freshen {
namespace {

// Collects every emitted line; self-synchronized as the LogSink contract
// requires.
class CaptureSink : public LogSink {
 public:
  void Write(LogLevel level, std::string_view line) override {
    std::lock_guard<std::mutex> lock(mu_);
    levels_.push_back(level);
    lines_.emplace_back(line);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::vector<LogLevel> levels() const {
    std::lock_guard<std::mutex> lock(mu_);
    return levels_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

// Restores the default sink and log level even when a test fails.
class SinkGuard {
 public:
  explicit SinkGuard(LogSink* sink) : level_(GetLogLevel()) {
    SetLogSink(sink);
  }
  ~SinkGuard() {
    SetLogSink(nullptr);
    SetLogLevel(level_);
  }

 private:
  LogLevel level_;
};

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroStreamsArbitraryTypes) {
  // Smoke: the macro must compile and run for mixed stream inserts at both
  // suppressed and emitted levels.
  SetLogLevel(LogLevel::kError);
  FRESHEN_LOG(kDebug) << "suppressed " << 42 << " " << 1.5;
  FRESHEN_LOG(kError) << "emitted " << std::string("text");
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, SinkReceivesFormattedLines) {
  CaptureSink sink;
  SinkGuard guard(&sink);
  SetLogLevel(LogLevel::kInfo);
  FRESHEN_LOG(kInfo) << "hello " << 42;
  FRESHEN_LOG(kDebug) << "below threshold, dropped";
  FRESHEN_LOG(kWarning) << "second";

  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos);
  EXPECT_NE(lines[0].find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
  EXPECT_NE(lines[1].find("second"), std::string::npos);
  const std::vector<LogLevel> levels = sink.levels();
  EXPECT_EQ(levels[0], LogLevel::kInfo);
  EXPECT_EQ(levels[1], LogLevel::kWarning);
}

TEST(LoggingTest, LinePrefixIsIso8601TimestampLevelAndLocation) {
  CaptureSink sink;
  SinkGuard guard(&sink);
  SetLogLevel(LogLevel::kInfo);
  FRESHEN_LOG(kError) << "payload";
  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  // "[2026-08-05T12:34:56.789Z E <file>:<line>] payload\n"
  const std::regex prefix(
      R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z E [^ ]+:\d+\] payload\n$)");
  EXPECT_TRUE(std::regex_match(lines[0], prefix)) << lines[0];
}

TEST(LoggingTest, ConcurrentLoggingKeepsLinesIntact) {
  CaptureSink sink;
  SinkGuard guard(&sink);
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FRESHEN_LOG(kInfo) << "thread " << t << " line " << i << " end";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kLines);
  // Every line arrived whole: exactly one newline, at the end, and the full
  // "thread <t> line <i> end" payload present.
  for (const std::string& line : lines) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1) << line;
    EXPECT_EQ(line.back(), '\n') << line;
    EXPECT_NE(line.find(" end"), std::string::npos) << line;
  }
}

TEST(LoggingTest, SetLogSinkReturnsPreviousAndRestores) {
  CaptureSink first;
  CaptureSink second;
  // Default installed -> returns nullptr.
  LogSink* previous = SetLogSink(&first);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(SetLogSink(&second), &first);
  SetLogLevel(LogLevel::kInfo);
  FRESHEN_LOG(kInfo) << "to second";
  EXPECT_EQ(SetLogSink(nullptr), &second);  // Restore default.
  EXPECT_TRUE(first.lines().empty());
  ASSERT_EQ(second.lines().size(), 1u);
}

TEST(TimerTest, ElapsedIsMonotoneAndRestartable) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1, 0.004);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), t1);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis());
}

}  // namespace
}  // namespace freshen
