// Tests for the logging and timing utilities.
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/timer.h"

namespace freshen {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroStreamsArbitraryTypes) {
  // Smoke: the macro must compile and run for mixed stream inserts at both
  // suppressed and emitted levels.
  SetLogLevel(LogLevel::kError);
  FRESHEN_LOG(kDebug) << "suppressed " << 42 << " " << 1.5;
  FRESHEN_LOG(kError) << "emitted " << std::string("text");
  SetLogLevel(LogLevel::kInfo);
}

TEST(TimerTest, ElapsedIsMonotoneAndRestartable) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1, 0.004);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), t1);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis());
}

}  // namespace
}  // namespace freshen
