// Determinism of the sharded MirrorSimulator: per-shard event queues, forked
// RNG streams reconstructed from a serial fork order, and shard-order stat
// merging must make SimulationResult bit-identical at every thread count,
// for both sync policies. Runs under `ctest -L tsan` in a
// FRESHEN_SANITIZE=thread build.
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "model/freshness.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult SameResult(const SimulationResult& a,
                                      const SimulationResult& b) {
  if (!SameBits(a.empirical_perceived_freshness,
                b.empirical_perceived_freshness)) {
    return ::testing::AssertionFailure()
           << "empirical_perceived_freshness differs: "
           << a.empirical_perceived_freshness << " vs "
           << b.empirical_perceived_freshness;
  }
  if (!SameBits(a.empirical_general_freshness,
                b.empirical_general_freshness)) {
    return ::testing::AssertionFailure()
           << "empirical_general_freshness differs: "
           << a.empirical_general_freshness << " vs "
           << b.empirical_general_freshness;
  }
  if (!SameBits(a.empirical_perceived_age, b.empirical_perceived_age)) {
    return ::testing::AssertionFailure()
           << "empirical_perceived_age differs: " << a.empirical_perceived_age
           << " vs " << b.empirical_perceived_age;
  }
  if (!SameBits(a.analytic_perceived_freshness,
                b.analytic_perceived_freshness) ||
      !SameBits(a.analytic_general_freshness, b.analytic_general_freshness)) {
    return ::testing::AssertionFailure() << "analytic metrics differ";
  }
  if (a.num_accesses != b.num_accesses || a.num_updates != b.num_updates ||
      a.num_syncs != b.num_syncs) {
    return ::testing::AssertionFailure()
           << "event counts differ: accesses " << a.num_accesses << "/"
           << b.num_accesses << " updates " << a.num_updates << "/"
           << b.num_updates << " syncs " << a.num_syncs << "/" << b.num_syncs;
  }
  return ::testing::AssertionSuccess();
}

ElementSet Catalog(size_t n) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = n;
  spec.syncs_per_period = 0.5 * static_cast<double>(n);
  spec.alignment = Alignment::kShuffled;
  return GenerateCatalog(spec).value();
}

std::vector<double> PlanFrequencies(const ElementSet& elements,
                                    double bandwidth) {
  const CoreProblem problem = MakePerceivedProblem(elements, bandwidth, false);
  return KktWaterFillingSolver().Solve(problem).value().frequencies;
}

struct ShardCase {
  size_t n;
  SyncPolicy policy;
};

class SimShardTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(SimShardTest, ResultIsBitIdenticalAcrossThreadCounts) {
  const ShardCase param = GetParam();
  const ElementSet elements = Catalog(param.n);
  const std::vector<double> frequencies =
      PlanFrequencies(elements, 0.5 * static_cast<double>(param.n));

  SimulationConfig config;
  config.horizon_periods = 12.0;
  config.warmup_periods = 2.0;
  config.accesses_per_period = 2000.0;
  config.seed = 20030305;
  config.sync_policy = param.policy;

  config.threads = 1;
  const SimulationResult reference =
      MirrorSimulator(elements, config).Run(frequencies).value();
  EXPECT_GT(reference.num_accesses, 0u);

  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}, size_t{0}}) {
    config.threads = threads;  // 0 = hardware concurrency.
    const SimulationResult result =
        MirrorSimulator(elements, config).Run(frequencies).value();
    EXPECT_TRUE(SameResult(result, reference))
        << "n=" << param.n << " threads=" << threads;
  }
}

// 300 fits one shard (inline path); 9000 spans multiple shards, so shard
// routing, per-shard queues, and the stat merge actually run. Both sync
// policies: FixedOrder uses the closed-form timeline, Poisson reconstructs
// per-element RNG streams from the serial fork order.
INSTANTIATE_TEST_SUITE_P(
    Cases, SimShardTest,
    ::testing::Values(ShardCase{300, SyncPolicy::kFixedOrder},
                      ShardCase{300, SyncPolicy::kPoisson},
                      ShardCase{9000, SyncPolicy::kFixedOrder},
                      ShardCase{9000, SyncPolicy::kPoisson}));

TEST(SimShardTest, MultiShardEmpiricalStillTracksAnalytic) {
  // Sharding must not change what is being simulated: the empirical/analytic
  // agreement (the paper's verification protocol) holds on a multi-shard run.
  const ElementSet elements = Catalog(9000);
  const std::vector<double> frequencies = PlanFrequencies(elements, 4500.0);
  SimulationConfig config;
  config.horizon_periods = 60.0;
  config.warmup_periods = 10.0;
  config.accesses_per_period = 3000.0;
  config.seed = 11;
  const SimulationResult result =
      MirrorSimulator(elements, config).Run(frequencies).value();
  EXPECT_NEAR(result.empirical_perceived_freshness,
              result.analytic_perceived_freshness, 0.03);
  EXPECT_NEAR(result.empirical_general_freshness,
              result.analytic_general_freshness, 0.03);
}

TEST(SimShardTest, RejectsInvalidFrequencies) {
  const ElementSet elements = Catalog(300);
  std::vector<double> frequencies(elements.size(), 1.0);
  frequencies[7] = -0.5;
  SimulationConfig config;
  config.threads = 4;
  const auto result = MirrorSimulator(elements, config).Run(frequencies);
  EXPECT_FALSE(result.ok());
  frequencies[7] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MirrorSimulator(elements, config).Run(frequencies).ok());
}

TEST(SimShardTest, ZeroAccessRunIsStillDeterministic) {
  // No access stream (the general-freshness-only configuration): the sharded
  // integrator alone must still be bit-identical.
  const ElementSet elements = Catalog(9000);
  std::vector<double> frequencies(elements.size(), 0.7);
  SimulationConfig config;
  config.horizon_periods = 8.0;
  config.warmup_periods = 1.0;
  config.accesses_per_period = 0.0;
  config.seed = 3;

  config.threads = 1;
  const SimulationResult reference =
      MirrorSimulator(elements, config).Run(frequencies).value();
  EXPECT_EQ(reference.num_accesses, 0u);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    config.threads = threads;
    const SimulationResult result =
        MirrorSimulator(elements, config).Run(frequencies).value();
    EXPECT_TRUE(SameResult(result, reference)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace freshen
