// Tests for the common runtime: Status, Result, string utils, tables.
#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace freshen {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("early").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("far").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("todo").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("bug").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("bug").message(), "bug");
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("slow").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("full").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, TransportCodesRenderTheirNames) {
  EXPECT_EQ(Status::Unavailable("origin down").ToString(),
            "Unavailable: origin down");
  EXPECT_EQ(Status::DeadlineExceeded("stalled").ToString(),
            "DeadlineExceeded: stalled");
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "ResourceExhausted: queue full");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("negative rate").ToString(),
            "InvalidArgument: negative rate");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamOperatorRendersToString) {
  std::ostringstream os;
  os << Status::OutOfRange("theta");
  EXPECT_EQ(os.str(), "OutOfRange: theta");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("gone"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<double> result(2.5);
  EXPECT_DOUBLE_EQ(result.value_or(0.0), 2.5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FRESHEN_ASSIGN_OR_RETURN(int half, Half(x));
  FRESHEN_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string long_arg(1000, 'a');
  EXPECT_EQ(StrFormat("[%s]", long_arg.c_str()).size(), 1002u);
}

TEST(StringUtilTest, FormatDoubleRespectsPrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,,c");
  EXPECT_EQ(Split("a,,c", ','), parts);
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("freshen", "fresh"));
  EXPECT_FALSE(StartsWith("fresh", "freshen"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(TableWriterTest, AlignsColumns) {
  TableWriter table({"name", "value"});
  table.AddRow({"pf", "0.5"});
  table.AddRow({"general_freshness", "0.25"});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("general_freshness"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableWriterTest, PadsShortRows) {
  TableWriter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "a,b,c\n1,,\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter table({"k"});
  table.AddRow({"a,b\"c"});
  EXPECT_EQ(table.ToCsv(), "k\n\"a,b\"\"c\"\n");
}

TEST(TableWriterTest, NumericRowFormatsWithPrecision) {
  TableWriter table({"x", "y"});
  table.AddNumericRow({1.23456, 2.0}, 2);
  EXPECT_EQ(table.ToCsv(), "x,y\n1.23,2.00\n");
}

}  // namespace
}  // namespace freshen
