// Tests for the age-marginal kernel and the age-minimizing water-filling
// solver (extension beyond the paper; see DESIGN.md ablation row).
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "model/freshness.h"
#include "model/metrics.h"
#include "opt/age_water_filling.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "rng/rng.h"

namespace freshen {
namespace {

TEST(AgeKernelTest, MatchesDefinition) {
  for (double r : {0.01, 0.1, 1.0, 5.0, 40.0}) {
    EXPECT_NEAR(AgeMarginalKernelH(r), 0.5 * r * r - MarginalGainG(r),
                1e-9 * (1.0 + 0.5 * r * r))
        << r;
  }
}

TEST(AgeKernelTest, SeriesBranchMatchesDirect) {
  const double below = AgeMarginalKernelH(1e-3 * 0.999999);
  const double above = AgeMarginalKernelH(1e-3 * 1.000001);
  EXPECT_NEAR(below, above, 2e-15);
}

TEST(AgeKernelTest, MarginalMatchesNumericAgeDerivative) {
  // -dA/df == h(lambda/f) / lambda^2.
  for (double f : {0.3, 1.0, 4.0}) {
    for (double lambda : {0.5, 2.0, 6.0}) {
      const double hstep = 1e-6 * f;
      const double numeric = -(FixedOrderAge(f + hstep, lambda) -
                               FixedOrderAge(f - hstep, lambda)) /
                             (2.0 * hstep);
      const double analytic =
          AgeMarginalKernelH(lambda / f) / (lambda * lambda);
      EXPECT_NEAR(analytic, numeric, 1e-5 * std::fabs(numeric) + 1e-12)
          << "f=" << f << " lambda=" << lambda;
    }
  }
}

TEST(AgeKernelTest, HPrimeMatchesFiniteDifference) {
  for (double r : {0.05, 0.5, 3.0, 20.0}) {
    const double h = 1e-6 * r;
    const double numeric =
        (AgeMarginalKernelH(r + h) - AgeMarginalKernelH(r - h)) / (2.0 * h);
    EXPECT_NEAR(AgeMarginalKernelHPrime(r), numeric,
                1e-5 * std::fabs(numeric) + 1e-12);
  }
}

TEST(AgeKernelTest, InverseRoundTrips) {
  for (double y = 1e-9; y < 1e8; y *= 7.0) {
    const double r = InverseAgeMarginalKernelH(y);
    EXPECT_NEAR(AgeMarginalKernelH(r), y, 1e-9 * (1.0 + y)) << "y=" << y;
  }
}

TEST(AgeSolverTest, NeverStarvesAnyElement) {
  // The qualitative difference from freshness optimization: even a wildly
  // volatile, barely-accessed element gets some bandwidth.
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0, 4.0, 50.0}, //
                     {0.3, 0.3, 0.2, 0.15, 0.05});
  const CoreProblem problem = MakePerceivedProblem(elements, 5.0, false);
  const Allocation age_plan = AgeWaterFillingSolver().Solve(problem).value();
  for (double f : age_plan.frequencies) EXPECT_GT(f, 0.0);
  // Whereas the freshness optimum starves the volatile element.
  const Allocation pf_plan = KktWaterFillingSolver().Solve(problem).value();
  EXPECT_DOUBLE_EQ(pf_plan.frequencies[4], 0.0);
}

TEST(AgeSolverTest, BudgetMetExactly) {
  const ElementSet elements = MakeElementSet({1.0, 2.0, 3.0}, {0.5, 0.3, 0.2},
                                             {1.0, 2.0, 0.5});
  const CoreProblem problem = MakePerceivedProblem(elements, 4.0, true);
  const Allocation plan = AgeWaterFillingSolver().Solve(problem).value();
  EXPECT_NEAR(plan.bandwidth_used, 4.0, 1e-9);
}

TEST(AgeSolverTest, BeatsFreshnessOptimalOnAgeAndLosesOnFreshness) {
  const ElementSet elements = MakeElementSet(
      {1.0, 2.0, 3.0, 4.0, 5.0},
      {5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15});
  const CoreProblem problem = MakePerceivedProblem(elements, 5.0, false);
  const Allocation age_plan = AgeWaterFillingSolver().Solve(problem).value();
  const Allocation pf_plan = KktWaterFillingSolver().Solve(problem).value();
  EXPECT_LT(PerceivedAge(elements, age_plan.frequencies),
            PerceivedAge(elements, pf_plan.frequencies));
  EXPECT_GT(PerceivedFreshness(elements, pf_plan.frequencies),
            PerceivedFreshness(elements, age_plan.frequencies));
}

TEST(AgeSolverTest, KktStationarityHolds) {
  // All allocated elements share the same marginal age reduction per unit
  // of bandwidth.
  Rng rng(321);
  CoreProblem problem;
  for (int i = 0; i < 200; ++i) {
    problem.weights.push_back(rng.NextDoubleIn(0.01, 1.0));
    problem.change_rates.push_back(rng.NextDoubleIn(0.05, 8.0));
    problem.costs.push_back(rng.NextDoubleIn(0.2, 4.0));
  }
  problem.bandwidth = 60.0;
  const Allocation plan = AgeWaterFillingSolver().Solve(problem).value();
  for (size_t i = 0; i < problem.size(); ++i) {
    const double r = problem.change_rates[i] / plan.frequencies[i];
    const double marginal =
        problem.weights[i] * AgeMarginalKernelH(r) /
        (problem.change_rates[i] * problem.change_rates[i] *
         problem.costs[i]);
    EXPECT_NEAR(marginal, plan.multiplier, 1e-5 * plan.multiplier)
        << "element " << i;
  }
}

TEST(AgeSolverTest, OptimumDominatesGridOnTwoElements) {
  // Brute-force check: no split of the budget between two elements yields
  // lower weighted age than the solver's.
  const ElementSet elements = MakeElementSet({2.0, 0.7}, {0.6, 0.4});
  const double bandwidth = 2.0;
  const CoreProblem problem =
      MakePerceivedProblem(elements, bandwidth, false);
  const Allocation plan = AgeWaterFillingSolver().Solve(problem).value();
  const double best = plan.objective;
  for (int step = 1; step < 400; ++step) {
    const double f0 = bandwidth * step / 400.0;
    const double f1 = bandwidth - f0;
    const double age = 0.6 * FixedOrderAge(f0, 2.0) +
                       0.4 * FixedOrderAge(f1, 0.7);
    EXPECT_GE(age, best - 1e-9) << "f0=" << f0;
  }
}

TEST(AgeSolverTest, ZeroChangeRateElementsExcluded) {
  const ElementSet elements = MakeElementSet({0.0, 1.0}, {0.5, 0.5});
  const CoreProblem problem = MakePerceivedProblem(elements, 1.0, false);
  const Allocation plan = AgeWaterFillingSolver().Solve(problem).value();
  EXPECT_DOUBLE_EQ(plan.frequencies[0], 0.0);
  EXPECT_NEAR(plan.frequencies[1], 1.0, 1e-9);
}

TEST(AgeSolverTest, RejectsInvalidProblems) {
  CoreProblem empty;
  empty.bandwidth = 1.0;
  EXPECT_FALSE(AgeWaterFillingSolver().Solve(empty).ok());
}

}  // namespace
}  // namespace freshen
