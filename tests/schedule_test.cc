// Tests for materialized fixed-order schedules.
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "schedule/schedule.h"

namespace freshen {
namespace {

TEST(ScheduleTest, EventCountMatchesFrequencyTimesHorizon) {
  const auto schedule = SyncSchedule::FixedOrder({2.0, 0.5}, 10.0).value();
  size_t count0 = 0;
  size_t count1 = 0;
  for (const auto& event : schedule.events()) {
    if (event.element == 0) ++count0;
    if (event.element == 1) ++count1;
  }
  EXPECT_EQ(count0, 20u);
  EXPECT_EQ(count1, 5u);
}

TEST(ScheduleTest, EventsAreSortedByTime) {
  const auto schedule =
      SyncSchedule::FixedOrder({3.0, 1.7, 0.9, 2.2}, 25.0).value();
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule.events()[i - 1].time, schedule.events()[i].time);
  }
}

TEST(ScheduleTest, IntervalsAreRegular) {
  const auto schedule = SyncSchedule::FixedOrder({4.0}, 5.0).value();
  ASSERT_EQ(schedule.size(), 20u);
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_NEAR(schedule.events()[i].time - schedule.events()[i - 1].time,
                0.25, 1e-9);
  }
}

TEST(ScheduleTest, ZeroFrequencyElementNeverSynced) {
  const auto schedule = SyncSchedule::FixedOrder({0.0, 1.0}, 10.0).value();
  for (const auto& event : schedule.events()) {
    EXPECT_EQ(event.element, 1u);
  }
}

TEST(ScheduleTest, PhasesStaggerEqualFrequencies) {
  // Two elements at the same frequency must not fire at identical times.
  const auto schedule = SyncSchedule::FixedOrder({1.0, 1.0}, 4.0).value();
  for (size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GT(schedule.events()[i].time - schedule.events()[i - 1].time,
              0.01);
  }
}

TEST(ScheduleTest, EmptyHorizonYieldsNoEvents) {
  const auto schedule = SyncSchedule::FixedOrder({5.0}, 0.0).value();
  EXPECT_EQ(schedule.size(), 0u);
}

TEST(ScheduleTest, BandwidthPerPeriodAccountsForSizes) {
  const ElementSet elements =
      MakeElementSet({1.0, 1.0}, {0.5, 0.5}, {2.0, 3.0});
  const auto schedule = SyncSchedule::FixedOrder({1.0, 2.0}, 10.0).value();
  // 10 syncs of size 2 + 20 syncs of size 3 over 10 periods = 8 per period.
  EXPECT_NEAR(schedule.BandwidthPerPeriod(elements, 10.0), 8.0, 1e-9);
}

TEST(ScheduleTest, RejectsInvalidInput) {
  EXPECT_FALSE(SyncSchedule::FixedOrder({1.0}, -1.0).ok());
  EXPECT_FALSE(SyncSchedule::FixedOrder({-1.0}, 1.0).ok());
  EXPECT_FALSE(
      SyncSchedule::FixedOrder({std::nan("")}, 1.0).ok());
}

TEST(ScheduleTest, FractionalFrequenciesSpanPeriods) {
  // f = 0.4 means one sync every 2.5 periods.
  const auto schedule = SyncSchedule::FixedOrder({0.4}, 10.0).value();
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_NEAR(schedule.events()[1].time - schedule.events()[0].time, 2.5,
              1e-9);
}

TEST(PoissonScheduleTest, EventCountNearExpectation) {
  const auto schedule =
      SyncSchedule::PoissonOrder({2.0, 0.5}, 1000.0, 11).value();
  size_t count0 = 0;
  size_t count1 = 0;
  for (const auto& event : schedule.events()) {
    if (event.element == 0) ++count0;
    if (event.element == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count0), 2000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(count1), 500.0, 80.0);
}

TEST(PoissonScheduleTest, SortedAndDeterministic) {
  const auto a = SyncSchedule::PoissonOrder({1.0, 2.0}, 50.0, 5).value();
  const auto b = SyncSchedule::PoissonOrder({1.0, 2.0}, 50.0, 5).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
    if (i > 0) {
      EXPECT_LE(a.events()[i - 1].time, a.events()[i].time);
    }
  }
  const auto c = SyncSchedule::PoissonOrder({1.0, 2.0}, 50.0, 6).value();
  EXPECT_NE(a.size(), 0u);
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !(a.events()[i] == c.events()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(PoissonScheduleTest, GapsAreIrregular) {
  const auto schedule = SyncSchedule::PoissonOrder({4.0}, 100.0, 9).value();
  ASSERT_GT(schedule.size(), 100u);
  double min_gap = 1e300;
  double max_gap = 0.0;
  for (size_t i = 1; i < schedule.size(); ++i) {
    const double gap = schedule.events()[i].time - schedule.events()[i - 1].time;
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  // Memoryless gaps vary wildly, unlike FixedOrder's constant 0.25.
  EXPECT_LT(min_gap, 0.05);
  EXPECT_GT(max_gap, 0.5);
}

TEST(PoissonScheduleTest, RejectsInvalidInput) {
  EXPECT_FALSE(SyncSchedule::PoissonOrder({1.0}, -1.0, 1).ok());
  EXPECT_FALSE(SyncSchedule::PoissonOrder({-1.0}, 1.0, 1).ok());
}

}  // namespace
}  // namespace freshen
