// Tests for the freshen::obs flight recorder: bounded-ring drop accounting,
// concurrent emit safety (runs under `ctest -L tsan` in sanitizer builds),
// torn-event detection via self-consistent payload encoding, metric export,
// and the zero-allocations-per-emit hot-path guarantee.
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/recorder.h"

// Global allocation counter backing the zero-alloc test. Counting every
// operator new in the binary is fine: the measured section runs on one
// thread with nothing else active, so any increment is the emit path's.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace freshen {
namespace {

using obs::Event;
using obs::EventClock;
using obs::EventPhase;
using obs::EventRecorder;

Event VirtualInstant(double ts, double arg0, double arg1) {
  Event event;
  event.name = "payload";
  event.category = "test";
  event.clock = EventClock::kVirtual;
  event.phase = EventPhase::kInstant;
  event.track = 3;
  event.ts = ts;
  event.arg0 = arg0;
  event.arg0_name = "thread";
  event.arg1 = arg1;
  event.arg1_name = "seq";
  return event;
}

TEST(RecorderTest, DisabledEmitRecordsNothing) {
  EventRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.Emit(VirtualInstant(1.0, 0, 0));
  const EventRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.emitted, 0u);
  EXPECT_EQ(stats.rings, 0u);
  EXPECT_TRUE(recorder.Collect().empty());
}

TEST(RecorderTest, WrapKeepsNewestAndCountsDrops) {
  EventRecorder::Options options;
  options.ring_capacity = 64;
  EventRecorder recorder(options);
  recorder.set_enabled(true);
  for (int i = 0; i < 200; ++i) {
    recorder.Emit(VirtualInstant(static_cast<double>(i), 0, i));
  }
  const EventRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.emitted, 200u);
  EXPECT_EQ(stats.recorded, 64u);
  EXPECT_EQ(stats.dropped, 136u);
  EXPECT_EQ(stats.emitted, stats.recorded + stats.dropped);

  // Collect returns the newest `capacity` events, oldest first.
  const std::vector<Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_DOUBLE_EQ(events.front().ts, 136.0);
  EXPECT_DOUBLE_EQ(events.back().ts, 199.0);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].ts, events[i].ts);
  }
}

TEST(RecorderTest, WallEventsGetTheThreadsRingId) {
  EventRecorder recorder;
  recorder.set_enabled(true);
  Event wall;
  wall.name = "w";
  wall.category = "test";
  wall.clock = EventClock::kWall;
  wall.track = 999;  // Emit must replace this with the ring id.
  recorder.Emit(wall);
  std::thread other([&] { recorder.Emit(wall); });
  other.join();
  const std::vector<Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].track, events[1].track);
  EXPECT_GE(events[0].track, 1u);  // Ring ids are 1-based.
  EXPECT_GE(events[1].track, 1u);
}

TEST(RecorderTest, ResetEmptiesRingsButKeepsThem) {
  EventRecorder recorder;
  recorder.set_enabled(true);
  recorder.Emit(VirtualInstant(1.0, 0, 0));
  recorder.Reset();
  const EventRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.emitted, 0u);
  EXPECT_EQ(stats.rings, 1u);
  EXPECT_TRUE(recorder.Collect().empty());
}

// The TSan target: >= 8 threads all emitting well past ring capacity. The
// recorder must never block, never lose an event silently (the drop counter
// accounts for every overwrite), and never tear an event across writers.
// Tearing is detected by payload self-consistency: every emitted event
// satisfies ts == thread * 1e6 + seq, which no interleaving of two distinct
// events' doubles can satisfy by accident.
TEST(RecorderTest, ConcurrentEmitNeverLosesSilentlyOrTears) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 4096;  // 16x the ring capacity below.
  EventRecorder::Options options;
  options.ring_capacity = 256;
  EventRecorder recorder(options);
  recorder.set_enabled(true);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (size_t seq = 0; seq < kPerThread; ++seq) {
        recorder.Emit(VirtualInstant(
            static_cast<double>(t) * 1e6 + static_cast<double>(seq),
            static_cast<double>(t), static_cast<double>(seq)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const EventRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.emitted, kThreads * kPerThread);
  EXPECT_EQ(stats.rings, kThreads);
  EXPECT_EQ(stats.recorded, kThreads * options.ring_capacity);
  EXPECT_EQ(stats.emitted, stats.recorded + stats.dropped);

  const std::vector<Event> events = recorder.Collect();
  ASSERT_EQ(events.size(), stats.recorded);
  // Collect is ring by ring: runs of equal `thread` payload, each strictly
  // ordered by seq (a torn slot would break the ts/arg consistency).
  double previous_thread = -1.0;
  double previous_seq = -1.0;
  for (const Event& event : events) {
    EXPECT_DOUBLE_EQ(event.ts, event.arg0 * 1e6 + event.arg1);
    if (event.arg0 != previous_thread) {
      previous_thread = event.arg0;
    } else {
      EXPECT_LT(previous_seq, event.arg1);
    }
    previous_seq = event.arg1;
    // Each thread kept exactly the newest ring_capacity events.
    EXPECT_GE(event.arg1,
              static_cast<double>(kPerThread - options.ring_capacity));
  }
}

TEST(RecorderTest, ExportMetricsPublishesDropAndCapacityGauges) {
  EventRecorder::Options options;
  options.ring_capacity = 16;
  EventRecorder recorder(options);
  recorder.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    recorder.Emit(VirtualInstant(static_cast<double>(i), 0, i));
  }
  obs::MetricsRegistry registry;
  recorder.ExportMetrics(registry);
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* capacity =
      snapshot.Find("freshen_obs_recorder_ring_capacity");
  ASSERT_NE(capacity, nullptr);
  EXPECT_DOUBLE_EQ(capacity->value, 16.0);
  const obs::MetricSample* dropped =
      snapshot.Find("freshen_obs_recorder_dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 4.0);
  const obs::MetricSample* emitted =
      snapshot.Find("freshen_obs_recorder_emitted_events");
  ASSERT_NE(emitted, nullptr);
  EXPECT_DOUBLE_EQ(emitted->value, 20.0);
  const obs::MetricSample* rings =
      snapshot.Find("freshen_obs_recorder_rings");
  ASSERT_NE(rings, nullptr);
  EXPECT_DOUBLE_EQ(rings->value, 1.0);
}

// The hot-path contract: after a thread's first emit (which may create its
// ring and cache binding), emitting is zero allocations per event.
TEST(RecorderTest, WarmEmitAllocatesNothing) {
  EventRecorder recorder;
  recorder.set_enabled(true);
  recorder.Emit(VirtualInstant(0.0, 0, 0));  // Warm: ring + cache entry.

  const Event event = VirtualInstant(1.0, 0, 1);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) recorder.Emit(event);
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace freshen
