// Tests for the generic projected-gradient NLP baseline: the budget
// projection, agreement with the exact KKT solver on small instances, and
// budget-limited behavior.
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "opt/generic_nlp.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

TEST(ProjectionTest, AlreadyFeasiblePointUnchanged) {
  const std::vector<double> point = {1.0, 2.0, 1.0};
  const std::vector<double> costs = {1.0, 1.0, 1.0};
  const auto projected = ProjectOntoBudget(point, costs, 4.0);
  for (size_t i = 0; i < point.size(); ++i) {
    EXPECT_NEAR(projected[i], point[i], 1e-9);
  }
}

TEST(ProjectionTest, MeetsBudgetExactly) {
  const std::vector<double> point = {10.0, 0.1, 3.0};
  const std::vector<double> costs = {1.0, 2.0, 0.5};
  const auto projected = ProjectOntoBudget(point, costs, 2.0);
  double spend = 0.0;
  for (size_t i = 0; i < point.size(); ++i) {
    EXPECT_GE(projected[i], 0.0);
    spend += costs[i] * projected[i];
  }
  EXPECT_NEAR(spend, 2.0, 1e-9);
}

TEST(ProjectionTest, ClampsNegativeCoordinates) {
  const std::vector<double> point = {-5.0, 4.0};
  const std::vector<double> costs = {1.0, 1.0};
  const auto projected = ProjectOntoBudget(point, costs, 2.0);
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_NEAR(projected[1], 2.0, 1e-9);
}

TEST(ProjectionTest, IsNearestFeasiblePoint) {
  // For equal costs the projection is the Euclidean simplex projection:
  // verify against the direct shift formula when all stay positive.
  const std::vector<double> point = {3.0, 5.0};
  const std::vector<double> costs = {1.0, 1.0};
  const auto projected = ProjectOntoBudget(point, costs, 6.0);
  // Shift each by (8 - 6) / 2 = 1.
  EXPECT_NEAR(projected[0], 2.0, 1e-9);
  EXPECT_NEAR(projected[1], 4.0, 1e-9);
}

TEST(GenericNlpTest, MatchesKktSolverOnToyExample) {
  const ElementSet elements = MakeElementSet(
      {1.0, 2.0, 3.0, 4.0, 5.0},
      {5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15});
  const CoreProblem problem = MakePerceivedProblem(elements, 5.0, false);

  const Allocation exact = KktWaterFillingSolver().Solve(problem).value();
  GenericNlpSolver::Options options;
  options.gradient_mode = GenericNlpSolver::GradientMode::kAnalytic;
  options.max_iterations = 20000;
  options.time_budget_seconds = 20.0;
  const Allocation approx = GenericNlpSolver(options).Solve(problem).value();

  EXPECT_TRUE(approx.converged);
  EXPECT_NEAR(approx.objective, exact.objective, 1e-5);
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_NEAR(approx.frequencies[i], exact.frequencies[i], 0.02)
        << "element " << i;
  }
}

TEST(GenericNlpTest, FiniteDifferenceModeAlsoConverges) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0}, {0.5, 0.3, 0.2});
  const CoreProblem problem = MakePerceivedProblem(elements, 3.0, false);
  const Allocation exact = KktWaterFillingSolver().Solve(problem).value();
  GenericNlpSolver::Options options;
  options.gradient_mode = GenericNlpSolver::GradientMode::kFiniteDifference;
  options.max_iterations = 20000;
  options.time_budget_seconds = 20.0;
  const Allocation approx = GenericNlpSolver(options).Solve(problem).value();
  EXPECT_NEAR(approx.objective, exact.objective, 1e-4);
}

TEST(GenericNlpTest, SizeAwareConstraintRespected) {
  const ElementSet elements =
      MakeElementSet({2.0, 2.0}, {0.5, 0.5}, {1.0, 4.0});
  const CoreProblem problem = MakePerceivedProblem(elements, 4.0, true);
  GenericNlpSolver::Options options;
  options.gradient_mode = GenericNlpSolver::GradientMode::kAnalytic;
  const Allocation approx = GenericNlpSolver(options).Solve(problem).value();
  EXPECT_NEAR(approx.bandwidth_used, 4.0, 1e-6);
  EXPECT_GT(approx.frequencies[0], approx.frequencies[1]);
}

TEST(GenericNlpTest, TimeBudgetStopsEarly) {
  // A big instance with an effectively-zero time budget must return a
  // feasible (if unconverged) allocation immediately.
  std::vector<double> rates(2000);
  std::vector<double> probs(2000);
  for (size_t i = 0; i < rates.size(); ++i) {
    rates[i] = 0.5 + static_cast<double>(i % 17);
    probs[i] = 1.0 / 2000.0;
  }
  const ElementSet elements = MakeElementSet(rates, probs);
  const CoreProblem problem = MakePerceivedProblem(elements, 500.0, false);
  GenericNlpSolver::Options options;
  options.time_budget_seconds = 0.0;
  const Allocation allocation = GenericNlpSolver(options).Solve(problem).value();
  EXPECT_FALSE(allocation.converged);
  EXPECT_NEAR(allocation.bandwidth_used, 500.0, 1e-6);
  EXPECT_EQ(allocation.iterations, 0);
}

TEST(GenericNlpTest, RejectsInvalidProblems) {
  CoreProblem empty;
  empty.bandwidth = 1.0;
  EXPECT_FALSE(GenericNlpSolver().Solve(empty).ok());
}

TEST(GenericNlpTest, ObjectiveNeverBeatsExactOptimum) {
  const ElementSet elements = MakeElementSet(
      {0.5, 1.5, 2.5, 3.5}, {0.4, 0.1, 0.3, 0.2});
  const CoreProblem problem = MakePerceivedProblem(elements, 2.0, false);
  const Allocation exact = KktWaterFillingSolver().Solve(problem).value();
  GenericNlpSolver::Options options;
  options.gradient_mode = GenericNlpSolver::GradientMode::kAnalytic;
  const Allocation approx = GenericNlpSolver(options).Solve(problem).value();
  EXPECT_LE(approx.objective, exact.objective + 1e-9);
}

}  // namespace
}  // namespace freshen
