// Tests for the Chrome trace_event exporter and the determinism contract of
// virtual-time events: a seeded faulted closed-loop run (the sync-drill
// scenario) must produce a parseable trace with matched B/E pairs and
// per-thread monotone timestamps, and the merged virtual-event dump must be
// byte-identical across executor pool sizes and simulator thread counts.
// Runs under `ctest -L tsan` in sanitizer builds (the recorder is fed from
// the pool, the loop, and sharded simulator workers concurrently).
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mirror/online_loop.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "sync/executor.h"
#include "sync/source.h"
#include "workload/generator.h"

namespace freshen {
namespace {

using obs::Event;
using obs::EventClock;
using obs::EventPhase;
using obs::EventRecorder;

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate trace_event output. Parses
// objects, arrays, strings (with escapes), numbers, true/false/null.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escaped = text_[pos_++];
        switch (escaped) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
          case '\\':
          case '/':
            c = escaped;
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::atof(text_.substr(start, pos_ - start).c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// A seeded faulted closed-loop run (the sync-drill scenario) feeding the
// global recorder. Returns the collected events.
std::vector<Event> RunDrillScenario(size_t pool_threads) {
  EventRecorder& recorder = EventRecorder::Global();
  recorder.Reset();
  recorder.set_enabled(true);

  ExperimentSpec spec;
  spec.num_objects = 64;
  spec.theta = 1.0;
  spec.seed = 20030305;
  auto truth = GenerateCatalog(spec);
  EXPECT_TRUE(truth.ok());

  sync::SimulatedSource::Options source_options;
  source_options.error_rate = 0.3;
  source_options.stall_rate = 0.05;
  source_options.mean_jitter_seconds = 0.008;
  source_options.seed = 99;
  auto source = sync::SimulatedSource::Create(source_options);
  EXPECT_TRUE(source.ok());

  obs::MetricsRegistry registry;
  sync::SyncExecutor::Options executor_options;
  executor_options.num_threads = pool_threads;
  executor_options.queue_capacity = 1024;
  executor_options.retry.max_attempts = 2;
  executor_options.seed = 7;
  executor_options.registry = &registry;
  auto executor = sync::SyncExecutor::Create(&source.value(),
                                             executor_options);
  EXPECT_TRUE(executor.ok());

  OnlineFreshenLoop::Options loop_options;
  loop_options.accesses_per_period = 200.0;
  loop_options.seed = 41;
  loop_options.registry = &registry;
  loop_options.executor = executor.value().get();
  auto loop = OnlineFreshenLoop::Create(*truth, 16.0, loop_options);
  EXPECT_TRUE(loop.ok());
  for (int period = 0; period < 4; ++period) loop->RunPeriod();

  std::vector<Event> events = recorder.Collect();
  recorder.set_enabled(false);
  return events;
}

TEST(ChromeTraceTest, DrillTraceParsesWithPairedSpansAndMonotoneClocks) {
  const std::vector<Event> events = RunDrillScenario(/*pool_threads=*/4);
  ASSERT_FALSE(events.empty());
  const std::string json = obs::FormatChromeTrace(events);

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json.substr(0, 400);
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* trace_events = root.Get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, JsonValue::Kind::kArray);
  EXPECT_GT(trace_events->array.size(), events.size());  // + metadata.

  // Per-(pid, tid): B/E names pair like parentheses and timestamps never go
  // backwards in file order.
  std::map<std::pair<double, double>, std::vector<std::string>> open_spans;
  std::map<std::pair<double, double>, double> last_ts;
  size_t spans = 0;
  for (const JsonValue& event : trace_events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* name = event.Get("name");
    const JsonValue* ph = event.Get("ph");
    const JsonValue* pid = event.Get("pid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    if (ph->string == "M") continue;  // Metadata carries no ts.
    const JsonValue* tid = event.Get("tid");
    const JsonValue* ts = event.Get("ts");
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(ts, nullptr);
    const std::pair<double, double> track{pid->number, tid->number};
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ts->number)
          << "clock went backwards on pid=" << track.first
          << " tid=" << track.second;
    }
    last_ts[track] = ts->number;
    if (ph->string == "B") {
      open_spans[track].push_back(name->string);
      ++spans;
    } else if (ph->string == "E") {
      ASSERT_FALSE(open_spans[track].empty())
          << "E without B: " << name->string;
      EXPECT_EQ(open_spans[track].back(), name->string);
      open_spans[track].pop_back();
    } else {
      EXPECT_EQ(ph->string, "i");
    }
  }
  EXPECT_GT(spans, 0u);
  for (const auto& [track, stack] : open_spans) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid=" << track.second;
  }
}

TEST(ChromeTraceTest, VirtualEventsAreIdenticalAcrossPoolSizes) {
  const std::vector<Event> one = RunDrillScenario(/*pool_threads=*/1);
  const std::vector<Event> eight = RunDrillScenario(/*pool_threads=*/8);
  const std::string text_one = obs::FormatVirtualEventsText(one);
  const std::string text_eight = obs::FormatVirtualEventsText(eight);
  EXPECT_FALSE(text_one.empty());
  EXPECT_EQ(text_one, text_eight);
  // Same seed, same pool: byte-identical too (full reproducibility).
  const std::vector<Event> again = RunDrillScenario(/*pool_threads=*/1);
  EXPECT_EQ(text_one, obs::FormatVirtualEventsText(again));
}

TEST(ChromeTraceTest, SimulatorShardEventsAreThreadCountInvariant) {
  ExperimentSpec spec;
  spec.num_objects = 512;
  spec.theta = 1.1;
  spec.seed = 31337;
  auto catalog = GenerateCatalog(spec);
  ASSERT_TRUE(catalog.ok());
  std::vector<double> frequencies(catalog->size(), 0.5);

  EventRecorder& recorder = EventRecorder::Global();
  const auto run = [&](size_t threads) {
    recorder.Reset();
    recorder.set_enabled(true);
    SimulationConfig config;
    config.horizon_periods = 10.0;
    config.warmup_periods = 1.0;
    config.accesses_per_period = 200.0;
    config.seed = 5;
    config.threads = threads;
    MirrorSimulator simulator(*catalog, config);
    EXPECT_TRUE(simulator.Run(frequencies).ok());
    const std::string text = obs::FormatVirtualEventsText(recorder.Collect());
    recorder.set_enabled(false);
    return text;
  };
  const std::string text_one = run(1);
  const std::string text_eight = run(8);
  EXPECT_FALSE(text_one.empty());
  EXPECT_NE(text_one.find("sim/sim_shard"), std::string::npos);
  EXPECT_EQ(text_one, text_eight);
}

TEST(ChromeTraceTest, FormatEscapesAndLabelsTracks) {
  std::vector<Event> events;
  Event event;
  event.name = "quote\"name";
  event.category = "cat";
  event.clock = EventClock::kVirtual;
  event.track = obs::kTrackSimShardBase + 2;
  event.ts = 1.5;
  event.phase = EventPhase::kInstant;
  events.push_back(event);
  const std::string json = obs::FormatChromeTrace(events);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  // The escaped name survives the round trip, and the virtual track got a
  // human-readable thread_name metadata entry.
  bool found_name = false;
  bool found_track = false;
  for (const JsonValue& entry : root.Get("traceEvents")->array) {
    const JsonValue* name = entry.Get("name");
    if (name != nullptr && name->string == "quote\"name") found_name = true;
    if (name != nullptr && name->string == "thread_name") {
      const JsonValue* args = entry.Get("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* value = args->Get("name");
      ASSERT_NE(value, nullptr);
      EXPECT_EQ(value->string, "sim-shard-2");
      found_track = true;
    }
  }
  EXPECT_TRUE(found_name);
  EXPECT_TRUE(found_track);
}

}  // namespace
}  // namespace freshen
