// Tests for the FreshenPlanner: the end-to-end planning API in all its
// configurations, including the paper's key qualitative claims.
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/metrics.h"
#include "workload/generator.h"

namespace freshen {
namespace {

ElementSet IdealCatalog(double theta, Alignment alignment) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = theta;
  spec.alignment = alignment;
  return GenerateCatalog(spec).value();
}

TEST(PlannerTest, TechniqueNames) {
  EXPECT_EQ(ToString(Technique::kPerceived), "PF_TECHNIQUE");
  EXPECT_EQ(ToString(Technique::kGeneral), "GF_TECHNIQUE");
}

TEST(PlannerTest, ExactPlanSpendsExactlyTheBudget) {
  const ElementSet elements = IdealCatalog(1.0, Alignment::kShuffled);
  const FreshenPlan plan =
      FreshenPlanner({}).Plan(elements, 250.0).value();
  EXPECT_NEAR(plan.bandwidth_used, 250.0, 1e-6);
  EXPECT_NEAR(BandwidthUsed(elements, plan.frequencies), 250.0, 1e-6);
  EXPECT_EQ(plan.num_partitions_used, 0u);
}

TEST(PlannerTest, PfEqualsGfAtThetaZero) {
  // Figure 3's left edge: with a uniform profile both techniques produce
  // the same schedule.
  const ElementSet elements = IdealCatalog(0.0, Alignment::kShuffled);
  PlannerOptions pf_options;
  pf_options.technique = Technique::kPerceived;
  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;
  const FreshenPlan pf = FreshenPlanner(pf_options).Plan(elements, 250.0).value();
  const FreshenPlan gf = FreshenPlanner(gf_options).Plan(elements, 250.0).value();
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_NEAR(pf.frequencies[i], gf.frequencies[i], 1e-6);
  }
  EXPECT_NEAR(pf.perceived_freshness, gf.perceived_freshness, 1e-9);
}

class PlannerAlignmentTest : public ::testing::TestWithParam<Alignment> {};

TEST_P(PlannerAlignmentTest, PfBeatsGfOnPerceivedFreshnessUnderSkew) {
  // The paper's central claim, for every alignment and strong skew.
  const ElementSet elements = IdealCatalog(1.2, GetParam());
  PlannerOptions pf_options;
  PlannerOptions gf_options;
  gf_options.technique = Technique::kGeneral;
  const FreshenPlan pf = FreshenPlanner(pf_options).Plan(elements, 250.0).value();
  const FreshenPlan gf = FreshenPlanner(gf_options).Plan(elements, 250.0).value();
  EXPECT_GT(pf.perceived_freshness, gf.perceived_freshness);
  // And GF (which optimizes general freshness) wins on its own metric.
  EXPECT_GE(gf.general_freshness, pf.general_freshness - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Alignments, PlannerAlignmentTest,
                         ::testing::Values(Alignment::kAligned,
                                           Alignment::kReverse,
                                           Alignment::kShuffled));

TEST(PlannerTest, PartitionedApproachesExactAsPartitionsGrow) {
  const ElementSet elements = IdealCatalog(1.0, Alignment::kShuffled);
  const double bandwidth = 250.0;
  const double exact = FreshenPlanner({})
                           .Plan(elements, bandwidth)
                           .value()
                           .perceived_freshness;
  double prev = 0.0;
  for (size_t k : {5u, 25u, 125u, 500u}) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = PartitionKey::kPerceivedFreshness;
    options.num_partitions = k;
    const double pf = FreshenPlanner(options)
                          .Plan(elements, bandwidth)
                          .value()
                          .perceived_freshness;
    EXPECT_LE(pf, exact + 1e-9) << k;
    EXPECT_GE(pf, prev - 0.02) << k;  // Broadly improving in k.
    prev = pf;
  }
  // With K = N the heuristic is the exact solution.
  PlannerOptions full;
  full.mode = PlanMode::kPartitioned;
  full.num_partitions = elements.size();
  const double pf_full = FreshenPlanner(full)
                             .Plan(elements, bandwidth)
                             .value()
                             .perceived_freshness;
  EXPECT_NEAR(pf_full, exact, 1e-6);
}

TEST(PlannerTest, PartitionedReportsPartitionCountAndTimings) {
  const ElementSet elements = IdealCatalog(1.0, Alignment::kShuffled);
  PlannerOptions options;
  options.mode = PlanMode::kPartitioned;
  options.num_partitions = 40;
  options.kmeans_iterations = 3;
  const FreshenPlan plan =
      FreshenPlanner(options).Plan(elements, 250.0).value();
  EXPECT_GT(plan.num_partitions_used, 0u);
  EXPECT_LE(plan.num_partitions_used, 40u);
  EXPECT_GE(plan.timings.total_seconds, 0.0);
  EXPECT_GE(plan.timings.kmeans_seconds, 0.0);
  EXPECT_NEAR(plan.bandwidth_used, 250.0, 1e-6);
}

TEST(PlannerTest, GfPartitionedIgnoresProfile) {
  // Partitioned GF must produce near-identical PF-evaluated plans for two
  // catalogs differing only in profile (weights are uniform).
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.alignment = Alignment::kShuffled;
  ElementSet a = GenerateCatalog(spec).value();
  ElementSet b = a;
  // Replace b's profile with uniform.
  for (auto& e : b) e.access_prob = 1.0 / static_cast<double>(b.size());
  PlannerOptions options;
  options.technique = Technique::kGeneral;
  options.mode = PlanMode::kPartitioned;
  options.partition_key = PartitionKey::kChangeRate;  // Profile-free key.
  options.num_partitions = 25;
  const FreshenPlan plan_a = FreshenPlanner(options).Plan(a, 250.0).value();
  const FreshenPlan plan_b = FreshenPlanner(options).Plan(b, 250.0).value();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(plan_a.frequencies[i], plan_b.frequencies[i], 1e-9);
  }
}

TEST(PlannerTest, SizeAwarePlanningBeatsSizeBlindOnSizedCatalog) {
  // The §5 headline: accounting for sizes yields much better perceived
  // freshness under the same true bandwidth.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.size_model = SizeModel::kPareto;
  spec.size_alignment = SizeAlignment::kAligned;
  spec.theta = 0.0;
  spec.alignment = Alignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();

  PlannerOptions blind;
  blind.size_aware = false;
  PlannerOptions aware;
  aware.size_aware = true;
  const FreshenPlan blind_plan =
      FreshenPlanner(blind).Plan(elements, 250.0).value();
  const FreshenPlan aware_plan =
      FreshenPlanner(aware).Plan(elements, 250.0).value();
  // Both consume the same true bandwidth...
  EXPECT_NEAR(blind_plan.bandwidth_used, 250.0, 1e-6);
  EXPECT_NEAR(aware_plan.bandwidth_used, 250.0, 1e-6);
  // ...but the size-aware plan sees clearly fresher accesses. (The paper's
  // Figure 10 gap is 0.312 vs 0.586; the exact ratio depends on the size
  // draw — bench_fig10 reports the measured gap.)
  EXPECT_GT(aware_plan.perceived_freshness,
            blind_plan.perceived_freshness + 0.02);
}

TEST(PlannerTest, RejectsInvalidInput) {
  const ElementSet elements = IdealCatalog(1.0, Alignment::kShuffled);
  EXPECT_FALSE(FreshenPlanner({}).Plan({}, 10.0).ok());
  EXPECT_FALSE(FreshenPlanner({}).Plan(elements, 0.0).ok());
  EXPECT_FALSE(FreshenPlanner({}).Plan(elements, -5.0).ok());
  ElementSet bad = elements;
  bad[0].size = 0.0;
  EXPECT_FALSE(FreshenPlanner({}).Plan(bad, 10.0).ok());
}

TEST(PlannerTest, FrequenciesAreNonNegativeAndFinite) {
  const ElementSet elements = IdealCatalog(1.6, Alignment::kAligned);
  for (auto mode : {PlanMode::kExact, PlanMode::kPartitioned}) {
    PlannerOptions options;
    options.mode = mode;
    options.num_partitions = 30;
    const FreshenPlan plan =
        FreshenPlanner(options).Plan(elements, 250.0).value();
    for (double f : plan.frequencies) {
      EXPECT_GE(f, 0.0);
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

}  // namespace
}  // namespace freshen
