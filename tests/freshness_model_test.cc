// Tests for the closed-form freshness model: values, limits, stability,
// concavity, the marginal kernel g and its inverse, and the age formula
// (validated against numeric integration).
#include <cmath>

#include <gtest/gtest.h>

#include "model/freshness.h"

namespace freshen {
namespace {

TEST(FixedOrderFreshnessTest, KnownValue) {
  // r = lambda/f = 1: F = 1 - e^{-1} ~= 0.63212.
  EXPECT_NEAR(FixedOrderFreshness(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
  // r = 2: F = (1 - e^{-2}) / 2.
  EXPECT_NEAR(FixedOrderFreshness(1.0, 2.0), (1.0 - std::exp(-2.0)) / 2.0,
              1e-12);
}

TEST(FixedOrderFreshnessTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(FixedOrderFreshness(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(FixedOrderFreshness(3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FixedOrderFreshness(0.0, 0.0), 1.0);
}

TEST(FixedOrderFreshnessTest, ApproachesOneForFastSync) {
  EXPECT_NEAR(FixedOrderFreshness(1e9, 1.0), 1.0, 1e-9);
}

TEST(FixedOrderFreshnessTest, ApproachesZeroForSlowSync) {
  EXPECT_LT(FixedOrderFreshness(1e-9, 1.0), 1e-8);
}

TEST(FixedOrderFreshnessTest, MonotoneIncreasingInFrequency) {
  double prev = 0.0;
  for (double f = 0.01; f < 100.0; f *= 1.5) {
    const double cur = FixedOrderFreshness(f, 2.0);
    EXPECT_GT(cur, prev) << "f=" << f;
    prev = cur;
  }
}

TEST(FixedOrderFreshnessTest, MonotoneDecreasingInChangeRate) {
  double prev = 1.1;
  for (double lambda = 0.01; lambda < 100.0; lambda *= 1.5) {
    const double cur = FixedOrderFreshness(1.0, lambda);
    EXPECT_LT(cur, prev) << "lambda=" << lambda;
    prev = cur;
  }
}

TEST(FixedOrderFreshnessTest, StrictlyConcaveInFrequency) {
  // Midpoint value exceeds the chord for several (f1, f2) pairs.
  const double lambda = 3.0;
  for (double f1 = 0.1; f1 < 10.0; f1 *= 2.0) {
    const double f2 = f1 * 3.0;
    const double mid = FixedOrderFreshness(0.5 * (f1 + f2), lambda);
    const double chord = 0.5 * (FixedOrderFreshness(f1, lambda) +
                                FixedOrderFreshness(f2, lambda));
    EXPECT_GT(mid, chord) << "f1=" << f1;
  }
}

TEST(FixedOrderDerivativeTest, MatchesFiniteDifference) {
  const double lambda = 2.5;
  for (double f = 0.05; f < 50.0; f *= 1.7) {
    const double h = 1e-6 * f;
    const double numeric = (FixedOrderFreshness(f + h, lambda) -
                            FixedOrderFreshness(f - h, lambda)) /
                           (2.0 * h);
    EXPECT_NEAR(FixedOrderFreshnessDerivative(f, lambda), numeric,
                1e-6 * std::fabs(numeric) + 1e-12)
        << "f=" << f;
  }
}

TEST(FixedOrderDerivativeTest, LimitAtZeroFrequencyIsOneOverLambda) {
  EXPECT_DOUBLE_EQ(FixedOrderFreshnessDerivative(0.0, 4.0), 0.25);
  // Approaching from above.
  EXPECT_NEAR(FixedOrderFreshnessDerivative(1e-9, 4.0), 0.25, 1e-6);
}

TEST(FixedOrderDerivativeTest, DecreasingInFrequency) {
  // At very small f the marginal saturates at 1/lambda to double precision,
  // so require strict decrease only once f is large enough to matter.
  double prev = 1e9;
  for (double f = 0.01; f < 1000.0; f *= 2.0) {
    const double cur = FixedOrderFreshnessDerivative(f, 1.0);
    if (f >= 0.1) {
      EXPECT_LT(cur, prev) << "f=" << f;
    } else {
      EXPECT_LE(cur, prev) << "f=" << f;
    }
    prev = cur;
  }
}

TEST(PoissonSyncFreshnessTest, KnownValuesAndDominance) {
  EXPECT_DOUBLE_EQ(PoissonSyncFreshness(1.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(PoissonSyncFreshness(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(PoissonSyncFreshness(1.0, 0.0), 1.0);
  // Fixed-order beats Poisson scheduling at every operating point
  // (regular intervals waste less: Cho & Garcia-Molina's result).
  for (double f = 0.1; f < 100.0; f *= 2.0) {
    EXPECT_GT(FixedOrderFreshness(f, 1.0), PoissonSyncFreshness(f, 1.0))
        << "f=" << f;
  }
}

TEST(PolicyFreshnessTest, DispatchesOnPolicy) {
  EXPECT_DOUBLE_EQ(PolicyFreshness(SyncPolicy::kFixedOrder, 2.0, 2.0),
                   FixedOrderFreshness(2.0, 2.0));
  EXPECT_DOUBLE_EQ(PolicyFreshness(SyncPolicy::kPoisson, 2.0, 2.0),
                   PoissonSyncFreshness(2.0, 2.0));
}

TEST(MarginalGainGTest, ValuesAndRange) {
  EXPECT_DOUBLE_EQ(MarginalGainG(0.0), 0.0);
  // g(1) = 1 - 2/e.
  EXPECT_NEAR(MarginalGainG(1.0), 1.0 - 2.0 / std::exp(1.0), 1e-14);
  EXPECT_NEAR(MarginalGainG(700.0), 1.0, 1e-12);
  for (double r = 1e-9; r < 500.0; r *= 3.0) {
    const double g = MarginalGainG(r);
    EXPECT_GT(g, 0.0) << r;
    // g < 1 mathematically; for r beyond ~37 it rounds to exactly 1.0.
    if (r < 30.0) {
      EXPECT_LT(g, 1.0) << r;
    } else {
      EXPECT_LE(g, 1.0) << r;
    }
  }
}

TEST(MarginalGainGTest, SeriesMatchesDirectFormAtCrossover) {
  // The series branch (r < 1e-4) and the direct branch must agree where
  // they meet.
  const double r = 1e-4;
  const double series = MarginalGainG(r * 0.9999999);
  const double direct = MarginalGainG(r * 1.0000001);
  // The two points differ by dr = 2e-11; with slope g'(r) ~ r = 1e-4 the
  // true values differ by ~2e-15, so anything beyond ~3e-15 would indicate a
  // genuine branch discontinuity.
  EXPECT_NEAR(series, direct, 3e-15);
}

TEST(MarginalGainGTest, SmallArgumentQuadratic) {
  // g(r) ~ r^2/2 for tiny r.
  EXPECT_NEAR(MarginalGainG(1e-8), 0.5e-16, 1e-22);
}

TEST(MarginalGainGTest, DerivativeMatchesFiniteDifference) {
  for (double r = 0.01; r < 50.0; r *= 2.0) {
    const double h = 1e-6 * r;
    const double numeric = (MarginalGainG(r + h) - MarginalGainG(r - h)) /
                           (2.0 * h);
    EXPECT_NEAR(MarginalGainGPrime(r), numeric,
                1e-5 * std::fabs(numeric) + 1e-12);
  }
}

TEST(InverseMarginalGainGTest, RoundTripAcrossFullRange) {
  for (double y = 1e-12; y < 1.0; y = y * 3.0 + 1e-14) {
    if (y >= 1.0) break;
    const double r = InverseMarginalGainG(y);
    EXPECT_NEAR(MarginalGainG(r), y, 1e-10 * (1.0 + y))
        << "y=" << y << " r=" << r;
  }
}

TEST(InverseMarginalGainGTest, NearOneBoundary) {
  const double y = 1.0 - 1e-12;
  const double r = InverseMarginalGainG(y);
  EXPECT_GT(r, 20.0);
  EXPECT_NEAR(MarginalGainG(r), y, 1e-13);
}

TEST(InverseMarginalGainGTest, MonotoneInY) {
  double prev = 0.0;
  for (double y = 0.001; y < 0.999; y += 0.001) {
    const double r = InverseMarginalGainG(y);
    EXPECT_GT(r, prev) << "y=" << y;
    prev = r;
  }
}

// Numerically integrate the expected age over one sync interval I:
// E[age at offset t] = t - (1/l)(1 - e^{-l t}); time-average over [0, I].
double NumericAge(double f, double lambda) {
  const double interval = 1.0 / f;
  const int steps = 200000;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t = (i + 0.5) * interval / steps;
    sum += t - (1.0 - std::exp(-lambda * t)) / lambda;
  }
  return sum / steps;
}

TEST(FixedOrderAgeTest, MatchesNumericIntegration) {
  for (double f : {0.5, 1.0, 2.0, 8.0}) {
    for (double lambda : {0.2, 1.0, 3.0}) {
      EXPECT_NEAR(FixedOrderAge(f, lambda), NumericAge(f, lambda),
                  1e-6 * (1.0 + NumericAge(f, lambda)))
          << "f=" << f << " lambda=" << lambda;
    }
  }
}

TEST(FixedOrderAgeTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(FixedOrderAge(1.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(FixedOrderAge(0.0, 1.0)));
}

TEST(FixedOrderAgeTest, SeriesBranchContinuity) {
  // x = lambda/f crosses 0.5 smoothly.
  const double lambda = 1.0;
  const double below = FixedOrderAge(lambda / 0.4999999, lambda);
  const double above = FixedOrderAge(lambda / 0.5000001, lambda);
  // The evaluation points themselves differ by df ~ 8e-7 with slope
  // dA/df ~ 0.07, so allow ~1e-7; a branch mismatch would be far larger.
  EXPECT_NEAR(below, above, 2e-7);
}

TEST(FixedOrderAgeTest, DecreasingInFrequency) {
  double prev = 1e300;
  for (double f = 0.1; f < 100.0; f *= 2.0) {
    const double cur = FixedOrderAge(f, 2.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace freshen
