// Tests for the FRSHCAT1 binary catalog format: bit-identical round trips,
// corruption detection, zero-copy mmap loads, and parity with the CSV
// reader.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "io/catalog_binary.h"
#include "io/catalog_io.h"
#include "workload/generator.h"

namespace freshen {
namespace {

ElementSet TestCatalog(size_t n) {
  ExperimentSpec spec;
  spec.num_objects = n;
  spec.theta = 1.1;
  spec.size_model = SizeModel::kPareto;
  spec.seed = 321;
  return GenerateCatalog(spec).value();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

// memcmp-level equality of two catalogs: every double must round-trip to
// the exact same bit pattern, not merely compare approximately.
void ExpectBitIdentical(const ElementSet& a, const ElementSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i].change_rate, &b[i].change_rate,
                          sizeof(double)),
              0)
        << "change_rate differs at " << i;
    EXPECT_EQ(std::memcmp(&a[i].access_prob, &b[i].access_prob,
                          sizeof(double)),
              0)
        << "access_prob differs at " << i;
    EXPECT_EQ(std::memcmp(&a[i].size, &b[i].size, sizeof(double)), 0)
        << "size differs at " << i;
  }
}

TEST(CatalogBinaryTest, InMemoryRoundTripIsBitIdentical) {
  const ElementSet catalog = TestCatalog(1000);
  const std::string blob = CatalogToBinary(catalog);
  const ElementSet loaded =
      ParseCatalogBinary(blob.data(), blob.size()).value();
  ExpectBitIdentical(catalog, loaded);
}

TEST(CatalogBinaryTest, FileRoundTripIsBitIdentical) {
  const ElementSet catalog = TestCatalog(777);
  const std::string path = TempPath("catalog_binary_roundtrip.fcat");
  ASSERT_TRUE(SaveCatalogBinary(catalog, path).ok());
  const ElementSet loaded = LoadCatalogBinary(path).value();
  ExpectBitIdentical(catalog, loaded);
  // Serializing the loaded catalog reproduces the file byte for byte.
  const std::string original = ReadFileToString(path).value();
  EXPECT_EQ(CatalogToBinary(loaded), original);
  std::remove(path.c_str());
}

TEST(CatalogBinaryTest, EmptyCatalogRoundTrips) {
  const std::string blob = CatalogToBinary({});
  const ElementSet loaded =
      ParseCatalogBinary(blob.data(), blob.size()).value();
  EXPECT_TRUE(loaded.empty());
}

TEST(CatalogBinaryTest, MmapExposesColumnsZeroCopy) {
  const ElementSet catalog = TestCatalog(500);
  const std::string path = TempPath("catalog_binary_mmap.fcat");
  ASSERT_TRUE(SaveCatalogBinary(catalog, path).ok());
  MmapCatalog mapped = MmapCatalog::Open(path).value();
  ASSERT_EQ(mapped.size(), catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(mapped.change_rates()[i], catalog[i].change_rate);
    EXPECT_EQ(mapped.access_probs()[i], catalog[i].access_prob);
    EXPECT_EQ(mapped.sizes()[i], catalog[i].size);
  }
  ExpectBitIdentical(catalog, mapped.ToElementSet());

  // Move semantics keep the mapping valid exactly once.
  MmapCatalog moved = std::move(mapped);
  EXPECT_EQ(moved.size(), catalog.size());
  EXPECT_EQ(moved.change_rates()[0], catalog[0].change_rate);
  std::remove(path.c_str());
}

TEST(CatalogBinaryTest, DetectsCorruption) {
  const ElementSet catalog = TestCatalog(100);
  std::string blob = CatalogToBinary(catalog);

  // Flip one payload byte: the section CRC must catch it.
  std::string corrupted = blob;
  corrupted[corrupted.size() - 5] ^= 0x40;
  EXPECT_FALSE(ParseCatalogBinary(corrupted.data(), corrupted.size()).ok());

  // Flip a header byte.
  corrupted = blob;
  corrupted[9] ^= 0x01;
  EXPECT_FALSE(ParseCatalogBinary(corrupted.data(), corrupted.size()).ok());

  // Truncation.
  EXPECT_FALSE(ParseCatalogBinary(blob.data(), blob.size() / 2).ok());
  EXPECT_FALSE(ParseCatalogBinary(blob.data(), 4).ok());

  // Wrong magic.
  corrupted = blob;
  corrupted[0] = 'X';
  EXPECT_FALSE(ParseCatalogBinary(corrupted.data(), corrupted.size()).ok());
}

TEST(CatalogBinaryTest, RejectsOutOfDomainValues) {
  ElementSet catalog = TestCatalog(10);
  catalog[3].change_rate = -1.0;
  std::string blob = CatalogToBinary(catalog);
  // CRCs are over the stored bytes, so this file is "intact" but invalid:
  // domain validation must reject it.
  EXPECT_FALSE(ParseCatalogBinary(blob.data(), blob.size()).ok());

  catalog = TestCatalog(10);
  catalog[0].size = 0.0;
  blob = CatalogToBinary(catalog);
  EXPECT_FALSE(ParseCatalogBinary(blob.data(), blob.size()).ok());

  catalog = TestCatalog(10);
  catalog[9].access_prob = std::nan("");
  blob = CatalogToBinary(catalog);
  EXPECT_FALSE(ParseCatalogBinary(blob.data(), blob.size()).ok());
}

TEST(CatalogBinaryTest, FormatDetection) {
  const ElementSet catalog = TestCatalog(50);
  const std::string binary_path = TempPath("catalog_detect.fcat");
  const std::string csv_path = TempPath("catalog_detect.csv");
  ASSERT_TRUE(SaveCatalogBinary(catalog, binary_path).ok());
  ASSERT_TRUE(SaveCatalogCsv(catalog, csv_path).ok());
  EXPECT_TRUE(LooksLikeBinaryCatalog(binary_path));
  EXPECT_FALSE(LooksLikeBinaryCatalog(csv_path));
  EXPECT_FALSE(LooksLikeBinaryCatalog(TempPath("does_not_exist.fcat")));
  std::remove(binary_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CatalogBinaryTest, AgreesWithCsvReader) {
  // A catalog whose CSV probabilities are already normalized survives the
  // CSV round trip, so both formats must load element-for-element equal.
  const ElementSet catalog = TestCatalog(200);
  const std::string csv_path = TempPath("catalog_parity.csv");
  const std::string bin_path = TempPath("catalog_parity.fcat");
  ASSERT_TRUE(SaveCatalogCsv(catalog, csv_path).ok());
  ASSERT_TRUE(SaveCatalogBinary(catalog, bin_path).ok());
  const ElementSet from_csv = LoadCatalogCsv(csv_path).value();
  const ElementSet from_bin = LoadCatalogBinary(bin_path).value();
  ASSERT_EQ(from_csv.size(), from_bin.size());
  for (size_t i = 0; i < from_csv.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_csv[i].change_rate, from_bin[i].change_rate);
    EXPECT_NEAR(from_csv[i].access_prob, from_bin[i].access_prob, 1e-15);
    EXPECT_DOUBLE_EQ(from_csv[i].size, from_bin[i].size);
  }
}

TEST(CatalogBinaryTest, Crc32MatchesKnownVector) {
  // The classic IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace freshen
