// Statistical tests for the workload distributions: moments, supports, and
// goodness of fit where cheap. Sample sizes and tolerances are chosen so the
// tests are deterministic (fixed seeds) and robust.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/distributions.h"
#include "rng/rng.h"
#include "rng/zipf.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

TEST(NormalTest, MomentsMatch) {
  Rng rng(21);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(SampleStandardNormal(rng));
  EXPECT_NEAR(stats.Mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.01);
}

TEST(ExponentialTest, MeanMatchesRate) {
  Rng rng(22);
  for (double rate : {0.5, 1.0, 4.0}) {
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
      const double x = SampleExponential(rng, rate);
      EXPECT_GT(x, 0.0);
      stats.Add(x);
    }
    EXPECT_NEAR(stats.Mean(), 1.0 / rate, 0.02 / rate) << "rate=" << rate;
  }
}

TEST(ExponentialTest, Memorylessness) {
  // P(X > a + b | X > a) == P(X > b): compare tail fractions.
  Rng rng(23);
  const double rate = 1.0;
  int over_1 = 0;
  int over_2 = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = SampleExponential(rng, rate);
    if (x > 1.0) ++over_1;
    if (x > 2.0) ++over_2;
  }
  const double p_over_1 = static_cast<double>(over_1) / n;
  const double p_over_2_given_1 =
      static_cast<double>(over_2) / static_cast<double>(over_1);
  EXPECT_NEAR(p_over_2_given_1, p_over_1, 0.01);
}

class GammaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMomentsTest, MeanAndStdDevMatch) {
  const auto [mean, stddev] = GetParam();
  Rng rng(24);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = SampleGammaMeanStdDev(rng, mean, stddev);
    EXPECT_GT(x, 0.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.Mean(), mean, 0.02 * mean);
  EXPECT_NEAR(stats.StdDev(), stddev, 0.03 * stddev);
}

INSTANTIATE_TEST_SUITE_P(
    PaperParameterizations, GammaMomentsTest,
    ::testing::Values(std::make_pair(2.0, 1.0),   // Table 2.
                      std::make_pair(2.0, 2.0),   // Table 3.
                      std::make_pair(1.0, 0.5),   // Shape 4.
                      std::make_pair(0.5, 1.0))); // Shape < 1 branch.

TEST(GammaTest, ShapeScaleParameterization) {
  Rng rng(25);
  RunningStats stats;
  const double shape = 3.0;
  const double scale = 2.0;
  for (int i = 0; i < 100000; ++i) stats.Add(SampleGamma(rng, shape, scale));
  EXPECT_NEAR(stats.Mean(), shape * scale, 0.1);
  EXPECT_NEAR(stats.Variance(), shape * scale * scale, 0.4);
}

TEST(ParetoTest, SupportStartsAtScale) {
  Rng rng(26);
  const double scale = 0.4;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SamplePareto(rng, 1.1, scale), scale);
  }
}

TEST(ParetoTest, ScaleForMeanGivesRequestedMean) {
  // Shape 1.1 (the paper's): heavy tail, so the sample mean converges
  // slowly — use a generous tolerance.
  const double shape = 1.5;  // Use a lighter tail for the moment check.
  const double scale = ParetoScaleForMean(shape, 1.0);
  EXPECT_NEAR(scale, (1.5 - 1.0) / 1.5, 1e-12);
  Rng rng(27);
  RunningStats stats;
  for (int i = 0; i < 2000000; ++i) stats.Add(SamplePareto(rng, shape, scale));
  EXPECT_NEAR(stats.Mean(), 1.0, 0.05);
}

TEST(ParetoTest, MedianMatchesClosedForm) {
  // Median = scale * 2^{1/shape} — robust even for shape 1.1.
  const double shape = 1.1;
  const double scale = ParetoScaleForMean(shape, 1.0);
  Rng rng(28);
  std::vector<double> samples;
  samples.reserve(100001);
  for (int i = 0; i < 100001; ++i) {
    samples.push_back(SamplePareto(rng, shape, scale));
  }
  const double median = Quantile(samples, 0.5);
  EXPECT_NEAR(median, scale * std::pow(2.0, 1.0 / shape), 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(static_cast<double>(SamplePoisson(rng, mean)));
  }
  EXPECT_NEAR(stats.Mean(), mean, 0.02 * mean + 0.01);
  EXPECT_NEAR(stats.Variance(), mean, 0.05 * mean + 0.02);
}

// Covers both the inversion branch (< 30) and the PTRS branch (>= 30).
INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0, 30.0, 80.0,
                                           400.0));

TEST(PoissonTest, ZeroMeanIsAlwaysZero) {
  Rng rng(30);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SamplePoisson(rng, 0.0), 0u);
}

TEST(ShuffleTest, IsPermutationAndDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng rng_a(31);
  Rng rng_b(31);
  Shuffle(rng_a, a);
  Shuffle(rng_b, b);
  EXPECT_EQ(a, b);
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(ShuffleTest, UniformOverPositions) {
  // Element 0 should land in each of 4 positions ~ 1/4 of the time.
  Rng rng(32);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int trial = 0; trial < n; ++trial) {
    std::vector<int> v{0, 1, 2, 3};
    Shuffle(rng, v);
    for (int pos = 0; pos < 4; ++pos) {
      if (v[pos] == 0) ++counts[pos];
    }
  }
  for (int pos = 0; pos < 4; ++pos) {
    EXPECT_NEAR(static_cast<double>(counts[pos]) / n, 0.25, 0.01);
  }
}

TEST(ZipfTest, UniformAtThetaZero) {
  const auto probs = ZipfProbabilities(10, 0.0);
  for (double p : probs) EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(ZipfTest, NormalizedAndDecreasing) {
  for (double theta : {0.5, 1.0, 1.6}) {
    const auto probs = ZipfProbabilities(1000, theta);
    EXPECT_NEAR(Sum(probs), 1.0, 1e-12) << theta;
    for (size_t i = 1; i < probs.size(); ++i) {
      EXPECT_LT(probs[i], probs[i - 1]) << theta;
    }
  }
}

TEST(ZipfTest, PowerLawRatios) {
  const double theta = 1.2;
  const auto probs = ZipfProbabilities(100, theta);
  // p_1 / p_2 = 2^theta, p_1 / p_10 = 10^theta.
  EXPECT_NEAR(probs[0] / probs[1], std::pow(2.0, theta), 1e-9);
  EXPECT_NEAR(probs[0] / probs[9], std::pow(10.0, theta), 1e-9);
}

TEST(ZipfTest, SkewConcentratesMass) {
  // Top-10 mass grows with theta.
  double prev_top10 = 0.0;
  for (double theta : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    const auto probs = ZipfProbabilities(500, theta);
    double top10 = 0.0;
    for (int i = 0; i < 10; ++i) top10 += probs[i];
    EXPECT_GT(top10, prev_top10) << theta;
    prev_top10 = top10;
  }
}

TEST(ZipfTest, HarmonicMatchesDirectSum) {
  double direct = 0.0;
  for (int i = 1; i <= 1000; ++i) direct += std::pow(i, -1.3);
  EXPECT_NEAR(GeneralizedHarmonic(1000, 1.3), direct, 1e-10);
}

TEST(ZipfTest, LargeNIsStable) {
  const auto probs = ZipfProbabilities(500000, 1.0);
  EXPECT_NEAR(Sum(probs), 1.0, 1e-9);
  EXPECT_GT(probs[0], probs[499999]);
}

}  // namespace
}  // namespace freshen
