// Tests for catalog CSV parsing/serialization and the file helpers.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "io/catalog_io.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

TEST(CatalogCsvTest, ParsesMinimalCatalog) {
  const auto catalog = ParseCatalogCsv(
                           "change_rate,access_prob\n"
                           "2.0,0.5\n"
                           "1.0,0.5\n")
                           .value();
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_DOUBLE_EQ(catalog[0].change_rate, 2.0);
  EXPECT_DOUBLE_EQ(catalog[0].access_prob, 0.5);
  EXPECT_DOUBLE_EQ(catalog[0].size, 1.0);
}

TEST(CatalogCsvTest, NormalizesRawAccessCounts) {
  const auto catalog = ParseCatalogCsv(
                           "change_rate,access_prob\n"
                           "1.0,30\n"
                           "1.0,10\n")
                           .value();
  EXPECT_DOUBLE_EQ(catalog[0].access_prob, 0.75);
  EXPECT_DOUBLE_EQ(catalog[1].access_prob, 0.25);
}

TEST(CatalogCsvTest, ColumnsInAnyOrderWithExtras) {
  const auto catalog = ParseCatalogCsv(
                           "url,size,access_prob,change_rate\n"
                           "http://a,2.0,0.6,3.0\n"
                           "http://b,4.0,0.4,1.0\n")
                           .value();
  ASSERT_EQ(catalog.size(), 2u);
  EXPECT_DOUBLE_EQ(catalog[0].size, 2.0);
  EXPECT_DOUBLE_EQ(catalog[0].change_rate, 3.0);
  EXPECT_DOUBLE_EQ(catalog[1].access_prob, 0.4);
}

TEST(CatalogCsvTest, HeaderIsCaseAndSpaceInsensitive) {
  const auto catalog = ParseCatalogCsv(
                           " Change_Rate , ACCESS_PROB \r\n"
                           "1.5,1.0\n")
                           .value();
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_DOUBLE_EQ(catalog[0].change_rate, 1.5);
}

TEST(CatalogCsvTest, SkipsBlankLines) {
  const auto catalog = ParseCatalogCsv(
                           "change_rate,access_prob\n"
                           "1.0,1.0\n"
                           "\n"
                           "2.0,1.0\n"
                           "\n")
                           .value();
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(CatalogCsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCatalogCsv("").ok());
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n").ok());
  EXPECT_FALSE(ParseCatalogCsv("foo,bar\n1,2\n").ok());  // Wrong header.
  EXPECT_FALSE(
      ParseCatalogCsv("change_rate,access_prob\nnot_a_number,1\n").ok());
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n-1,1\n").ok());
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n1\n").ok());
  EXPECT_FALSE(
      ParseCatalogCsv("change_rate,access_prob,size\n1,1,0\n").ok());
  // All-zero access weights cannot be normalized.
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n1,0\n2,0\n").ok());
}

TEST(CatalogCsvTest, AcceptsIdColumnWithUniqueIds) {
  const auto catalog = ParseCatalogCsv(
                           "id,change_rate,access_prob\n"
                           "0,2.0,0.5\n"
                           "7,1.0,0.5\n")
                           .value();
  EXPECT_EQ(catalog.size(), 2u);
}

TEST(CatalogCsvTest, RejectsDuplicateIdsWithBothLineNumbers) {
  const auto result = ParseCatalogCsv(
      "id,change_rate,access_prob\n"
      "3,2.0,0.5\n"
      "1,1.0,0.2\n"
      "3,1.0,0.3\n");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("line 4: duplicate element id 3"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("first declared on line 2"), std::string::npos)
      << message;
}

TEST(CatalogCsvTest, RejectsMalformedIds) {
  EXPECT_FALSE(
      ParseCatalogCsv("id,change_rate,access_prob\nx,1,1\n").ok());
  EXPECT_FALSE(
      ParseCatalogCsv("id,change_rate,access_prob\n-2,1,1\n").ok());
  EXPECT_FALSE(
      ParseCatalogCsv("id,change_rate,access_prob\n1.5,1,1\n").ok());
}

TEST(CatalogCsvTest, RejectsNonFiniteValuesWithDiagnostic) {
  const auto nan_result =
      ParseCatalogCsv("change_rate,access_prob\nnan,1\n");
  ASSERT_FALSE(nan_result.ok());
  EXPECT_NE(nan_result.status().ToString().find("is not a finite number"),
            std::string::npos)
      << nan_result.status().ToString();
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\ninf,1\n").ok());
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n1,nan\n").ok());
  EXPECT_FALSE(
      ParseCatalogCsv("change_rate,access_prob,size\n1,1,inf\n").ok());
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n1e999,1\n").ok());
  // Negative probabilities are rejected even though they are finite.
  EXPECT_FALSE(ParseCatalogCsv("change_rate,access_prob\n1,-0.5\n").ok());
}

TEST(CatalogCsvTest, RoundTripsThroughSerialization) {
  const ElementSet original =
      MakeElementSet({1.25, 3.5, 0.125}, {0.5, 0.25, 0.25}, {1.0, 2.5, 0.5});
  const auto parsed = ParseCatalogCsv(CatalogToCsv(original)).value();
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].change_rate, original[i].change_rate);
    EXPECT_DOUBLE_EQ(parsed[i].access_prob, original[i].access_prob);
    EXPECT_DOUBLE_EQ(parsed[i].size, original[i].size);
  }
}

TEST(CatalogCsvTest, PlanCsvHasExpectedColumns) {
  const ElementSet elements = MakeElementSet({1.0, 2.0}, {0.5, 0.5},
                                             {1.0, 4.0});
  const std::string csv = PlanToCsv(elements, {2.0, 0.0});
  EXPECT_NE(csv.find("element,frequency,interval,bandwidth"),
            std::string::npos);
  EXPECT_NE(csv.find("0,2,0.5,2"), std::string::npos);
  EXPECT_NE(csv.find("1,0,0,0"), std::string::npos);
}

TEST(FileIoTest, RoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/freshen_io_test.csv";
  const ElementSet original = MakeElementSet({2.0, 4.0}, {0.3, 0.7});
  ASSERT_TRUE(SaveCatalogCsv(original, path).ok());
  const auto loaded = LoadCatalogCsv(path).value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[1].change_rate, 4.0);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  const auto result = LoadCatalogCsv("/nonexistent/freshen/having.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileIoTest, LoadErrorMentionsPath) {
  const std::string path = ::testing::TempDir() + "/freshen_bad.csv";
  ASSERT_TRUE(WriteStringToFile("bogus\n1,2\n", path).ok());
  const auto result = LoadCatalogCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace freshen
