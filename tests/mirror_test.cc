// Tests for the versioned source/mirror state machines and the online
// closed-loop runtime.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "mirror/mirror_state.h"
#include "mirror/online_loop.h"
#include "model/freshness.h"
#include "model/metrics.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace freshen {
namespace {

TEST(VersionedSourceTest, VersionsAdvanceWithTime) {
  auto source = VersionedSource::Create({5.0, 0.0}, 1).value();
  EXPECT_EQ(source.Version(0), 0u);
  source.AdvanceTo(10.0);
  EXPECT_GT(source.Version(0), 20u);  // ~50 expected.
  EXPECT_LT(source.Version(0), 100u);
  EXPECT_EQ(source.Version(1), 0u);  // Rate 0 never changes.
  EXPECT_DOUBLE_EQ(source.Now(), 10.0);
}

TEST(VersionedSourceTest, UpdateCountMatchesPoissonMean) {
  auto source = VersionedSource::Create(std::vector<double>(200, 2.0), 2)
                    .value();
  source.AdvanceTo(50.0);
  // 200 elements * rate 2 * 50 periods = 20,000 expected updates.
  EXPECT_NEAR(static_cast<double>(source.TotalUpdates()), 20000.0, 600.0);
}

TEST(VersionedSourceTest, FirstUpdateAfterFindsTheRightUpdate) {
  auto source = VersionedSource::Create({1.0}, 3).value();
  source.AdvanceTo(100.0);
  const double first = source.FirstUpdateAfter(0, 0.0);
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, 100.0);
  // The next one after `first` is strictly later.
  EXPECT_GT(source.FirstUpdateAfter(0, first), first);
  // Nothing after the horizon has been materialized.
  EXPECT_TRUE(std::isinf(source.FirstUpdateAfter(0, 100.0)));
}

TEST(VersionedSourceTest, DeterministicInSeed) {
  auto a = VersionedSource::Create({3.0, 1.0}, 7).value();
  auto b = VersionedSource::Create({3.0, 1.0}, 7).value();
  a.AdvanceTo(20.0);
  b.AdvanceTo(20.0);
  EXPECT_EQ(a.Version(0), b.Version(0));
  EXPECT_EQ(a.TotalUpdates(), b.TotalUpdates());
}

TEST(VersionedSourceTest, RejectsInvalidRates) {
  EXPECT_FALSE(VersionedSource::Create({}, 1).ok());
  EXPECT_FALSE(VersionedSource::Create({-1.0}, 1).ok());
}

TEST(MirrorStateTest, SyncDetectsChanges) {
  auto source = VersionedSource::Create({10.0, 0.0}, 4).value();
  MirrorState mirror(2);
  source.AdvanceTo(1.0);
  EXPECT_FALSE(mirror.IsFresh(0, source));  // ~10 updates happened.
  EXPECT_TRUE(mirror.IsFresh(1, source));   // Never changes.
  EXPECT_TRUE(mirror.Sync(0, 1.0, source));   // Pulls a changed copy.
  EXPECT_FALSE(mirror.Sync(1, 1.0, source));  // Nothing new.
  EXPECT_TRUE(mirror.IsFresh(0, source));
  EXPECT_EQ(mirror.TotalSyncs(), 2u);
}

TEST(MirrorStateTest, AgeTracksFirstMissedUpdate) {
  auto source = VersionedSource::Create({1.0}, 5).value();
  MirrorState mirror(1);
  source.AdvanceTo(100.0);
  const double first = source.FirstUpdateAfter(0, 0.0);
  // Never synced: stale since the first update.
  EXPECT_NEAR(mirror.Age(0, 100.0, source), 100.0 - first, 1e-12);
  // After syncing at t=100, fresh: age 0.
  mirror.Sync(0, 100.0, source);
  EXPECT_DOUBLE_EQ(mirror.Age(0, 100.0, source), 0.0);
}

TEST(MirrorStateTest, FreshnessFractionMatchesClosedForm) {
  // Regularly sync one element and measure the fraction of probe instants
  // it is fresh — must match F(f, lambda).
  const double lambda = 2.0;
  const double f = 2.0;
  auto source = VersionedSource::Create({lambda}, 6).value();
  MirrorState mirror(1);
  int fresh = 0;
  int probes = 0;
  const double interval = 1.0 / f;
  for (int k = 1; k < 4000; ++k) {
    const double sync_time = k * interval;
    // Probe halfway through each interval as an unbiased-ish sample grid.
    for (int p = 1; p <= 8; ++p) {
      const double probe = sync_time - interval + p * interval / 9.0;
      source.AdvanceTo(probe);
      ++probes;
      if (mirror.IsFresh(0, source)) ++fresh;
    }
    mirror.Sync(0, sync_time, source);
  }
  EXPECT_NEAR(static_cast<double>(fresh) / probes,
              FixedOrderFreshness(f, lambda), 0.02);
}

OnlineFreshenLoop::Options LoopOptions() {
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 2000.0;
  options.controller.replan_every_periods = 1.0;
  options.controller.prior_change_rate = 2.0;
  options.seed = 99;
  return options;
}

TEST(OnlineLoopTest, RunsAndReportsSaneStats) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 50;
  spec.syncs_per_period = 25.0;
  const ElementSet truth = GenerateCatalog(spec).value();
  auto loop = OnlineFreshenLoop::Create(truth, 25.0, LoopOptions()).value();
  const PeriodStats stats = loop.RunPeriod();
  EXPECT_GT(stats.accesses, 1500u);
  EXPECT_GT(stats.syncs, 10u);
  EXPECT_GT(stats.perceived_freshness, 0.0);
  EXPECT_LE(stats.perceived_freshness, 1.0);
  EXPECT_GT(stats.bandwidth_spent, 0.0);
  EXPECT_TRUE(stats.replanned);
  EXPECT_DOUBLE_EQ(loop.Now(), 1.0);
}

TEST(OnlineLoopTest, FreshnessImprovesAsControllerLearns) {
  // Compare the *plans* (analytic PF on the ground truth) rather than the
  // in-loop empirical freshness, whose early periods are inflated by the
  // mirror starting fully fresh.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 100;
  spec.syncs_per_period = 50.0;
  spec.theta = 1.2;
  spec.alignment = Alignment::kShuffled;
  const ElementSet truth = GenerateCatalog(spec).value();
  auto loop = OnlineFreshenLoop::Create(truth, 50.0, LoopOptions()).value();

  const double cold_plan_pf =
      PerceivedFreshness(truth, loop.controller().frequencies());
  double late_empirical = 0.0;
  for (int period = 0; period < 30; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    if (period >= 25) late_empirical += stats.perceived_freshness / 5.0;
  }
  const double warm_plan_pf =
      PerceivedFreshness(truth, loop.controller().frequencies());
  EXPECT_GT(warm_plan_pf, cold_plan_pf + 0.05);
  // The running mirror actually delivers the learned plan quality.
  EXPECT_GT(late_empirical, cold_plan_pf);
}

TEST(OnlineLoopTest, TracksProfileDriftWithDecay) {
  // Interest flips to the reversed ranking mid-run; a decaying learner
  // recovers, measured against the periods right after the flip.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 80;
  spec.syncs_per_period = 40.0;
  spec.theta = 1.3;
  const ElementSet truth = GenerateCatalog(spec).value();

  OnlineFreshenLoop::Options options = LoopOptions();
  options.controller.learner.decay = 0.5;
  auto loop = OnlineFreshenLoop::Create(truth, 40.0, options).value();
  for (int period = 0; period < 15; ++period) loop.RunPeriod();

  // Flip: the coldest elements become the hottest.
  std::vector<double> flipped(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    flipped[i] = truth[truth.size() - 1 - i].access_prob;
  }
  ASSERT_TRUE(loop.SetTrueProfile(flipped).ok());

  double just_after = 0.0;
  double recovered = 0.0;
  for (int period = 0; period < 25; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    if (period < 3) just_after += stats.perceived_freshness / 3.0;
    if (period >= 20) recovered += stats.perceived_freshness / 5.0;
  }
  EXPECT_GT(recovered, just_after);
}

TEST(OnlineLoopTest, StatsAgreeWithRegistryCountersToTheLastSync) {
  // PeriodStats is defined as the per-period delta of the loop's registry
  // counters; accumulated over a run, the two accountings must agree
  // exactly — bandwidth to the last synced byte, events to the last sync.
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 70;
  spec.syncs_per_period = 35.0;
  spec.size_model = SizeModel::kPareto;  // Sizes vary: bandwidth != #syncs.
  const ElementSet truth = GenerateCatalog(spec).value();

  obs::MetricsRegistry registry;
  OnlineFreshenLoop::Options options = LoopOptions();
  options.registry = &registry;
  auto loop = OnlineFreshenLoop::Create(truth, 35.0, options).value();

  double bandwidth_from_stats = 0.0;
  uint64_t syncs_from_stats = 0;
  uint64_t accesses_from_stats = 0;
  for (int period = 0; period < 5; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    bandwidth_from_stats += stats.bandwidth_spent;
    syncs_from_stats += stats.syncs;
    accesses_from_stats += stats.accesses;
  }

  const obs::RegistrySnapshot snapshot = loop.SnapshotMetrics();
  const obs::MetricSample* bandwidth =
      snapshot.Find("freshen_mirror_bandwidth_spent_total");
  ASSERT_NE(bandwidth, nullptr);
  EXPECT_DOUBLE_EQ(bandwidth->value, bandwidth_from_stats);
  EXPECT_GT(bandwidth->value, 0.0);

  const obs::MetricSample* syncs =
      snapshot.Find("freshen_mirror_syncs_total");
  ASSERT_NE(syncs, nullptr);
  EXPECT_DOUBLE_EQ(syncs->value, static_cast<double>(syncs_from_stats));

  const obs::MetricSample* accesses =
      snapshot.Find("freshen_mirror_accesses_total");
  ASSERT_NE(accesses, nullptr);
  EXPECT_DOUBLE_EQ(accesses->value,
                   static_cast<double>(accesses_from_stats));

  const obs::MetricSample* periods =
      snapshot.Find("freshen_mirror_periods_total");
  ASSERT_NE(periods, nullptr);
  EXPECT_DOUBLE_EQ(periods->value, 5.0);

  // An isolated registry means none of this leaked into the global one...
  // and the controller reported its replans into the same local registry.
  ASSERT_NE(snapshot.Find("freshen_adaptive_replans_total"), nullptr);
}

// Delta-mode loop: period boundaries route replans through the incremental
// replanner and PeriodStats surfaces which path ran.
TEST(OnlineLoopTest, DeltaModeReplansSurfaceInPeriodStats) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 60;
  spec.syncs_per_period = 30.0;
  const ElementSet truth = GenerateCatalog(spec).value();
  OnlineFreshenLoop::Options options = LoopOptions();
  options.controller.delta.enable = true;
  options.controller.delta.threads = 1;
  auto loop = OnlineFreshenLoop::Create(truth, 30.0, options).value();
  for (int period = 0; period < 5; ++period) {
    const PeriodStats stats = loop.RunPeriod();
    ASSERT_TRUE(stats.replanned);
    EXPECT_TRUE(stats.replan_used_delta);
    const std::string path = stats.replan_path;
    EXPECT_TRUE(path == "pinned" || path == "warm" || path == "full") << path;
  }
  EXPECT_NE(loop.controller().solved_problem(), nullptr);

  // The non-delta loop reports the full-planner defaults.
  auto classic = OnlineFreshenLoop::Create(truth, 30.0, LoopOptions()).value();
  const PeriodStats stats = classic.RunPeriod();
  ASSERT_TRUE(stats.replanned);
  EXPECT_FALSE(stats.replan_used_delta);
  EXPECT_STREQ(stats.replan_path, "full");
  EXPECT_TRUE(stats.plan_all_touched);
}

TEST(OnlineLoopTest, RejectsInvalidInput) {
  EXPECT_FALSE(OnlineFreshenLoop::Create({}, 1.0, LoopOptions()).ok());
  const ElementSet truth = MakeElementSet({1.0}, {1.0});
  auto loop = OnlineFreshenLoop::Create(truth, 1.0, LoopOptions()).value();
  EXPECT_FALSE(loop.SetTrueProfile({1.0, 2.0}).ok());
  EXPECT_FALSE(loop.SetTrueProfile({0.0}).ok());
}

}  // namespace
}  // namespace freshen
