// Tests for the deterministic RNG engines and the alias table.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rng/alias_table.h"
#include "rng/rng.h"

namespace freshen {
namespace {

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 0 from the public-domain reference
  // implementation of splitmix64 (same vectors as Java SplittableRandom).
  SplitMix64 mixer(0);
  EXPECT_EQ(mixer.Next(), 16294208416658607535ULL);
  EXPECT_EQ(mixer.Next(), 7960286522194355700ULL);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoublePositive();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextUint64BelowStaysInRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64Below(7), 7u);
    EXPECT_EQ(rng.NextUint64Below(1), 0u);
  }
}

TEST(RngTest, NextUint64BelowIsRoughlyUniform) {
  Rng rng(9);
  const uint64_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextUint64Below(buckets)];
  for (uint64_t b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], n / 10, 600) << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDoubleIn(-3.0, 2.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 2.0);
  }
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.Fork();
  // The child stream must differ from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextUint64() != child.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table({5.0});
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(14);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, NormalizesProbabilities) {
  AliasTable table({2.0, 6.0});
  EXPECT_DOUBLE_EQ(table.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.75);
}

TEST(AliasTableTest, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(15);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected, 0.005)
        << "outcome " << i;
  }
}

TEST(AliasTableTest, LargeSkewedTable) {
  std::vector<double> weights(100000, 0.0);
  weights[42] = 1.0;   // Everything else zero.
  AliasTable table(weights);
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 42u);
}

}  // namespace
}  // namespace freshen
