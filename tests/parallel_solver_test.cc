// Determinism of the parallelized solver stack: the thread knob on
// KktWaterFillingSolver / AgeWaterFillingSolver / CoreProblem / VerifyKkt is
// pure execution policy — every thread count must reproduce the 1-thread
// bits exactly. Runs under `ctest -L tsan` in a FRESHEN_SANITIZE=thread
// build.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "opt/age_water_filling.h"
#include "opt/kkt.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen {
namespace {

const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult SameAllocation(const Allocation& a,
                                          const Allocation& b) {
  if (a.frequencies.size() != b.frequencies.size()) {
    return ::testing::AssertionFailure() << "frequency count differs";
  }
  for (size_t i = 0; i < a.frequencies.size(); ++i) {
    if (!SameBits(a.frequencies[i], b.frequencies[i])) {
      return ::testing::AssertionFailure()
             << "frequencies[" << i << "] differs: " << a.frequencies[i]
             << " vs " << b.frequencies[i];
    }
  }
  if (!SameBits(a.multiplier, b.multiplier)) {
    return ::testing::AssertionFailure()
           << "multiplier differs: " << a.multiplier << " vs " << b.multiplier;
  }
  if (!SameBits(a.objective, b.objective)) {
    return ::testing::AssertionFailure()
           << "objective differs: " << a.objective << " vs " << b.objective;
  }
  if (!SameBits(a.bandwidth_used, b.bandwidth_used)) {
    return ::testing::AssertionFailure() << "bandwidth_used differs: "
                                         << a.bandwidth_used << " vs "
                                         << b.bandwidth_used;
  }
  return ::testing::AssertionSuccess();
}

// Table 2's workload (single shard) and a scaled-up version that spans
// multiple shards, so both the inline and the pooled paths are covered.
ElementSet Catalog(size_t n) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = n;
  spec.syncs_per_period = 0.5 * static_cast<double>(n);
  spec.alignment = Alignment::kShuffled;
  return GenerateCatalog(spec).value();
}

class ParallelSolverTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelSolverTest, KktAllocationIsBitIdenticalAcrossThreads) {
  const size_t n = GetParam();
  const ElementSet elements = Catalog(n);
  const CoreProblem problem =
      MakePerceivedProblem(elements, 0.5 * static_cast<double>(n), false);

  KktWaterFillingSolver::Options options;
  options.threads = 1;
  const Allocation reference =
      KktWaterFillingSolver(options).Solve(problem).value();
  EXPECT_TRUE(VerifyKkt(problem, reference).satisfied);

  for (size_t threads : kThreadCounts) {
    options.threads = threads;
    const Allocation allocation =
        KktWaterFillingSolver(options).Solve(problem).value();
    EXPECT_TRUE(SameAllocation(allocation, reference))
        << "n=" << n << " threads=" << threads;
  }
}

TEST_P(ParallelSolverTest, AgeAllocationIsBitIdenticalAcrossThreads) {
  const size_t n = GetParam();
  const ElementSet elements = Catalog(n);
  const CoreProblem problem =
      MakePerceivedProblem(elements, 0.5 * static_cast<double>(n), false);

  AgeWaterFillingSolver::Options options;
  options.threads = 1;
  const Allocation reference =
      AgeWaterFillingSolver(options).Solve(problem).value();

  for (size_t threads : kThreadCounts) {
    options.threads = threads;
    const Allocation allocation =
        AgeWaterFillingSolver(options).Solve(problem).value();
    EXPECT_TRUE(SameAllocation(allocation, reference))
        << "n=" << n << " threads=" << threads;
  }
}

TEST_P(ParallelSolverTest, ObjectiveSpendAndKktAreBitIdenticalAcrossThreads) {
  const size_t n = GetParam();
  const ElementSet elements = Catalog(n);
  const CoreProblem problem =
      MakePerceivedProblem(elements, 0.5 * static_cast<double>(n), false);
  const Allocation allocation = KktWaterFillingSolver().Solve(problem).value();

  const double objective_1t = problem.Objective(allocation.frequencies);
  const double spend_1t = problem.Spend(allocation.frequencies);
  const KktReport report_1t = VerifyKkt(problem, allocation);
  for (size_t threads : kThreadCounts) {
    const par::Executor exec(threads);
    EXPECT_TRUE(SameBits(problem.Objective(allocation.frequencies, &exec),
                         objective_1t))
        << "n=" << n << " threads=" << threads;
    EXPECT_TRUE(
        SameBits(problem.Spend(allocation.frequencies, &exec), spend_1t))
        << "n=" << n << " threads=" << threads;
    const KktReport report = VerifyKkt(problem, allocation, 1e-6, &exec);
    EXPECT_TRUE(SameBits(report.max_stationarity_violation,
                         report_1t.max_stationarity_violation))
        << "n=" << n << " threads=" << threads;
    EXPECT_TRUE(SameBits(report.max_complementarity_violation,
                         report_1t.max_complementarity_violation))
        << "n=" << n << " threads=" << threads;
    EXPECT_TRUE(SameBits(report.budget_violation, report_1t.budget_violation))
        << "n=" << n << " threads=" << threads;
    EXPECT_EQ(report.satisfied, report_1t.satisfied);
  }
}

// 500 = the paper's Table 2 case (single shard, inline path); 20000 spans
// multiple shards so the pooled path and the shard-order Kahan combine are
// actually exercised.
INSTANTIATE_TEST_SUITE_P(Sizes, ParallelSolverTest,
                         ::testing::Values(size_t{500}, size_t{20000}));

TEST(ParallelSolverTest, DefaultThreadsMatchesExplicitOne) {
  // threads = 0 (hardware concurrency) must land on the same bits as 1.
  const ElementSet elements = Catalog(20000);
  const CoreProblem problem = MakePerceivedProblem(elements, 10000.0, false);
  KktWaterFillingSolver::Options one;
  one.threads = 1;
  const Allocation a = KktWaterFillingSolver(one).Solve(problem).value();
  const Allocation b = KktWaterFillingSolver().Solve(problem).value();
  EXPECT_TRUE(SameAllocation(a, b));
}

}  // namespace
}  // namespace freshen
