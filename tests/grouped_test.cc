// Tests for grouped (per-server) bandwidth allocation.
#include <cmath>

#include <gtest/gtest.h>

#include "model/element.h"
#include "opt/grouped.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "rng/rng.h"

namespace freshen {
namespace {

// Two servers: elements 0-2 on server 0, elements 3-5 on server 1.
GroupedProblem TwoServerProblem(double b0, double b1) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0, 1.0, 2.0, 3.0},
                     {0.30, 0.20, 0.10, 0.05, 0.15, 0.20});
  GroupedProblem problem;
  problem.base = MakePerceivedProblem(elements, 0.0, false);
  problem.group = {0, 0, 0, 1, 1, 1};
  problem.group_budgets = {b0, b1};
  return problem;
}

TEST(GroupedTest, RespectsEveryGroupBudget) {
  const auto allocation = SolveGrouped(TwoServerProblem(2.0, 3.0)).value();
  EXPECT_NEAR(allocation.group_spend[0], 2.0, 1e-9);
  EXPECT_NEAR(allocation.group_spend[1], 3.0, 1e-9);
  // No cross-group leakage.
  double spend0 = 0.0;
  for (int i = 0; i < 3; ++i) spend0 += allocation.frequencies[i];
  EXPECT_NEAR(spend0, 2.0, 1e-9);
}

TEST(GroupedTest, StarvedGroupHasHigherMultiplier) {
  // Same elements, wildly asymmetric budgets: the starved server's marginal
  // value of bandwidth must exceed the rich server's.
  const auto allocation = SolveGrouped(TwoServerProblem(0.2, 5.0)).value();
  EXPECT_GT(allocation.group_multipliers[0],
            allocation.group_multipliers[1]);
}

TEST(GroupedTest, PooledDominatesAnyFixedSplit) {
  const GroupedProblem grouped = TwoServerProblem(1.0, 4.0);
  CoreProblem pooled = grouped.base;
  pooled.bandwidth = 5.0;
  const double pooled_objective =
      KktWaterFillingSolver().Solve(pooled).value().objective;
  for (double b0 : {0.5, 1.0, 2.5, 4.0}) {
    const auto allocation =
        SolveGrouped(TwoServerProblem(b0, 5.0 - b0)).value();
    EXPECT_LE(allocation.objective, pooled_objective + 1e-9) << b0;
  }
}

TEST(GroupedTest, PooledOptimalSplitReproducesPooledOptimum) {
  const GroupedProblem grouped = TwoServerProblem(1.0, 4.0);
  const auto split = PooledOptimalSplit(grouped).value();
  EXPECT_NEAR(split[0] + split[1], 5.0, 1e-9);

  GroupedProblem rebalanced = grouped;
  rebalanced.group_budgets = split;
  const auto allocation = SolveGrouped(rebalanced).value();

  CoreProblem pooled = grouped.base;
  pooled.bandwidth = 5.0;
  const double pooled_objective =
      KktWaterFillingSolver().Solve(pooled).value().objective;
  EXPECT_NEAR(allocation.objective, pooled_objective, 1e-8);
  // At the optimal split the marginal values equalize.
  EXPECT_NEAR(allocation.group_multipliers[0],
              allocation.group_multipliers[1],
              1e-5 * allocation.group_multipliers[0]);
}

TEST(GroupedTest, ZeroBudgetGroupGetsNothing) {
  const auto allocation = SolveGrouped(TwoServerProblem(0.0, 3.0)).value();
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(allocation.frequencies[i], 0.0);
  }
  EXPECT_DOUBLE_EQ(allocation.group_spend[0], 0.0);
  EXPECT_NEAR(allocation.group_spend[1], 3.0, 1e-9);
}

TEST(GroupedTest, SingleGroupEqualsPlainSolve) {
  const ElementSet elements =
      MakeElementSet({1.0, 2.0, 3.0}, {0.5, 0.3, 0.2});
  GroupedProblem grouped;
  grouped.base = MakePerceivedProblem(elements, 0.0, false);
  grouped.group = {0, 0, 0};
  grouped.group_budgets = {2.0};
  const auto grouped_allocation = SolveGrouped(grouped).value();

  CoreProblem plain = MakePerceivedProblem(elements, 2.0, false);
  const Allocation plain_allocation =
      KktWaterFillingSolver().Solve(plain).value();
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_NEAR(grouped_allocation.frequencies[i],
                plain_allocation.frequencies[i], 1e-9);
  }
}

TEST(GroupedTest, RejectsMalformedInput) {
  GroupedProblem problem = TwoServerProblem(1.0, 1.0);
  problem.group = {0, 0, 0};  // Wrong length.
  EXPECT_FALSE(SolveGrouped(problem).ok());

  problem = TwoServerProblem(1.0, 1.0);
  problem.group[0] = 7;  // Out of range.
  EXPECT_FALSE(SolveGrouped(problem).ok());

  problem = TwoServerProblem(1.0, 1.0);
  problem.group_budgets = {1.0, -1.0};
  EXPECT_FALSE(SolveGrouped(problem).ok());

  problem = TwoServerProblem(1.0, 1.0);
  problem.group_budgets = {};
  EXPECT_FALSE(SolveGrouped(problem).ok());

  GroupedProblem empty;
  EXPECT_FALSE(SolveGrouped(empty).ok());

  problem = TwoServerProblem(0.0, 0.0);
  EXPECT_FALSE(PooledOptimalSplit(problem).ok());
}

class GroupedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupedPropertyTest, RandomSplitsNeverBeatPooled) {
  const int key = GetParam();
  Rng rng(static_cast<uint64_t>(key) * 101 + 3);
  const size_t n = 40;
  const size_t num_groups = 4;
  std::vector<double> rates(n);
  std::vector<double> probs(n);
  GroupedProblem problem;
  problem.group.resize(n);
  for (size_t i = 0; i < n; ++i) {
    rates[i] = rng.NextDoubleIn(0.1, 8.0);
    probs[i] = rng.NextDoubleIn(0.01, 1.0);
    problem.group[i] = static_cast<uint32_t>(rng.NextUint64Below(num_groups));
  }
  const ElementSet elements = MakeElementSet(rates, probs);
  problem.base = MakePerceivedProblem(elements, 0.0, false);

  const double total = 15.0;
  CoreProblem pooled = problem.base;
  pooled.bandwidth = total;
  const double pooled_objective =
      KktWaterFillingSolver().Solve(pooled).value().objective;

  // Random Dirichlet-ish splits.
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> shares(num_groups);
    double share_total = 0.0;
    for (double& share : shares) {
      share = rng.NextDoubleIn(0.05, 1.0);
      share_total += share;
    }
    problem.group_budgets.clear();
    for (double share : shares) {
      problem.group_budgets.push_back(total * share / share_total);
    }
    const auto allocation = SolveGrouped(problem).value();
    EXPECT_LE(allocation.objective, pooled_objective + 1e-9)
        << "key=" << key << " trial=" << trial;
  }

  // And the pooled-induced split achieves it.
  problem.group_budgets = PooledOptimalSplit(problem).value();
  const auto best = SolveGrouped(problem).value();
  EXPECT_NEAR(best.objective, pooled_objective, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Keys, GroupedPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace freshen
