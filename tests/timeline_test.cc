// Tests for the per-element staleness-attribution ledger: hand-computed
// window accounting, clamping and idempotent transition semantics, per-period
// deltas and offender rankings, report formatting — and the contract the
// ledger exists for: on an N=5000 Zipf catalog its weighted time-in-fresh
// reproduces the simulator's measured perceived freshness to 1e-9, and both
// the metric and the CSV report are identical at every thread count. Runs
// under `ctest -L tsan` (shards feed the ledger concurrently).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen {
namespace {

using obs::StalenessTimeline;
using obs::TimelineReport;

StalenessTimeline MakeTimeline(std::vector<double> weights,
                               StalenessTimeline::Options options) {
  auto timeline = StalenessTimeline::Create(std::move(weights), options);
  EXPECT_TRUE(timeline.ok()) << timeline.status().message();
  return std::move(timeline.value());
}

TEST(TimelineTest, CreateRejectsBadShapes) {
  StalenessTimeline::Options options;
  EXPECT_FALSE(StalenessTimeline::Create({}, options).ok());
  EXPECT_FALSE(StalenessTimeline::Create({1.0, -0.5}, options).ok());
  EXPECT_FALSE(StalenessTimeline::Create({0.0, 0.0}, options).ok());
  options.window_end = options.window_begin;
  EXPECT_FALSE(StalenessTimeline::Create({1.0}, options).ok());
}

TEST(TimelineTest, HandComputedLedger) {
  StalenessTimeline::Options options;
  options.window_begin = 0.0;
  options.window_end = 10.0;
  options.age_slo = 0.25;
  obs::MetricsRegistry registry;
  options.registry = &registry;
  StalenessTimeline timeline = MakeTimeline({3.0, 1.0}, options);

  // Element 0 stale over [2, 4]; element 1 stale from 8 to the end.
  timeline.MarkStale(0, 2.0);
  timeline.MarkFresh(0, 4.0);
  timeline.MarkStale(1, 8.0);

  timeline.OnAccess(0, 1.0, 0.0);  // Fresh.
  timeline.OnAccess(0, 3.0, 1.0);  // Stale, over the SLO.
  timeline.OnAccess(1, 9.0, 0.2);  // Stale but within the age SLO.

  const TimelineReport report = timeline.Finalize();
  ASSERT_EQ(report.elements.size(), 2u);
  EXPECT_DOUBLE_EQ(report.elements[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(report.elements[1].weight, 0.25);
  EXPECT_DOUBLE_EQ(report.elements[0].stale_time, 2.0);
  EXPECT_DOUBLE_EQ(report.elements[1].stale_time, 2.0);
  EXPECT_DOUBLE_EQ(report.elements[0].fresh_fraction, 0.8);
  EXPECT_DOUBLE_EQ(report.elements[1].fresh_fraction, 0.8);
  EXPECT_DOUBLE_EQ(report.elements[0].stale_score, 0.75 * 0.2);
  EXPECT_DOUBLE_EQ(report.elements[0].mean_access_age, 0.5);
  EXPECT_EQ(report.elements[0].accesses, 2u);
  EXPECT_EQ(report.elements[0].fresh_accesses, 1u);
  EXPECT_EQ(report.elements[0].slo_accesses, 1u);
  EXPECT_EQ(report.elements[1].slo_accesses, 1u);

  EXPECT_NEAR(report.overall.weighted_freshness, 0.8, 1e-15);
  EXPECT_DOUBLE_EQ(report.fresh_access_ratio, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.slo_access_ratio, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.age_slo, 0.25);

  // Finalize published the gauges into the caller's registry.
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* freshness =
      snapshot.Find("freshen_timeline_weighted_freshness");
  ASSERT_NE(freshness, nullptr);
  EXPECT_NEAR(freshness->value, 0.8, 1e-15);
  const obs::MetricSample* elements =
      snapshot.Find("freshen_timeline_elements");
  ASSERT_NE(elements, nullptr);
  EXPECT_DOUBLE_EQ(elements->value, 2.0);
}

TEST(TimelineTest, MarkStaleIsIdempotentEarliestOnsetWins) {
  StalenessTimeline::Options options;
  options.window_end = 10.0;
  StalenessTimeline timeline = MakeTimeline({1.0}, options);
  timeline.MarkStale(0, 2.0);
  timeline.MarkStale(0, 5.0);  // Ignored: already stale since 2.
  timeline.MarkFresh(0, 6.0);
  timeline.MarkFresh(0, 8.0);  // Ignored: already fresh.
  const TimelineReport report = timeline.Finalize();
  EXPECT_DOUBLE_EQ(report.elements[0].stale_time, 4.0);
}

TEST(TimelineTest, IntervalsClampToTheObservationWindow) {
  StalenessTimeline::Options options;
  options.window_begin = 5.0;
  options.window_end = 15.0;
  StalenessTimeline timeline = MakeTimeline({1.0}, options);
  timeline.MarkStale(0, 0.0);    // Before the window: clamps to 5.
  timeline.MarkFresh(0, 10.0);   // Charges [5, 10].
  timeline.MarkStale(0, 12.0);   // Still open at Finalize: charges [12, 15].
  const TimelineReport report = timeline.Finalize();
  EXPECT_DOUBLE_EQ(report.elements[0].stale_time, 8.0);
  EXPECT_DOUBLE_EQ(report.elements[0].fresh_fraction, 0.2);
}

TEST(TimelineTest, CloseWindowReportsPerPeriodDeltasAndOffenders) {
  StalenessTimeline::Options options;
  options.window_begin = 0.0;
  options.window_end = 2.0;
  options.top_k = 2;
  StalenessTimeline timeline = MakeTimeline({1.0, 1.0, 2.0}, options);

  timeline.MarkStale(2, 0.0);
  timeline.MarkFresh(2, 0.5);
  timeline.MarkStale(0, 0.75);  // Spans the period boundary at 1.0.
  timeline.OnAccess(2, 0.25, 0.25);
  timeline.CloseWindow(1.0);
  timeline.MarkFresh(0, 1.25);
  timeline.OnAccess(1, 1.5, 0.0);

  const TimelineReport report = timeline.Finalize();
  ASSERT_EQ(report.periods.size(), 2u);

  // Period 1 over [0, 1): element 2 stale 0.5 (score 0.5*0.5 = 0.25),
  // element 0 stale 0.25 (score 0.25*0.25 = 0.0625).
  const obs::TimelineWindow& first = report.periods[0];
  EXPECT_DOUBLE_EQ(first.begin, 0.0);
  EXPECT_DOUBLE_EQ(first.end, 1.0);
  ASSERT_EQ(first.offenders.size(), 2u);
  EXPECT_EQ(first.offenders[0].element, 2u);
  EXPECT_DOUBLE_EQ(first.offenders[0].stale_score, 0.5 * 0.5);
  EXPECT_EQ(first.offenders[1].element, 0u);
  EXPECT_DOUBLE_EQ(first.offenders[1].stale_score, 0.25 * 0.25);
  EXPECT_EQ(first.accesses, 1u);
  EXPECT_NEAR(first.weighted_freshness,
              0.25 * 0.75 + 0.25 * 1.0 + 0.5 * 0.5, 1e-15);

  // Period 2 over [1, 2]: only element 0's tail [1, 1.25] is stale.
  const obs::TimelineWindow& second = report.periods[1];
  EXPECT_DOUBLE_EQ(second.begin, 1.0);
  EXPECT_DOUBLE_EQ(second.end, 2.0);
  ASSERT_FALSE(second.offenders.empty());
  EXPECT_EQ(second.offenders[0].element, 0u);
  EXPECT_DOUBLE_EQ(second.offenders[0].stale_score, 0.25 * 0.25);
  EXPECT_EQ(second.accesses, 1u);
  EXPECT_EQ(second.fresh_accesses, 1u);

  // The overall window is totals, not deltas: element 0 stale 0.5 of 2.
  EXPECT_DOUBLE_EQ(report.elements[0].stale_time, 0.5);
  EXPECT_NEAR(report.overall.weighted_freshness,
              0.25 * 0.75 + 0.25 * 1.0 + 0.5 * 0.75, 1e-15);
}

TEST(TimelineTest, ReportsFormatAsCsvAndJson) {
  StalenessTimeline::Options options;
  options.window_end = 4.0;
  StalenessTimeline timeline = MakeTimeline({1.0, 3.0}, options);
  timeline.MarkStale(1, 1.0);
  timeline.OnAccess(1, 2.0, 1.0);
  timeline.CloseWindow(2.0);
  const TimelineReport report = timeline.Finalize();

  const std::string csv = obs::FormatTimelineCsv(report);
  EXPECT_NE(csv.find("element,weight,stale_time,fresh_fraction,stale_score,"
                     "accesses,fresh_accesses,slo_accesses,mean_access_age"),
            std::string::npos);
  // One header plus one row per element.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

  const std::string json = obs::FormatTimelineJson(report);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  EXPECT_NE(json.find("\"periods\""), std::string::npos);
  EXPECT_NE(json.find("\"fresh_access_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"offenders\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The 1e-9 contract (the acceptance criterion this ledger exists for): on an
// N=5000 Zipf catalog under a planned schedule, the ledger's weighted
// time-in-fresh equals the simulator's measured perceived freshness to 1e-9,
// at any thread count, and the CSV report is byte-identical across thread
// counts.

struct SimWithTimeline {
  SimulationResult result;
  TimelineReport report;
  std::string csv;
};

SimWithTimeline RunSimWithTimeline(const ElementSet& elements,
                                   const std::vector<double>& frequencies,
                                   size_t threads) {
  SimulationConfig config;
  config.horizon_periods = 20.0;
  config.warmup_periods = 2.0;
  config.accesses_per_period = 2000.0;
  config.seed = 20030305;
  config.threads = threads;

  std::vector<double> weights(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    weights[i] = elements[i].access_prob;
  }
  StalenessTimeline::Options timeline_options;
  timeline_options.window_begin = config.warmup_periods;
  timeline_options.window_end = config.horizon_periods;
  obs::MetricsRegistry registry;  // Keep gauges off the global registry.
  timeline_options.registry = &registry;
  auto timeline =
      StalenessTimeline::Create(std::move(weights), timeline_options);
  EXPECT_TRUE(timeline.ok());

  config.timeline = &timeline.value();
  auto result = MirrorSimulator(elements, config).Run(frequencies);
  EXPECT_TRUE(result.ok()) << result.status().message();

  SimWithTimeline out;
  out.result = result.value();
  out.report = timeline.value().Finalize();
  out.csv = obs::FormatTimelineCsv(out.report);
  return out;
}

TEST(TimelineTest, WeightedFreshnessMatchesSimulatorTo1e9OnZipf5000) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 5000;
  spec.syncs_per_period = 2500.0;
  const ElementSet elements = GenerateCatalog(spec).value();
  const CoreProblem problem =
      MakePerceivedProblem(elements, spec.syncs_per_period, false);
  const std::vector<double> frequencies =
      KktWaterFillingSolver().Solve(problem).value().frequencies;

  const SimWithTimeline run = RunSimWithTimeline(elements, frequencies, 4);
  EXPECT_GT(run.result.num_accesses, 0u);
  EXPECT_GT(run.result.measured_weighted_freshness, 0.0);
  EXPECT_LT(run.result.measured_weighted_freshness, 1.0);
  EXPECT_NEAR(run.report.overall.weighted_freshness,
              run.result.measured_weighted_freshness, 1e-9);
  // The measured PF and the access-sampled PF estimate the same quantity;
  // they agree loosely (the sampled one carries Poisson noise).
  EXPECT_NEAR(run.result.measured_weighted_freshness,
              run.result.empirical_perceived_freshness, 0.05);
}

TEST(TimelineTest, LedgerIsThreadCountInvariant) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 1000;
  spec.syncs_per_period = 500.0;
  const ElementSet elements = GenerateCatalog(spec).value();
  const CoreProblem problem =
      MakePerceivedProblem(elements, spec.syncs_per_period, false);
  const std::vector<double> frequencies =
      KktWaterFillingSolver().Solve(problem).value().frequencies;

  const SimWithTimeline one = RunSimWithTimeline(elements, frequencies, 1);
  const SimWithTimeline eight = RunSimWithTimeline(elements, frequencies, 8);
  EXPECT_EQ(std::memcmp(&one.result.measured_weighted_freshness,
                        &eight.result.measured_weighted_freshness,
                        sizeof(double)),
            0)
      << one.result.measured_weighted_freshness << " vs "
      << eight.result.measured_weighted_freshness;
  EXPECT_EQ(one.csv, eight.csv);
  EXPECT_NEAR(one.report.overall.weighted_freshness,
              one.result.measured_weighted_freshness, 1e-9);
}

}  // namespace
}  // namespace freshen
