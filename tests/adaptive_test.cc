// Tests for the closed-loop AdaptiveFreshener: cold start, evidence
// accumulation, re-plan cadence, and convergence toward the oracle plan on
// a synthetic ground truth.
#include <cmath>

#include <gtest/gtest.h>

#include "adaptive/adaptive_freshener.h"
#include "model/metrics.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "workload/generator.h"

namespace freshen {
namespace {

AdaptiveFreshener::Options DefaultOptions() {
  AdaptiveFreshener::Options options;
  options.replan_every_periods = 1.0;
  options.prior_change_rate = 2.0;
  return options;
}

TEST(AdaptiveTest, ColdStartInstallsUniformPlan) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0, 1.0, 1.0}, 4.0, DefaultOptions())
          .value();
  EXPECT_EQ(controller.num_replans(), 1u);
  // No evidence: believed catalog is uniform, so the plan is symmetric.
  const auto& freqs = controller.frequencies();
  for (double f : freqs) EXPECT_NEAR(f, freqs[0], 1e-9);
  const ElementSet believed = controller.BelievedCatalog();
  for (const Element& e : believed) {
    EXPECT_NEAR(e.access_prob, 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(e.change_rate, 2.0);
  }
}

TEST(AdaptiveTest, RespectsReplanCadence) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 2.0, DefaultOptions()).value();
  EXPECT_FALSE(controller.MaybeReplan(0.5).value());
  EXPECT_TRUE(controller.MaybeReplan(1.0).value());
  EXPECT_FALSE(controller.MaybeReplan(1.5).value());
  EXPECT_TRUE(controller.MaybeReplan(2.1).value());
  EXPECT_TRUE(controller.MaybeReplan(2.2, /*force=*/true).value());
  EXPECT_EQ(controller.num_replans(), 4u);
}

TEST(AdaptiveTest, AccessesSteerBandwidthTowardHotElements) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 1.0, DefaultOptions()).value();
  for (int i = 0; i < 1000; ++i) controller.ObserveAccess(0);
  ASSERT_TRUE(controller.MaybeReplan(1.0).value());
  EXPECT_GT(controller.frequencies()[0], controller.frequencies()[1]);
}

TEST(AdaptiveTest, SyncEvidenceUpdatesChangeRates) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 2.0, DefaultOptions()).value();
  // Element 0: changed on every observed gap; element 1: never.
  for (int k = 0; k < 50; ++k) {
    controller.ObserveSync(0, /*changed=*/k > 0, 0.5 * k);
    controller.ObserveSync(1, /*changed=*/false, 0.5 * k);
  }
  const ElementSet believed = controller.BelievedCatalog();
  EXPECT_GT(believed[0].change_rate, 5.0);
  EXPECT_LT(believed[1].change_rate, 0.1);
}

TEST(AdaptiveTest, FirstSyncCarriesNoEvidence) {
  auto controller =
      AdaptiveFreshener::Create({1.0}, 1.0, DefaultOptions()).value();
  controller.ObserveSync(0, /*changed=*/true, 3.0);
  // Single sync: no gap observed, prior still in force.
  EXPECT_DOUBLE_EQ(controller.BelievedCatalog()[0].change_rate, 2.0);
}

TEST(AdaptiveTest, RejectsInvalidConfigurations) {
  EXPECT_FALSE(AdaptiveFreshener::Create({}, 1.0, DefaultOptions()).ok());
  EXPECT_FALSE(
      AdaptiveFreshener::Create({0.0}, 1.0, DefaultOptions()).ok());
  EXPECT_FALSE(
      AdaptiveFreshener::Create({1.0}, 0.0, DefaultOptions()).ok());
  auto bad_cadence = DefaultOptions();
  bad_cadence.replan_every_periods = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_cadence).ok());
  auto bad_prior = DefaultOptions();
  bad_prior.prior_change_rate = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_prior).ok());
  auto bad_smoothing = DefaultOptions();
  bad_smoothing.learner.smoothing = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_smoothing).ok());
}

// End-to-end convergence: drive the controller against a synthetic ground
// truth for many periods; the plan's true perceived freshness must climb
// from the cold-start level toward the oracle optimum.
TEST(AdaptiveTest, ConvergesTowardOraclePlan) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 120;
  spec.syncs_per_period = 60.0;
  spec.theta = 1.1;
  spec.alignment = Alignment::kShuffled;
  const ElementSet truth = GenerateCatalog(spec).value();

  const double oracle_pf = FreshenPlanner({})
                               .Plan(truth, spec.syncs_per_period)
                               .value()
                               .perceived_freshness;

  auto controller = AdaptiveFreshener::Create(
                        Sizes(truth), spec.syncs_per_period, DefaultOptions())
                        .value();
  const double cold_pf = PerceivedFreshness(truth, controller.frequencies());

  Rng rng(2024);
  AliasTable traffic(AccessProbs(truth));
  for (int period = 1; period <= 40; ++period) {
    // User traffic this period.
    for (int a = 0; a < 3000; ++a) {
      controller.ObserveAccess(traffic.Sample(rng));
    }
    // Sync outcomes: each element synced per its current frequency; a sync
    // after gap g sees a change with probability 1 - e^{-lambda g}.
    const auto freqs = controller.frequencies();
    for (size_t i = 0; i < truth.size(); ++i) {
      if (freqs[i] <= 0.0) continue;
      const double gap = 1.0 / freqs[i];
      const int syncs_this_period = static_cast<int>(freqs[i]) + 1;
      for (int s = 0; s < syncs_this_period; ++s) {
        const double t = period - 1 + s * gap;
        if (t >= period) break;
        const double p_change = -std::expm1(-truth[i].change_rate * gap);
        controller.ObserveSync(i, rng.NextBool(p_change), t);
      }
    }
    ASSERT_TRUE(controller.MaybeReplan(period).ok());
  }

  const double warm_pf = PerceivedFreshness(truth, controller.frequencies());
  EXPECT_GT(warm_pf, cold_pf);
  EXPECT_GT(warm_pf, 0.9 * oracle_pf);
  EXPECT_GT(controller.num_replans(), 30u);
}

}  // namespace
}  // namespace freshen
