// Tests for the closed-loop AdaptiveFreshener: cold start, evidence
// accumulation, re-plan cadence, delta-mode parity with the full planner,
// and convergence toward the oracle plan on a synthetic ground truth.
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "adaptive/adaptive_freshener.h"
#include "model/metrics.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "workload/generator.h"

namespace freshen {
namespace {

AdaptiveFreshener::Options DefaultOptions() {
  AdaptiveFreshener::Options options;
  options.replan_every_periods = 1.0;
  options.prior_change_rate = 2.0;
  return options;
}

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(AdaptiveTest, ColdStartInstallsUniformPlan) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0, 1.0, 1.0}, 4.0, DefaultOptions())
          .value();
  EXPECT_EQ(controller.num_replans(), 1u);
  // No evidence: believed catalog is uniform, so the plan is symmetric.
  const auto& freqs = controller.frequencies();
  for (double f : freqs) EXPECT_NEAR(f, freqs[0], 1e-9);
  const ElementSet believed = controller.BelievedCatalog();
  for (const Element& e : believed) {
    EXPECT_NEAR(e.access_prob, 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(e.change_rate, 2.0);
  }
}

TEST(AdaptiveTest, RespectsReplanCadence) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 2.0, DefaultOptions()).value();
  EXPECT_FALSE(controller.MaybeReplan(0.5).value());
  EXPECT_TRUE(controller.MaybeReplan(1.0).value());
  EXPECT_FALSE(controller.MaybeReplan(1.5).value());
  EXPECT_TRUE(controller.MaybeReplan(2.1).value());
  EXPECT_TRUE(controller.MaybeReplan(2.2, /*force=*/true).value());
  EXPECT_EQ(controller.num_replans(), 4u);
}

TEST(AdaptiveTest, AccessesSteerBandwidthTowardHotElements) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 1.0, DefaultOptions()).value();
  for (int i = 0; i < 1000; ++i) controller.ObserveAccess(0);
  ASSERT_TRUE(controller.MaybeReplan(1.0).value());
  EXPECT_GT(controller.frequencies()[0], controller.frequencies()[1]);
}

TEST(AdaptiveTest, SyncEvidenceUpdatesChangeRates) {
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 2.0, DefaultOptions()).value();
  // Element 0: changed on every observed gap; element 1: never.
  for (int k = 0; k < 50; ++k) {
    controller.ObserveSync(0, /*changed=*/k > 0, 0.5 * k);
    controller.ObserveSync(1, /*changed=*/false, 0.5 * k);
  }
  const ElementSet believed = controller.BelievedCatalog();
  EXPECT_GT(believed[0].change_rate, 5.0);
  EXPECT_LT(believed[1].change_rate, 0.1);
}

TEST(AdaptiveTest, FirstSyncCarriesNoEvidence) {
  auto controller =
      AdaptiveFreshener::Create({1.0}, 1.0, DefaultOptions()).value();
  controller.ObserveSync(0, /*changed=*/true, 3.0);
  // Single sync: no gap observed, prior still in force.
  EXPECT_DOUBLE_EQ(controller.BelievedCatalog()[0].change_rate, 2.0);
}

TEST(AdaptiveTest, RejectsInvalidConfigurations) {
  EXPECT_FALSE(AdaptiveFreshener::Create({}, 1.0, DefaultOptions()).ok());
  EXPECT_FALSE(
      AdaptiveFreshener::Create({0.0}, 1.0, DefaultOptions()).ok());
  EXPECT_FALSE(
      AdaptiveFreshener::Create({1.0}, 0.0, DefaultOptions()).ok());
  auto bad_cadence = DefaultOptions();
  bad_cadence.replan_every_periods = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_cadence).ok());
  auto bad_prior = DefaultOptions();
  bad_prior.prior_change_rate = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_prior).ok());
  auto bad_smoothing = DefaultOptions();
  bad_smoothing.learner.smoothing = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_smoothing).ok());
}

TEST(AdaptiveTest, DeltaModeRejectsInvalidConfigurations) {
  auto partitioned = DefaultOptions();
  partitioned.delta.enable = true;
  partitioned.planner.mode = PlanMode::kPartitioned;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, partitioned).ok());
  auto bad_threshold = DefaultOptions();
  bad_threshold.delta.enable = true;
  bad_threshold.delta.full_churn_threshold = 0.0;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_threshold).ok());
  auto bad_band = DefaultOptions();
  bad_band.delta.enable = true;
  bad_band.delta.value_deadband = -1e-3;
  EXPECT_FALSE(AdaptiveFreshener::Create({1.0}, 1.0, bad_band).ok());
}

// Delta-mode parity: with a zero deadband, the delta controller sees the
// exact believed catalog every period, so its installed plan must be
// byte-identical to a full planner run in a twin controller fed the same
// observation stream — the delta path is an optimization, never a
// different answer.
TEST(AdaptiveTest, DeltaModePlansMatchFullPlannerByteForByte) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 80;
  spec.syncs_per_period = 40.0;
  spec.theta = 1.2;
  spec.alignment = Alignment::kShuffled;
  const ElementSet truth = GenerateCatalog(spec).value();

  auto full_options = DefaultOptions();
  auto delta_options = DefaultOptions();
  delta_options.delta.enable = true;
  delta_options.delta.value_deadband = 0.0;  // Re-submit every drift.
  delta_options.delta.threads = 1;
  auto full = AdaptiveFreshener::Create(Sizes(truth), spec.syncs_per_period,
                                        full_options)
                  .value();
  auto delta = AdaptiveFreshener::Create(Sizes(truth), spec.syncs_per_period,
                                         delta_options)
                   .value();
  ASSERT_TRUE(SameBytes(full.frequencies(), delta.frequencies()));

  Rng rng(77);
  AliasTable traffic(AccessProbs(truth));
  for (int period = 1; period <= 12; ++period) {
    for (int a = 0; a < 800; ++a) {
      const size_t element = traffic.Sample(rng);
      full.ObserveAccess(element);
      delta.ObserveAccess(element);
    }
    const auto freqs = full.frequencies();
    for (size_t i = 0; i < truth.size(); ++i) {
      if (freqs[i] <= 0.0) continue;
      const double gap = 1.0 / freqs[i];
      const double t = static_cast<double>(period - 1);
      const double p_change = -std::expm1(-truth[i].change_rate * gap);
      const bool changed = rng.NextBool(p_change);
      full.ObserveSync(i, changed, t);
      delta.ObserveSync(i, changed, t);
    }
    full.EndPeriod();
    delta.EndPeriod();
    ASSERT_TRUE(full.MaybeReplan(period).value());
    ASSERT_TRUE(delta.MaybeReplan(period).value());
    ASSERT_TRUE(SameBytes(full.frequencies(), delta.frequencies()))
        << "plans diverged at period " << period;
    EXPECT_TRUE(delta.last_replan().used_delta);
    EXPECT_FALSE(full.last_replan().used_delta);
  }
  EXPECT_NE(delta.solved_problem(), nullptr);
  EXPECT_EQ(full.solved_problem(), nullptr);
}

// With a deadband and no new evidence, a replan re-submits nothing, the
// replanner reports a pinned no-op, and the controller surfaces
// all_touched == false — the serving layer's cue to skip republication.
TEST(AdaptiveTest, QuiescentDeltaReplansReportPlanUnchanged) {
  auto options = DefaultOptions();
  options.delta.enable = true;
  options.delta.value_deadband = 1e-3;
  options.delta.threads = 1;
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0, 1.0}, 2.0, options).value();
  const std::vector<double> cold = controller.frequencies();
  // No observations between replans: beliefs are bit-stable, so the diff is
  // empty and the plan must not move.
  for (int period = 1; period <= 3; ++period) {
    ASSERT_TRUE(controller.MaybeReplan(period).value());
    EXPECT_TRUE(controller.last_replan().used_delta);
    EXPECT_EQ(controller.last_replan().dirty, 0u);
    EXPECT_FALSE(controller.last_replan().all_touched);
    ASSERT_TRUE(SameBytes(controller.frequencies(), cold));
  }
}

TEST(AdaptiveTest, StreamingModeTracksChangeRates) {
  auto options = DefaultOptions();
  options.estimator_mode = RateEstimatorMode::kStreaming;
  auto controller =
      AdaptiveFreshener::Create({1.0, 1.0}, 2.0, options).value();
  // Cold start: both modes report the prior.
  EXPECT_DOUBLE_EQ(controller.BelievedChangeRate(0), 2.0);
  // Element 0 changes on every observed gap, element 1 never.
  for (int k = 0; k < 400; ++k) {
    controller.ObserveSync(0, /*changed=*/k > 0, 0.25 * k);
    controller.ObserveSync(1, /*changed=*/false, 0.25 * k);
  }
  EXPECT_GT(controller.BelievedChangeRate(0), 4.0);
  EXPECT_LT(controller.BelievedChangeRate(1), 0.5);
  // Believed catalog and the per-element accessor agree.
  const ElementSet believed = controller.BelievedCatalog();
  EXPECT_DOUBLE_EQ(believed[0].change_rate, controller.BelievedChangeRate(0));
  EXPECT_DOUBLE_EQ(believed[1].change_rate, controller.BelievedChangeRate(1));
}

// End-to-end convergence: drive the controller against a synthetic ground
// truth for many periods; the plan's true perceived freshness must climb
// from the cold-start level toward the oracle optimum.
TEST(AdaptiveTest, ConvergesTowardOraclePlan) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 120;
  spec.syncs_per_period = 60.0;
  spec.theta = 1.1;
  spec.alignment = Alignment::kShuffled;
  const ElementSet truth = GenerateCatalog(spec).value();

  const double oracle_pf = FreshenPlanner({})
                               .Plan(truth, spec.syncs_per_period)
                               .value()
                               .perceived_freshness;

  auto controller = AdaptiveFreshener::Create(
                        Sizes(truth), spec.syncs_per_period, DefaultOptions())
                        .value();
  const double cold_pf = PerceivedFreshness(truth, controller.frequencies());

  Rng rng(2024);
  AliasTable traffic(AccessProbs(truth));
  for (int period = 1; period <= 40; ++period) {
    // User traffic this period.
    for (int a = 0; a < 3000; ++a) {
      controller.ObserveAccess(traffic.Sample(rng));
    }
    // Sync outcomes: each element synced per its current frequency; a sync
    // after gap g sees a change with probability 1 - e^{-lambda g}.
    const auto freqs = controller.frequencies();
    for (size_t i = 0; i < truth.size(); ++i) {
      if (freqs[i] <= 0.0) continue;
      const double gap = 1.0 / freqs[i];
      const int syncs_this_period = static_cast<int>(freqs[i]) + 1;
      for (int s = 0; s < syncs_this_period; ++s) {
        const double t = period - 1 + s * gap;
        if (t >= period) break;
        const double p_change = -std::expm1(-truth[i].change_rate * gap);
        controller.ObserveSync(i, rng.NextBool(p_change), t);
      }
    }
    ASSERT_TRUE(controller.MaybeReplan(period).ok());
  }

  const double warm_pf = PerceivedFreshness(truth, controller.frequencies());
  EXPECT_GT(warm_pf, cold_pf);
  EXPECT_GT(warm_pf, 0.9 * oracle_pf);
  EXPECT_GT(controller.num_replans(), 30u);
}

}  // namespace
}  // namespace freshen
