// opt/scan_breakpoint.h — the lattice multiplier search. Two properties
// carry the whole design:
//
//   1. The mu lattice is exact bit arithmetic: floor/ceil/next/prev/
//      midpoint/distance never round, so every search path speaks the same
//      set of candidate multipliers.
//   2. The spend predicate has a unique flip on that lattice, so the
//      scan-breakpoint search and the plain bisection oracle — structurally
//      different probe sequences — must produce BYTE-identical allocations,
//      at every thread count. These tests enforce that with memcmp, not
//      tolerances. Thread-sweep tests run under `ctest -L tsan` in a
//      FRESHEN_SANITIZE=thread build.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "opt/age_water_filling.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/water_filling.h"

namespace freshen {
namespace {

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Lattice helpers.
// ---------------------------------------------------------------------------

TEST(MuLatticeTest, FloorCeilBracketTheInput) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> mag(-250.0, 250.0);
  for (int i = 0; i < 100000; ++i) {
    const double mu = std::exp2(mag(rng)) * (1.0 + 1e-6 * (rng() % 1000));
    const double lo = MuLatticeFloor(mu);
    const double hi = MuLatticeCeil(mu);
    ASSERT_TRUE(IsMuLatticePoint(lo)) << mu;
    ASSERT_TRUE(IsMuLatticePoint(hi)) << mu;
    ASSERT_LE(lo, mu);
    ASSERT_GE(hi, mu);
    if (IsMuLatticePoint(mu)) {
      ASSERT_EQ(lo, mu);
      ASSERT_EQ(hi, mu);
    } else {
      ASSERT_EQ(MuLatticeDistance(lo, hi), 1u) << mu;
    }
    // Round lands on one of the two bracketing points.
    const double nearest = MuLatticeRound(mu);
    ASSERT_TRUE(nearest == lo || nearest == hi) << mu;
  }
}

TEST(MuLatticeTest, NextPrevAreExactInverses) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> mag(-250.0, 250.0);
  for (int i = 0; i < 100000; ++i) {
    const double g = MuLatticeFloor(std::exp2(mag(rng)));
    const double up = MuLatticeNext(g);
    ASSERT_GT(up, g);
    ASSERT_TRUE(IsMuLatticePoint(up)) << g;
    ASSERT_EQ(MuLatticePrev(up), g);
    ASSERT_EQ(MuLatticeDistance(g, up), 1u);
    // No lattice point strictly between adjacent points.
    ASSERT_EQ(MuLatticeCeil(std::nextafter(g, up)), up);
  }
}

TEST(MuLatticeTest, StepsCrossBinadesCleanly) {
  // The top lattice point of a binade steps to the bottom of the next.
  const double top = std::bit_cast<double>(
      std::bit_cast<uint64_t>(2.0) - kMuLatticeStep);
  ASSERT_TRUE(IsMuLatticePoint(top));
  EXPECT_EQ(MuLatticeNext(top), 2.0);
  EXPECT_EQ(MuLatticePrev(2.0), top);
}

TEST(MuLatticeTest, MidpointBisectsStrictly) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> mag(-200.0, 200.0);
  for (int i = 0; i < 100000; ++i) {
    const double a = MuLatticeFloor(std::exp2(mag(rng)));
    // b between 1 and ~2^40 lattice steps above a (spans many binades).
    const uint64_t steps = 1 + (rng() % (uint64_t{1} << 40));
    const double b = std::bit_cast<double>(std::bit_cast<uint64_t>(a) +
                                           steps * kMuLatticeStep);
    const double mid = MuLatticeMidpoint(a, b);
    ASSERT_TRUE(IsMuLatticePoint(mid)) << a << " " << b;
    ASSERT_GE(mid, a);
    ASSERT_LT(mid, b);
    if (steps == 1) {
      ASSERT_EQ(mid, a);  // Adjacent pair: bisection terminates.
    } else {
      // Strictly interior: both sides shrink, so bisection always
      // terminates in ~log2(steps) probes.
      ASSERT_GT(mid, a);
      ASSERT_LT(MuLatticeDistance(a, mid), steps);
      ASSERT_LT(MuLatticeDistance(mid, b), steps);
    }
  }
}

// ---------------------------------------------------------------------------
// Scan vs oracle: byte-identical allocations.
// ---------------------------------------------------------------------------

CoreProblem RandomProblem(size_t n, uint64_t seed, double budget_factor) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  CoreProblem problem;
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) {
    problem.weights.push_back(std::exp(u(rng)));
    problem.change_rates.push_back(std::exp(u(rng)));
    problem.costs.push_back(std::exp(0.5 * u(rng)));
    // Occasional inactive rows (zero weight / zero rate) so the compaction
    // path is exercised inside otherwise-normal problems.
    if (n > 4 && rng() % 7 == 0) {
      (rng() % 2 == 0 ? problem.weights : problem.change_rates).back() = 0.0;
    }
    scale += problem.costs.back() * problem.change_rates.back();
  }
  // budget_factor ~ bandwidth per unit of sum(c*lambda): ~1 funds roughly
  // r = 1 everywhere, << 1 starves, >> 1 saturates.
  problem.bandwidth = std::max(budget_factor * scale, 1e-30);
  return problem;
}

Allocation SolveFreshness(const CoreProblem& problem, MultiplierSearch mode,
                          size_t threads) {
  KktWaterFillingSolver::Options options;
  options.search = mode;
  options.threads = threads;
  Result<Allocation> result = KktWaterFillingSolver(options).Solve(problem);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

Allocation SolveAge(const CoreProblem& problem, MultiplierSearch mode,
                    size_t threads) {
  AgeWaterFillingSolver::Options options;
  options.search = mode;
  options.threads = threads;
  Result<Allocation> result = AgeWaterFillingSolver(options).Solve(problem);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ScanBreakpointTest, ScanMatchesOracleByteForByteOnRandomProblems) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{8},
                   size_t{17}, size_t{100}, size_t{1000}, size_t{5000}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      for (double budget_factor : {0.01, 0.3, 2.0}) {
        const CoreProblem problem = RandomProblem(n, seed, budget_factor);
        const Allocation scan =
            SolveFreshness(problem, MultiplierSearch::kScanBreakpoint, 1);
        const Allocation oracle =
            SolveFreshness(problem, MultiplierSearch::kBisectionOracle, 1);
        ASSERT_TRUE(SameBits(scan.multiplier, oracle.multiplier))
            << "n=" << n << " seed=" << seed << " bf=" << budget_factor
            << " scan=" << scan.multiplier << " oracle=" << oracle.multiplier;
        ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies))
            << "n=" << n << " seed=" << seed << " bf=" << budget_factor;
      }
    }
  }
}

TEST(ScanBreakpointTest, AgeScanMatchesOracleByteForByte) {
  for (size_t n : {size_t{1}, size_t{17}, size_t{1000}}) {
    for (uint64_t seed : {5u, 29u}) {
      for (double budget_factor : {0.05, 1.0}) {
        const CoreProblem problem = RandomProblem(n, seed, budget_factor);
        const Allocation scan =
            SolveAge(problem, MultiplierSearch::kScanBreakpoint, 1);
        const Allocation oracle =
            SolveAge(problem, MultiplierSearch::kBisectionOracle, 1);
        ASSERT_TRUE(SameBits(scan.multiplier, oracle.multiplier))
            << "n=" << n << " seed=" << seed << " bf=" << budget_factor;
        ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies))
            << "n=" << n << " seed=" << seed << " bf=" << budget_factor;
      }
    }
  }
}

TEST(ScanBreakpointTest, TiedBreakpointsStayByteIdentical) {
  // 64 copies of the same row: every activation threshold coincides, the
  // worst case for the breakpoint scan's sort/unique band. Symmetric
  // elements must also receive identical frequencies.
  CoreProblem problem;
  problem.weights.assign(64, 0.7);
  problem.change_rates.assign(64, 2.5);
  problem.costs.assign(64, 1.3);
  for (double budget_factor : {1e-6, 0.1, 3.0}) {
    problem.bandwidth = budget_factor * 64 * 1.3 * 2.5;
    const Allocation scan =
        SolveFreshness(problem, MultiplierSearch::kScanBreakpoint, 1);
    const Allocation oracle =
        SolveFreshness(problem, MultiplierSearch::kBisectionOracle, 1);
    ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies))
        << "bf=" << budget_factor;
    if (budget_factor >= 0.1) {
      // Generous budget: all 64 copies funded, and by lane independence the
      // identical rows must receive bit-identical frequencies. (Below the
      // funding cutoff the residual deliberately goes to ONE boundary
      // element — any split among tied boundary elements is equally
      // optimal — so symmetry is not expected there.)
      for (size_t i = 1; i < 64; ++i) {
        ASSERT_TRUE(SameBits(scan.frequencies[i], scan.frequencies[0]))
            << "i=" << i << " bf=" << budget_factor;
      }
    }
    EXPECT_NEAR(problem.Spend(scan.frequencies), problem.bandwidth,
                1e-9 * problem.bandwidth)
        << "bf=" << budget_factor;
  }
}

TEST(ScanBreakpointTest, DegenerateProblemsAgreeAcrossModes) {
  // N = 0 is rejected upstream by CoreProblem::Validate in both modes.
  {
    CoreProblem empty;
    empty.bandwidth = 1.0;
    KktWaterFillingSolver::Options options;
    for (MultiplierSearch mode : {MultiplierSearch::kScanBreakpoint,
                                  MultiplierSearch::kBisectionOracle}) {
      options.search = mode;
      EXPECT_FALSE(KktWaterFillingSolver(options).Solve(empty).ok());
    }
  }
  // N = 1: the single element takes the whole budget, exactly, both modes.
  {
    CoreProblem one;
    one.weights = {0.4};
    one.change_rates = {3.0};
    one.costs = {2.0};
    one.bandwidth = 5.0;
    const Allocation scan =
        SolveFreshness(one, MultiplierSearch::kScanBreakpoint, 1);
    const Allocation oracle =
        SolveFreshness(one, MultiplierSearch::kBisectionOracle, 1);
    ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies));
    EXPECT_NEAR(scan.frequencies[0], 5.0 / 2.0, 1e-9);
  }
  // All-inactive: every element has zero weight or zero rate — the all-zero
  // schedule, identical in both modes (the search never runs).
  {
    CoreProblem inert;
    inert.weights = {0.0, 1.0, 0.0};
    inert.change_rates = {2.0, 0.0, 0.0};
    inert.costs = {1.0, 1.0, 1.0};
    inert.bandwidth = 1.0;
    const Allocation scan =
        SolveFreshness(inert, MultiplierSearch::kScanBreakpoint, 1);
    const Allocation oracle =
        SolveFreshness(inert, MultiplierSearch::kBisectionOracle, 1);
    ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies));
    for (double f : scan.frequencies) EXPECT_EQ(f, 0.0);
  }
  // All-active: with activation thresholds w/(c*lambda) within a factor of
  // 8 of each other and a generous budget, the multiplier sits far below
  // every threshold and no element is priced out. (A wide random ratio
  // spread would NOT guarantee this — the cheapest-to-ignore elements lose
  // funding at any finite budget.)
  {
    CoreProblem rich;
    std::mt19937_64 rng(77);
    std::uniform_real_distribution<double> u(1.0, 2.0);
    double scale = 0.0;
    for (size_t i = 0; i < 200; ++i) {
      rich.weights.push_back(u(rng));
      rich.change_rates.push_back(u(rng));
      rich.costs.push_back(u(rng));
      scale += rich.costs.back() * rich.change_rates.back();
    }
    rich.bandwidth = 5.0 * scale;
    const Allocation scan =
        SolveFreshness(rich, MultiplierSearch::kScanBreakpoint, 1);
    const Allocation oracle =
        SolveFreshness(rich, MultiplierSearch::kBisectionOracle, 1);
    ASSERT_TRUE(SameBytes(scan.frequencies, oracle.frequencies));
    for (size_t i = 0; i < rich.size(); ++i) {
      EXPECT_GT(scan.frequencies[i], 0.0) << i;
    }
  }
}

TEST(ScanBreakpointTest, ScanUsesFewerProbesThanOracle) {
  // The point of the scan: ~15 spend evaluations instead of the oracle's
  // full lattice bisection (~50). `iterations` reports probe counts.
  const CoreProblem problem = RandomProblem(5000, 99, 0.2);
  const Allocation scan =
      SolveFreshness(problem, MultiplierSearch::kScanBreakpoint, 1);
  const Allocation oracle =
      SolveFreshness(problem, MultiplierSearch::kBisectionOracle, 1);
  EXPECT_LT(scan.iterations, oracle.iterations)
      << "scan=" << scan.iterations << " oracle=" << oracle.iterations;
  EXPECT_GE(oracle.iterations, 30);
}

TEST(ScanBreakpointTest, AllocationIsByteIdenticalAcrossThreadCounts) {
  // The full solver — search probes, warm-started spend evaluations, final
  // fill — at 1/2/4/8 threads, both modes, both solvers. memcmp, not
  // tolerance: this is the determinism contract end to end.
  const CoreProblem problem = RandomProblem(20000, 123, 0.15);
  for (MultiplierSearch mode : {MultiplierSearch::kScanBreakpoint,
                                MultiplierSearch::kBisectionOracle}) {
    const Allocation base = SolveFreshness(problem, mode, 1);
    const Allocation age_base = SolveAge(problem, mode, 1);
    for (size_t threads : {2u, 4u, 8u}) {
      const Allocation got = SolveFreshness(problem, mode, threads);
      ASSERT_TRUE(SameBits(got.multiplier, base.multiplier))
          << "threads=" << threads;
      ASSERT_TRUE(SameBytes(got.frequencies, base.frequencies))
          << "threads=" << threads;
      const Allocation age_got = SolveAge(problem, mode, threads);
      ASSERT_TRUE(SameBits(age_got.multiplier, age_base.multiplier))
          << "threads=" << threads;
      ASSERT_TRUE(SameBytes(age_got.frequencies, age_base.frequencies))
          << "threads=" << threads;
    }
  }
}

TEST(ScanBreakpointTest, EvaluatorPlanUsesTranscendentalSizing) {
  // The compacted active set gets its own transcendental-sized plan — not
  // the memory-bound default, and not a plan for the original problem size.
  std::vector<double> target(100000, 0.5), lambda(100000, 1.0),
      spend(100000, 1.0);
  const par::Executor exec(1);
  BreakpointSpendEvaluator eval(BreakpointSpendEvaluator::Kernel::kFreshnessG,
                                target, lambda, spend, &exec);
  EXPECT_EQ(eval.plan().size(),
            par::ShardCountFor(100000, par::kTranscendentalGrain,
                               par::kTranscendentalMaxShards));
  EXPECT_GT(eval.plan().size(), par::ShardCount(100000));
}

}  // namespace
}  // namespace freshen
