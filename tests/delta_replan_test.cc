// opt/delta_replan.h — incremental replanning. The contract under test is
// absolute: after ANY accepted update batch, the replanner's materialized
// allocation is BYTE-identical (memcmp) to a cold scan-mode
// KktWaterFillingSolver solve of the same updated problem, at every thread
// count — pinned, warm, and full paths alike. Tolerances would hide exactly
// the bugs this design exists to exclude (stale cache entries, seed-history
// leakage, reduction-order drift), so none are used.
//
// Warm-start staleness (the adversarial 10x / 0.1x rate-swing cases) is
// asserted bitwise HERE, at the solver level, where it genuinely holds:
// converged fills are always cold-seeded and the lattice flip is unique
// across faithful evaluation paths. At the KERNEL level warm-seeded
// inversions are NOT bitwise cold (they differ by a few ulps; measured
// empirically) — the kernel tests below pin down that honest boundary:
// out-of-bracket seeds fall back to cold bitwise, stale in-bracket seeds
// stay within ~1e-12 relative of the cold root.
#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "model/freshness_batch.h"
#include "obs/metrics.h"
#include "opt/delta_replan.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/water_filling.h"

namespace freshen {
namespace {

using ReplanResult = DeltaReplanner::ReplanResult;

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int64_t UlpDistance(double a, double b) {
  const auto key = [](double x) {
    const int64_t bits = std::bit_cast<int64_t>(x);
    return bits < 0 ? std::numeric_limits<int64_t>::min() - bits : bits;
  };
  const int64_t d = key(a) - key(b);
  return d < 0 ? -d : d;
}

// Same generator family as scan_breakpoint_test: log-uniform values with
// occasional inactive rows so compaction stays exercised.
CoreProblem RandomProblem(size_t n, uint64_t seed, double budget_factor) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  CoreProblem problem;
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) {
    problem.weights.push_back(std::exp(u(rng)));
    problem.change_rates.push_back(std::exp(u(rng)));
    problem.costs.push_back(std::exp(0.5 * u(rng)));
    if (n > 4 && rng() % 7 == 0) {
      (rng() % 2 == 0 ? problem.weights : problem.change_rates).back() = 0.0;
    }
    scale += problem.costs.back() * problem.change_rates.back();
  }
  problem.bandwidth = std::max(budget_factor * scale, 1e-30);
  return problem;
}

Allocation ColdSolve(const CoreProblem& problem, size_t threads = 1) {
  KktWaterFillingSolver::Options options;
  options.search = MultiplierSearch::kScanBreakpoint;
  options.threads = threads;
  Result<Allocation> result = KktWaterFillingSolver(options).Solve(problem);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

std::unique_ptr<DeltaReplanner> MakeReplanner(
    CoreProblem problem, size_t threads = 1,
    double churn_threshold = 0.05) {
  DeltaReplanner::Options options;
  options.threads = threads;
  options.full_churn_threshold = churn_threshold;
  auto result = DeltaReplanner::Create(std::move(problem), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// The one assertion that matters, shared by every scenario below.
void ExpectMatchesCold(const DeltaReplanner& replanner, size_t threads = 1) {
  const Allocation cold = ColdSolve(replanner.problem(), threads);
  std::vector<double> delta_frequencies;
  replanner.MaterializeFrequencies(&delta_frequencies);
  ASSERT_TRUE(SameBytes(delta_frequencies, cold.frequencies))
      << "delta materialization diverged from cold solve";
  ASSERT_TRUE(SameBits(replanner.multiplier(), cold.multiplier));
}

ElementUpdate UpdateOf(const CoreProblem& problem, size_t i) {
  ElementUpdate u;
  u.index = i;
  u.weight = problem.weights[i];
  u.change_rate = problem.change_rates[i];
  u.cost = problem.costs[i];
  return u;
}

// ---------------------------------------------------------------------------
// Cold start.
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, CreateMatchesColdSolveByteForByte) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{17}, size_t{100},
                   size_t{1000}, size_t{5000}}) {
    for (double budget_factor : {0.01, 0.3, 2.0}) {
      auto replanner = MakeReplanner(RandomProblem(n, 31 + n, budget_factor));
      ExpectMatchesCold(*replanner);
    }
  }
}

TEST(DeltaReplanTest, MaterializeAllocationCarriesColdDiagnostics) {
  const CoreProblem problem = RandomProblem(300, 7, 0.3);
  auto replanner = MakeReplanner(problem);
  const Allocation cold = ColdSolve(problem);
  const Allocation delta = replanner->MaterializeAllocation();
  ASSERT_TRUE(SameBytes(delta.frequencies, cold.frequencies));
  EXPECT_TRUE(SameBits(delta.multiplier, cold.multiplier));
  EXPECT_TRUE(SameBits(delta.objective, cold.objective));
  EXPECT_TRUE(SameBits(delta.bandwidth_used, cold.bandwidth_used));
  EXPECT_TRUE(delta.converged);
}

// ---------------------------------------------------------------------------
// Pinned path.
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, TailChurnTakesPinnedPathAndReportsTouched) {
  // budget_factor 0.3 leaves a sizeable priced-out tail (fill == 0).
  CoreProblem problem = RandomProblem(5000, 101, 0.3);
  auto replanner = MakeReplanner(problem);
  const Allocation before = replanner->MaterializeAllocation();

  // Find priced-out active elements and push their weights further DOWN:
  // they stay priced out at both cached edges, so the edge totals are
  // bit-unchanged and the pinned check cannot fail.
  std::vector<ElementUpdate> updates;
  const CoreProblem& p = replanner->problem();
  for (size_t i = 0; i < p.size() && updates.size() < 40; ++i) {
    if (p.weights[i] > 0.0 && p.change_rates[i] > 0.0 &&
        before.frequencies[i] == 0.0) {
      ElementUpdate u = UpdateOf(p, i);
      u.weight *= 0.5;  // Ratio up, zero-frequency marginal down.
      updates.push_back(u);
    }
  }
  ASSERT_GT(updates.size(), 10u);

  auto result = replanner->Replan(updates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, ReplanPath::kPinned);
  EXPECT_EQ(result->probes, 0);
  EXPECT_EQ(result->dirty, updates.size());
  ExpectMatchesCold(*replanner);

  // Pure tail churn: zero fills stayed zero bits, no boundary/rescale
  // motion — the plan is provably byte-unchanged and says so.
  std::vector<double> after;
  replanner->MaterializeFrequencies(&after);
  if (!result->all_touched) {
    for (size_t i : replanner->touched()) {
      ASSERT_FALSE(SameBits(before.frequencies[i], after[i]));
    }
    for (size_t i = 0; i < after.size(); ++i) {
      if (SameBits(before.frequencies[i], after[i])) continue;
      ASSERT_TRUE(std::find(replanner->touched().begin(),
                            replanner->touched().end(),
                            i) != replanner->touched().end())
          << "changed element " << i << " missing from touched()";
    }
  }
}

TEST(DeltaReplanTest, InactiveValueUpdatesArePinnedNoops) {
  CoreProblem problem = RandomProblem(200, 5, 0.3);
  problem.weights[7] = 0.0;  // Guarantee an inactive element.
  auto replanner = MakeReplanner(problem);
  std::vector<double> before;
  replanner->MaterializeFrequencies(&before);

  // New rate on a weight-0 element: dirty but solve-invisible.
  ElementUpdate u;
  u.index = 7;
  u.weight = 0.0;
  u.change_rate = 123.0;
  u.cost = 2.0;
  auto result = replanner->Replan({u});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, ReplanPath::kPinned);
  EXPECT_FALSE(result->all_touched);
  EXPECT_TRUE(replanner->touched().empty());
  EXPECT_EQ(replanner->problem().change_rates[7], 123.0);
  std::vector<double> after;
  replanner->MaterializeFrequencies(&after);
  ASSERT_TRUE(SameBytes(before, after));
  ExpectMatchesCold(*replanner);

  // Reactivation is structural and sees the recorded values.
  u.weight = 0.9;
  auto result2 = replanner->Replan({u});
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->path, ReplanPath::kFull);
  ExpectMatchesCold(*replanner);
}

// ---------------------------------------------------------------------------
// Warm path — including the adversarial seed-staleness cases.
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, AdversarialRateSwingsConvergeBitwiseViaWarmPath) {
  // 10x / 0.1x swings on EVERY active element, threshold raised so the
  // delta machinery must absorb them: the cached mu and the evaluator's
  // warm kernel seeds are maximally stale, yet the warm search must land
  // on the cold flip edge and the cold-seeded fill must reproduce the
  // cold allocation bit-for-bit.
  CoreProblem problem = RandomProblem(1500, 77, 0.3);
  auto replanner =
      MakeReplanner(problem, /*threads=*/1, /*churn_threshold=*/1.1);
  for (double factor : {10.0, 0.1, 10.0, 0.1}) {
    std::vector<ElementUpdate> updates;
    const CoreProblem& p = replanner->problem();
    for (size_t i = 0; i < p.size(); ++i) {
      if (p.weights[i] > 0.0 && p.change_rates[i] > 0.0) {
        ElementUpdate u = UpdateOf(p, i);
        u.change_rate *= factor;
        updates.push_back(u);
      }
    }
    auto result = replanner->Replan(updates);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->path, ReplanPath::kWarm);
    EXPECT_GT(result->probes, 0);
    EXPECT_LE(result->probes, 400);
    ExpectMatchesCold(*replanner);
  }
}

TEST(DeltaReplanTest, SmallFundedSwingRestartsNearCachedFlip) {
  CoreProblem problem = RandomProblem(2000, 13, 0.3);
  auto replanner = MakeReplanner(problem);
  const Allocation before = replanner->MaterializeAllocation();
  const int cold_probes = before.iterations;

  // Nudge one funded element: the flip moves at most a few lattice steps,
  // so a warm restart should need far fewer probes than a cold search.
  std::vector<ElementUpdate> updates;
  const CoreProblem& p = replanner->problem();
  for (size_t i = 0; i < p.size(); ++i) {
    if (before.frequencies[i] > 0.0) {
      ElementUpdate u = UpdateOf(p, i);
      u.change_rate *= 1.0 + 1e-7;
      updates.push_back(u);
      break;
    }
  }
  ASSERT_EQ(updates.size(), 1u);
  auto result = replanner->Replan(updates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesCold(*replanner);
  if (result->path == ReplanPath::kWarm) {
    EXPECT_LT(result->probes, cold_probes)
        << "warm restart should beat the cold probe count";
  }
}

TEST(DeltaReplanTest, WarmMultiplierSearchMatchesColdSearchBits) {
  // Direct unit check on SolveMultiplierFromPrevious: start it from flip
  // points of WRONG problems (rates globally scaled 10x / 0.1x) and from
  // the true flip itself; every start must converge to the cold search's
  // exact lattice edge, through an evaluator whose warm seeds are stale.
  const CoreProblem base = RandomProblem(800, 19, 0.3);
  std::vector<size_t> index;
  std::vector<double> ratio, lambda, spend_scale;
  double mu_max = 0.0;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base.weights[i] > 0.0 && base.change_rates[i] > 0.0) {
      index.push_back(i);
      ratio.push_back(base.costs[i] * base.change_rates[i] / base.weights[i]);
      lambda.push_back(base.change_rates[i]);
      spend_scale.push_back(base.costs[i] * base.change_rates[i]);
      mu_max = std::max(mu_max, 1.0 / ratio.back());
    }
  }
  const par::Executor exec(1);
  BreakpointSpendEvaluator eval(BreakpointSpendEvaluator::Kernel::kFreshnessG,
                                ratio, lambda, spend_scale, &exec);
  auto spend_at = [&](double mu) { return eval.SpendAt(mu); };
  std::function<void(double, double, std::vector<double>*)> gather =
      [&](double lo, double hi, std::vector<double>* band) {
        for (size_t k = 0; k < ratio.size(); ++k) {
          const double threshold = 1.0 / ratio[k];
          if (threshold > lo && threshold < hi) band->push_back(threshold);
        }
      };
  const GridSearchResult cold =
      SolveMultiplierOnGrid(spend_at, base.bandwidth, mu_max,
                            MultiplierSearch::kScanBreakpoint, &gather, 400);
  for (double stale : {1.0, 10.0, 0.1, 1000.0, 0.001}) {
    const double prev = MuLatticeFloor(cold.mu * stale);
    const GridSearchResult warm =
        SolveMultiplierFromPrevious(spend_at, base.bandwidth, prev, &gather,
                                    400);
    ASSERT_TRUE(SameBits(warm.mu, cold.mu))
        << "stale factor " << stale << ": warm " << warm.mu << " vs cold "
        << cold.mu;
    if (stale == 1.0) {
      EXPECT_LE(warm.probes, 4) << "restart from the true flip is ~2 probes";
    }
  }
}

// ---------------------------------------------------------------------------
// Full path.
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, StructuralUpdatesForceFullPath) {
  CoreProblem problem = RandomProblem(400, 23, 0.3);
  auto replanner = MakeReplanner(problem);

  // Append.
  ElementUpdate append;
  append.index = replanner->problem().size();
  append.weight = 0.7;
  append.change_rate = 2.5;
  append.cost = 1.3;
  auto r1 = replanner->Replan({append});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->path, ReplanPath::kFull);
  EXPECT_EQ(replanner->problem().size(), problem.size() + 1);
  ExpectMatchesCold(*replanner);

  // Deactivate an active element (membership flip).
  size_t active_i = SIZE_MAX;
  for (size_t i = 0; i < replanner->problem().size(); ++i) {
    if (replanner->problem().weights[i] > 0.0 &&
        replanner->problem().change_rates[i] > 0.0) {
      active_i = i;
      break;
    }
  }
  ASSERT_NE(active_i, SIZE_MAX);
  ElementUpdate deactivate = UpdateOf(replanner->problem(), active_i);
  deactivate.weight = 0.0;
  auto r2 = replanner->Replan({deactivate});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->path, ReplanPath::kFull);
  ExpectMatchesCold(*replanner);
}

TEST(DeltaReplanTest, ChurnAboveThresholdFallsBackToFull) {
  CoreProblem problem = RandomProblem(1000, 29, 0.3);
  auto replanner =
      MakeReplanner(problem, /*threads=*/1, /*churn_threshold=*/0.05);
  std::vector<ElementUpdate> updates;
  const CoreProblem& p = replanner->problem();
  size_t active = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    active += p.weights[i] > 0.0 && p.change_rates[i] > 0.0;
  }
  for (size_t i = 0; i < p.size(); ++i) {
    if (p.weights[i] > 0.0 && p.change_rates[i] > 0.0) {
      ElementUpdate u = UpdateOf(p, i);
      u.change_rate *= 1.01;
      updates.push_back(u);
      if (updates.size() > active / 10 + 1) break;  // ~10% churn.
    }
  }
  auto result = replanner->Replan(updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->path, ReplanPath::kFull);
  ExpectMatchesCold(*replanner);
}

TEST(DeltaReplanTest, EmptyActiveProblemsAndTransitions) {
  CoreProblem empty;
  empty.weights = {0.0, 1.0, 0.0};
  empty.change_rates = {2.0, 0.0, 0.0};
  empty.costs = {1.0, 1.0, 1.0};
  empty.bandwidth = 5.0;
  auto replanner = MakeReplanner(empty);
  ExpectMatchesCold(*replanner);
  std::vector<double> zeros;
  replanner->MaterializeFrequencies(&zeros);
  for (double f : zeros) EXPECT_EQ(f, 0.0);

  // Activation from the empty state.
  ElementUpdate u;
  u.index = 1;
  u.weight = 1.0;
  u.change_rate = 3.0;
  u.cost = 1.0;
  auto result = replanner->Replan({u});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->path, ReplanPath::kFull);
  ExpectMatchesCold(*replanner);
}

// ---------------------------------------------------------------------------
// Sustained random churn + thread sweep: the headline gate.
// ---------------------------------------------------------------------------

std::vector<ElementUpdate> RandomChurnBatch(const CoreProblem& p,
                                            std::mt19937_64& rng) {
  std::uniform_real_distribution<double> jitter(-0.5, 0.5);
  std::vector<ElementUpdate> updates;
  const size_t batch = 1 + rng() % 60;
  for (size_t j = 0; j < batch; ++j) {
    const uint64_t roll = rng() % 100;
    ElementUpdate u;
    if (roll < 4) {
      // Append.
      u.index = p.size() + std::count_if(updates.begin(), updates.end(),
                                         [&](const ElementUpdate& v) {
                                           return v.index >= p.size();
                                         });
      u.weight = std::exp(jitter(rng) * 4.0);
      u.change_rate = std::exp(jitter(rng) * 4.0);
      u.cost = std::exp(jitter(rng));
    } else {
      u.index = rng() % p.size();
      u = UpdateOf(p, u.index);
      if (roll < 8) {
        u.weight = 0.0;  // Deactivate.
      } else if (roll < 12) {
        // (Re)activate with fresh values.
        u.weight = std::exp(jitter(rng) * 4.0);
        u.change_rate = std::exp(jitter(rng) * 4.0);
      } else {
        u.change_rate = std::max(u.change_rate * std::exp(jitter(rng)), 1e-6);
        u.weight = std::max(u.weight * std::exp(jitter(rng) * 0.2), 1e-6);
      }
    }
    updates.push_back(u);
  }
  return updates;
}

TEST(DeltaReplanTest, SustainedRandomChurnStaysByteIdenticalToCold) {
  CoreProblem problem = RandomProblem(2000, 41, 0.3);
  auto replanner = MakeReplanner(problem);
  std::mt19937_64 rng(997);
  int paths[3] = {0, 0, 0};
  for (int step = 0; step < 25; ++step) {
    const auto updates = RandomChurnBatch(replanner->problem(), rng);
    auto result = replanner->Replan(updates);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ++paths[static_cast<int>(result->path)];
    ExpectMatchesCold(*replanner);
  }
  // The stream mixes structural flips with small value batches, so the full
  // path must fire; the byte gate above is what actually matters.
  EXPECT_GT(paths[static_cast<int>(ReplanPath::kFull)], 0);
}

TEST(DeltaReplanTest, ThreadSweepIsByteIdenticalEveryStep) {
  const CoreProblem problem = RandomProblem(3000, 53, 0.3);
  std::vector<std::unique_ptr<DeltaReplanner>> replanners;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    replanners.push_back(MakeReplanner(problem, threads));
  }
  std::mt19937_64 rng(61);
  for (int step = 0; step < 8; ++step) {
    const auto updates = RandomChurnBatch(replanners[0]->problem(), rng);
    std::vector<double> base;
    for (size_t t = 0; t < replanners.size(); ++t) {
      auto result = replanners[t]->Replan(updates);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::vector<double> frequencies;
      replanners[t]->MaterializeFrequencies(&frequencies);
      if (t == 0) {
        base = std::move(frequencies);
        ExpectMatchesCold(*replanners[0], /*threads=*/3);
      } else {
        ASSERT_TRUE(SameBytes(base, frequencies))
            << "thread sweep diverged at step " << step;
      }
    }
  }
}

TEST(DeltaReplanTest, DuplicateRatioBoundaryProblemsStayByteIdentical) {
  // Many identical (w, lambda, c) rows create exact activation-threshold
  // ties right at the funding cutoff — the regime where the residual's
  // boundary grant and its first-index tie-break actually bite.
  CoreProblem problem;
  for (int g = 0; g < 8; ++g) {
    for (int r = 0; r < 25; ++r) {
      problem.weights.push_back(1.0 + 0.5 * g);
      problem.change_rates.push_back(2.0);
      problem.costs.push_back(1.0);
    }
  }
  problem.bandwidth = 40.0;
  auto replanner = MakeReplanner(problem);
  ExpectMatchesCold(*replanner);
  std::mt19937_64 rng(71);
  for (int step = 0; step < 12; ++step) {
    // Nudge a handful of rows, sometimes back onto an exact tie value.
    std::vector<ElementUpdate> updates;
    for (int j = 0; j < 5; ++j) {
      const size_t i = rng() % replanner->problem().size();
      ElementUpdate u = UpdateOf(replanner->problem(), i);
      u.weight = (rng() % 2 == 0) ? 1.0 + 0.5 * (rng() % 8)
                                  : u.weight * (1.0 + 1e-6);
      updates.push_back(u);
    }
    auto result = replanner->Replan(updates);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectMatchesCold(*replanner);
  }
}

// ---------------------------------------------------------------------------
// Input validation.
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, InvalidBatchesRejectedAtomically) {
  CoreProblem problem = RandomProblem(50, 83, 0.3);
  auto replanner = MakeReplanner(problem);
  std::vector<double> before;
  replanner->MaterializeFrequencies(&before);

  ElementUpdate good = UpdateOf(replanner->problem(), 0);
  for (auto bad : std::vector<ElementUpdate>{
           {/*index=*/52, 1.0, 1.0, 1.0},  // Gap past the append slot.
           {0, -1.0, 1.0, 1.0},            // Negative weight.
           {0, 1.0, std::nan(""), 1.0},    // NaN rate.
           {0, 1.0, 1.0, 0.0},             // Zero cost.
       }) {
    auto result = replanner->Replan({good, bad});
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(replanner->problem().size(), problem.size());
    std::vector<double> after;
    replanner->MaterializeFrequencies(&after);
    ASSERT_TRUE(SameBytes(before, after)) << "rejected batch mutated state";
  }
  // Still fully functional afterwards.
  good.change_rate *= 2.0;
  auto result = replanner->Replan({good});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesCold(*replanner);
}

TEST(DeltaReplanTest, LastWriteWinsWithinOneBatch) {
  CoreProblem problem = RandomProblem(100, 89, 0.3);
  auto replanner = MakeReplanner(problem);
  ElementUpdate first = UpdateOf(replanner->problem(), 3);
  first.change_rate = 5.0;
  first.weight = 1.0;
  ElementUpdate second = first;
  second.change_rate = 9.0;
  auto result = replanner->Replan({first, second});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(replanner->problem().change_rates[3], 9.0);
  EXPECT_EQ(result->dirty, 1u);
  ExpectMatchesCold(*replanner);
}

// ---------------------------------------------------------------------------
// Kernel-level warm-seed honesty (satellite of the solver-level guarantee).
// ---------------------------------------------------------------------------

TEST(WarmSeedKernelTest, OutOfBracketSeedsFallBackToColdBitwise) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(1e-12, 1.0 - 1e-12);
  for (int i = 0; i < 20000; ++i) {
    const double y = u(rng);
    const double cold_g = RefInverseMarginalGainG(y, 0.0);
    for (double seed : {-1.0, 0.0, 745.0, 1e308}) {
      ASSERT_TRUE(SameBits(RefInverseMarginalGainG(y, seed), cold_g))
          << "y=" << y << " seed=" << seed;
    }
    const double cold_h = RefInverseAgeMarginalKernelH(y, 0.0);
    for (double seed : {-1.0, 0.0, 50.0, 1e308}) {
      ASSERT_TRUE(SameBits(RefInverseAgeMarginalKernelH(y, seed), cold_h))
          << "y=" << y << " seed=" << seed;
    }
  }
}

TEST(WarmSeedKernelTest, StaleInBracketSeedsStayWithinFewUlps) {
  // Warm-seeded roots are NOT bitwise cold (the solver never relies on
  // that: converged fills are cold-seeded). What stale seeds must do is
  // stay converged: a seed from a 10x/0.1x-shifted problem lands within
  // ~1e-13 relative (a few hundred ulps) of the cold root — three orders
  // of magnitude below the ~5e-12 relative flip margin that makes the
  // multiplier search's lattice edge identical across probe paths.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(1e-9, 1.0 - 1e-9);
  int64_t worst_g = 0, worst_h = 0;
  for (int i = 0; i < 20000; ++i) {
    const double y = u(rng);
    const double cold_g = RefInverseMarginalGainG(y, 0.0);
    const double cold_h = RefInverseAgeMarginalKernelH(y, 0.0);
    for (double shift : {10.0, 0.1}) {
      const double y_stale = std::min(std::max(y * shift, 1e-12), 1.0 - 1e-12);
      const double stale_seed_g = RefInverseMarginalGainG(y_stale, 0.0);
      const double warm_g = RefInverseMarginalGainG(y, stale_seed_g);
      worst_g = std::max(worst_g, UlpDistance(warm_g, cold_g));
      const double stale_seed_h = RefInverseAgeMarginalKernelH(y_stale, 0.0);
      const double warm_h = RefInverseAgeMarginalKernelH(y, stale_seed_h);
      worst_h = std::max(worst_h, UlpDistance(warm_h, cold_h));
    }
  }
  // 4096 ulps ~ 1e-12 relative: far below the flip margin, far above the
  // measured worst case (~450), so this fails only on real regressions.
  EXPECT_LE(worst_g, 4096) << "warm G roots drifted beyond ~1e-12 relative";
  EXPECT_LE(worst_h, 4096) << "warm H roots drifted beyond ~1e-12 relative";
}

// ---------------------------------------------------------------------------
// Metrics surface (freshen_replan_*).
// ---------------------------------------------------------------------------

TEST(DeltaReplanTest, ReplanMetricsRecordPathsAndSizes) {
  obs::MetricsRegistry registry;
  DeltaReplanner::Options options;
  options.threads = 1;
  options.registry = &registry;
  auto created = DeltaReplanner::Create(RandomProblem(300, 97, 0.3), options);
  ASSERT_TRUE(created.ok());
  auto& replanner = *created.value();

  // One pinned (inactive no-op), one full (append).
  size_t inactive = SIZE_MAX;
  for (size_t i = 0; i < replanner.problem().size(); ++i) {
    if (replanner.problem().weights[i] == 0.0 ||
        replanner.problem().change_rates[i] == 0.0) {
      inactive = i;
      break;
    }
  }
  ASSERT_NE(inactive, SIZE_MAX);
  ElementUpdate quiet = UpdateOf(replanner.problem(), inactive);
  quiet.cost = 3.0;
  ASSERT_TRUE(replanner.Replan({quiet}).ok());
  ElementUpdate append;
  append.index = replanner.problem().size();
  append.weight = 1.0;
  append.change_rate = 1.0;
  ASSERT_TRUE(replanner.Replan({append}).ok());

  const auto snapshot = registry.Snapshot();
  const obs::MetricSample* pinned =
      snapshot.Find("freshen_replan_total", {{"path", "pinned"}});
  const obs::MetricSample* full =
      snapshot.Find("freshen_replan_total", {{"path", "full"}});
  const obs::MetricSample* warm =
      snapshot.Find("freshen_replan_total", {{"path", "warm"}});
  ASSERT_NE(pinned, nullptr);
  ASSERT_NE(full, nullptr);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(pinned->value, 1.0);
  EXPECT_EQ(full->value, 1.0);
  EXPECT_EQ(warm->value, 0.0);
  const obs::MetricSample* dirty = snapshot.Find("freshen_replan_dirty_elements");
  const obs::MetricSample* probes = snapshot.Find("freshen_replan_probes");
  const obs::MetricSample* seconds = snapshot.Find("freshen_replan_seconds");
  ASSERT_NE(dirty, nullptr);
  ASSERT_NE(probes, nullptr);
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(dirty->count, 2u);
  EXPECT_EQ(probes->count, 2u);
  EXPECT_EQ(seconds->count, 2u);
}

}  // namespace
}  // namespace freshen
