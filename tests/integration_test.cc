// Integration tests: miniature versions of every paper experiment, each
// asserting the qualitative result the corresponding figure/table shows.
// The benches print the full series; these tests keep the claims true.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "profile/profile.h"
#include "model/metrics.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "partition/kmeans.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace freshen {
namespace {

double PlanPf(const ElementSet& elements, double bandwidth,
              const PlannerOptions& options) {
  return FreshenPlanner(options)
      .Plan(elements, bandwidth)
      .value()
      .perceived_freshness;
}

// ---- Table 1 is covered in water_filling_test.cc ----

// ---- Figure 1: solution locus shape ----
TEST(Fig1Integration, BandwidthGrowsWithAccessProbability) {
  // On the optimal locus, for the same lambda, higher p gets higher f.
  const ElementSet elements =
      MakeElementSet({2.0, 2.0, 2.0}, {0.1, 0.2, 0.4});
  const auto allocation =
      KktWaterFillingSolver()
          .Solve(MakePerceivedProblem(elements, 3.0, false))
          .value();
  EXPECT_LT(allocation.frequencies[0], allocation.frequencies[1]);
  EXPECT_LT(allocation.frequencies[1], allocation.frequencies[2]);
}

TEST(Fig1Integration, VolatileUnpopularElementsGetNothing) {
  // "an element with lambda large does not get any bandwidth when p small;
  // it requires significant bandwidth as p grows."
  const ElementSet elements =
      MakeElementSet({8.0, 8.0, 0.5, 0.5}, {0.05, 0.45, 0.05, 0.45});
  const auto allocation =
      KktWaterFillingSolver()
          .Solve(MakePerceivedProblem(elements, 2.0, false))
          .value();
  EXPECT_DOUBLE_EQ(allocation.frequencies[0], 0.0);  // Volatile + unpopular.
  EXPECT_GT(allocation.frequencies[1], 0.4);         // Volatile + popular.
}

// ---- Figure 3: PF vs GF across skew and alignment ----
class Fig3Integration : public ::testing::TestWithParam<Alignment> {};

TEST_P(Fig3Integration, PfGapGrowsWithSkew) {
  double prev_gap = -1e-9;
  for (double theta : {0.0, 0.8, 1.6}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = 250;
    spec.syncs_per_period = 125.0;
    spec.theta = theta;
    spec.alignment = GetParam();
    const ElementSet elements = GenerateCatalog(spec).value();
    PlannerOptions gf;
    gf.technique = Technique::kGeneral;
    const double gap = PlanPf(elements, 125.0, {}) -
                       PlanPf(elements, 125.0, gf);
    EXPECT_GE(gap, prev_gap - 0.02) << "theta=" << theta;
    if (theta == 0.0) {
      EXPECT_NEAR(gap, 0.0, 1e-9);
    }
    prev_gap = gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, Fig3Integration,
                         ::testing::Values(Alignment::kAligned,
                                           Alignment::kReverse,
                                           Alignment::kShuffled));

TEST(Fig3Integration, AlignedGfCollapsesAtHighSkew) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.6;
  spec.alignment = Alignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();
  PlannerOptions gf;
  gf.technique = Technique::kGeneral;
  EXPECT_LT(PlanPf(elements, spec.syncs_per_period, gf), 0.05);
  EXPECT_GT(PlanPf(elements, spec.syncs_per_period, {}), 0.5);
}

// ---- Figure 5: partitioning quality ordering ----
TEST(Fig5Integration, LambdaPartitioningTrailsUnderShuffledChange) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = GenerateCatalog(spec).value();
  auto pf_for_key = [&](PartitionKey key) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = key;
    options.num_partitions = 50;
    return PlanPf(elements, spec.syncs_per_period, options);
  };
  const double pf_part = pf_for_key(PartitionKey::kPerceivedFreshness);
  const double lambda_part = pf_for_key(PartitionKey::kChangeRate);
  EXPECT_GT(pf_part, lambda_part + 0.05);
}

TEST(Fig5Integration, TechniquesNearlyIdenticalUnderAlignedCase) {
  // "there is little difference between the techniques in Figures 5(b) and
  // 5(c)".
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kAligned;
  const ElementSet elements = GenerateCatalog(spec).value();
  std::vector<double> results;
  for (PartitionKey key :
       {PartitionKey::kPerceivedFreshness, PartitionKey::kAccessProb,
        PartitionKey::kChangeRate, PartitionKey::kProbOverLambda}) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = key;
    options.num_partitions = 50;
    results.push_back(PlanPf(elements, spec.syncs_per_period, options));
  }
  for (double r : results) EXPECT_NEAR(r, results[0], 0.02);
}

// ---- Figure 7: scalable case sanity (downscaled) ----
TEST(Fig7Integration, PfPartitioningWinsOnBigStyleWorkload) {
  ExperimentSpec spec = ExperimentSpec::BigCase();
  spec.num_objects = 20000;
  spec.syncs_per_period = 10000.0;
  const ElementSet elements = GenerateCatalog(spec).value();
  auto pf_for_key = [&](PartitionKey key) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = key;
    options.num_partitions = 100;
    return PlanPf(elements, spec.syncs_per_period, options);
  };
  const double pf_part = pf_for_key(PartitionKey::kPerceivedFreshness);
  EXPECT_GT(pf_part, pf_for_key(PartitionKey::kChangeRate));
  EXPECT_GT(pf_part, pf_for_key(PartitionKey::kProbOverLambda));
}

// ---- Figures 8/9: k-means refinement ----
TEST(Fig8Integration, OneIterationDeliversMostOfTheGain) {
  ExperimentSpec spec = ExperimentSpec::BigCase();
  spec.num_objects = 20000;
  spec.syncs_per_period = 10000.0;
  const ElementSet elements = GenerateCatalog(spec).value();
  auto pf_at = [&](int iterations) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = PartitionKey::kPerceivedFreshness;
    options.num_partitions = 40;
    options.kmeans_iterations = iterations;
    return PlanPf(elements, spec.syncs_per_period, options);
  };
  const double pf0 = pf_at(0);
  const double pf1 = pf_at(1);
  const double pf10 = pf_at(10);
  EXPECT_GT(pf1, pf0);
  EXPECT_GE(pf10, pf1 - 1e-6);
  // The first iteration captures over half the total k-means gain.
  EXPECT_GT(pf1 - pf0, 0.5 * (pf10 - pf0));
}

// ---- Figure 10: object sizes ----
TEST(Fig10Integration, ParetoBuysMoreSyncsForSameBandwidth) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 0.0;
  spec.alignment = Alignment::kAligned;
  spec.size_alignment = SizeAlignment::kAligned;
  spec.size_model = SizeModel::kPareto;
  const ElementSet pareto = GenerateCatalog(spec).value();
  spec.size_model = SizeModel::kUniform;
  const ElementSet uniform = GenerateCatalog(spec).value();

  PlannerOptions aware;
  aware.size_aware = true;
  const FreshenPlan pareto_plan =
      FreshenPlanner(aware).Plan(pareto, 250.0).value();
  const FreshenPlan uniform_plan =
      FreshenPlanner(aware).Plan(uniform, 250.0).value();
  double pareto_syncs = 0.0;
  double uniform_syncs = 0.0;
  for (double f : pareto_plan.frequencies) pareto_syncs += f;
  for (double f : uniform_plan.frequencies) uniform_syncs += f;
  EXPECT_GT(pareto_syncs, uniform_syncs * 1.5);
  EXPECT_NEAR(pareto_plan.bandwidth_used, uniform_plan.bandwidth_used, 1e-6);
}

TEST(Fig10Integration, SyncResourcesGoToLowChangeRatePages) {
  // Uniform access: the classic [5] result that bandwidth concentrates on
  // the slowest-changing pages (and the fastest changers get zero).
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 0.0;
  spec.alignment = Alignment::kAligned;  // Element 0 changes fastest.
  const ElementSet elements = GenerateCatalog(spec).value();
  const FreshenPlan plan = FreshenPlanner({}).Plan(elements, 250.0).value();
  EXPECT_DOUBLE_EQ(plan.frequencies.front(), 0.0);
  EXPECT_GT(plan.frequencies[400], 0.0);
}

// ---- Figure 11: FBA vs FFA ----
TEST(Fig11Integration, FbaBeatsFfaAtEveryPartitionCount) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kAligned;
  spec.size_model = SizeModel::kPareto;
  spec.size_alignment = SizeAlignment::kReverse;
  const ElementSet elements = GenerateCatalog(spec).value();
  for (size_t k : {10u, 50u, 150u}) {
    PlannerOptions options;
    options.mode = PlanMode::kPartitioned;
    options.partition_key = PartitionKey::kPerceivedFreshnessSize;
    options.num_partitions = k;
    options.size_aware = true;
    options.allocation_policy = AllocationPolicy::kFixedBandwidth;
    const double fba = PlanPf(elements, spec.syncs_per_period, options);
    options.allocation_policy = AllocationPolicy::kFixedFrequency;
    const double ffa = PlanPf(elements, spec.syncs_per_period, options);
    EXPECT_GE(fba, ffa - 1e-9) << "k=" << k;
  }
}

// ---- End-to-end: plan -> simulate agrees with the analytic claim ----
TEST(EndToEndIntegration, SimulatorConfirmsPartitionedPlanQuality) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 120;
  spec.syncs_per_period = 60.0;
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = GenerateCatalog(spec).value();
  PlannerOptions options;
  options.mode = PlanMode::kPartitioned;
  options.num_partitions = 20;
  options.kmeans_iterations = 5;
  const FreshenPlan plan =
      FreshenPlanner(options).Plan(elements, 60.0).value();
  SimulationConfig config;
  config.horizon_periods = 300.0;
  config.accesses_per_period = 2000.0;
  config.warmup_periods = 20.0;
  const SimulationResult result =
      MirrorSimulator(elements, config).Run(plan.frequencies).value();
  EXPECT_NEAR(result.empirical_perceived_freshness, plan.perceived_freshness,
              0.02);
}

// ---- Weighted profiles (paper §2: "generals or higher paying customers") --
TEST(WeightedProfileIntegration, ImportantUsersSteerTheSchedule) {
  // Two user populations with opposite interests over a 4-element mirror.
  const auto traders = UserProfile::FromWeights({8.0, 2.0, 0.0, 0.0}).value();
  const auto archivists =
      UserProfile::FromWeights({0.0, 0.0, 2.0, 8.0}).value();
  const ElementSet base = MakeElementSet({3.0, 2.0, 2.0, 3.0},
                                         {0.25, 0.25, 0.25, 0.25});
  auto plan_for = [&](double trader_weight) {
    const auto master =
        AggregateProfiles({traders, archivists}, {trader_weight, 1.0})
            .value();
    ElementSet mirror = base;
    for (size_t i = 0; i < mirror.size(); ++i) {
      mirror[i].access_prob = master[i];
    }
    return FreshenPlanner({}).Plan(mirror, 3.0).value();
  };
  const FreshenPlan trader_heavy = plan_for(9.0);
  const FreshenPlan archivist_heavy = plan_for(1.0 / 9.0);
  // Element 0 (the traders' favourite) gets more bandwidth when traders
  // carry more weight, and vice versa for element 3.
  EXPECT_GT(trader_heavy.frequencies[0], archivist_heavy.frequencies[0]);
  EXPECT_LT(trader_heavy.frequencies[3], archivist_heavy.frequencies[3]);
}

}  // namespace
}  // namespace freshen
