// Torture test for the freshend snapshot-isolation machinery, built to run
// under ThreadSanitizer (ctest -L tsan in a FRESHEN_SANITIZE=thread build):
// reader threads hammer the store and assert that every pinned snapshot is
// internally consistent (per-shard digests recombine to the recorded
// combined digest) while the publisher churns — either a raw
// SnapshotBuilder/SnapshotStore loop or a full FreshendDaemon whose online
// loop replans and syncs through a fault-injecting executor.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/daemon.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "sync/executor.h"
#include "sync/source.h"
#include "workload/generator.h"

namespace freshen {
namespace serve {
namespace {

bool QuickMode() { return std::getenv("FRESHEN_QUICK") != nullptr; }

// Readers against a store whose publisher rewrites one element per
// publication: any torn snapshot (shards from two publications) flips the
// combined digest. Also cross-checks the value invariant: every element in
// one snapshot must carry the same generation stamp.
TEST(ServeTortureTest, RawStoreReadersNeverSeeTornSnapshots) {
  const size_t n = 20000;  // Several shards.
  const int kPublications = QuickMode() ? 200 : 1000;
  const int kReaders = 4;

  obs::MetricsRegistry registry;
  SnapshotStore store(&registry);
  SnapshotBuilder builder(n);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> torn_values{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        SnapshotRef ref = store.Acquire();
        if (!ref) continue;
        reads.fetch_add(1, std::memory_order_relaxed);
        // Full digest verification on a sample of reads, cheap value
        // invariant on all of them: frequency is the generation stamp and
        // must be identical across every element of one snapshot.
        const double stamp = ref->Lookup(0).frequency;
        for (size_t probe = 1; probe < n; probe += n / 7) {
          if (ref->Lookup(probe).frequency != stamp) {
            torn_values.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (reads.load(std::memory_order_relaxed) % 16 == 0 &&
            !ref->CheckConsistent()) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<double> columns(n, 0.0);
  for (int pub = 1; pub <= kPublications; ++pub) {
    const double stamp = static_cast<double>(pub);
    for (double& v : columns) v = stamp;
    builder.MarkAllDirty();
    auto snapshot = builder
                        .Publish(static_cast<uint64_t>(pub), 0, stamp,
                                 columns, columns, columns, columns, columns)
                        .value();
    store.Publish(std::move(snapshot));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(torn_values.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  store.Drain();
  EXPECT_EQ(store.stats().retired_pending, 0u);
}

// The full daemon under churn: online loop with a faulty executor replans
// and publishes while reader threads run every query and periodically
// recompute snapshot digests. Any torn read or data race is the failure.
TEST(ServeTortureTest, DaemonQueriesStayConsistentUnderChurn) {
  const bool quick = QuickMode();
  ExperimentSpec spec;
  spec.num_objects = quick ? 500 : 2000;
  spec.theta = 1.0;
  spec.seed = 4242;
  const ElementSet truth = GenerateCatalog(spec).value();

  obs::MetricsRegistry registry;
  sync::SimulatedSource::Options source_options;
  source_options.error_rate = 0.3;
  source_options.stall_rate = 0.05;
  source_options.seed = 777;
  sync::SimulatedSource faulty =
      sync::SimulatedSource::Create(source_options).value();
  sync::SyncExecutor::Options executor_options;
  executor_options.registry = &registry;
  executor_options.seed = 778;
  auto executor =
      sync::SyncExecutor::Create(&faulty, executor_options).value();

  FreshendDaemon::Options options;
  options.loop.accesses_per_period = quick ? 100.0 : 400.0;
  options.loop.seed = 11;
  options.loop.registry = &registry;
  options.loop.executor = executor.get();
  // Replan every period so full-rebuild publications interleave with
  // incremental ones.
  options.loop.controller.replan_every_periods = 1.0;
  options.max_periods = quick ? 6 : 12;
  options.registry = &registry;
  auto daemon =
      FreshendDaemon::Create(truth, 0.25 * spec.num_objects, options)
          .value();

  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> query_failures{0};
  std::atomic<uint64_t> epoch_regressions{0};
  std::atomic<uint64_t> reads{0};

  // Start the loop before the readers so running() is already true when
  // they enter their loops (they exit when the loop's period budget ends).
  ASSERT_TRUE(daemon->Start().ok());

  const int kReaders = 4;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      size_t id = static_cast<size_t>(r) * 13 % spec.num_objects;
      while (daemon->running()) {
        auto verdict = daemon->IsFresh(id);
        auto age = daemon->ExpectedAge(id);
        auto plan = daemon->GetPlan(id);
        if (!verdict.ok() || !age.ok() || !plan.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Published epochs must never run backwards for one reader.
          if (verdict->epoch < last_epoch) {
            epoch_regressions.fetch_add(1, std::memory_order_relaxed);
          }
          last_epoch = verdict->epoch;
          if (verdict->fresh_probability < 0.0 ||
              verdict->fresh_probability > 1.0 || age->expected_age < 0.0) {
            query_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        const uint64_t read_count =
            reads.fetch_add(1, std::memory_order_relaxed);
        if (read_count % 64 == 0) {
          SnapshotRef snapshot = daemon->AcquireSnapshot();
          if (snapshot && !snapshot->CheckConsistent()) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
        }
        id = (id + 1) % spec.num_objects;
      }
    });
  }

  while (daemon->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  daemon->Stop();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);

  SnapshotRef final_snapshot = daemon->AcquireSnapshot();
  ASSERT_TRUE(final_snapshot);
  EXPECT_TRUE(final_snapshot->CheckConsistent());
  EXPECT_EQ(final_snapshot->epoch(), daemon->Stats().store.publications);
}

}  // namespace
}  // namespace serve
}  // namespace freshen
