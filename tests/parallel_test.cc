// freshen::par — the deterministic parallel primitives. The load-bearing
// property is the determinism contract: shard boundaries depend only on n,
// and reductions are bit-identical at every thread count. These tests run
// under `ctest -L tsan` in a FRESHEN_SANITIZE=thread build.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace freshen::par {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// A term whose value is sensitive to summation order (wide dynamic range,
// alternating sign) — exactly the kind of sum where a nondeterministic
// reduction tree would show up as bit differences.
double WildTerm(size_t i) {
  const double x = static_cast<double>(i % 9973) + 1.0;
  const double sign = (i % 2 == 0) ? 1.0 : -1.0;
  return sign * std::exp(std::sin(x)) * std::pow(10.0, static_cast<double>(i % 7) - 3.0);
}

TEST(ShardPlanTest, CoversIndexSpaceContiguously) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, kShardGrain,
                   kShardGrain + 1, size_t{100000}, size_t{1000000}}) {
    const std::vector<Shard> plan = ShardPlan(n);
    ASSERT_EQ(plan.size(), ShardCount(n)) << "n=" << n;
    size_t expected_begin = 0;
    for (size_t s = 0; s < plan.size(); ++s) {
      EXPECT_EQ(plan[s].index, s) << "n=" << n;
      EXPECT_EQ(plan[s].begin, expected_begin) << "n=" << n;
      EXPECT_LT(plan[s].begin, plan[s].end) << "n=" << n;
      expected_begin = plan[s].end;
    }
    if (n > 0) {
      EXPECT_EQ(plan.back().end, n);
    }
  }
}

TEST(ShardPlanTest, ShardSizesDifferByAtMostOne) {
  for (size_t n : {size_t{10000}, size_t{123457}, size_t{1000003}}) {
    const std::vector<Shard> plan = ShardPlan(n);
    size_t min_size = n;
    size_t max_size = 0;
    for (const Shard& shard : plan) {
      min_size = std::min(min_size, shard.size());
      max_size = std::max(max_size, shard.size());
    }
    EXPECT_LE(max_size - min_size, 1u) << "n=" << n;
  }
}

TEST(ShardPlanTest, SmallProblemsAreSingleShard) {
  // n <= kShardGrain => one shard => reductions equal the sequential Kahan
  // sum exactly. This is what keeps small workloads byte-identical to the
  // pre-sharding implementation.
  EXPECT_EQ(ShardCount(1), 1u);
  EXPECT_EQ(ShardCount(kShardGrain), 1u);
  EXPECT_GT(ShardCount(2 * kShardGrain), 1u);
  EXPECT_EQ(ShardCount(0), 0u);
}

TEST(ShardPlanTest, ShardCountIsCapped) {
  EXPECT_EQ(ShardCount(size_t{1} << 40), kMaxShards);
}

TEST(ShardPlanForTest, HonorsGrainAndCap) {
  // The parameterized sizing behind the transcendental plans.
  EXPECT_EQ(ShardCountFor(0, 1024, 512), 0u);
  EXPECT_EQ(ShardCountFor(1, 1024, 512), 1u);
  EXPECT_EQ(ShardCountFor(1024, 1024, 512), 1u);
  EXPECT_EQ(ShardCountFor(2048, 1024, 512), 2u);
  EXPECT_EQ(ShardCountFor(size_t{1} << 40, 1024, 512), 512u);
  for (size_t n : {size_t{1}, size_t{1023}, size_t{4097}, size_t{100003},
                   size_t{2000000}}) {
    const std::vector<Shard> plan =
        ShardPlanFor(n, kTranscendentalGrain, kTranscendentalMaxShards);
    ASSERT_EQ(plan.size(), ShardCountFor(n, kTranscendentalGrain,
                                         kTranscendentalMaxShards));
    size_t expected_begin = 0;
    size_t previous_size = n + 1;
    for (size_t s = 0; s < plan.size(); ++s) {
      EXPECT_EQ(plan[s].index, s) << "n=" << n;
      EXPECT_EQ(plan[s].begin, expected_begin) << "n=" << n;
      EXPECT_LT(plan[s].begin, plan[s].end) << "n=" << n;
      // Even split, larger shards first, sizes differ by at most one.
      EXPECT_LE(plan[s].size(), previous_size) << "n=" << n;
      EXPECT_LE(plan.front().size() - plan[s].size(), 1u) << "n=" << n;
      previous_size = plan[s].size();
      expected_begin = plan[s].end;
    }
    EXPECT_EQ(plan.back().end, n);
  }
}

TEST(ShardPlanForTest, DefaultPlanIsTheDelegate) {
  // ShardPlan/ShardCount must stay exactly ShardPlanFor/ShardCountFor under
  // the default sizing — existing reductions' summation trees depend on it.
  for (size_t n : {size_t{0}, size_t{1}, kShardGrain, size_t{100000},
                   size_t{1} << 30}) {
    EXPECT_EQ(ShardCount(n), ShardCountFor(n, kShardGrain, kMaxShards));
    const std::vector<Shard> a = ShardPlan(n);
    const std::vector<Shard> b = ShardPlanFor(n, kShardGrain, kMaxShards);
    ASSERT_EQ(a.size(), b.size()) << "n=" << n;
    for (size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a[s].begin, b[s].begin);
      EXPECT_EQ(a[s].end, b[s].end);
    }
  }
}

TEST(ShardPlanForTest, TranscendentalSizingLiftsTheDefaultCap) {
  // Multi-million-element transcendental loops must fan out past the
  // memory-bound 64-shard cap (the old cap left 8 workers with ~32k-element
  // shards at N=2M and nothing to steal).
  EXPECT_GT(ShardCountFor(2000000, kTranscendentalGrain,
                          kTranscendentalMaxShards),
            kMaxShards);
  EXPECT_EQ(ShardCountFor(size_t{10000000}, kTranscendentalGrain,
                          kTranscendentalMaxShards),
            kTranscendentalMaxShards);
}

TEST(ShardPlanTest, ShardIndexOfMatchesPlan) {
  for (size_t n : {size_t{1}, size_t{4096}, size_t{4097}, size_t{50000},
                   size_t{300000}}) {
    const std::vector<Shard> plan = ShardPlan(n);
    for (const Shard& shard : plan) {
      // Boundaries are where off-by-one errors live; probe them plus an
      // interior point.
      for (size_t i : {shard.begin, shard.end - 1,
                       shard.begin + shard.size() / 2}) {
        EXPECT_EQ(ShardIndexOf(n, i), shard.index) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ExecutorTest, ThreadsResolve) {
  EXPECT_EQ(Executor(1).threads(), 1u);
  EXPECT_EQ(Executor(4).threads(), 4u);
  EXPECT_GE(Executor(0).threads(), 1u);  // 0 = hardware concurrency.
}

TEST(ExecutorTest, ForEachWritesEveryIndexOnce) {
  const size_t n = 100000;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<double> out(n, -1.0);
    Executor(threads).ForEach(n, [&](size_t i) {
      out[i] = static_cast<double>(i) * 0.5;
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], static_cast<double>(i) * 0.5)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ExecutorTest, ForShardsVisitsEveryShardExactlyOnce) {
  const size_t n = 200000;
  const std::vector<Shard> plan = ShardPlan(n);
  for (size_t threads : {1u, 3u, 8u}) {
    std::vector<std::atomic<int>> visits(plan.size());
    for (auto& v : visits) v.store(0);
    Executor(threads).ForShards(plan, [&](const Shard& shard) {
      visits[shard.index].fetch_add(1);
    });
    for (size_t s = 0; s < plan.size(); ++s) {
      EXPECT_EQ(visits[s].load(), 1) << "threads=" << threads << " s=" << s;
    }
  }
}

TEST(ExecutorTest, AddingThreadsNeverSerializesShards) {
  // Regression test for the silent-serialization failure mode: a pool that
  // degrades to inline execution (queue overflow, worker starvation) keeps
  // every value test green — the determinism contract makes values
  // thread-count-independent — while quietly running shards one after
  // another. Two shards rendezvous here: each notes how many shards are in
  // flight at once and waits to observe a peak of 2. Serialized execution
  // caps the peak at 1 and the test fails after the deadline.
  const std::vector<Shard> plan = {Shard{0, 0, 1}, Shard{1, 1, 2}};
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  Executor(2).ForShards(plan, [&](const Shard&) {
    const int now = in_flight.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (peak.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    in_flight.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2)
      << "two shards under a 2-thread executor never overlapped: the "
         "region ran serialized";
}

TEST(ExecutorTest, SumIsBitIdenticalAcrossThreadCounts) {
  const size_t n = 300000;
  const double reference = Executor(1).Sum(n, WildTerm);
  for (size_t threads : {2u, 4u, 8u}) {
    const double value = Executor(threads).Sum(n, WildTerm);
    EXPECT_TRUE(SameBits(value, reference))
        << "threads=" << threads << " value=" << value
        << " reference=" << reference;
  }
}

TEST(ExecutorTest, SingleShardSumEqualsSequentialKahan) {
  // The byte-compatibility guarantee for small problems.
  const size_t n = kShardGrain;
  KahanSum sequential;
  for (size_t i = 0; i < n; ++i) sequential.Add(WildTerm(i));
  for (size_t threads : {1u, 8u}) {
    const double value = Executor(threads).Sum(n, WildTerm);
    EXPECT_TRUE(SameBits(value, sequential.Total())) << "threads=" << threads;
  }
}

TEST(ExecutorTest, SumHandlesEmptyAndTinyRanges) {
  EXPECT_EQ(Executor(4).Sum(0, WildTerm), 0.0);
  EXPECT_TRUE(SameBits(Executor(4).Sum(1, WildTerm), WildTerm(0)));
}

TEST(ExecutorTest, MaxIsBitIdenticalAcrossThreadCounts) {
  const size_t n = 250000;
  auto term = [](size_t i) {
    return std::sin(static_cast<double>(i) * 0.001) *
           static_cast<double>(i % 101);
  };
  const double reference = Executor(1).Max(n, term, 0.0);
  double sequential = 0.0;
  for (size_t i = 0; i < n; ++i) sequential = std::max(sequential, term(i));
  EXPECT_EQ(reference, sequential);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_TRUE(SameBits(Executor(threads).Max(n, term, 0.0), reference))
        << "threads=" << threads;
  }
  EXPECT_EQ(Executor(4).Max(0, term, -3.5), -3.5);  // init for empty range.
}

TEST(TaskGroupTest, JoinWaitsForAllSpawnedWork) {
  std::atomic<int> done{0};
  {
    TaskGroup group;
    for (int i = 0; i < 200; ++i) {
      group.Spawn([&done] { done.fetch_add(1); });
    }
    group.Join();
    EXPECT_EQ(done.load(), 200);
  }
}

TEST(TaskGroupTest, DestructorJoins) {
  std::atomic<int> done{0};
  {
    TaskGroup group;
    for (int i = 0; i < 50; ++i) group.Spawn([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ParMetricsTest, RegionsAreCounted) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* pooled =
      registry.GetCounter("freshen_par_regions_total", {{"mode", "pooled"}});
  obs::Counter* inline_regions =
      registry.GetCounter("freshen_par_regions_total", {{"mode", "inline"}});
  const double pooled_before = pooled->value();
  const double inline_before = inline_regions->value();

  Executor(1).Sum(100000, WildTerm);  // 1 thread => inline region.
  EXPECT_GE(inline_regions->value(), inline_before + 1.0);

  Executor(4).Sum(100000, WildTerm);  // multi-shard, 4 threads => pooled.
  EXPECT_GE(pooled->value(), pooled_before + 1.0);
  const double efficiency =
      registry.GetGauge("freshen_par_last_region_efficiency")->value();
  EXPECT_GE(efficiency, 0.0);
  EXPECT_LE(efficiency, 1.0 + 1e-9);
  EXPECT_EQ(registry.GetGauge("freshen_par_last_region_threads")->value(),
            4.0);
}

}  // namespace
}  // namespace freshen::par
