// Tests for the bounded thread pool: execution, backpressure, Wait, and
// join-on-destruct. Runs under TSan via the `tsan` ctest label.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace freshen {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/256});
  std::atomic<int> executed{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&executed] { ++executed; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, SubmitFailsFastWhenQueueIsFull) {
  ThreadPool pool({/*num_threads=*/1, /*queue_capacity=*/2});
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  // Occupy the single worker so queued tasks cannot drain.
  ASSERT_TRUE(pool.TrySubmit([&] {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  // Fill the queue behind it; eventually TrySubmit must fail fast with
  // ResourceExhausted (the blocker may or may not have been popped yet, so
  // allow one extra slot).
  int accepted = 0;
  Status last = Status::OK();
  for (int i = 0; i < 4 && last.ok(); ++i) {
    last = pool.TrySubmit([] {});
    if (last.ok()) ++accepted;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_LE(accepted, 3);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool({/*num_threads=*/2, /*queue_capacity=*/128});
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&executed] { ++executed; }).ok());
    }
    // No Wait(): the destructor must finish the batch before joining.
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllLand) {
  ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/4096});
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < 100; ++i) {
        while (!pool.TrySubmit([&executed] { ++executed; }).ok()) {
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), 400);
}

TEST(ThreadPoolTest, ClampsDegenerateOptions) {
  ThreadPool pool({/*num_threads=*/0, /*queue_capacity=*/0});
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> executed{0};
  ASSERT_TRUE(pool.TrySubmit([&executed] { ++executed; }).ok());
  pool.Wait();
  EXPECT_EQ(executed.load(), 1);
}

}  // namespace
}  // namespace freshen
