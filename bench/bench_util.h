// Shared helpers for the figure/table benches: catalog construction from
// specs, planner shorthands, and uniform series printing.
#ifndef FRESHEN_BENCH_BENCH_UTIL_H_
#define FRESHEN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/planner.h"
#include "model/element.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen::bench {

/// True when the FRESHEN_QUICK environment variable is set (non-empty, not
/// "0"): big-case benches then shrink their workloads ~50x so the whole
/// suite runs in seconds. Full-size runs are the default.
inline bool QuickMode() {
  const char* env = std::getenv("FRESHEN_QUICK");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == 0);
}

/// Table 3's big case, shrunk when QuickMode().
inline ExperimentSpec BigCaseSpec() {
  ExperimentSpec spec = ExperimentSpec::BigCase();
  if (QuickMode()) {
    spec.num_objects /= 50;       // 10,000 objects.
    spec.syncs_per_period /= 50;  // Bandwidth scales with N.
  }
  return spec;
}

/// Builds the catalog for a spec, aborting on invalid specs (benches use
/// hard-coded known-good parameters).
inline ElementSet MustCatalog(const ExperimentSpec& spec) {
  auto catalog = GenerateCatalog(spec);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog generation failed: %s\n",
                 catalog.status().ToString().c_str());
    std::abort();
  }
  return std::move(catalog).value();
}

/// Plans and returns the plan, aborting on failure.
inline FreshenPlan MustPlan(const PlannerOptions& options,
                            const ElementSet& elements, double bandwidth) {
  auto plan = FreshenPlanner(options).Plan(elements, bandwidth);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }
  return std::move(plan).value();
}

/// Perceived freshness of the optimal (exact) PF plan — the "best_case"
/// reference line in Figures 5 and 7.
inline double BestCasePf(const ElementSet& elements, double bandwidth) {
  PlannerOptions options;
  options.technique = Technique::kPerceived;
  options.mode = PlanMode::kExact;
  return MustPlan(options, elements, bandwidth).perceived_freshness;
}

/// The four §3.1 partitioning techniques in the order the figures list them.
inline const std::vector<PartitionKey>& FigurePartitionKeys() {
  static const std::vector<PartitionKey> keys = {
      PartitionKey::kPerceivedFreshness,
      PartitionKey::kAccessProb,
      PartitionKey::kChangeRate,
      PartitionKey::kProbOverLambda,
  };
  return keys;
}

}  // namespace freshen::bench

#endif  // FRESHEN_BENCH_BENCH_UTIL_H_
