// Reproduces Figure 7: the Big Case — partitioning techniques on 500,000
// objects (Table 3 setup), where solving the full problem with a generic
// NLP package is infeasible ("the package runs for days"). Reports
// perceived freshness and wall-clock per configuration.
//
// Expected shape, per the paper: PF_PARTITIONING is the clear winner, and
// beyond ~100 partitions extra partitions buy little.
//
// Set FRESHEN_QUICK=1 to shrink the workload ~50x.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

int main() {
  using namespace freshen;
  const ExperimentSpec spec = bench::BigCaseSpec();
  std::printf("== Figure 7: the Big Case ==\n");
  std::printf(
      "Table 3 setup: NumObjects=%zu NumUpdatesPerPeriod=%.0f "
      "NumSyncsPerPeriod=%.0f Theta=1.0 UpdateStdDev=2.0%s\n\n",
      spec.num_objects,
      spec.mean_updates_per_object * static_cast<double>(spec.num_objects),
      spec.syncs_per_period, bench::QuickMode() ? "  [FRESHEN_QUICK]" : "");

  const ElementSet elements = bench::MustCatalog(spec);

  TableWriter table({"num_partitions", "PF_PARTITIONING", "P_PARTITIONING",
                     "LAMBDA_PARTITIONING", "P_OVER_LAMBDA_PARTITIONING",
                     "PF wall-clock (s)"});
  for (size_t k = 20; k <= 200; k += 20) {
    std::vector<std::string> row = {StrFormat("%zu", k)};
    double pf_seconds = 0.0;
    for (PartitionKey key : bench::FigurePartitionKeys()) {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = key;
      options.num_partitions = k;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
      if (key == PartitionKey::kPerceivedFreshness) {
        pf_seconds = plan.timings.total_seconds;
      }
    }
    row.push_back(FormatDouble(pf_seconds, 3));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "paper shape: PF_PARTITIONING dominates at every partition count and "
      "solutions using\nmore than ~100 partitions do not appreciably improve "
      "the answer.\n");
  return 0;
}
