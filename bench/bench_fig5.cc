// Reproduces Figure 5 (a-c): quality of the four partitioning techniques as
// the number of partitions grows, against the optimal "best_case" line, for
// the three alignments (Table 2 setup; theta = 1.0, consistent with the
// big-case Table 3 and unstated in the paper — see EXPERIMENTS.md).
//
// Expected shape, per the paper: all techniques approach best_case as
// partitions increase; under shuffled-change, PF-, P- and P/lambda-
// partitioning converge quickly while LAMBDA-partitioning lags; under
// aligned/reverse all four are nearly identical.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

int main() {
  using namespace freshen;
  std::printf(
      "== Figure 5: partitioning techniques vs number of partitions ==\n");
  std::printf("Table 2 setup, theta = 1.0\n\n");

  const std::vector<size_t> partition_counts = {1,   5,   10,  25,  50, 100,
                                                150, 200, 300, 400, 500};
  for (Alignment alignment :
       {Alignment::kShuffled, Alignment::kAligned, Alignment::kReverse}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.theta = 1.0;
    spec.alignment = alignment;
    const ElementSet elements = bench::MustCatalog(spec);
    const double best_case =
        bench::BestCasePf(elements, spec.syncs_per_period);

    TableWriter table({"num_partitions", "PF_PARTITIONING", "P_PARTITIONING",
                       "LAMBDA_PARTITIONING", "P_OVER_LAMBDA_PARTITIONING",
                       "best_case"});
    for (size_t k : partition_counts) {
      std::vector<std::string> row = {StrFormat("%zu", k)};
      for (PartitionKey key : bench::FigurePartitionKeys()) {
        PlannerOptions options;
        options.mode = PlanMode::kPartitioned;
        options.partition_key = key;
        options.num_partitions = k;
        const FreshenPlan plan =
            bench::MustPlan(options, elements, spec.syncs_per_period);
        row.push_back(FormatDouble(plan.perceived_freshness, 4));
      }
      row.push_back(FormatDouble(best_case, 4));
      table.AddRow(row);
    }
    std::printf("-- Figure 5 (%s) --\n%s\n", ToString(alignment).c_str(),
                table.ToText().c_str());
  }
  std::printf(
      "paper shape: every technique climbs toward best_case with more "
      "partitions; in the\nshuffled-change panel LAMBDA_PARTITIONING "
      "converges slowest, the other three fastest.\n");
  return 0;
}
