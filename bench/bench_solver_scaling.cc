// Ablation A1 — the paper's §3 scalability motivation, measured. Part 1
// compares wall-clock time and quality of:
//   * GENERIC_NLP  : black-box projected gradient with finite differences
//                    (O(N^2) per iteration), standing in for the IMSL
//                    package ("for hundreds of thousands of items, the
//                    package runs for days without terminating");
//   * EXACT_KKT    : our water-filling solver (near-linear);
//   * PARTITION+K  : PF-partitioning to 100 partitions + exact solve.
// The generic solver gets a fixed time budget per size; when it fails to
// converge inside it, the row is marked (budget), echoing the paper's
// observation.
//
// Part 2 benchmarks the scan-breakpoint KKT solver at catalog scale
// (N up to 10M) over the freshen::par thread knob. Methodology, learned
// the hard way from this bench's own earlier pathologies:
//   * one UNTIMED warm-up solve per problem before any timed run (the old
//     bench charged first-touch page faults and pool spin-up to the
//     1-thread row, inflating every speedup);
//   * the problem instance is built once and PINNED across all thread
//     counts and both search modes (no per-row regeneration);
//   * every (n, threads, mode) cell reports the MEDIAN of 3 solves (the
//     old single-shot numbers swung 2x run-to-run under CPU contention).
// Hard gates, enforced by exit code (the quick-mode run is wired into
// ctest as bench_solver_scaling_smoke):
//   * every thread count must reproduce the 1-thread allocation bits;
//   * the scan-breakpoint mode must reproduce the bisection-oracle
//     allocation byte-for-byte;
//   * with >= 8 hardware threads, the 8-thread solve must be >= 2x the
//     1-thread solve. On narrower machines the gate cannot be meaningful
//     (oversubscribed "threads" share cores and measure scheduler noise,
//     which is exactly how the old bench produced 0.99x-at-4-threads
//     rows), so it is skipped with an explicit note.
// All rows land in BENCH_solver_scaling.json with the machine's hardware
// concurrency recorded, so the perf trajectory across PRs stays honest.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "opt/generic_nlp.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/water_filling.h"
#include "sim/simulator.h"

namespace {

using namespace freshen;

struct ScalingRow {
  std::string component;  // "kkt_solver" | "simulator".
  std::string mode;       // "scan" | "oracle" | "-".
  size_t n = 0;
  size_t threads = 0;
  double seconds = 0.0;       // Median of 3.
  double speedup_vs_1t = 0.0;
  bool bit_identical = true;      // vs the 1-thread run, same mode.
  bool oracle_byte_match = true;  // scan allocation vs oracle allocation.
};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameAllocation(const Allocation& a, const Allocation& b) {
  if (a.frequencies.size() != b.frequencies.size()) return false;
  if (!a.frequencies.empty() &&
      std::memcmp(a.frequencies.data(), b.frequencies.data(),
                  a.frequencies.size() * sizeof(double)) != 0) {
    return false;
  }
  return SameBits(a.multiplier, b.multiplier) &&
         SameBits(a.objective, b.objective) &&
         SameBits(a.bandwidth_used, b.bandwidth_used);
}

bool SameResult(const SimulationResult& a, const SimulationResult& b) {
  return SameBits(a.empirical_perceived_freshness,
                  b.empirical_perceived_freshness) &&
         SameBits(a.empirical_general_freshness,
                  b.empirical_general_freshness) &&
         SameBits(a.empirical_perceived_age, b.empirical_perceived_age) &&
         SameBits(a.analytic_perceived_freshness,
                  b.analytic_perceived_freshness) &&
         SameBits(a.analytic_general_freshness,
                  b.analytic_general_freshness) &&
         a.num_accesses == b.num_accesses && a.num_updates == b.num_updates &&
         a.num_syncs == b.num_syncs;
}

// Zipf-flavored synthetic instance built directly as a CoreProblem: the
// 10M row would spend longer materializing an ElementSet catalog than
// solving, and Part 2 only needs the solver inputs.
CoreProblem SyntheticProblem(size_t n) {
  std::mt19937_64 rng(0x5CA1AB1Eu + n);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  CoreProblem problem;
  problem.weights.resize(n);
  problem.change_rates.resize(n);
  problem.costs.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    // Heavy-tailed weights, log-uniform change rates over 4 decades.
    problem.weights[i] = 1.0 / std::pow(1.0 + u(rng) * 999.0, 0.8);
    problem.change_rates[i] = std::exp2(-6.0 + 12.0 * u(rng));
  }
  problem.bandwidth = 0.5 * static_cast<double>(n);
  return problem;
}

// Median-of-3 timed solves. The allocation from the last solve is returned
// via *out (all three are byte-identical by the determinism contract — the
// bench's bit_identical columns prove it, so which one we keep is moot).
double MedianSolveSeconds(const KktWaterFillingSolver& solver,
                          const CoreProblem& problem, Allocation* out) {
  double seconds[3];
  for (double& s : seconds) {
    WallTimer timer;
    *out = solver.Solve(problem).value();
    s = timer.ElapsedSeconds();
  }
  std::sort(seconds, seconds + 3);
  return seconds[1];
}

void WriteJson(const std::vector<ScalingRow>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file, "{\n  \"hardware_threads\": %zu,\n  \"rows\": [\n",
               par::HardwareThreads());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::fprintf(file,
                 "    {\"component\": \"%s\", \"mode\": \"%s\", \"n\": %zu, "
                 "\"threads\": %zu, \"seconds\": %.6f, "
                 "\"speedup_vs_1t\": %.3f, \"bit_identical\": %s, "
                 "\"oracle_byte_match\": %s}%s\n",
                 row.component.c_str(), row.mode.c_str(), row.n, row.threads,
                 row.seconds, row.speedup_vs_1t,
                 row.bit_identical ? "true" : "false",
                 row.oracle_byte_match ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main() {
  std::printf("== Ablation A1: solver scalability ==\n");
  const double budget_seconds = bench::QuickMode() ? 0.5 : 5.0;
  std::printf(
      "Table 2 parameters scaled to each N; generic-NLP time budget %.1f s "
      "per size\n\n",
      budget_seconds);

  TableWriter table({"N", "GENERIC_NLP s", "GENERIC_NLP pf", "EXACT_KKT s",
                     "EXACT_KKT pf", "PARTITION+KKT s", "PARTITION+KKT pf"});
  const std::vector<size_t> table_sizes =
      bench::QuickMode()
          ? std::vector<size_t>{100, 500, 2000, 10000, 50000}
          : std::vector<size_t>{100, 500, 2000, 10000, 100000, 500000};
  for (size_t n : table_sizes) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);

    std::vector<std::string> row = {StrFormat("%zu", n)};

    // Generic NLP: only attempt sizes where one gradient evaluation is even
    // plausible inside the budget (the point of the ablation).
    if (n <= 10000) {
      GenericNlpSolver::Options options;
      options.time_budget_seconds = budget_seconds;
      options.max_iterations = 1000000;
      const Allocation allocation =
          GenericNlpSolver(options).Solve(problem).value();
      row.push_back(StrFormat("%.3f%s", allocation.solve_seconds,
                              allocation.converged ? "" : " (budget)"));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    } else {
      row.push_back("skipped (days)");
      row.push_back("-");
    }

    {
      const Allocation allocation =
          KktWaterFillingSolver().Solve(problem).value();
      row.push_back(FormatDouble(allocation.solve_seconds, 3));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    }
    {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = PartitionKey::kPerceivedFreshness;
      options.num_partitions = 100;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.timings.total_seconds, 3));
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the generic black-box solver stops converging within budget "
      "well before\nN = 10^4 (the paper's IMSL observation); partitioning "
      "keeps solve cost flat at any N\nwith a small quality gap; the exact "
      "KKT solver shows the problem itself is easy once\nits separable "
      "structure is exploited.\n\n");

  // ---- Part 2: scan-breakpoint solver, thread + mode sweep -------------
  const size_t hardware_threads = par::HardwareThreads();
  std::printf("== Parallel scaling (scan-breakpoint KKT solver) ==\n");
  std::printf(
      "median of 3 solves, warmed up, pinned instances; hardware threads: "
      "%zu.\nEvery row must reproduce the 1-thread bits; scan must "
      "byte-match the bisection\noracle.\n\n",
      hardware_threads);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8, 16};
  std::vector<ScalingRow> rows;
  bool gate_failed = false;

  TableWriter solver_table({"component", "mode", "N", "threads", "seconds",
                            "speedup vs 1t", "bit-identical",
                            "oracle-match"});
  const std::vector<size_t> solver_sizes =
      bench::QuickMode()
          ? std::vector<size_t>{200000}
          : std::vector<size_t>{1000000, 2000000, 10000000};
  for (size_t n : solver_sizes) {
    const CoreProblem problem = SyntheticProblem(n);

    // Warm-up (untimed): faults in the problem arrays, spins up the shared
    // pool, and exercises both modes' code paths once.
    Allocation scan_baseline;
    {
      KktWaterFillingSolver::Options options;
      options.threads = hardware_threads;
      KktWaterFillingSolver(options).Solve(problem).value();
    }

    // Oracle reference: 1-thread bisection, the structurally different
    // probe path the scan must byte-match.
    Allocation oracle_allocation;
    {
      KktWaterFillingSolver::Options options;
      options.threads = 1;
      options.search = MultiplierSearch::kBisectionOracle;
      const double seconds = MedianSolveSeconds(
          KktWaterFillingSolver(options), problem, &oracle_allocation);
      solver_table.AddRow({"kkt_solver", "oracle", StrFormat("%zu", n), "1",
                           FormatDouble(seconds, 3), "-", "yes", "-"});
      rows.push_back({"kkt_solver", "oracle", n, 1, seconds, 0.0, true,
                      true});
    }

    double baseline_seconds = 0.0;
    for (size_t threads : thread_counts) {
      KktWaterFillingSolver::Options options;
      options.threads = threads;
      options.search = MultiplierSearch::kScanBreakpoint;
      Allocation allocation;
      const double seconds = MedianSolveSeconds(KktWaterFillingSolver(options),
                                                problem, &allocation);
      const bool identical =
          threads == 1 || SameAllocation(allocation, scan_baseline);
      const bool oracle_match = SameAllocation(allocation, oracle_allocation);
      if (threads == 1) {
        scan_baseline = allocation;
        baseline_seconds = seconds;
      }
      const double speedup =
          seconds > 0.0 ? baseline_seconds / seconds : 0.0;
      solver_table.AddRow(
          {"kkt_solver", "scan", StrFormat("%zu", n),
           StrFormat("%zu", threads), FormatDouble(seconds, 3),
           StrFormat("%.2fx", speedup), identical ? "yes" : "NO",
           oracle_match ? "yes" : "NO"});
      rows.push_back({"kkt_solver", "scan", n, threads, seconds, speedup,
                      identical, oracle_match});
      if (!oracle_match) {
        std::fprintf(stderr,
                     "FAIL: scan != oracle allocation at n=%zu threads=%zu\n",
                     n, threads);
        gate_failed = true;
      }
      if (threads == 8 && hardware_threads >= 8 && speedup < 2.0) {
        std::fprintf(
            stderr,
            "FAIL: 8-thread speedup %.2fx < 2x at n=%zu on a %zu-thread "
            "machine\n",
            speedup, n, hardware_threads);
        gate_failed = true;
      }
    }
  }

  const std::vector<size_t> sim_sizes = bench::QuickMode()
                                            ? std::vector<size_t>{5000}
                                            : std::vector<size_t>{1000000};
  for (size_t n : sim_sizes) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);
    const Allocation allocation =
        KktWaterFillingSolver().Solve(problem).value();

    SimulationConfig config;
    config.horizon_periods = 4.0;
    config.warmup_periods = 1.0;
    config.accesses_per_period = 0.1 * static_cast<double>(n);
    config.seed = 7;

    // Warm-up (untimed).
    {
      config.threads = hardware_threads;
      MirrorSimulator simulator(elements, config);
      simulator.Run(allocation.frequencies).value();
    }

    SimulationResult baseline;
    double baseline_seconds = 0.0;
    for (size_t threads : thread_counts) {
      config.threads = threads;
      MirrorSimulator simulator(elements, config);
      double seconds[3];
      SimulationResult result;
      for (double& s : seconds) {
        WallTimer timer;
        result = simulator.Run(allocation.frequencies).value();
        s = timer.ElapsedSeconds();
      }
      std::sort(seconds, seconds + 3);
      const double median = seconds[1];
      const bool identical = threads == 1 || SameResult(result, baseline);
      if (threads == 1) {
        baseline = result;
        baseline_seconds = median;
      }
      const double speedup = median > 0.0 ? baseline_seconds / median : 0.0;
      solver_table.AddRow({"simulator", "-", StrFormat("%zu", n),
                           StrFormat("%zu", threads), FormatDouble(median, 3),
                           StrFormat("%.2fx", speedup),
                           identical ? "yes" : "NO", "-"});
      rows.push_back(
          {"simulator", "-", n, threads, median, speedup, identical, true});
    }
  }
  std::printf("%s\n", solver_table.ToText().c_str());
  if (hardware_threads >= 8) {
    std::printf(
        "reading: shard boundaries depend only on N, so the thread column "
        "is pure execution\npolicy -- a bit-identical=NO row is a "
        "determinism bug, not noise. The 8-thread\nrows are gated at >= "
        "2x.\n");
  } else {
    std::printf(
        "reading: this machine exposes %zu hardware thread(s), so "
        "multi-thread rows\noversubscribe cores and measure scheduler "
        "fairness, not scaling -- the >= 2x\n8-thread gate is skipped "
        "(it is enforced on machines with >= 8 threads). The\n"
        "bit-identical and oracle-match columns are hardware-independent "
        "and still gate.\n",
        hardware_threads);
  }

  bool all_identical = true;
  for (const ScalingRow& row : rows) all_identical &= row.bit_identical;
  WriteJson(rows, "BENCH_solver_scaling.json");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: some thread counts broke the determinism contract\n");
    return 1;
  }
  if (gate_failed) return 1;
  return 0;
}
