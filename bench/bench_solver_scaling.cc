// Ablation A1 — the paper's §3 scalability motivation, measured. Compares
// wall-clock time and quality of:
//   * GENERIC_NLP  : black-box projected gradient with finite differences
//                    (O(N^2) per iteration), standing in for the IMSL
//                    package ("for hundreds of thousands of items, the
//                    package runs for days without terminating");
//   * EXACT_KKT    : our water-filling solver (near-linear);
//   * PARTITION+K  : PF-partitioning to 100 partitions + exact solve.
// The generic solver gets a fixed time budget per size; when it fails to
// converge inside it, the row is marked (budget), echoing the paper's
// observation.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "opt/generic_nlp.h"
#include "opt/problem.h"
#include "opt/water_filling.h"

int main() {
  using namespace freshen;
  std::printf("== Ablation A1: solver scalability ==\n");
  const double budget_seconds = bench::QuickMode() ? 0.5 : 5.0;
  std::printf(
      "Table 2 parameters scaled to each N; generic-NLP time budget %.1f s "
      "per size\n\n",
      budget_seconds);

  TableWriter table({"N", "GENERIC_NLP s", "GENERIC_NLP pf", "EXACT_KKT s",
                     "EXACT_KKT pf", "PARTITION+KKT s", "PARTITION+KKT pf"});
  for (size_t n : {100u, 500u, 2000u, 10000u, 100000u, 500000u}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);

    std::vector<std::string> row = {StrFormat("%zu", n)};

    // Generic NLP: only attempt sizes where one gradient evaluation is even
    // plausible inside the budget (the point of the ablation).
    if (n <= 10000) {
      GenericNlpSolver::Options options;
      options.time_budget_seconds = budget_seconds;
      options.max_iterations = 1000000;
      const Allocation allocation =
          GenericNlpSolver(options).Solve(problem).value();
      row.push_back(StrFormat("%.3f%s", allocation.solve_seconds,
                              allocation.converged ? "" : " (budget)"));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    } else {
      row.push_back("skipped (days)");
      row.push_back("-");
    }

    {
      const Allocation allocation =
          KktWaterFillingSolver().Solve(problem).value();
      row.push_back(FormatDouble(allocation.solve_seconds, 3));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    }
    {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = PartitionKey::kPerceivedFreshness;
      options.num_partitions = 100;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.timings.total_seconds, 3));
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the generic black-box solver stops converging within budget "
      "well before\nN = 10^4 (the paper's IMSL observation); partitioning "
      "keeps solve cost flat at any N\nwith a small quality gap; the exact "
      "KKT solver shows the problem itself is easy once\nits separable "
      "structure is exploited.\n");
  return 0;
}
