// Ablation A1 — the paper's §3 scalability motivation, measured. Part 1
// compares wall-clock time and quality of:
//   * GENERIC_NLP  : black-box projected gradient with finite differences
//                    (O(N^2) per iteration), standing in for the IMSL
//                    package ("for hundreds of thousands of items, the
//                    package runs for days without terminating");
//   * EXACT_KKT    : our water-filling solver (near-linear);
//   * PARTITION+K  : PF-partitioning to 100 partitions + exact solve.
// The generic solver gets a fixed time budget per size; when it fails to
// converge inside it, the row is marked (budget), echoing the paper's
// observation.
//
// Part 2 sweeps the freshen::par thread knob over the KKT solver and the
// sharded simulator at catalog scale (N up to 2M), asserting the
// determinism contract as it goes: every thread count must produce a
// byte-identical allocation / SimulationResult. All rows are also written
// to BENCH_solver_scaling.json so future PRs have a perf trajectory
// baseline.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "opt/generic_nlp.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "sim/simulator.h"

namespace {

using namespace freshen;

struct ScalingRow {
  std::string component;  // "kkt_solver" | "simulator".
  size_t n = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double speedup_vs_1t = 0.0;
  bool bit_identical = true;  // vs the 1-thread run of the same workload.
};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameAllocation(const Allocation& a, const Allocation& b) {
  if (a.frequencies.size() != b.frequencies.size()) return false;
  if (!a.frequencies.empty() &&
      std::memcmp(a.frequencies.data(), b.frequencies.data(),
                  a.frequencies.size() * sizeof(double)) != 0) {
    return false;
  }
  return SameBits(a.multiplier, b.multiplier) &&
         SameBits(a.objective, b.objective) &&
         SameBits(a.bandwidth_used, b.bandwidth_used);
}

bool SameResult(const SimulationResult& a, const SimulationResult& b) {
  return SameBits(a.empirical_perceived_freshness,
                  b.empirical_perceived_freshness) &&
         SameBits(a.empirical_general_freshness,
                  b.empirical_general_freshness) &&
         SameBits(a.empirical_perceived_age, b.empirical_perceived_age) &&
         SameBits(a.analytic_perceived_freshness,
                  b.analytic_perceived_freshness) &&
         SameBits(a.analytic_general_freshness,
                  b.analytic_general_freshness) &&
         a.num_accesses == b.num_accesses && a.num_updates == b.num_updates &&
         a.num_syncs == b.num_syncs;
}

void WriteJson(const std::vector<ScalingRow>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::fprintf(file,
                 "  {\"component\": \"%s\", \"n\": %zu, \"threads\": %zu, "
                 "\"seconds\": %.6f, \"speedup_vs_1t\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 row.component.c_str(), row.n, row.threads, row.seconds,
                 row.speedup_vs_1t, row.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "]\n");
  std::fclose(file);
  std::printf("wrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main() {
  std::printf("== Ablation A1: solver scalability ==\n");
  const double budget_seconds = bench::QuickMode() ? 0.5 : 5.0;
  std::printf(
      "Table 2 parameters scaled to each N; generic-NLP time budget %.1f s "
      "per size\n\n",
      budget_seconds);

  TableWriter table({"N", "GENERIC_NLP s", "GENERIC_NLP pf", "EXACT_KKT s",
                     "EXACT_KKT pf", "PARTITION+KKT s", "PARTITION+KKT pf"});
  const std::vector<size_t> table_sizes =
      bench::QuickMode()
          ? std::vector<size_t>{100, 500, 2000, 10000, 50000}
          : std::vector<size_t>{100, 500, 2000, 10000, 100000, 500000};
  for (size_t n : table_sizes) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);

    std::vector<std::string> row = {StrFormat("%zu", n)};

    // Generic NLP: only attempt sizes where one gradient evaluation is even
    // plausible inside the budget (the point of the ablation).
    if (n <= 10000) {
      GenericNlpSolver::Options options;
      options.time_budget_seconds = budget_seconds;
      options.max_iterations = 1000000;
      const Allocation allocation =
          GenericNlpSolver(options).Solve(problem).value();
      row.push_back(StrFormat("%.3f%s", allocation.solve_seconds,
                              allocation.converged ? "" : " (budget)"));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    } else {
      row.push_back("skipped (days)");
      row.push_back("-");
    }

    {
      const Allocation allocation =
          KktWaterFillingSolver().Solve(problem).value();
      row.push_back(FormatDouble(allocation.solve_seconds, 3));
      row.push_back(FormatDouble(
          PerceivedFreshness(elements, allocation.frequencies), 4));
    }
    {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = PartitionKey::kPerceivedFreshness;
      options.num_partitions = 100;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.timings.total_seconds, 3));
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the generic black-box solver stops converging within budget "
      "well before\nN = 10^4 (the paper's IMSL observation); partitioning "
      "keeps solve cost flat at any N\nwith a small quality gap; the exact "
      "KKT solver shows the problem itself is easy once\nits separable "
      "structure is exploited.\n\n");

  // ---- Part 2: freshen::par thread sweep -------------------------------
  std::printf("== Parallel scaling (freshen::par) ==\n");
  std::printf(
      "fixed shard plan, per-shard Kahan accumulators merged in shard order "
      "-- every\nthread count must reproduce the 1-thread bits exactly.\n\n");
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::vector<ScalingRow> rows;

  TableWriter solver_table({"component", "N", "threads", "seconds",
                            "speedup vs 1t", "bit-identical"});
  const std::vector<size_t> solver_sizes =
      bench::QuickMode() ? std::vector<size_t>{20000}
                         : std::vector<size_t>{1000000, 2000000};
  for (size_t n : solver_sizes) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);

    Allocation baseline;
    double baseline_seconds = 0.0;
    for (size_t threads : thread_counts) {
      KktWaterFillingSolver::Options options;
      options.threads = threads;
      const Allocation allocation =
          KktWaterFillingSolver(options).Solve(problem).value();
      const bool identical =
          threads == 1 || SameAllocation(allocation, baseline);
      if (threads == 1) {
        baseline = allocation;
        baseline_seconds = allocation.solve_seconds;
      }
      const double speedup = allocation.solve_seconds > 0.0
                                 ? baseline_seconds / allocation.solve_seconds
                                 : 0.0;
      solver_table.AddRow({"kkt_solver", StrFormat("%zu", n),
                           StrFormat("%zu", threads),
                           FormatDouble(allocation.solve_seconds, 3),
                           StrFormat("%.2fx", speedup),
                           identical ? "yes" : "NO"});
      rows.push_back({"kkt_solver", n, threads, allocation.solve_seconds,
                      speedup, identical});
    }
  }

  const std::vector<size_t> sim_sizes = bench::QuickMode()
                                            ? std::vector<size_t>{5000}
                                            : std::vector<size_t>{1000000};
  for (size_t n : sim_sizes) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = n;
    spec.syncs_per_period = 0.5 * static_cast<double>(n);
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);
    const Allocation allocation =
        KktWaterFillingSolver().Solve(problem).value();

    SimulationConfig config;
    config.horizon_periods = 4.0;
    config.warmup_periods = 1.0;
    config.accesses_per_period = 0.1 * static_cast<double>(n);
    config.seed = 7;

    SimulationResult baseline;
    double baseline_seconds = 0.0;
    for (size_t threads : thread_counts) {
      config.threads = threads;
      MirrorSimulator simulator(elements, config);
      WallTimer timer;
      const SimulationResult result =
          simulator.Run(allocation.frequencies).value();
      const double seconds = timer.ElapsedSeconds();
      const bool identical = threads == 1 || SameResult(result, baseline);
      if (threads == 1) {
        baseline = result;
        baseline_seconds = seconds;
      }
      const double speedup =
          seconds > 0.0 ? baseline_seconds / seconds : 0.0;
      solver_table.AddRow({"simulator", StrFormat("%zu", n),
                           StrFormat("%zu", threads), FormatDouble(seconds, 3),
                           StrFormat("%.2fx", speedup),
                           identical ? "yes" : "NO"});
      rows.push_back({"simulator", n, threads, seconds, speedup, identical});
    }
  }
  std::printf("%s\n", solver_table.ToText().c_str());
  std::printf(
      "reading: shard boundaries depend only on N, so the thread column is "
      "pure execution\npolicy -- a bit-identical=NO row is a determinism "
      "bug, not noise. Speedups track\nphysical cores (hardware "
      "concurrency here: %zu).\n",
      par::HardwareThreads());

  bool all_identical = true;
  for (const ScalingRow& row : rows) all_identical &= row.bit_identical;
  WriteJson(rows, "BENCH_solver_scaling.json");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: some thread counts broke the determinism contract\n");
    return 1;
  }
  return 0;
}
