// Ablation A9 — per-server (grouped) bandwidth budgets. Real mirrors pull
// from multiple origin servers under per-host politeness limits; the
// paper's single pooled budget is the ideal case. This bench measures the
// perceived-freshness cost of partitioning the same total bandwidth across
// servers under several split policies:
//
//   pooled          : one shared budget (the paper's setting; upper bound);
//   optimal split   : per-server budgets induced by the pooled optimum
//                     (equalizes marginal values; provably matches pooled);
//   by elements     : budget proportional to the server's element count;
//   by interest     : budget proportional to the server's total access
//                     probability;
//   equal           : identical budget per server.
//
// Servers are heterogeneous: server 0 hosts the hot head of the Zipf
// profile, later servers host progressively colder tails.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "opt/grouped.h"
#include "opt/water_filling.h"
#include "stats/descriptive.h"

namespace {

using namespace freshen;

constexpr size_t kNumServers = 5;

}  // namespace

int main() {
  std::printf("== Ablation A9: per-server bandwidth budgets ==\n");
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = bench::MustCatalog(spec);
  const double total = spec.syncs_per_period;
  std::printf(
      "Table 2 setup; %zu servers host contiguous rank ranges (server 0 = "
      "hot head)\n\n",
      kNumServers);

  GroupedProblem problem;
  problem.base = MakePerceivedProblem(elements, 0.0, false);
  problem.group.resize(elements.size());
  std::vector<double> server_interest(kNumServers, 0.0);
  std::vector<double> server_count(kNumServers, 0.0);
  for (size_t i = 0; i < elements.size(); ++i) {
    const auto s = static_cast<uint32_t>(i * kNumServers / elements.size());
    problem.group[i] = s;
    server_interest[s] += elements[i].access_prob;
    server_count[s] += 1.0;
  }

  auto pf_for_split = [&](const std::vector<double>& budgets) {
    problem.group_budgets = budgets;
    const auto allocation = SolveGrouped(problem).value();
    return PerceivedFreshness(elements, allocation.frequencies);
  };
  auto proportional = [&](const std::vector<double>& shares) {
    const double share_total = Sum(shares);
    std::vector<double> budgets(kNumServers);
    for (size_t s = 0; s < kNumServers; ++s) {
      budgets[s] = total * shares[s] / share_total;
    }
    return budgets;
  };

  // PooledOptimalSplit reads the total from the group budgets; seed them
  // with the equal split.
  problem.group_budgets.assign(kNumServers, total / kNumServers);

  CoreProblem pooled = problem.base;
  pooled.bandwidth = total;
  const double pooled_pf = PerceivedFreshness(
      elements,
      KktWaterFillingSolver().Solve(pooled).value().frequencies);

  TableWriter table({"split policy", "perceived freshness", "vs pooled"});
  auto add = [&](const char* label, double pf) {
    table.AddRow({label, FormatDouble(pf, 4),
                  StrFormat("%+.1f%%", 100.0 * (pf / pooled_pf - 1.0))});
  };
  add("pooled (paper)", pooled_pf);
  add("optimal split", pf_for_split(PooledOptimalSplit(problem).value()));
  add("by interest", pf_for_split(proportional(server_interest)));
  add("by elements", pf_for_split(proportional(server_count)));
  add("equal", pf_for_split(proportional(std::vector<double>(kNumServers, 1.0))));
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the pooled-induced split matches the pooled optimum exactly "
      "(marginal values\nequalize); interest-proportional splits come close; "
      "count-proportional and equal splits\nstarve the hot server and pay a "
      "visible freshness penalty.\n");
  return 0;
}
