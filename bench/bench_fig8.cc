// Reproduces Figure 8: improvement in perceived freshness when k-means
// clustering refines the PF-partitioning start, on the Big Case (Table 3).
// One series per iteration count {0, 1, 3, 5, 10} against the number of
// partitions.
//
// Expected shape, per the paper: "with very few iterations, significant
// gains are seen" — the 1-iteration curve already sits well above the
// 0-iteration curve, with diminishing returns after ~5-10 iterations.
//
// Set FRESHEN_QUICK=1 to shrink the workload ~50x.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "opt/water_filling.h"
#include "partition/allocation.h"
#include "partition/kmeans.h"
#include "partition/transformed.h"

namespace {

using namespace freshen;

// Solves the transformed problem for `partitions` and returns the plan's
// perceived freshness.
double EvaluatePartitions(const ElementSet& elements,
                          const std::vector<Partition>& partitions,
                          double bandwidth) {
  const CoreProblem problem =
      BuildTransformedProblem(partitions, bandwidth, /*size_aware=*/false);
  const Allocation allocation = KktWaterFillingSolver().Solve(problem).value();
  const auto frequencies =
      ExpandAllocation(elements, partitions, allocation.frequencies,
                       AllocationPolicy::kFixedBandwidth)
          .value();
  return PerceivedFreshness(elements, frequencies);
}

}  // namespace

int main() {
  const ExperimentSpec spec = bench::BigCaseSpec();
  std::printf("== Figure 8: perceived freshness after k-means clustering ==\n");
  std::printf("Table 3 setup (N=%zu)%s\n\n", spec.num_objects,
              bench::QuickMode() ? "  [FRESHEN_QUICK]" : "");

  const ElementSet elements = bench::MustCatalog(spec);
  KMeansRefiner refiner(elements, {});

  const std::vector<int> snapshots = {0, 1, 3, 5, 10};
  TableWriter table({"num_partitions", "0 iterations", "1 iteration",
                     "3 iterations", "5 iterations", "10 iterations"});
  for (size_t k = 20; k <= 200; k += 20) {
    auto partitions =
        BuildPartitions(elements, PartitionKey::kPerceivedFreshness, k)
            .value();
    std::vector<std::string> row = {StrFormat("%zu", k)};
    int done = 0;
    for (int target : snapshots) {
      if (target > done) {
        partitions = refiner.Refine(partitions, target - done).value();
        done = target;
      }
      row.push_back(FormatDouble(
          EvaluatePartitions(elements, partitions, spec.syncs_per_period),
          4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "paper shape: each extra iteration lifts the whole curve, with the "
      "biggest jump from\n0 -> 1 iterations and diminishing returns by 10.\n");
  return 0;
}
