// Telemetry-overhead benchmark: does the observability plane pay its rent?
//
// The SLO monitor and drift detector ride the online loop's hot path: every
// applied sync feeds the detector, every period close scores the whole
// catalog and evaluates the burn-rate state machine. The pitch is that this
// bookkeeping is free compared to the work the loop already does (syncs,
// accesses, periodic replans) — this bench makes that a gated number.
//
// Three measurements:
//   1. Baseline loop: OnlineFreshenLoop without slo/drift attached, mean
//      wall seconds per period over a measured window (after warmup).
//   2. Telemetry loop: the identical loop (same seed, same catalog) with an
//      SloMonitor and DriftDetector attached — the end-to-end delta is
//      reported, but it is differenced noise and is not gated.
//   3. Bookkeeping microbench: the telemetry calls a period actually makes
//      (K ObserveSync + DriftDetector::EndPeriod + SloMonitor::ObservePeriod,
//      K = the loop's observed syncs/period), timed in isolation over many
//      repetitions. This is the gated number: bookkeeping must stay under
//      5% of the baseline period cost.
//
// Admin-read cost (SloMonitor::Report + DriftDetector::Report, what METRICS /
// SLO / WATCH handlers pay) is reported informationally.
//
// Results land in BENCH_slo.json.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "mirror/online_loop.h"
#include "model/element.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace {

using namespace freshen;

struct SloBenchResult {
  size_t objects = 0;
  size_t periods = 0;
  double accesses_per_period = 0.0;
  double bandwidth = 0.0;
  double baseline_period_ms = 0.0;
  double telemetry_period_ms = 0.0;
  double end_to_end_overhead_pct = 0.0;
  double syncs_per_period = 0.0;
  double bookkeeping_ms = 0.0;
  double bookkeeping_pct = 0.0;
  double slo_report_us = 0.0;
  double drift_report_us = 0.0;
  bool pass = true;
};

constexpr double kGatePct = 5.0;

// A mildly skewed catalog: rates spread over two decades, popularity decays
// harmonically — enough structure that replans and sync schedules look like
// a real deployment rather than a uniform no-op.
ElementSet BenchCatalog(size_t n) {
  std::vector<double> rates(n);
  std::vector<double> probs(n);
  for (size_t i = 0; i < n; ++i) {
    rates[i] = 0.1 + 10.0 * static_cast<double>(i % 97) / 97.0;
    probs[i] = 1.0 / static_cast<double>(i + 1);
  }
  return MakeElementSet(rates, probs);
}

OnlineFreshenLoop MakeLoop(const ElementSet& truth, double bandwidth,
                           double accesses, obs::MetricsRegistry* registry,
                           obs::SloMonitor* slo, obs::DriftDetector* drift) {
  OnlineFreshenLoop::Options options;
  options.controller.replan_every_periods = 4.0;
  options.controller.prior_change_rate = 1.0;
  options.controller.registry = registry;
  options.accesses_per_period = accesses;
  options.seed = 1234;
  options.registry = registry;
  options.slo = slo;
  options.drift = drift;
  auto loop = OnlineFreshenLoop::Create(truth, bandwidth, options);
  if (!loop.ok()) {
    std::fprintf(stderr, "loop creation failed: %s\n",
                 loop.status().ToString().c_str());
    std::abort();
  }
  return std::move(loop).value();
}

// Runs warmup + measured periods; returns mean measured seconds per period
// and the mean syncs per period over the measured window.
void MeasureLoop(OnlineFreshenLoop& loop, size_t warmup, size_t measured,
                 double* period_seconds, double* syncs_per_period) {
  for (size_t i = 0; i < warmup; ++i) loop.RunPeriod();
  uint64_t syncs = 0;
  WallTimer timer;
  for (size_t i = 0; i < measured; ++i) syncs += loop.RunPeriod().syncs;
  *period_seconds = timer.ElapsedSeconds() / static_cast<double>(measured);
  *syncs_per_period = static_cast<double>(syncs) / static_cast<double>(measured);
}

obs::SloMonitor MustSlo(obs::MetricsRegistry* registry) {
  obs::SloMonitor::Options options;
  options.objective = 0.95;
  options.registry = registry;
  auto monitor = obs::SloMonitor::Create(options);
  if (!monitor.ok()) std::abort();
  return std::move(monitor).value();
}

obs::DriftDetector MustDrift(size_t n, obs::MetricsRegistry* registry) {
  obs::DriftDetector::Options options;
  options.num_elements = n;
  options.registry = registry;
  auto detector = obs::DriftDetector::Create(options);
  if (!detector.ok()) std::abort();
  return std::move(detector).value();
}

void WriteJson(const SloBenchResult& r, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"slo\",\n"
               "  \"quick\": %s,\n"
               "  \"objects\": %zu,\n"
               "  \"periods\": %zu,\n"
               "  \"accesses_per_period\": %g,\n"
               "  \"bandwidth\": %g,\n"
               "  \"baseline_period_ms\": %.6f,\n"
               "  \"telemetry_period_ms\": %.6f,\n"
               "  \"end_to_end_overhead_pct\": %.3f,\n"
               "  \"syncs_per_period\": %.1f,\n"
               "  \"bookkeeping_ms\": %.6f,\n"
               "  \"bookkeeping_pct_of_period\": %.3f,\n"
               "  \"slo_report_us\": %.3f,\n"
               "  \"drift_report_us\": %.3f,\n"
               "  \"gate_pct_limit\": %.1f,\n"
               "  \"pass\": %s\n"
               "}\n",
               bench::QuickMode() ? "true" : "false", r.objects, r.periods,
               r.accesses_per_period, r.bandwidth, r.baseline_period_ms,
               r.telemetry_period_ms, r.end_to_end_overhead_pct,
               r.syncs_per_period, r.bookkeeping_ms, r.bookkeeping_pct,
               r.slo_report_us, r.drift_report_us, kGatePct,
               r.pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  SloBenchResult r;
  r.objects = quick ? 2000 : 50000;
  r.periods = quick ? 24 : 48;
  const size_t warmup = quick ? 6 : 8;
  r.accesses_per_period = static_cast<double>(r.objects);
  r.bandwidth = static_cast<double>(r.objects) / 4.0;

  const ElementSet truth = BenchCatalog(r.objects);

  // 1. Baseline: no telemetry attached.
  {
    obs::MetricsRegistry registry;
    OnlineFreshenLoop loop = MakeLoop(truth, r.bandwidth,
                                      r.accesses_per_period, &registry,
                                      nullptr, nullptr);
    double unused_syncs = 0.0;
    double seconds = 0.0;
    MeasureLoop(loop, warmup, r.periods, &seconds, &unused_syncs);
    r.baseline_period_ms = seconds * 1e3;
  }

  // 2. Telemetry attached: same catalog, same seed.
  {
    obs::MetricsRegistry registry;
    obs::SloMonitor slo = MustSlo(&registry);
    obs::DriftDetector drift = MustDrift(r.objects, &registry);
    OnlineFreshenLoop loop = MakeLoop(truth, r.bandwidth,
                                      r.accesses_per_period, &registry, &slo,
                                      &drift);
    double seconds = 0.0;
    MeasureLoop(loop, warmup, r.periods, &seconds, &r.syncs_per_period);
    r.telemetry_period_ms = seconds * 1e3;
  }
  r.end_to_end_overhead_pct =
      r.baseline_period_ms > 0.0
          ? 100.0 * (r.telemetry_period_ms - r.baseline_period_ms) /
                r.baseline_period_ms
          : 0.0;

  // 3. Bookkeeping in isolation: exactly the calls one period makes, K
  // ObserveSync + one EndPeriod + one ObservePeriod, repeated enough times
  // that the per-period figure is stable.
  {
    obs::MetricsRegistry registry;
    obs::SloMonitor slo = MustSlo(&registry);
    obs::DriftDetector drift = MustDrift(r.objects, &registry);
    const std::vector<double> planned_rates = ChangeRates(truth);
    const size_t syncs =
        static_cast<size_t>(r.syncs_per_period > 0.0 ? r.syncs_per_period
                                                     : r.bandwidth);
    const size_t reps = quick ? 50 : 100;
    const uint64_t accesses =
        static_cast<uint64_t>(r.accesses_per_period);
    WallTimer timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (size_t s = 0; s < syncs; ++s) {
        const size_t element = (rep * syncs + s * 7919) % r.objects;
        drift.ObserveSync(element, (s & 1) != 0, 0.25 + 0.5 * (s & 3));
      }
      const double now = static_cast<double>(rep + 1);
      drift.EndPeriod(now, planned_rates);
      slo.ObservePeriod(now, accesses, accesses - accesses / 20,
                        accesses - accesses / 40);
    }
    r.bookkeeping_ms =
        timer.ElapsedSeconds() * 1e3 / static_cast<double>(reps);

    // Admin-read cost: what one SLO / WATCH sample pays.
    constexpr size_t kReads = 200;
    timer.Restart();
    for (size_t i = 0; i < kReads; ++i) {
      obs::SloReport report = slo.Report();
      (void)report.budget_remaining;
    }
    r.slo_report_us = timer.ElapsedSeconds() * 1e6 / kReads;
    timer.Restart();
    for (size_t i = 0; i < kReads; ++i) {
      obs::DriftReport report = drift.Report();
      (void)report.aggregate_score;
    }
    r.drift_report_us = timer.ElapsedSeconds() * 1e6 / kReads;
  }

  r.bookkeeping_pct = r.baseline_period_ms > 0.0
                          ? 100.0 * r.bookkeeping_ms / r.baseline_period_ms
                          : 0.0;
  if (r.bookkeeping_pct >= kGatePct) {
    std::fprintf(stderr,
                 "FAIL: telemetry bookkeeping %.4f ms/period is %.2f%% of "
                 "the %.4f ms baseline period (gate: < %.1f%%)\n",
                 r.bookkeeping_ms, r.bookkeeping_pct, r.baseline_period_ms,
                 kGatePct);
    r.pass = false;
  }

  TableWriter table({"objects", "periods", "baseline ms", "telemetry ms",
                     "e2e delta", "bookkeeping ms", "% of period",
                     "report us"});
  table.AddRow({StrFormat("%zu", r.objects), StrFormat("%zu", r.periods),
                StrFormat("%.4f", r.baseline_period_ms),
                StrFormat("%.4f", r.telemetry_period_ms),
                StrFormat("%+.2f%%", r.end_to_end_overhead_pct),
                StrFormat("%.4f", r.bookkeeping_ms),
                StrFormat("%.2f%%", r.bookkeeping_pct),
                StrFormat("%.1f/%.1f", r.slo_report_us, r.drift_report_us)});
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the gated number is the isolated bookkeeping cost (K "
      "ObserveSync +\nEndPeriod + ObservePeriod, K = the loop's observed "
      "syncs/period) against the\nbaseline period cost; the end-to-end "
      "delta is differenced noise and is\nreported but not gated.\n");
  WriteJson(r, "BENCH_slo.json");
  return r.pass ? 0 : 1;
}
