// Reproduces Figure 3 (a-c): the Ideal Case — perceived freshness achieved
// by the PF technique (ours) vs the GF technique (prior work [5]) as the
// Zipf interest skew theta sweeps 0..1.6, for the three alignments.
// Uses Table 2's setup (printed below). Expected shape, per the paper:
//   * at theta = 0 the two curves coincide;
//   * PF >= GF everywhere, widening with skew;
//   * in the ALIGNED case GF's perceived freshness collapses toward 0 at
//     high skew (it starves exactly the hot, volatile items);
//   * in the REVERSE case both rise, PF still ahead.
// Every tenth point is cross-checked in the discrete-event simulator.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "sim/simulator.h"

int main() {
  using namespace freshen;
  std::printf("== Figure 3: ideal case, perceived freshness vs Zipf skew ==\n");
  std::printf(
      "Table 2 setup: NumObjects=500 NumUpdatesPerPeriod=1000 "
      "NumSyncsPerPeriod=250 Theta=0.0-1.6 UpdateStdDev=1.0\n\n");

  for (Alignment alignment :
       {Alignment::kShuffled, Alignment::kAligned, Alignment::kReverse}) {
    TableWriter table({"theta", "PF_TECHNIQUE", "GF_TECHNIQUE", "PF_sim",
                       "GF_sim"});
    for (double theta = 0.0; theta <= 1.601; theta += 0.2) {
      ExperimentSpec spec = ExperimentSpec::IdealCase();
      spec.theta = theta;
      spec.alignment = alignment;
      const ElementSet elements = bench::MustCatalog(spec);

      PlannerOptions pf_options;
      pf_options.technique = Technique::kPerceived;
      PlannerOptions gf_options;
      gf_options.technique = Technique::kGeneral;
      const FreshenPlan pf =
          bench::MustPlan(pf_options, elements, spec.syncs_per_period);
      const FreshenPlan gf =
          bench::MustPlan(gf_options, elements, spec.syncs_per_period);

      std::string pf_sim = "-";
      std::string gf_sim = "-";
      const bool verify = theta == 0.0 || theta >= 1.59 ||
                          (theta > 0.79 && theta < 0.81);
      if (verify && !bench::QuickMode()) {
        SimulationConfig config;
        config.horizon_periods = 60.0;
        config.accesses_per_period = 5000.0;
        config.warmup_periods = 5.0;
        MirrorSimulator simulator(elements, config);
        pf_sim = FormatDouble(simulator.Run(pf.frequencies)
                                  .value()
                                  .empirical_perceived_freshness,
                              4);
        gf_sim = FormatDouble(simulator.Run(gf.frequencies)
                                  .value()
                                  .empirical_perceived_freshness,
                              4);
      }
      table.AddRow({FormatDouble(theta, 1),
                    FormatDouble(pf.perceived_freshness, 4),
                    FormatDouble(gf.perceived_freshness, 4), pf_sim, gf_sim});
    }
    std::printf("-- Figure 3 (%s) --\n%s\n", ToString(alignment).c_str(),
                table.ToText().c_str());
  }
  std::printf(
      "paper shape: curves meet at theta=0; PF rises with skew in all "
      "alignments; GF collapses\ntoward 0 at high skew in the aligned case "
      "and stays flat/slowly-moving elsewhere.\n");
  return 0;
}
