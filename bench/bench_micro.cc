// A6 — google-benchmark microbenchmarks for the hot paths: the freshness
// closed forms, the marginal-inverse kernel, the exact solver, partitioning,
// k-means iterations, and alias-table sampling.
#include <benchmark/benchmark.h>

#include "model/freshness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "partition/kmeans.h"
#include "partition/partitioner.h"
#include "rng/alias_table.h"
#include "rng/rng.h"
#include "rng/zipf.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace freshen {
namespace {

ElementSet BenchCatalog(size_t n) {
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = n;
  spec.syncs_per_period = 0.5 * static_cast<double>(n);
  spec.alignment = Alignment::kShuffled;
  return GenerateCatalog(spec).value();
}

void BM_FixedOrderFreshness(benchmark::State& state) {
  double f = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixedOrderFreshness(f, 2.0));
    f += 1e-9;
  }
}
BENCHMARK(BM_FixedOrderFreshness);

void BM_InverseMarginalGainG(benchmark::State& state) {
  double y = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InverseMarginalGainG(y));
    y = y < 0.9 ? y + 1e-7 : 0.1;
  }
}
BENCHMARK(BM_InverseMarginalGainG);

void BM_WaterFillingSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ElementSet elements = BenchCatalog(n);
  const CoreProblem problem =
      MakePerceivedProblem(elements, 0.5 * static_cast<double>(n), false);
  KktWaterFillingSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).value().objective);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WaterFillingSolve)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BuildPartitions(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ElementSet elements = BenchCatalog(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 100)
            .value()
            .size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BuildPartitions)->Arg(10000)->Arg(100000);

void BM_KMeansIteration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ElementSet elements = BenchCatalog(n);
  const auto initial =
      BuildPartitions(elements, PartitionKey::kPerceivedFreshness, 100)
          .value();
  KMeansRefiner refiner(elements, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.Refine(initial, 1).value().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 100);
}
BENCHMARK(BM_KMeansIteration)->Arg(10000)->Arg(100000);

// Metrics hot-path overhead: these guard the "instrumentation is cheap and
// a disabled registry is ~zero-cost" property every instrumented subsystem
// relies on.
void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsCounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_counter");
  registry.set_enabled(false);
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_MetricsCounterAddDisabled);

void BM_MetricsGaugeSet(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("bench_gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge->Set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge->value());
}
BENCHMARK(BM_MetricsGaugeSet);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("bench_histogram", obs::LatencySecondsBuckets());
  double v = 1e-7;
  for (auto _ : state) {
    histogram->Record(v);
    v = v < 1.0 ? v * 1.7 : 1e-7;
  }
  benchmark::DoNotOptimize(histogram->count());
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsScopedSpan(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    obs::ScopedSpan span("bench_span", registry);
    benchmark::DoNotOptimize(span.path().size());
  }
}
BENCHMARK(BM_MetricsScopedSpan);

void BM_AliasTableSample(benchmark::State& state) {
  const auto probs = ZipfProbabilities(500000, 1.0);
  AliasTable table(probs);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_ZipfProbabilities(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZipfProbabilities(n, 1.0).size());
  }
}
BENCHMARK(BM_ZipfProbabilities)->Arg(10000)->Arg(500000);

}  // namespace
}  // namespace freshen

BENCHMARK_MAIN();
