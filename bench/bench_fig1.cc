// Reproduces Figure 1: the locus of optimal (change rate, sync frequency)
// operating points for access probabilities p = 0.1, 0.2, 0.4.
//
// From the paper's appendix, every element with positive allocation sits on
// the curve p * dF/df(f, lambda) = mu for the shared multiplier mu. Fixing
// mu and sweeping lambda traces one curve per p. The paper's reading: for a
// given change rate, an element needs more bandwidth as its p increases, and
// for small p a volatile element gets *no* bandwidth at all (the curve hits
// f = 0 where p/lambda <= mu).
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/freshness.h"

namespace {

// Sync frequency on the solution locus for (p, lambda) at multiplier mu:
// g(lambda/f) = mu * lambda / p, or 0 when even f -> 0+ is not worth mu.
double LocusFrequency(double p, double lambda, double mu) {
  const double y = mu * lambda / p;
  if (y >= 1.0) return 0.0;
  return lambda / freshen::InverseMarginalGainG(y);
}

}  // namespace

int main() {
  std::printf("== Figure 1: relationship among f, lambda and p ==\n");
  const double mu = 0.08;  // Marginal value of bandwidth (one curve family).
  std::printf("solution locus p * dF/df = mu, mu = %.2f\n\n", mu);

  const std::vector<double> probs = {0.1, 0.2, 0.4};
  freshen::TableWriter table(
      {"lambda", "f (p=0.1)", "f (p=0.2)", "f (p=0.4)"});
  for (double lambda = 0.25; lambda <= 6.001; lambda += 0.25) {
    std::vector<std::string> row = {freshen::FormatDouble(lambda, 2)};
    for (double p : probs) {
      row.push_back(freshen::FormatDouble(LocusFrequency(p, lambda, mu), 3));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: at every lambda the f required grows with p (curves nest "
      "upward);\nelements with p/lambda <= mu receive zero bandwidth — e.g. "
      "p=0.1 cuts off at lambda >= %.2f, p=0.2 at lambda >= %.2f.\n",
      0.1 / mu, 0.2 / mu);
  return 0;
}
