// Ablation A8 — interest drift, run on the live closed-loop mirror
// (src/mirror). The paper assumes "the contents of the mirror or the user
// interests might change" and that re-planning handles it; this bench
// measures exactly that. User interest rotates by a quarter of the catalog
// every 25 periods (so every phase is a genuinely new profile); three
// controllers run the same world:
//
//   static     : plans once from the initial (true) catalog, never adapts;
//   no-decay   : closed loop, learner keeps all history (decay 1.0);
//   decay 0.7  : closed loop, old interest fades per period.
//
// Reported: mean empirical perceived freshness per 25-period phase.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "mirror/online_loop.h"
#include "sim/simulator.h"

namespace {

using namespace freshen;

constexpr int kPhases = 4;
constexpr int kPeriodsPerPhase = 25;

std::vector<double> RotatedProfile(const ElementSet& truth) {
  const size_t n = truth.size();
  const size_t shift = n / 4;
  std::vector<double> rotated(n);
  for (size_t i = 0; i < n; ++i) {
    rotated[(i + shift) % n] = truth[i].access_prob;
  }
  return rotated;
}

// Runs one controller configuration through the drifting world; returns the
// mean empirical PF per phase.
std::vector<double> RunLoop(const ElementSet& truth, double bandwidth,
                            double decay) {
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 3000.0;
  options.seed = 4242;
  options.controller.replan_every_periods = 1.0;
  options.controller.prior_change_rate = 2.0;
  options.controller.learner.decay = decay;
  auto loop = OnlineFreshenLoop::Create(truth, bandwidth, options).value();

  std::vector<double> phase_pf;
  for (int phase = 0; phase < kPhases; ++phase) {
    double total = 0.0;
    for (int period = 0; period < kPeriodsPerPhase; ++period) {
      total += loop.RunPeriod().perceived_freshness;
    }
    phase_pf.push_back(total / kPeriodsPerPhase);
    // Drift: interest rotates at every phase boundary.
    if (phase + 1 < kPhases) {
      const Status status = loop.SetTrueProfile(RotatedProfile(loop.truth()));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        std::abort();
      }
    }
  }
  return phase_pf;
}

// The non-adaptive baseline: the initial oracle plan simulated against each
// phase's true profile.
std::vector<double> RunStatic(const ElementSet& truth, double bandwidth) {
  const FreshenPlan plan = bench::MustPlan({}, truth, bandwidth);
  std::vector<double> phase_pf;
  ElementSet world = truth;
  for (int phase = 0; phase < kPhases; ++phase) {
    SimulationConfig config;
    config.horizon_periods = kPeriodsPerPhase;
    config.accesses_per_period = 3000.0;
    config.warmup_periods = 2.0;
    config.seed = 77 + static_cast<uint64_t>(phase);
    phase_pf.push_back(MirrorSimulator(world, config)
                           .Run(plan.frequencies)
                           .value()
                           .empirical_perceived_freshness);
    // Rotate the world's profile for the next phase.
    const std::vector<double> rotated = RotatedProfile(world);
    for (size_t i = 0; i < world.size(); ++i) {
      world[i].access_prob = rotated[i];
    }
  }
  return phase_pf;
}

}  // namespace

int main() {
  std::printf("== Ablation A8: interest drift on the live mirror ==\n");
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = 200;
  spec.syncs_per_period = 100.0;
  spec.theta = 1.3;
  spec.alignment = Alignment::kShuffled;
  const ElementSet truth = bench::MustCatalog(spec);
  std::printf(
      "N=%zu, B=%.0f, theta=1.3; interest rotates every %d periods\n\n",
      truth.size(), spec.syncs_per_period, kPeriodsPerPhase);

  const auto static_pf = RunStatic(truth, spec.syncs_per_period);
  const auto sticky_pf = RunLoop(truth, spec.syncs_per_period, 1.0);
  const auto decay_pf = RunLoop(truth, spec.syncs_per_period, 0.7);

  TableWriter table({"phase", "static plan", "adaptive (no decay)",
                     "adaptive (decay 0.7)"});
  for (int phase = 0; phase < kPhases; ++phase) {
    table.AddRow({StrFormat("%d", phase + 1),
                  FormatDouble(static_pf[phase], 4),
                  FormatDouble(sticky_pf[phase], 4),
                  FormatDouble(decay_pf[phase], 4)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the static plan is optimal in phase 1 and collapses once "
      "interest moves;\nthe closed-loop controllers re-converge every "
      "phase, the decaying learner fastest\n(stale history stops dragging "
      "its profile).\n");
  return 0;
}
