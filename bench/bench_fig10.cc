// Reproduces Figure 10: optimal distribution of sync resources when object
// sizes vary. N = 500 objects, uniform access (theta = 0), change rate
// aligned (object 0 changes fastest) and size aligned (object 0 largest);
// sizes either all 1.0 (uniform) or Pareto(shape 1.1, mean 1.0).
//
// (a) sync *frequency* per object and (b) sync *bandwidth* per object, for
// the size-aware optimum on both size distributions. Headline numbers from
// §5.3: scheduling while ignoring sizes yields perceived freshness 0.312 on
// the Pareto catalog; accounting for sizes yields 0.586.
//
// Expected shape, per the paper: all sync resources go to the pages with
// the LOWEST change rates (the high-rank objects); under Pareto sizes the
// total number of syncs is much larger (small objects are cheap) while the
// total bandwidth is identical.
#include <cstdio>

#include "bench_util.h"
#include "model/metrics.h"
#include "opt/problem.h"
#include "opt/water_filling.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "stats/descriptive.h"

int main() {
  using namespace freshen;
  std::printf("== Figure 10: optimal sync resource distribution ==\n");
  std::printf(
      "N=500, uniform access, change rate aligned, size aligned, B=250\n\n");

  ExperimentSpec base = ExperimentSpec::IdealCase();
  base.theta = 0.0;
  base.alignment = Alignment::kAligned;
  base.size_alignment = SizeAlignment::kAligned;

  ExperimentSpec uniform_spec = base;
  uniform_spec.size_model = SizeModel::kUniform;
  ExperimentSpec pareto_spec = base;
  pareto_spec.size_model = SizeModel::kPareto;

  const ElementSet uniform_catalog = bench::MustCatalog(uniform_spec);
  const ElementSet pareto_catalog = bench::MustCatalog(pareto_spec);

  PlannerOptions aware;
  aware.size_aware = true;
  const FreshenPlan uniform_plan =
      bench::MustPlan(aware, uniform_catalog, base.syncs_per_period);
  const FreshenPlan pareto_plan =
      bench::MustPlan(aware, pareto_catalog, base.syncs_per_period);

  // Panel (a)+(b): per-object frequency and bandwidth, reported over rank
  // buckets of 25 objects (the paper plots all 500 points; buckets make the
  // same shape readable as a table).
  TableWriter table({"objects", "f uniform", "f pareto", "bw uniform",
                     "bw pareto"});
  const size_t bucket = 25;
  for (size_t lo = 0; lo < uniform_catalog.size(); lo += bucket) {
    const size_t hi = lo + bucket;
    RunningStats fu;
    RunningStats fp;
    RunningStats bu;
    RunningStats bp;
    for (size_t i = lo; i < hi; ++i) {
      fu.Add(uniform_plan.frequencies[i]);
      fp.Add(pareto_plan.frequencies[i]);
      bu.Add(uniform_plan.frequencies[i] * uniform_catalog[i].size);
      bp.Add(pareto_plan.frequencies[i] * pareto_catalog[i].size);
    }
    table.AddRow({StrFormat("%zu-%zu", lo, hi - 1),
                  FormatDouble(fu.Mean(), 3), FormatDouble(fp.Mean(), 3),
                  FormatDouble(bu.Mean(), 3), FormatDouble(bp.Mean(), 3)});
  }
  std::printf("%s\n", table.ToText().c_str());

  const double uniform_syncs = Sum(uniform_plan.frequencies);
  const double pareto_syncs = Sum(pareto_plan.frequencies);
  std::printf("total syncs/period: uniform %.1f, pareto %.1f (pareto >)\n",
              uniform_syncs, pareto_syncs);
  std::printf("total bandwidth:    uniform %.1f, pareto %.1f (equal)\n\n",
              uniform_plan.bandwidth_used, pareto_plan.bandwidth_used);

  // §5.3 headline: size-blind vs size-aware scheduling on the Pareto
  // catalog. Two readings of "ignoring object size" (the paper's accounting
  // is unstated; see EXPERIMENTS.md):
  //   as-planned : run the blind frequencies directly. If their true spend
  //                exceeds the budget they are scaled down to fit; if it
  //                falls short the leftover bandwidth is simply wasted —
  //                the paper's "suboptimal use of bandwidth".
  //   re-fitted  : proportionally rescale so the full budget is used (the
  //                best case for the blind plan; what FreshenPlanner does).
  PlannerOptions blind;
  blind.size_aware = false;
  const FreshenPlan blind_plan =
      bench::MustPlan(blind, pareto_catalog, base.syncs_per_period);
  const double as_planned_pf = [&] {
    // Reconstruct the unscaled blind frequencies: solve with unit costs.
    const CoreProblem problem =
        MakePerceivedProblem(pareto_catalog, base.syncs_per_period, false);
    auto allocation = KktWaterFillingSolver().Solve(problem).value();
    std::vector<double> freqs = std::move(allocation.frequencies);
    const double spend = BandwidthUsed(pareto_catalog, freqs);
    if (spend > base.syncs_per_period) {
      const double down = base.syncs_per_period / spend;
      for (double& f : freqs) f *= down;
    }
    return PerceivedFreshness(pareto_catalog, freqs);
  }();
  std::printf(
      "perceived freshness on the Pareto catalog:\n"
      "  ignoring object size (as-planned) : %.3f   (paper: 0.312)\n"
      "  ignoring object size (re-fitted)  : %.3f\n"
      "  size-aware                        : %.3f   (paper: 0.586)\n",
      as_planned_pf, blind_plan.perceived_freshness,
      pareto_plan.perceived_freshness);
  std::printf(
      "paper shape: sync resources concentrate on the lowest-change-rate "
      "objects; Pareto\nsizes buy many more syncs for the same bandwidth; "
      "size-aware >> size-blind.\n");
  return 0;
}
