// Ablation A3 — imperfect knowledge of change frequencies. The paper (§6)
// argues its approach "is applicable even in the case with imperfect
// knowledge of change frequency" because access probability dominates under
// skew. Here the planner sees only POLL-ESTIMATED lambdas (Cho &
// Garcia-Molina estimator from k observation polls per element) while the
// evaluation uses the true rates.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "estimate/change_estimator.h"
#include "model/metrics.h"

int main() {
  using namespace freshen;
  std::printf("== Ablation A3: planning with estimated change rates ==\n");
  std::printf(
      "PF planned from poll-based lambda estimates, evaluated on true "
      "lambdas\n\n");

  TableWriter table({"theta", "polls/element", "PF (true lambda)",
                     "PF (estimated)", "loss", "GF baseline"});
  for (double theta : {0.4, 1.0, 1.6}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.theta = theta;
    spec.alignment = Alignment::kShuffled;
    const ElementSet truth = bench::MustCatalog(spec);
    PlannerOptions gf_options;
    gf_options.technique = Technique::kGeneral;
    const double pf_true =
        bench::MustPlan({}, truth, spec.syncs_per_period).perceived_freshness;
    const double gf_baseline =
        PerceivedFreshness(truth, bench::MustPlan(gf_options, truth,
                                                  spec.syncs_per_period)
                                      .frequencies);

    for (uint64_t polls : {5u, 20u, 100u}) {
      ElementSet estimated = truth;
      for (size_t i = 0; i < estimated.size(); ++i) {
        // Poll at the sync-period granularity (interval 1.0), the cadence a
        // mirror gets for free from its own refreshes.
        estimated[i].change_rate = SimulatePollEstimate(
            truth[i].change_rate, 1.0, polls, spec.seed + i);
      }
      const FreshenPlan plan =
          bench::MustPlan({}, estimated, spec.syncs_per_period);
      // Evaluate the schedule against reality.
      const double pf_est = PerceivedFreshness(truth, plan.frequencies);
      table.AddRow({FormatDouble(theta, 1), StrFormat("%llu",
                        static_cast<unsigned long long>(polls)),
                    FormatDouble(pf_true, 4), FormatDouble(pf_est, 4),
                    StrFormat("%.1f%%", 100.0 * (1.0 - pf_est / pf_true)),
                    FormatDouble(gf_baseline, 4)});
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: even 5 polls/element keep PF within a few percent of "
      "perfect knowledge, and\nthe loss shrinks as skew grows (access "
      "probability dominates) — always far above the\nGF baseline.\n");
  return 0;
}
