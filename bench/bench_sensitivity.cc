// Sensitivity analysis of the ideal-case result to the workload parameters —
// the study the paper defers to its technical report [2] ("We provide a
// sensitivity analysis study of these parameters in [2]"). Sweeps, one at a
// time around the Table 2 operating point (theta = 1.0, shuffled):
//
//   (a) the update-rate spread sigma (UpdateStdDev),
//   (b) the mean update rate (NumUpdatesPerPeriod / N),
//   (c) the bandwidth budget (NumSyncsPerPeriod),
//
// reporting the perceived freshness of the PF and GF techniques and the PF
// advantage. The qualitative expectation: PF's advantage persists across the
// entire parameter space and grows whenever bandwidth is scarce relative to
// update pressure.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"

namespace {

using namespace freshen;

void Sweep(const char* label, const std::vector<double>& values,
           ExperimentSpec (*apply)(double)) {
  TableWriter table(
      {label, "PF_TECHNIQUE", "GF_TECHNIQUE", "PF advantage"});
  for (double value : values) {
    const ExperimentSpec spec = apply(value);
    const ElementSet elements = bench::MustCatalog(spec);
    PlannerOptions gf_options;
    gf_options.technique = Technique::kGeneral;
    const double pf =
        bench::MustPlan({}, elements, spec.syncs_per_period)
            .perceived_freshness;
    const double gf = PerceivedFreshness(
        elements,
        bench::MustPlan(gf_options, elements, spec.syncs_per_period)
            .frequencies);
    table.AddRow({FormatDouble(value, 2), FormatDouble(pf, 4),
                  FormatDouble(gf, 4),
                  StrFormat("%+.1f%%", 100.0 * (pf / gf - 1.0))});
  }
  std::printf("%s\n", table.ToText().c_str());
}

}  // namespace

int main() {
  std::printf("== Sensitivity analysis around the Table 2 operating point ==\n");
  std::printf("theta = 1.0, shuffled-change; one parameter varied at a time\n\n");

  std::printf("-- (a) update-rate spread sigma --\n");
  Sweep("sigma", {0.25, 0.5, 1.0, 2.0, 4.0}, [](double sigma) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.update_stddev = sigma;
    spec.alignment = Alignment::kShuffled;
    return spec;
  });

  std::printf("-- (b) mean updates per object per period --\n");
  Sweep("mean rate", {0.5, 1.0, 2.0, 4.0, 8.0}, [](double rate) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.mean_updates_per_object = rate;
    spec.update_stddev = rate / 2.0;  // Keep the coefficient of variation.
    spec.alignment = Alignment::kShuffled;
    return spec;
  });

  std::printf("-- (c) sync bandwidth per period --\n");
  Sweep("bandwidth", {50.0, 125.0, 250.0, 500.0, 1000.0}, [](double b) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.syncs_per_period = b;
    spec.alignment = Alignment::kShuffled;
    return spec;
  });

  std::printf(
      "reading: the PF advantage holds at every operating point; it is "
      "largest when\nbandwidth is scarce relative to update pressure "
      "(small budgets, fast or spread-out\nupdate rates) and shrinks as "
      "bandwidth saturates everything toward freshness 1.\n");
  return 0;
}
