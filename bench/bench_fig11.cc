// Reproduces Figure 11: Fixed Bandwidth Allocation (FBA) vs Fixed Frequency
// Allocation (FFA) for PF/s-partitioning as the number of partitions grows.
// Setup per the paper: change rate and object size REVERSED against each
// other (object 0 changes fastest and is smallest — "large objects like
// images rarely change, small objects like stock quotes change often"),
// access shuffled, Pareto sizes.
//
// Expected shape, per the paper: FBA approaches the good solution with far
// fewer partitions than FFA, and FBA always wins.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

int main() {
  using namespace freshen;
  std::printf("== Figure 11: FBA vs FFA sync allocation ==\n");
  std::printf(
      "Table 2 setup, Pareto sizes, change aligned / size reversed, access "
      "shuffled\n\n");

  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  // "the alignments of change rate and object size are reversed, and access
  // is shuffled. (object 1 has a high change rate and a low size)":
  // both change rate and size are rank-assigned, change descending and size
  // ascending; the *profile* is then shuffled relative to them. Shuffling
  // the change/size pair jointly against access rank is equivalent.
  spec.alignment = Alignment::kAligned;
  spec.size_model = SizeModel::kPareto;
  spec.size_alignment = SizeAlignment::kReverse;
  ElementSet elements = bench::MustCatalog(spec);
  // Shuffle access against the (change, size) pair by shuffling the profile
  // column deterministically.
  {
    std::vector<double> probs = AccessProbs(elements);
    ArrangeByRank(probs, Alignment::kShuffled, spec.seed + 99);
    for (size_t i = 0; i < elements.size(); ++i) {
      elements[i].access_prob = probs[i];
    }
  }

  const double best_case = [&] {
    PlannerOptions options;
    options.size_aware = true;
    return bench::MustPlan(options, elements, spec.syncs_per_period)
        .perceived_freshness;
  }();

  TableWriter table({"num_partitions", "FIXED BANDWIDTH (FBA)",
                     "FIXED FREQUENCY (FFA)", "best_case"});
  for (size_t k : {5u, 10u, 25u, 50u, 75u, 100u, 150u, 200u, 250u}) {
    std::vector<std::string> row = {StrFormat("%zu", k)};
    for (AllocationPolicy policy : {AllocationPolicy::kFixedBandwidth,
                                    AllocationPolicy::kFixedFrequency}) {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = PartitionKey::kPerceivedFreshnessSize;
      options.num_partitions = k;
      options.allocation_policy = policy;
      options.size_aware = true;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    row.push_back(FormatDouble(best_case, 4));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "paper shape: FBA approaches a better solution earlier (with fewer "
      "partitions) than\nFFA, and FBA always outperforms FFA.\n");
  return 0;
}
