// Reproduces Figure 9: perceived freshness against wall-clock time for the
// partition + k-means pipeline on the Big Case. The CLUSTER_LINE series is
// the 0-iteration (pure PF-partitioning) quality/time frontier across
// partition counts; the per-cluster-count series then show how successive
// k-means iterations (1, 3, 5, 7, 10, 15, 25) trade additional seconds for
// additional freshness from each starting point.
//
// Absolute seconds are machine-specific (the paper's "good solution ...
// finishes in 62 seconds" was 2003 hardware); the *shape* — a few cheap
// iterations on a modest partition count beat huge partition counts — is
// the result. Set FRESHEN_QUICK=1 to shrink the workload ~50x.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "opt/water_filling.h"
#include "partition/allocation.h"
#include "partition/kmeans.h"
#include "partition/transformed.h"

namespace {

using namespace freshen;

double EvaluatePartitions(const ElementSet& elements,
                          const std::vector<Partition>& partitions,
                          double bandwidth) {
  const CoreProblem problem =
      BuildTransformedProblem(partitions, bandwidth, /*size_aware=*/false);
  const Allocation allocation = KktWaterFillingSolver().Solve(problem).value();
  const auto frequencies =
      ExpandAllocation(elements, partitions, allocation.frequencies,
                       AllocationPolicy::kFixedBandwidth)
          .value();
  return PerceivedFreshness(elements, frequencies);
}

}  // namespace

int main() {
  const ExperimentSpec spec = bench::BigCaseSpec();
  std::printf("== Figure 9: perceived freshness vs wall-clock time ==\n");
  std::printf("Table 3 setup (N=%zu)%s\n\n", spec.num_objects,
              bench::QuickMode() ? "  [FRESHEN_QUICK]" : "");
  const ElementSet elements = bench::MustCatalog(spec);
  KMeansRefiner refiner(elements, {});

  // CLUSTER_LINE: 0-iteration quality/time across partition counts.
  {
    TableWriter table({"num_partitions", "time (s)", "perceived freshness"});
    for (size_t k : {25u, 50u, 100u, 150u, 200u, 300u, 400u}) {
      WallTimer timer;
      const auto partitions =
          BuildPartitions(elements, PartitionKey::kPerceivedFreshness, k)
              .value();
      const double pf =
          EvaluatePartitions(elements, partitions, spec.syncs_per_period);
      table.AddRow({StrFormat("%zu", k),
                    FormatDouble(timer.ElapsedSeconds(), 3),
                    FormatDouble(pf, 4)});
    }
    std::printf("-- CLUSTER_LINE (0 iterations) --\n%s\n",
                table.ToText().c_str());
  }

  // Per-cluster-count trajectories: cumulative time vs quality as k-means
  // iterations accumulate.
  const std::vector<int> snapshots = {0, 1, 3, 5, 7, 10, 15, 25};
  for (size_t k : {50u, 150u, 200u, 300u, 400u}) {
    TableWriter table({"iterations", "cumulative time (s)",
                       "perceived freshness"});
    WallTimer timer;
    auto partitions =
        BuildPartitions(elements, PartitionKey::kPerceivedFreshness, k)
            .value();
    int done = 0;
    for (int target : snapshots) {
      if (target > done) {
        partitions = refiner.Refine(partitions, target - done).value();
        done = target;
      }
      const double elapsed = timer.ElapsedSeconds();  // Excludes evaluation.
      const double pf =
          EvaluatePartitions(elements, partitions, spec.syncs_per_period);
      table.AddRow({StrFormat("%d", target), FormatDouble(elapsed, 3),
                    FormatDouble(pf, 4)});
    }
    std::printf("-- %zu CLUSTERS --\n%s\n", k, table.ToText().c_str());
  }
  std::printf(
      "paper shape: from any starting partition count, the first few k-means "
      "iterations buy\nlarge freshness gains per second; a small k with ~10 "
      "iterations reaches a better\nquality/time point than a huge k with "
      "none.\n");
  return 0;
}
