// Ablation A4 — mirror selection (the paper's §7 future work): when the
// mirror can only store part of the database, which objects should it host?
// Compares greedy selection rules at several storage capacities; each
// selected subset is then freshened optimally and scored by the perceived
// freshness over ALL user accesses (requests for unhosted objects are
// misses and score 0).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "selection/selection.h"

namespace {

using namespace freshen;

// Perceived freshness over the full access stream when only `chosen`
// objects are mirrored: unhosted accesses always see a miss.
double OverallPf(const ElementSet& elements, const MirrorSelection& selection,
                 double bandwidth) {
  const ElementSet sub = Subcatalog(elements, selection.chosen);
  const FreshenPlan plan = bench::MustPlan({}, sub, bandwidth);
  return PerceivedFreshness(sub, plan.frequencies);  // Misses add 0.
}

}  // namespace

int main() {
  std::printf("== Ablation A4: mirror selection under a storage budget ==\n");
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kAligned;  // Hot objects change fastest.
  spec.size_model = SizeModel::kPareto;
  const ElementSet elements = bench::MustCatalog(spec);
  const double bandwidth = spec.syncs_per_period;
  std::printf(
      "Table 2 setup + Pareto sizes, aligned change; PF over ALL accesses "
      "(misses = 0)\n\n");

  TableWriter table({"capacity (size units)", "BY_ACCESS_PROB",
                     "BY_P_OVER_LAMBDA", "BY_PF_VALUE_PER_BYTE"});
  for (double capacity : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    std::vector<std::string> row = {FormatDouble(capacity, 0)};
    for (SelectionRule rule :
         {SelectionRule::kByAccessProb, SelectionRule::kByProbOverLambda,
          SelectionRule::kByPfValuePerByte}) {
      const auto selection =
          SelectMirrorContents(elements, capacity, rule).value();
      row.push_back(
          FormatDouble(OverallPf(elements, selection, bandwidth), 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: at tight capacities the volatility- and size-aware "
      "BY_PF_VALUE_PER_BYTE rule\nwins; as capacity grows toward the full "
      "database the rules converge.\n");
  return 0;
}
