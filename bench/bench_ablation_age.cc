// Ablation A7 — freshness-optimal vs age-optimal schedules (extension in
// the spirit of the paper's conclusion). The two objectives disagree in a
// structured way: freshness maximization writes off hopelessly volatile
// elements entirely (their F can never be high, so the bandwidth is better
// spent elsewhere), while age minimization never starves anything (the
// first sync of a long-unsynced copy removes unbounded age).
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "opt/age_water_filling.h"
#include "opt/problem.h"
#include "opt/water_filling.h"

namespace {

size_t CountStarved(const std::vector<double>& freqs) {
  size_t starved = 0;
  for (double f : freqs) {
    if (f <= 0.0) ++starved;
  }
  return starved;
}

}  // namespace

int main() {
  using namespace freshen;
  std::printf("== Ablation A7: freshness-optimal vs age-optimal ==\n");
  std::printf("Table 2 setup, shuffled alignment\n\n");

  TableWriter table({"theta", "plan", "perceived freshness", "perceived age",
                     "starved elements"});
  for (double theta : {0.0, 0.8, 1.6}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.theta = theta;
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const CoreProblem problem =
        MakePerceivedProblem(elements, spec.syncs_per_period, false);

    const Allocation pf_plan =
        KktWaterFillingSolver().Solve(problem).value();
    const Allocation age_plan =
        AgeWaterFillingSolver().Solve(problem).value();
    for (const auto& [label, plan] :
         {std::pair<const char*, const Allocation&>{"freshness-optimal",
                                                    pf_plan},
          std::pair<const char*, const Allocation&>{"age-optimal",
                                                    age_plan}}) {
      table.AddRow({FormatDouble(theta, 1), label,
                    FormatDouble(
                        PerceivedFreshness(elements, plan.frequencies), 4),
                    FormatDouble(PerceivedAge(elements, plan.frequencies), 4),
                    StrFormat("%zu", CountStarved(plan.frequencies))});
    }
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: the freshness optimum abandons volatile elements entirely — "
      "and since every\nelement has nonzero access probability, its "
      "perceived age is INFINITE. The age\noptimum keeps every copy bounded-"
      "stale at a modest perceived-freshness cost.\n");
  return 0;
}
