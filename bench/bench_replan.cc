// Replan-latency bench — the DeltaReplanner's reason to exist, measured.
//
// A live catalog churns continuously; the question is what a period-boundary
// replan costs as a function of how much actually changed. This bench sweeps
// churn (0.01% .. 10% of the catalog per replan) against catalog size under
// two churn shapes:
//   * tail    — the batch halves the weights of already-unfunded elements
//               (cold items getting colder). The flip point provably cannot
//               move, so the replanner should stay on its kPinned path:
//               O(dirty) work, no probes, sub-millisecond state updates.
//   * uniform — the batch jitters weight and change rate of uniformly random
//               elements (+-5%). The flip moves, forcing kWarm (a few probes
//               from the cached flip) or kFull above the churn threshold.
// Every step also runs a cold scan solve of the identical updated problem
// and memcmp-compares the materialized allocation against it.
//
// Hard gates, enforced by exit code (quick mode is wired into ctest as
// bench_replan_smoke):
//   * byte_match: every (n, churn, pattern, step) cell must materialize the
//     cold solver's exact bytes — frequencies, multiplier, objective, and
//     bandwidth_used. Hardware-independent; always enforced.
//   * tail-churn latency: at churn <= 0.1% the pinned-path p50 state update
//     must come in under 1 ms. Timing gates are only meaningful with real
//     parallel hardware, so this one arms on machines with >= 4 hardware
//     threads and is skipped (with a note) on narrower ones.
// The replan time reported is the Replan() state update alone; materializing
// a full frequency vector is an O(N) write measured in its own column (a
// serving layer pays it per shard, not per replan — see docs/replanning.md).
// All rows land in BENCH_replan.json with hardware concurrency recorded.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "opt/delta_replan.h"
#include "opt/problem.h"
#include "opt/water_filling.h"

namespace {

using namespace freshen;

struct ReplanRow {
  size_t n = 0;
  double churn = 0.0;
  std::string pattern;  // "tail" | "uniform".
  size_t steps = 0;
  size_t pinned = 0, warm = 0, full = 0;  // Path counts over the steps.
  double p50_replan_s = 0.0;
  double p95_replan_s = 0.0;
  double p50_materialize_s = 0.0;
  double p50_cold_s = 0.0;
  double speedup_p50 = 0.0;  // cold p50 / replan p50.
  bool byte_match = true;
};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameAllocation(const Allocation& a, const Allocation& b) {
  if (a.frequencies.size() != b.frequencies.size()) return false;
  if (!a.frequencies.empty() &&
      std::memcmp(a.frequencies.data(), b.frequencies.data(),
                  a.frequencies.size() * sizeof(double)) != 0) {
    return false;
  }
  return SameBits(a.multiplier, b.multiplier) &&
         SameBits(a.objective, b.objective) &&
         SameBits(a.bandwidth_used, b.bandwidth_used);
}

// Same synthetic family as bench_solver_scaling: heavy-tailed weights,
// log-uniform change rates over 4 decades, bandwidth for half the catalog.
CoreProblem SyntheticProblem(size_t n) {
  std::mt19937_64 rng(0x5CA1AB1Eu + n);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  CoreProblem problem;
  problem.weights.resize(n);
  problem.change_rates.resize(n);
  problem.costs.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    problem.weights[i] = 1.0 / std::pow(1.0 + u(rng) * 999.0, 0.8);
    problem.change_rates[i] = std::exp2(-6.0 + 12.0 * u(rng));
  }
  problem.bandwidth = 0.5 * static_cast<double>(n);
  return problem;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t k = std::min(
      samples.size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples.size() - 1) + 0.5));
  return samples[k];
}

void WriteJson(const std::vector<ReplanRow>& rows, const char* path) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file, "{\n  \"hardware_threads\": %zu,\n  \"rows\": [\n",
               par::HardwareThreads());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReplanRow& row = rows[i];
    std::fprintf(
        file,
        "    {\"n\": %zu, \"churn\": %g, \"pattern\": \"%s\", "
        "\"steps\": %zu, \"pinned\": %zu, \"warm\": %zu, \"full\": %zu, "
        "\"p50_replan_s\": %.9f, \"p95_replan_s\": %.9f, "
        "\"p50_materialize_s\": %.9f, \"p50_cold_s\": %.9f, "
        "\"speedup_p50\": %.2f, \"byte_match\": %s}%s\n",
        row.n, row.churn, row.pattern.c_str(), row.steps, row.pinned,
        row.warm, row.full, row.p50_replan_s, row.p95_replan_s,
        row.p50_materialize_s, row.p50_cold_s, row.speedup_p50,
        row.byte_match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::printf("wrote %zu rows to %s\n", rows.size(), path);
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const size_t hardware_threads = par::HardwareThreads();
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{100000}
            : std::vector<size_t>{1000000, 10000000};
  const std::vector<double> churns = {0.0001, 0.001, 0.01, 0.1};

  std::printf("== Incremental replan latency vs churn ==\n");
  std::printf(
      "hardware threads: %zu; every step is memcmp-gated against a cold "
      "scan solve\nof the identical problem.\n\n",
      hardware_threads);

  TableWriter table({"N", "churn", "pattern", "paths (p/w/f)", "replan p50",
                     "replan p95", "materialize p50", "cold p50", "speedup",
                     "bytes"});
  std::vector<ReplanRow> rows;
  bool gate_failed = false;

  for (size_t n : sizes) {
    // Each step pays a full cold reference solve (~2.3 s/M single-threaded),
    // so the step budget shrinks with N to keep the full run bounded.
    const size_t steps = quick ? 5 : (n >= 10000000 ? 3 : 11);
    const CoreProblem base = SyntheticProblem(n);

    // Unfunded elements (active but zero frequency in the cold plan): the
    // tail-churn batches draw from these, so the flip provably stays put.
    std::vector<size_t> unfunded;
    {
      KktWaterFillingSolver::Options options;
      options.threads = hardware_threads;
      const Allocation cold =
          KktWaterFillingSolver(options).Solve(base).value();
      for (size_t i = 0; i < n; ++i) {
        if (cold.frequencies[i] == 0.0 && base.weights[i] > 0.0 &&
            base.change_rates[i] > 0.0) {
          unfunded.push_back(i);
        }
      }
    }

    for (const char* pattern : {"tail", "uniform"}) {
      const bool tail = std::strcmp(pattern, "tail") == 0;
      for (double churn : churns) {
        const size_t dirty = std::max<size_t>(
            1, static_cast<size_t>(churn * static_cast<double>(n)));
        if (tail && dirty > unfunded.size()) continue;  // Not enough tail.

        DeltaReplanner::Options options;
        options.threads = hardware_threads;
        auto replanner = DeltaReplanner::Create(base, options).value();
        CoreProblem mirror = base;  // Cold solver's copy of the problem.
        KktWaterFillingSolver::Options cold_options;
        cold_options.threads = hardware_threads;
        const KktWaterFillingSolver cold_solver(cold_options);

        std::mt19937_64 rng(0xC0FFEEu ^ n ^ dirty ^ (tail ? 1 : 0));
        std::uniform_real_distribution<double> u(-0.05, 0.05);
        ReplanRow row;
        row.n = n;
        row.churn = churn;
        row.pattern = pattern;
        row.steps = steps;
        std::vector<double> replan_s, materialize_s, cold_s;

        for (size_t step = 0; step < steps; ++step) {
          std::vector<ElementUpdate> updates;
          updates.reserve(dirty);
          if (tail) {
            // Halve the weight of `dirty` unfunded elements (rotating
            // through the pool so batches differ step to step).
            for (size_t j = 0; j < dirty; ++j) {
              const size_t i = unfunded[(step * dirty + j) % unfunded.size()];
              updates.push_back({i, mirror.weights[i] * 0.5,
                                 mirror.change_rates[i], mirror.costs[i]});
            }
          } else {
            for (size_t j = 0; j < dirty; ++j) {
              const size_t i = rng() % n;
              updates.push_back(
                  {i, mirror.weights[i] * std::exp(u(rng)),
                   mirror.change_rates[i] * std::exp(u(rng)),
                   mirror.costs[i]});
            }
          }
          WallTimer timer;
          const DeltaReplanner::ReplanResult result =
              replanner->Replan(updates).value();
          replan_s.push_back(timer.ElapsedSeconds());
          switch (result.path) {
            case ReplanPath::kPinned: ++row.pinned; break;
            case ReplanPath::kWarm: ++row.warm; break;
            case ReplanPath::kFull: ++row.full; break;
          }

          WallTimer mat_timer;
          const Allocation materialized = replanner->MaterializeAllocation();
          materialize_s.push_back(mat_timer.ElapsedSeconds());

          // Cold reference on the identical problem (last write wins, same
          // as the replanner's batch semantics).
          for (const ElementUpdate& update : updates) {
            mirror.weights[update.index] = update.weight;
            mirror.change_rates[update.index] = update.change_rate;
            mirror.costs[update.index] = update.cost;
          }
          WallTimer cold_timer;
          const Allocation reference = cold_solver.Solve(mirror).value();
          cold_s.push_back(cold_timer.ElapsedSeconds());
          if (!SameAllocation(materialized, reference)) {
            std::fprintf(stderr,
                         "FAIL: delta != cold bytes at n=%zu churn=%g "
                         "pattern=%s step=%zu\n",
                         n, churn, pattern, step);
            row.byte_match = false;
            gate_failed = true;
          }
        }

        row.p50_replan_s = Percentile(replan_s, 0.50);
        row.p95_replan_s = Percentile(replan_s, 0.95);
        row.p50_materialize_s = Percentile(materialize_s, 0.50);
        row.p50_cold_s = Percentile(cold_s, 0.50);
        row.speedup_p50 = row.p50_replan_s > 0.0
                              ? row.p50_cold_s / row.p50_replan_s
                              : 0.0;
        if (tail && churn <= 0.001 && hardware_threads >= 4 &&
            row.p50_replan_s >= 1e-3) {
          std::fprintf(stderr,
                       "FAIL: tail-churn p50 %.3f ms >= 1 ms at n=%zu "
                       "churn=%g on a %zu-thread machine\n",
                       row.p50_replan_s * 1e3, n, churn, hardware_threads);
          gate_failed = true;
        }
        table.AddRow({StrFormat("%zu", n), StrFormat("%g", churn), pattern,
                      StrFormat("%zu/%zu/%zu", row.pinned, row.warm,
                                row.full),
                      StrFormat("%.3f ms", row.p50_replan_s * 1e3),
                      StrFormat("%.3f ms", row.p95_replan_s * 1e3),
                      StrFormat("%.3f ms", row.p50_materialize_s * 1e3),
                      StrFormat("%.3f ms", row.p50_cold_s * 1e3),
                      StrFormat("%.0fx", row.speedup_p50),
                      row.byte_match ? "yes" : "NO"});
        rows.push_back(row);
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  if (hardware_threads >= 4) {
    std::printf(
        "reading: tail churn stays pinned (no probes, O(dirty) work) and is "
        "gated\nsub-millisecond at <= 0.1%% churn; uniform churn moves the "
        "flip and pays the\nO(active) warm re-derivation. The bytes column "
        "is the contract: the delta\npath is an optimization, never a "
        "different answer.\n");
  } else {
    std::printf(
        "reading: this machine exposes %zu hardware thread(s), so the "
        "sub-millisecond\ntail-churn gate is skipped (it arms at >= 4 "
        "threads); latencies here measure a\nsingle oversubscribed core. "
        "The bytes column is hardware-independent and\nstill gates.\n",
        hardware_threads);
  }
  WriteJson(rows, "BENCH_replan.json");
  return gate_failed ? 1 : 0;
}
