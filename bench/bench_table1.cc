// Reproduces Table 1 of the paper: optimal synchronization frequencies for
// the five-element toy example (change rates 1..5 per day, bandwidth 5
// syncs/day) under the uniform profile P1, the proportional profile P2, and
// the reverse profile P3.
//
// Paper values:
//   (a) change freq    1     2     3     4     5
//   (b) sync freq (P1) 1.15  1.36  1.35  1.14  0.00
//   (c) sync freq (P2) 0.33  0.67  1.00  1.33  1.67
//   (d) sync freq (P3) 1.68  1.83  1.49  0.00  0.00
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/element.h"
#include "opt/problem.h"
#include "opt/water_filling.h"

namespace {

std::vector<double> Solve(const std::vector<double>& probs) {
  const freshen::ElementSet elements =
      freshen::MakeElementSet({1.0, 2.0, 3.0, 4.0, 5.0}, probs);
  freshen::KktWaterFillingSolver solver;
  auto allocation =
      solver.Solve(freshen::MakePerceivedProblem(elements, 5.0));
  return std::move(allocation).value().frequencies;
}

}  // namespace

int main() {
  std::printf("== Table 1: optimal sync frequencies for the toy example ==\n");
  std::printf("N = 5 elements, change rates 1..5 /day, bandwidth 5 /day\n\n");

  freshen::TableWriter table(
      {"row", "e1", "e2", "e3", "e4", "e5"});
  table.AddRow({"(a) change freq", "1", "2", "3", "4", "5"});

  const std::vector<std::pair<const char*, std::vector<double>>> profiles = {
      {"(b) sync freq (P1 uniform)", {0.2, 0.2, 0.2, 0.2, 0.2}},
      {"(c) sync freq (P2 aligned)",
       {1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15}},
      {"(d) sync freq (P3 reverse)",
       {5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15}},
  };
  for (const auto& [label, probs] : profiles) {
    const std::vector<double> freqs = Solve(probs);
    std::vector<std::string> row = {label};
    for (double f : freqs) row.push_back(freshen::FormatDouble(f, 2));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "paper: (b) 1.15 1.36 1.35 1.14 0.00 | (c) 0.33 0.67 1.00 1.33 1.67 | "
      "(d) 1.68 1.83 1.49 0.00 0.00\n");
  return 0;
}
