// Reproduces Figure 2: the alignment options between the access-frequency
// and change-frequency distributions. The paper's figure is a schematic;
// here we print the *actual* generated distributions (Table 2 setup,
// theta = 1.0) over rank deciles for each alignment so the three
// configurations are concrete.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "stats/descriptive.h"

int main() {
  using namespace freshen;
  std::printf("== Figure 2: alignment options (generated, Table 2 setup) ==\n");
  std::printf(
      "mean access probability and change rate per rank decile; element 0 is "
      "the hottest\n\n");

  for (Alignment alignment :
       {Alignment::kAligned, Alignment::kReverse, Alignment::kShuffled}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.theta = 1.0;
    spec.alignment = alignment;
    const ElementSet elements = bench::MustCatalog(spec);
    const size_t n = elements.size();
    TableWriter table({"rank decile", "mean access prob", "mean change rate"});
    for (size_t d = 0; d < 10; ++d) {
      const size_t lo = d * n / 10;
      const size_t hi = (d + 1) * n / 10;
      RunningStats p_stats;
      RunningStats l_stats;
      for (size_t i = lo; i < hi; ++i) {
        p_stats.Add(elements[i].access_prob);
        l_stats.Add(elements[i].change_rate);
      }
      table.AddRow({StrFormat("%zu-%zu", lo, hi - 1),
                    FormatDouble(p_stats.Mean(), 5),
                    FormatDouble(l_stats.Mean(), 3)});
    }
    std::printf("-- %s --\n%s\n", ToString(alignment).c_str(),
                table.ToText().c_str());
  }
  std::printf(
      "reading: 'aligned' pairs hot ranks with high change rates, 'reverse' "
      "with low ones,\n'shuffled' shows no rank trend in change rate.\n");
  return 0;
}
