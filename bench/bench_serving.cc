// Serving-path benchmark for the freshend daemon: is snapshot isolation
// actually free for readers, and does the binary catalog pay for itself?
//
// Part 1 — catalog load: the same catalog is written as CSV and as a
// FRSHCAT1 binary file, then loaded (median of 3) through the text parser
// and through MmapCatalog::Open (mmap + CRC validation, zero copies). The
// full-size run gates the binary path at >= 10x the CSV parse; the quick
// run records the ratio without gating (fixed open/validate overheads
// dominate at shrunk sizes).
//
// Part 2 — query latency under churn: a FreshendDaemon hosts the catalog
// while its online loop replans and syncs through a fault-injecting
// executor; reader threads issue IsFresh/ExpectedAge/GetPlan against
// Zipf-distributed element ids at a sweep of target rates (closed loop,
// per-op latency measured over 16-query batches to keep clock overhead out
// of the tails). Every reader periodically pins a snapshot and recomputes
// its digests; a single inconsistent read fails the bench on any hardware.
// The p99 < 10x p50 tail gate is enforced on machines with >= 4 hardware
// threads — on narrower machines readers share a core with the publisher
// and the tail measures scheduler preemption, not the serving path (same
// hardware-gating convention as bench_solver_scaling).
//
// Results land in BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "io/catalog_binary.h"
#include "io/catalog_io.h"
#include "obs/metrics.h"
#include "rng/zipf.h"
#include "serve/daemon.h"
#include "sync/executor.h"
#include "sync/source.h"

namespace {

using namespace freshen;

constexpr int kBatch = 16;  // Queries per timed batch.

struct LoadResult {
  size_t n = 0;
  double csv_seconds = 0.0;
  double mmap_seconds = 0.0;
  double speedup = 0.0;
};

struct PhaseResult {
  double target_qps = 0.0;  // 0 = unthrottled.
  double achieved_qps = 0.0;
  uint64_t queries = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double ratio = 0.0;  // p99 / p50.
  uint64_t consistency_checks = 0;
  uint64_t inconsistent = 0;
};

double MedianOf3(double a, double b, double c) {
  double s[3] = {a, b, c};
  std::sort(s, s + 3);
  return s[1];
}

template <typename Fn>
double MedianSeconds(Fn&& fn) {
  double s[3];
  for (double& v : s) {
    WallTimer timer;
    fn();
    v = timer.ElapsedSeconds();
  }
  return MedianOf3(s[0], s[1], s[2]);
}

LoadResult BenchCatalogLoad(const ElementSet& catalog) {
  const std::string csv_path = "bench_serving_catalog.csv";
  const std::string bin_path = "bench_serving_catalog.fcat";
  if (const Status saved = SaveCatalogCsv(catalog, csv_path); !saved.ok()) {
    std::fprintf(stderr, "save csv: %s\n", saved.ToString().c_str());
    std::abort();
  }
  if (const Status saved = SaveCatalogBinary(catalog, bin_path);
      !saved.ok()) {
    std::fprintf(stderr, "save binary: %s\n", saved.ToString().c_str());
    std::abort();
  }

  LoadResult result;
  result.n = catalog.size();
  // Warm both files into the page cache so the comparison is parse cost,
  // not first-touch disk latency.
  (void)ReadFileToString(csv_path).value();
  (void)ReadFileToString(bin_path).value();

  size_t csv_elements = 0;
  result.csv_seconds = MedianSeconds([&] {
    csv_elements = LoadCatalogCsv(csv_path).value().size();
  });
  size_t mmap_elements = 0;
  result.mmap_seconds = MedianSeconds([&] {
    MmapCatalog mapped = MmapCatalog::Open(bin_path).value();
    mmap_elements = mapped.size();
    // Touch one element per column so the mapping is demonstrably usable.
    volatile double sink = mapped.change_rates()[mapped.size() - 1] +
                           mapped.access_probs()[0] + mapped.sizes()[0];
    (void)sink;
  });
  if (csv_elements != catalog.size() || mmap_elements != catalog.size()) {
    std::fprintf(stderr, "load size mismatch\n");
    std::abort();
  }
  result.speedup =
      result.mmap_seconds > 0.0 ? result.csv_seconds / result.mmap_seconds
                                : 0.0;
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  return result;
}

// One closed-loop measurement phase against a running daemon.
PhaseResult RunPhase(serve::FreshendDaemon* daemon, double target_qps,
                     double duration_seconds, int readers, double theta) {
  const size_t n = daemon->size();
  const std::vector<double> probabilities = ZipfProbabilities(n, theta);

  std::atomic<uint64_t> inconsistent{0};
  std::atomic<uint64_t> checks{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::vector<double>> latencies(readers);  // Seconds per op.
  const double per_reader_qps =
      target_qps > 0.0 ? target_qps / readers : 0.0;

  std::vector<std::thread> threads;
  WallTimer phase_timer;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(0xF5E5Du + static_cast<uint64_t>(r));
      std::discrete_distribution<size_t> zipf(probabilities.begin(),
                                              probabilities.end());
      std::vector<double>& samples = latencies[r];
      samples.reserve(1 << 16);
      WallTimer reader_timer;
      uint64_t issued = 0;
      while (reader_timer.ElapsedSeconds() < duration_seconds) {
        WallTimer batch_timer;
        for (int q = 0; q < kBatch; ++q) {
          const size_t id = zipf(rng);
          bool ok = true;
          switch ((issued + q) % 3) {
            case 0: ok = daemon->IsFresh(id).ok(); break;
            case 1: ok = daemon->ExpectedAge(id).ok(); break;
            default: ok = daemon->GetPlan(id).ok(); break;
          }
          if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
        }
        samples.push_back(batch_timer.ElapsedSeconds() / kBatch);
        issued += kBatch;
        // Sampled reader-side verification: pin a snapshot and recompute
        // its per-shard digests (torn publication => digest mismatch).
        if (samples.size() % 512 == 0) {
          serve::SnapshotRef snapshot = daemon->AcquireSnapshot();
          checks.fetch_add(1, std::memory_order_relaxed);
          if (snapshot && !snapshot->CheckConsistent()) {
            inconsistent.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (per_reader_qps > 0.0) {
          const double ahead = static_cast<double>(issued) / per_reader_qps -
                               reader_timer.ElapsedSeconds();
          // Coalesce pacing sleeps to >= 2 ms: sleeping after every batch
          // would charge a scheduler wakeup to the next batch's latency,
          // polluting the tail with throttle jitter instead of serving
          // behavior.
          if (ahead > 0.002) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ahead));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = phase_timer.ElapsedSeconds();

  std::vector<double> merged;
  for (const std::vector<double>& v : latencies) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  std::sort(merged.begin(), merged.end());

  PhaseResult result;
  result.target_qps = target_qps;
  result.queries = static_cast<uint64_t>(merged.size()) * kBatch;
  result.achieved_qps =
      elapsed > 0.0 ? static_cast<double>(result.queries) / elapsed : 0.0;
  if (!merged.empty()) {
    result.p50_us = merged[merged.size() / 2] * 1e6;
    result.p99_us = merged[(merged.size() * 99) / 100] * 1e6;
    result.ratio =
        result.p50_us > 0.0 ? result.p99_us / result.p50_us : 0.0;
  }
  result.consistency_checks = checks.load();
  result.inconsistent = inconsistent.load() + failures.load();
  return result;
}

// Approximate p99 from histogram buckets: the upper bound of the first
// bucket whose cumulative count crosses 99%.
double ApproxP99(const obs::MetricSample& sample) {
  if (sample.count == 0) return 0.0;
  const uint64_t threshold =
      (sample.count * 99 + 99) / 100;  // ceil(0.99 * count).
  uint64_t cumulative = 0;
  for (size_t i = 0; i < sample.bucket_counts.size(); ++i) {
    cumulative += sample.bucket_counts[i];
    if (cumulative >= threshold) {
      return i < sample.bounds.size() ? sample.bounds[i]
                                      : sample.bounds.back();
    }
  }
  return sample.bounds.empty() ? 0.0 : sample.bounds.back();
}

void WriteJson(const LoadResult& load, const std::vector<PhaseResult>& phases,
               int readers, double theta, uint64_t publications,
               double publish_mean, double publish_p99, bool tail_gated,
               const char* path) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file, "{\n  \"hardware_threads\": %zu,\n",
               par::HardwareThreads());
  std::fprintf(file,
               "  \"catalog_load\": {\"n\": %zu, \"csv_seconds\": %.6f, "
               "\"mmap_seconds\": %.6f, \"mmap_speedup\": %.2f},\n",
               load.n, load.csv_seconds, load.mmap_seconds, load.speedup);
  std::fprintf(file,
               "  \"serving\": {\"readers\": %d, \"zipf_theta\": %.2f, "
               "\"tail_gate_enforced\": %s, \"phases\": [\n",
               readers, theta, tail_gated ? "true" : "false");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    std::fprintf(file,
                 "    {\"target_qps\": %.0f, \"achieved_qps\": %.0f, "
                 "\"queries\": %llu, \"p50_us\": %.3f, \"p99_us\": %.3f, "
                 "\"p99_over_p50\": %.2f, \"consistency_checks\": %llu, "
                 "\"inconsistent_reads\": %llu}%s\n",
                 p.target_qps, p.achieved_qps,
                 (unsigned long long)p.queries, p.p50_us, p.p99_us, p.ratio,
                 (unsigned long long)p.consistency_checks,
                 (unsigned long long)p.inconsistent,
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(file,
               "  ]},\n  \"publications\": {\"count\": %llu, "
               "\"mean_seconds\": %.6f, \"approx_p99_seconds\": %.6f}\n}\n",
               (unsigned long long)publications, publish_mean, publish_p99);
  std::fclose(file);
  std::printf("wrote BENCH_serving.json\n");
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const size_t hardware_threads = par::HardwareThreads();
  const size_t n = quick ? 100000 : 1000000;
  const double theta = 0.9;

  std::printf("== freshend serving bench (N = %zu, %zu hardware threads) ==\n",
              n, hardware_threads);

  ExperimentSpec spec;
  spec.num_objects = n;
  spec.theta = theta;
  spec.size_model = SizeModel::kPareto;
  spec.seed = 20030305;
  const ElementSet catalog = bench::MustCatalog(spec);

  // ---- Part 1: CSV parse vs binary mmap --------------------------------
  const LoadResult load = BenchCatalogLoad(catalog);
  std::printf(
      "catalog load (median of 3, warm cache):\n"
      "  csv parse : %.4f s\n  mmap load : %.4f s\n  speedup   : %.1fx\n\n",
      load.csv_seconds, load.mmap_seconds, load.speedup);
  bool gate_failed = false;
  if (!quick && load.speedup < 10.0) {
    std::fprintf(stderr, "FAIL: mmap load %.1fx < 10x CSV parse at N=%zu\n",
                 load.speedup, load.n);
    gate_failed = true;
  }

  // ---- Part 2: query latency under publication churn -------------------
  obs::MetricsRegistry registry;
  sync::SimulatedSource::Options source_options;
  source_options.error_rate = 0.2;
  source_options.stall_rate = 0.05;
  source_options.seed = 99;
  sync::SimulatedSource faulty =
      sync::SimulatedSource::Create(source_options).value();
  sync::SyncExecutor::Options executor_options;
  executor_options.registry = &registry;
  executor_options.seed = 100;
  auto executor =
      sync::SyncExecutor::Create(&faulty, executor_options).value();

  serve::FreshendDaemon::Options options;
  options.loop.accesses_per_period = 2000.0;
  options.loop.seed = 13;
  options.loop.registry = &registry;
  options.loop.executor = executor.get();
  options.loop.controller.replan_every_periods = 4.0;
  options.period_seconds = 0.02;  // Publication churn during measurement.
  options.max_periods = 0;        // Runs until Stop().
  options.registry = &registry;
  auto daemon = serve::FreshendDaemon::Create(
                    catalog, 0.02 * static_cast<double>(n), options)
                    .value();
  if (const Status started = daemon->Start(); !started.ok()) {
    std::fprintf(stderr, "daemon start: %s\n", started.ToString().c_str());
    return 1;
  }

  const int readers =
      static_cast<int>(std::min<size_t>(4, std::max<size_t>(2, hardware_threads)));
  const double phase_seconds = quick ? 0.5 : 2.0;
  const std::vector<double> rates =
      quick ? std::vector<double>{20000.0, 0.0}
            : std::vector<double>{50000.0, 200000.0, 0.0};

  TableWriter table({"target qps", "achieved qps", "p50 us", "p99 us",
                     "p99/p50", "checks", "inconsistent"});
  std::vector<PhaseResult> phases;
  for (double rate : rates) {
    const PhaseResult phase =
        RunPhase(daemon.get(), rate, phase_seconds, readers, theta);
    table.AddRow({rate > 0.0 ? StrFormat("%.0f", rate) : "max",
                  StrFormat("%.0f", phase.achieved_qps),
                  FormatDouble(phase.p50_us, 3),
                  FormatDouble(phase.p99_us, 3),
                  StrFormat("%.2fx", phase.ratio),
                  StrFormat("%llu", (unsigned long long)phase.consistency_checks),
                  StrFormat("%llu", (unsigned long long)phase.inconsistent)});
    phases.push_back(phase);
  }
  daemon->Stop();

  const serve::DaemonStats stats = daemon->Stats();
  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const obs::MetricSample* publish =
      snapshot.Find("freshen_serve_publish_seconds");
  const double publish_mean =
      (publish != nullptr && publish->count > 0)
          ? publish->sum / static_cast<double>(publish->count)
          : 0.0;
  const double publish_p99 = publish != nullptr ? ApproxP99(*publish) : 0.0;

  std::printf("%zu readers, Zipf(%.1f) keys, %.1f s per phase:\n%s\n",
              (size_t)readers, theta, phase_seconds,
              table.ToText().c_str());
  std::printf(
      "publications: %llu over %llu periods (mean %.4f s, ~p99 %.4f s "
      "per publication)\n",
      (unsigned long long)stats.store.publications,
      (unsigned long long)stats.periods, publish_mean, publish_p99);

  // Gates. Torn or failed reads fail the bench anywhere; the tail-latency
  // gate needs enough cores that readers are not timesharing with the
  // publisher thread.
  const bool tail_gated = hardware_threads >= 4;
  uint64_t total_inconsistent = 0;
  for (const PhaseResult& phase : phases) {
    total_inconsistent += phase.inconsistent;
    if (tail_gated && phase.ratio >= 10.0) {
      std::fprintf(stderr,
                   "FAIL: p99 %.3f us >= 10x p50 %.3f us (target qps %.0f)\n",
                   phase.p99_us, phase.p50_us, phase.target_qps);
      gate_failed = true;
    }
  }
  if (total_inconsistent != 0) {
    std::fprintf(stderr, "FAIL: %llu inconsistent reads\n",
                 (unsigned long long)total_inconsistent);
    gate_failed = true;
  }
  if (!tail_gated) {
    std::printf(
        "note: %zu hardware thread(s) < 4 -- readers timeshare with the "
        "publisher, so the\np99 < 10x p50 gate is recorded but not "
        "enforced on this machine.\n",
        hardware_threads);
  }

  WriteJson(load, phases, readers, theta, stats.store.publications,
            publish_mean, publish_p99, tail_gated, "BENCH_serving.json");
  return gate_failed ? 1 : 0;
}
