// Ablation A2: synchronization-order policies. The paper adopts the Fixed
// Order policy because [5] showed it best; this bench validates that choice
// inside our stack by executing the SAME optimal frequency allocation under
// (a) fixed regular intervals and (b) memoryless (Poisson) sync instants,
// in both the analytic model and the discrete-event simulator.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "model/metrics.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "sim/simulator.h"

namespace {

using namespace freshen;

// Empirical perceived freshness when sync instants for each element form a
// Poisson process of its rate (instead of the regular fixed-order grid).
// Implemented by re-sampling each element's sync times exponentially and
// reusing the analytic Poisson-policy formula as the cross-check.
double SimulatePoissonPolicy(const ElementSet& elements,
                             const std::vector<double>& frequencies,
                             uint64_t seed) {
  // Analytic per-element expectation, weighted by the profile; the DES
  // validates the fixed-order side, the closed form covers this one (the
  // memoryless policy is exactly solvable).
  (void)seed;
  double pf = 0.0;
  for (size_t i = 0; i < elements.size(); ++i) {
    pf += elements[i].access_prob *
          PoissonSyncFreshness(frequencies[i], elements[i].change_rate);
  }
  return pf;
}

}  // namespace

int main() {
  std::printf("== Ablation A2: sync-order policies ==\n");
  std::printf(
      "same optimal frequency vector executed under different orderings\n\n");

  TableWriter table({"theta", "fixed-order (analytic)", "fixed-order (sim)",
                     "poisson (analytic)", "poisson (sim)", "advantage"});
  for (double theta : {0.0, 0.8, 1.6}) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.num_objects = 100;
    spec.syncs_per_period = 50.0;
    spec.theta = theta;
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);
    const FreshenPlan plan =
        bench::MustPlan({}, elements, spec.syncs_per_period);

    SimulationConfig config;
    config.horizon_periods = 150.0;
    config.accesses_per_period = 3000.0;
    MirrorSimulator simulator(elements, config);
    const double fixed_sim = simulator.Run(plan.frequencies)
                                 .value()
                                 .empirical_perceived_freshness;
    const double fixed_analytic =
        PerceivedFreshness(elements, plan.frequencies);
    const double poisson_analytic =
        SimulatePoissonPolicy(elements, plan.frequencies, 7);
    SimulationConfig poisson_config = config;
    poisson_config.sync_policy = SyncPolicy::kPoisson;
    const double poisson_sim =
        MirrorSimulator(elements, poisson_config)
            .Run(plan.frequencies)
            .value()
            .empirical_perceived_freshness;
    table.AddRow({FormatDouble(theta, 1), FormatDouble(fixed_analytic, 4),
                  FormatDouble(fixed_sim, 4),
                  FormatDouble(poisson_analytic, 4),
                  FormatDouble(poisson_sim, 4),
                  StrFormat("%+.1f%%", 100.0 * (fixed_analytic /
                                                    poisson_analytic -
                                                1.0))});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: regular fixed-order intervals beat memoryless scheduling at "
      "every skew —\nthe [5] result the paper builds on.\n");
  return 0;
}
