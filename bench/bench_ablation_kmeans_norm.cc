// Ablation A5 — the k-means distance normalization. Footnote 6 of the paper
// normalizes the lambda coordinate; this bench shows WHY: with sum-to-one
// normalization both axes are commensurate with the (sum-to-one) access
// probabilities and the refinement helps, while max-to-one or raw lambda
// lets the change-rate axis dominate the Euclidean distance and the
// "refinement" can destroy the p-structure of the initial PF partitions.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "partition/kmeans.h"

int main() {
  using namespace freshen;
  std::printf("== Ablation A5: k-means lambda normalization ==\n");
  std::printf("Table 2 setup, shuffled, PF-partitioning start, K = 25\n\n");

  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.theta = 1.0;
  spec.alignment = Alignment::kShuffled;
  const ElementSet elements = bench::MustCatalog(spec);

  TableWriter table({"iterations", "sum-to-one (paper)", "max-to-one",
                     "raw lambda"});
  for (int iterations : {0, 1, 3, 5, 10}) {
    std::vector<std::string> row = {StrFormat("%d", iterations)};
    for (LambdaNormalization norm :
         {LambdaNormalization::kSumToOne, LambdaNormalization::kMaxToOne,
          LambdaNormalization::kNone}) {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = PartitionKey::kPerceivedFreshness;
      options.num_partitions = 25;
      options.kmeans_iterations = iterations;
      options.kmeans_options.lambda_normalization = norm;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "reading: only the sum-to-one normalization (footnote 6) makes k-means "
      "iterations\nimprove perceived freshness; lambda-dominated distances "
      "make it regress.\n");
  return 0;
}
