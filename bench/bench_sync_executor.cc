// Sync-executor throughput bench. Two questions:
//   1. How does executor throughput (tasks/sec of wall time) scale with pool
//      size and queue depth against a lossy, jittery SimulatedSource?
//   2. Does routing the online loop through a PerfectSource executor cost
//      anything versus the inline-sync path (the "zero regression" check)?
//   3. What does enabling the obs flight recorder cost on the commit-heavy
//      path (written to BENCH_recorder.json; budget is <= 5%)?
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/table_writer.h"
#include "mirror/online_loop.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sync/executor.h"
#include "sync/source.h"

namespace {

using namespace freshen;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SimulatedSource computes latency as a number without consuming wall time
// (that's what makes tests deterministic). For a throughput bench the fetch
// must really occupy the worker, so this wrapper sleeps the sampled latency.
class SleepingSource final : public sync::Source {
 public:
  explicit SleepingSource(sync::SimulatedSource inner)
      : inner_(std::move(inner)) {}

  sync::FetchResult Fetch(const sync::FetchRequest& request) override {
    const sync::FetchResult result = inner_.Fetch(request);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(result.latency_seconds));
    return result;
  }
  const char* name() const override { return "sleeping"; }

 private:
  sync::SimulatedSource inner_;
};

std::vector<sync::SyncTask> MakeBatch(size_t tasks) {
  std::vector<sync::SyncTask> batch;
  batch.reserve(tasks);
  for (size_t i = 0; i < tasks; ++i) {
    batch.push_back(
        {i % 512, static_cast<double>(i) / static_cast<double>(tasks), 1.0});
  }
  return batch;
}

// Runs `batches` Execute calls and returns wall-clock tasks/sec.
struct ThroughputResult {
  double tasks_per_second = 0.0;
  uint64_t applied = 0;
  uint64_t failed = 0;
  uint64_t dropped = 0;
};

ThroughputResult MeasureThroughput(size_t pool_size, size_t queue_capacity,
                                   size_t tasks_per_batch, int batches) {
  obs::MetricsRegistry registry;
  sync::SimulatedSource::Options source_options;
  source_options.base_latency_seconds = 100e-6;
  source_options.mean_jitter_seconds = 100e-6;
  source_options.error_rate = 0.05;
  SleepingSource source(sync::SimulatedSource::Create(source_options).value());

  sync::SyncExecutor::Options options;
  options.num_threads = pool_size;
  options.queue_capacity = queue_capacity;
  options.registry = &registry;
  auto executor = sync::SyncExecutor::Create(&source, options).value();

  ThroughputResult result;
  const double start = NowSeconds();
  for (int batch = 0; batch < batches; ++batch) {
    executor->Execute(MakeBatch(tasks_per_batch));
    result.applied += executor->last_stats().applied;
    result.failed += executor->last_stats().failed;
    result.dropped += executor->last_stats().dropped;
  }
  const double elapsed = NowSeconds() - start;
  result.tasks_per_second =
      static_cast<double>(tasks_per_batch) * batches / elapsed;
  return result;
}

// One period-loop run to completion; returns wall seconds.
double TimeLoop(const ElementSet& truth, sync::SyncExecutor* executor,
                int periods, double* pf_sum) {
  obs::MetricsRegistry registry;
  OnlineFreshenLoop::Options options;
  options.accesses_per_period = 2000.0;
  options.seed = 1234;
  options.registry = &registry;
  options.executor = executor;
  auto loop = OnlineFreshenLoop::Create(truth, /*bandwidth=*/80.0, options);
  if (!loop.ok()) {
    std::fprintf(stderr, "loop creation failed: %s\n",
                 loop.status().ToString().c_str());
    std::abort();
  }
  *pf_sum = 0.0;
  const double start = NowSeconds();
  for (int period = 0; period < periods; ++period) {
    *pf_sum += loop.value().RunPeriod().perceived_freshness;
  }
  return NowSeconds() - start;
}

// Recorder-overhead probe: the same commit-heavy workload against the
// non-sleeping SimulatedSource, so wall time is all dispatch + commit work
// and the emit path has nowhere to hide behind transport sleeps. The global
// recorder's enabled flag is what freshenctl --trace-out flips.
double MeasureCommitSeconds(size_t tasks_per_batch, int batches) {
  obs::MetricsRegistry registry;
  sync::SimulatedSource::Options source_options;
  source_options.base_latency_seconds = 100e-6;
  source_options.mean_jitter_seconds = 100e-6;
  source_options.error_rate = 0.05;
  auto source = sync::SimulatedSource::Create(source_options).value();

  sync::SyncExecutor::Options options;
  options.num_threads = 4;
  options.queue_capacity = tasks_per_batch;
  options.registry = &registry;
  auto executor = sync::SyncExecutor::Create(&source, options).value();

  const double start = NowSeconds();
  for (int batch = 0; batch < batches; ++batch) {
    executor->Execute(MakeBatch(tasks_per_batch));
  }
  return NowSeconds() - start;
}

}  // namespace

int main() {
  const bool quick = bench::QuickMode();
  const size_t tasks_per_batch = quick ? 500 : 2000;
  const int batches = quick ? 4 : 16;

  std::printf("== Sync executor throughput ==\n");
  std::printf("sleeping SimulatedSource, ~200us mean fetch, 5%% errors; "
              "%zu tasks x %d batches per cell\n\n",
              tasks_per_batch, batches);

  TableWriter scaling({"pool", "queue", "tasks/sec", "applied", "failed",
                       "dropped"});
  for (size_t pool : {1u, 2u, 4u, 8u}) {
    for (size_t queue : {64u, 1024u}) {
      const ThroughputResult r =
          MeasureThroughput(pool, queue, tasks_per_batch, batches);
      scaling.AddRow({std::to_string(pool), std::to_string(queue),
                      std::to_string(static_cast<long long>(r.tasks_per_second)),
                      std::to_string(r.applied), std::to_string(r.failed),
                      std::to_string(r.dropped)});
    }
  }
  std::printf("%s\n", scaling.ToText().c_str());

  std::printf("== PerfectSource fast path vs inline sync ==\n");
  std::printf("same loop seed; the executor path must not regress\n\n");
  ExperimentSpec spec = ExperimentSpec::IdealCase();
  spec.num_objects = quick ? 200 : 1000;
  const ElementSet truth = bench::MustCatalog(spec);
  const int periods = quick ? 10 : 40;

  double inline_pf = 0.0;
  const double inline_seconds = TimeLoop(truth, nullptr, periods, &inline_pf);

  sync::PerfectSource perfect;
  obs::MetricsRegistry executor_registry;
  sync::SyncExecutor::Options executor_options;
  executor_options.registry = &executor_registry;
  auto executor =
      sync::SyncExecutor::Create(&perfect, executor_options).value();
  double executor_pf = 0.0;
  const double executor_seconds =
      TimeLoop(truth, executor.get(), periods, &executor_pf);

  TableWriter parity({"path", "periods", "wall sec", "mean PF"});
  parity.AddRow({"inline", std::to_string(periods),
                 std::to_string(inline_seconds),
                 std::to_string(inline_pf / periods)});
  parity.AddRow({"executor (perfect)", std::to_string(periods),
                 std::to_string(executor_seconds),
                 std::to_string(executor_pf / periods)});
  std::printf("%s\n", parity.ToText().c_str());
  std::printf("PF parity: %s  (overhead: %.1f%%)\n",
              inline_pf == executor_pf ? "EXACT" : "MISMATCH",
              100.0 * (executor_seconds - inline_seconds) /
                  (inline_seconds > 0 ? inline_seconds : 1.0));

  std::printf("\n== Flight-recorder overhead ==\n");
  const size_t recorder_tasks = quick ? 2000 : 20000;
  const int recorder_batches = quick ? 3 : 8;
  std::printf("non-sleeping SimulatedSource, pool 4; %zu tasks x %d batches, "
              "best of 3 reps\n\n",
              recorder_tasks, recorder_batches);
  obs::EventRecorder& recorder = obs::EventRecorder::Global();
  double off_seconds = 1e300;
  double on_seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    recorder.set_enabled(false);
    off_seconds = std::min(off_seconds,
                           MeasureCommitSeconds(recorder_tasks,
                                                recorder_batches));
    recorder.Reset();  // Stats below describe exactly one enabled run.
    recorder.set_enabled(true);
    on_seconds = std::min(on_seconds,
                          MeasureCommitSeconds(recorder_tasks,
                                               recorder_batches));
    recorder.set_enabled(false);
  }
  const obs::EventRecorder::Stats recorder_stats = recorder.stats();
  const double overhead_pct =
      100.0 * (on_seconds - off_seconds) /
      (off_seconds > 0 ? off_seconds : 1.0);
  TableWriter overhead({"recorder", "wall sec", "events emitted", "dropped"});
  overhead.AddRow({"off", std::to_string(off_seconds), "0", "0"});
  overhead.AddRow({"on", std::to_string(on_seconds),
                   std::to_string(recorder_stats.emitted),
                   std::to_string(recorder_stats.dropped)});
  std::printf("%s\n", overhead.ToText().c_str());
  std::printf("recorder overhead: %.1f%% (budget 5%%)\n", overhead_pct);

  if (std::FILE* file = std::fopen("BENCH_recorder.json", "w")) {
    std::fprintf(file,
                 "{\"hardware_threads\": %zu, "
                 "\"off_seconds\": %.6f, \"on_seconds\": %.6f, "
                 "\"overhead_pct\": %.2f, \"events_per_run\": %llu, "
                 "\"dropped_per_run\": %llu, \"tasks_per_batch\": %zu, "
                 "\"batches\": %d}\n",
                 par::HardwareThreads(), off_seconds, on_seconds,
                 overhead_pct,
                 (unsigned long long)recorder_stats.emitted,
                 (unsigned long long)recorder_stats.dropped, recorder_tasks,
                 recorder_batches);
    std::fclose(file);
    std::printf("wrote BENCH_recorder.json\n");
  }
  return inline_pf == executor_pf ? 0 : 1;
}
