// Reproduces Figure 6: sensitivity of the partitioning techniques to the
// Zipf skew theta under shuffled-change alignment (Table 2 setup, fixed
// partition count K = 50 — the paper's "good solution" size; the exact K is
// unstated, see EXPERIMENTS.md).
//
// Expected shape, per the paper: perceived freshness rises with theta for
// all techniques (hot elements absorb the bandwidth); LAMBDA-partitioning
// cannot keep up as theta grows because access probability dominates
// perceived freshness.
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

int main() {
  using namespace freshen;
  std::printf("== Figure 6: partitioning sensitivity to Zipf skew ==\n");
  std::printf("Table 2 setup, shuffled-change, K = 50 partitions\n\n");

  TableWriter table({"theta", "PF_PARTITIONING", "P_PARTITIONING",
                     "LAMBDA_PARTITIONING", "P_OVER_LAMBDA_PARTITIONING",
                     "best_case"});
  for (double theta = 0.2; theta <= 1.601; theta += 0.2) {
    ExperimentSpec spec = ExperimentSpec::IdealCase();
    spec.theta = theta;
    spec.alignment = Alignment::kShuffled;
    const ElementSet elements = bench::MustCatalog(spec);

    std::vector<std::string> row = {FormatDouble(theta, 1)};
    for (PartitionKey key : bench::FigurePartitionKeys()) {
      PlannerOptions options;
      options.mode = PlanMode::kPartitioned;
      options.partition_key = key;
      options.num_partitions = 50;
      const FreshenPlan plan =
          bench::MustPlan(options, elements, spec.syncs_per_period);
      row.push_back(FormatDouble(plan.perceived_freshness, 4));
    }
    row.push_back(
        FormatDouble(bench::BestCasePf(elements, spec.syncs_per_period), 4));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "paper shape: all curves rise with theta; LAMBDA_PARTITIONING trails "
      "the other three,\nfalling further behind as skew grows.\n");
  return 0;
}
