#include "selection/selection.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "model/freshness.h"

namespace freshen {
namespace {

double SelectionScore(SelectionRule rule, const Element& element) {
  switch (rule) {
    case SelectionRule::kByAccessProb:
      return element.access_prob;
    case SelectionRule::kByProbOverLambda:
      return element.change_rate > 0.0
                 ? element.access_prob / element.change_rate
                 : (element.access_prob > 0.0 ? 1e308 : 0.0);
    case SelectionRule::kByPfValuePerByte: {
      FRESHEN_DCHECK(element.size > 0.0);
      const double value =
          element.access_prob *
          FixedOrderFreshness(1.0 / element.size, element.change_rate);
      return value / element.size;
    }
  }
  return 0.0;
}

}  // namespace

std::string ToString(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kByAccessProb:
      return "BY_ACCESS_PROB";
    case SelectionRule::kByProbOverLambda:
      return "BY_P_OVER_LAMBDA";
    case SelectionRule::kByPfValuePerByte:
      return "BY_PF_VALUE_PER_BYTE";
  }
  return "UNKNOWN";
}

Result<MirrorSelection> SelectMirrorContents(const ElementSet& elements,
                                             double storage_capacity,
                                             SelectionRule rule) {
  if (elements.empty()) {
    return Status::InvalidArgument("catalog is empty");
  }
  if (!(storage_capacity > 0.0)) {
    return Status::InvalidArgument("storage capacity must be positive");
  }
  std::vector<size_t> order(elements.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> scores(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    scores[i] = SelectionScore(rule, elements[i]);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  MirrorSelection selection;
  for (size_t i : order) {
    if (selection.storage_used + elements[i].size > storage_capacity) {
      continue;  // Does not fit; try smaller, lower-ranked objects.
    }
    selection.chosen.push_back(i);
    selection.storage_used += elements[i].size;
    selection.access_coverage += elements[i].access_prob;
  }
  return selection;
}

ElementSet Subcatalog(const ElementSet& elements,
                      const std::vector<size_t>& chosen) {
  ElementSet sub;
  sub.reserve(chosen.size());
  for (size_t i : chosen) {
    FRESHEN_CHECK(i < elements.size());
    sub.push_back(elements[i]);
  }
  return sub;
}

}  // namespace freshen
