// Mirror selection — the paper's §7 future-work direction: "this could
// influence which objects we include in the mirror when the mirror is
// smaller than the database". Given a catalog and a storage capacity, choose
// which objects to host so that the subsequent freshening plan maximizes
// perceived freshness; objects not hosted contribute zero freshness to the
// accesses that target them.
#ifndef FRESHEN_SELECTION_SELECTION_H_
#define FRESHEN_SELECTION_SELECTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// Scoring rules for greedy selection.
enum class SelectionRule {
  /// Most-accessed first (pure popularity).
  kByAccessProb,
  /// Highest p/lambda first (popular and cheap to keep fresh).
  kByProbOverLambda,
  /// Highest achievable perceived-freshness value per unit of storage,
  /// p * F(f0/s, lambda) / s with f0 = 1 (size- and volatility-aware).
  kByPfValuePerByte,
};

/// Returns a short label for the rule.
std::string ToString(SelectionRule rule);

/// Result of a selection pass.
struct MirrorSelection {
  /// Chosen element indices, in selection order.
  std::vector<size_t> chosen;
  /// Total size of the chosen objects.
  double storage_used = 0.0;
  /// Sum of access probability covered by the chosen objects (an upper
  /// bound on achievable perceived freshness).
  double access_coverage = 0.0;
};

/// Greedily fills `storage_capacity` (in size units) with objects ranked by
/// `rule`. Objects that do not fit are skipped (best-fit-decreasing style
/// continuation). Fails on empty catalogs or non-positive capacity.
Result<MirrorSelection> SelectMirrorContents(const ElementSet& elements,
                                             double storage_capacity,
                                             SelectionRule rule);

/// Restricts a catalog to the chosen elements: unchosen elements keep their
/// access probability (users still ask for them!) but are marked with
/// change_rate untouched and size untouched; use `chosen` to build the
/// sub-catalog for planning. Returns the sub-catalog plus a mapping from
/// sub-index to original index.
ElementSet Subcatalog(const ElementSet& elements,
                      const std::vector<size_t>& chosen);

}  // namespace freshen

#endif  // FRESHEN_SELECTION_SELECTION_H_
