#include "mirror/mirror_state.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/string_util.h"
#include "rng/distributions.h"

namespace freshen {

Result<VersionedSource> VersionedSource::Create(
    std::vector<double> change_rates, uint64_t seed) {
  if (change_rates.empty()) {
    return Status::InvalidArgument("source needs at least one element");
  }
  for (size_t i = 0; i < change_rates.size(); ++i) {
    if (!(change_rates[i] >= 0.0) || !std::isfinite(change_rates[i])) {
      return Status::InvalidArgument(
          StrFormat("change rate %zu is negative or non-finite", i));
    }
  }
  return VersionedSource(std::move(change_rates), seed);
}

VersionedSource::VersionedSource(std::vector<double> rates, uint64_t seed)
    : rates_(std::move(rates)),
      update_times_(rates_.size()),
      next_update_(rates_.size(),
                   std::numeric_limits<double>::infinity()) {
  Rng root(seed);
  streams_.reserve(rates_.size());
  for (size_t i = 0; i < rates_.size(); ++i) {
    streams_.push_back(root.Fork());
    if (rates_[i] > 0.0) {
      next_update_[i] = SampleExponential(streams_[i], rates_[i]);
    }
  }
}

void VersionedSource::AdvanceTo(double t) {
  FRESHEN_CHECK(t >= now_);
  for (size_t i = 0; i < rates_.size(); ++i) {
    while (next_update_[i] <= t) {
      update_times_[i].push_back(next_update_[i]);
      ++total_updates_;
      next_update_[i] += SampleExponential(streams_[i], rates_[i]);
    }
  }
  now_ = t;
}

uint64_t VersionedSource::Version(size_t element) const {
  FRESHEN_CHECK(element < rates_.size());
  return update_times_[element].size();
}

double VersionedSource::FirstUpdateAfter(size_t element, double after) const {
  FRESHEN_CHECK(element < rates_.size());
  const auto& times = update_times_[element];
  const auto it = std::upper_bound(times.begin(), times.end(), after);
  if (it == times.end()) {
    return std::numeric_limits<double>::infinity();
  }
  return *it;
}

MirrorState::MirrorState(size_t num_elements)
    : local_version_(num_elements, 0), last_sync_time_(num_elements, 0.0) {
  FRESHEN_CHECK(num_elements > 0);
}

bool MirrorState::Sync(size_t element, double t, VersionedSource& source) {
  FRESHEN_CHECK(element < local_version_.size());
  FRESHEN_CHECK(t >= last_sync_time_[element]);
  source.AdvanceTo(std::max(t, source.Now()));
  const uint64_t remote = source.Version(element);
  const bool changed = remote != local_version_[element];
  local_version_[element] = remote;
  last_sync_time_[element] = t;
  ++total_syncs_;
  return changed;
}

bool MirrorState::IsFresh(size_t element,
                          const VersionedSource& source) const {
  FRESHEN_CHECK(element < local_version_.size());
  return local_version_[element] == source.Version(element);
}

double MirrorState::Age(size_t element, double t,
                        const VersionedSource& source) const {
  FRESHEN_CHECK(element < local_version_.size());
  if (IsFresh(element, source)) return 0.0;
  const double first_missed =
      source.FirstUpdateAfter(element, last_sync_time_[element]);
  FRESHEN_DCHECK(std::isfinite(first_missed));
  return t - first_missed;
}

}  // namespace freshen
