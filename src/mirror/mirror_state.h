// Versioned source and mirror state machines — the operational counterpart
// of the discrete-event simulator. The simulator (src/sim) batch-processes a
// whole horizon for evaluation; these classes expose the same semantics as
// incremental, queryable state so an online controller (src/adaptive) or an
// application can drive them step by step.
//
//   VersionedSource : the master data source. Each element carries a version
//                     counter advanced by Poisson updates; AdvanceTo(t)
//                     lazily materializes updates up to time t.
//   MirrorState     : the local copies. Sync(element, t) pulls the source's
//                     current version; IsFresh/Staleness answer Definition 1
//                     queries at any time.
#ifndef FRESHEN_MIRROR_MIRROR_STATE_H_
#define FRESHEN_MIRROR_MIRROR_STATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rng/rng.h"

namespace freshen {

/// The master source: per-element version counters advanced by Poisson
/// update processes. Deterministic in the seed.
class VersionedSource {
 public:
  /// A source over `change_rates.size()` elements with the given Poisson
  /// rates (per period). Rates must be >= 0 and finite.
  static Result<VersionedSource> Create(std::vector<double> change_rates,
                                        uint64_t seed);

  /// Advances simulated time to `t` (>= current time), materializing any
  /// pending updates.
  void AdvanceTo(double t);

  /// Current version of `element` (0 = initial). Requires element in range
  /// and that time has been advanced at least to the queried moment.
  uint64_t Version(size_t element) const;

  /// Time of the earliest update of `element` strictly after `after`, or
  /// +infinity if none has been materialized yet (call AdvanceTo first) or
  /// the element never changes. Used for age accounting.
  double FirstUpdateAfter(size_t element, double after) const;

  /// Total updates materialized so far across all elements.
  uint64_t TotalUpdates() const { return total_updates_; }

  /// Current simulated time.
  double Now() const { return now_; }

  /// Number of elements.
  size_t size() const { return rates_.size(); }

 private:
  VersionedSource(std::vector<double> rates, uint64_t seed);

  std::vector<double> rates_;
  // Per-element materialized update history (times, ascending). Kept whole:
  // experiments run bounded horizons, and FirstUpdateAfter needs history.
  std::vector<std::vector<double>> update_times_;
  std::vector<double> next_update_;
  std::vector<Rng> streams_;
  double now_ = 0.0;
  uint64_t total_updates_ = 0;
};

/// The mirror's local copies: last-synced version per element.
class MirrorState {
 public:
  /// A mirror over `num_elements` copies, all initially version 0 (in sync
  /// with a fresh source).
  explicit MirrorState(size_t num_elements);

  /// Refreshes `element` from the source at time `t` (the source is advanced
  /// to `t` first). Returns true when the fetched copy differed from the
  /// local one — exactly the poll signal the change estimator consumes.
  bool Sync(size_t element, double t, VersionedSource& source);

  /// Definition 1: is the local copy identical to the source right now?
  /// The source must already be advanced to the query time.
  bool IsFresh(size_t element, const VersionedSource& source) const;

  /// Age of the local copy at time `t`: 0 when fresh, else the time since
  /// the first source update the mirror has not picked up.
  double Age(size_t element, double t, const VersionedSource& source) const;

  /// Time `element` was last synced (0 before any sync).
  double LastSyncTime(size_t element) const {
    return last_sync_time_[element];
  }

  /// Total syncs executed.
  uint64_t TotalSyncs() const { return total_syncs_; }

  /// Number of elements.
  size_t size() const { return local_version_.size(); }

 private:
  std::vector<uint64_t> local_version_;
  std::vector<double> last_sync_time_;
  uint64_t total_syncs_ = 0;
};

}  // namespace freshen

#endif  // FRESHEN_MIRROR_MIRROR_STATE_H_
