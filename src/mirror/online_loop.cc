#include "mirror/online_loop.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "obs/drift.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "profile/profile.h"
#include "rng/distributions.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

// One scheduled operation inside a period.
struct LoopEvent {
  double time;
  bool is_sync;  // Syncs sort before accesses at equal times.
  uint32_t element;
};

// Period-boundary span events on the online-loop virtual track. The loop is
// single-threaded and seed-deterministic, so these are too.
void EmitPeriodEvent(obs::EventRecorder& recorder, obs::EventPhase phase,
                     double ts, double period_index) {
  if (!recorder.enabled()) return;
  obs::Event event;
  event.name = "period";
  event.category = "loop";
  event.clock = obs::EventClock::kVirtual;
  event.track = obs::kTrackOnlineLoop;
  event.phase = phase;
  event.ts = ts;
  event.arg0 = period_index;
  event.arg0_name = "period";
  recorder.Emit(event);
}

}  // namespace

Result<OnlineFreshenLoop> OnlineFreshenLoop::Create(ElementSet truth,
                                                    double bandwidth,
                                                    Options options) {
  if (truth.empty()) {
    return Status::InvalidArgument("truth catalog is empty");
  }
  if (!(options.accesses_per_period >= 0.0)) {
    return Status::InvalidArgument("accesses_per_period must be >= 0");
  }
  // The controller reports into the loop's registry unless its options name
  // their own.
  if (options.controller.registry == nullptr) {
    options.controller.registry = options.registry;
  }
  FRESHEN_ASSIGN_OR_RETURN(
      VersionedSource source,
      VersionedSource::Create(ChangeRates(truth), options.seed ^ 0x737263ULL));
  FRESHEN_ASSIGN_OR_RETURN(
      AdaptiveFreshener controller,
      AdaptiveFreshener::Create(Sizes(truth), bandwidth, options.controller));
  return OnlineFreshenLoop(std::move(truth), std::move(source),
                           std::move(controller), options);
}

OnlineFreshenLoop::OnlineFreshenLoop(ElementSet truth, VersionedSource source,
                                     AdaptiveFreshener controller,
                                     Options options)
    : truth_(std::move(truth)),
      options_(options),
      source_(std::move(source)),
      mirror_(truth_.size()),
      controller_(
          std::make_unique<AdaptiveFreshener>(std::move(controller))),
      access_table_(std::make_unique<AliasTable>(AccessProbs(truth_))),
      access_rng_(options.seed ^ 0x616363ULL),
      registry_(options.registry != nullptr
                    ? options.registry
                    : &obs::MetricsRegistry::Global()) {
  periods_counter_ = registry_->GetCounter("freshen_mirror_periods_total");
  syncs_counter_ = registry_->GetCounter("freshen_mirror_syncs_total");
  accesses_counter_ = registry_->GetCounter("freshen_mirror_accesses_total");
  fresh_accesses_counter_ =
      registry_->GetCounter("freshen_mirror_fresh_accesses_total");
  bandwidth_counter_ =
      registry_->GetCounter("freshen_mirror_bandwidth_spent_total");
  freshness_gauge_ =
      registry_->GetGauge("freshen_mirror_perceived_freshness");
  access_age_gauge_ = registry_->GetGauge("freshen_mirror_mean_access_age");
  lambda_error_gauge_ = registry_->GetGauge("freshen_mirror_lambda_error");
}

Status OnlineFreshenLoop::SetTrueProfile(const std::vector<double>& weights) {
  if (weights.size() != truth_.size()) {
    return Status::InvalidArgument("profile length mismatch");
  }
  FRESHEN_ASSIGN_OR_RETURN(std::vector<double> probs,
                           NormalizeProbabilities(weights));
  for (size_t i = 0; i < truth_.size(); ++i) {
    truth_[i].access_prob = probs[i];
  }
  access_table_ = std::make_unique<AliasTable>(probs);
  return Status::OK();
}

PeriodStats OnlineFreshenLoop::RunPeriod() {
  obs::ScopedSpan period_span("period", *registry_);
  // Counter marks at the period boundary: PeriodStats reports this period as
  // the delta of the registry totals.
  const double syncs_mark = syncs_counter_->value();
  const double accesses_mark = accesses_counter_->value();
  const double fresh_mark = fresh_accesses_counter_->value();
  const double bandwidth_mark = bandwidth_counter_->value();
  const double period_start = now_;
  const double period_end = now_ + 1.0;
  obs::EventRecorder& recorder = obs::EventRecorder::Global();
  EmitPeriodEvent(recorder, obs::EventPhase::kBegin, period_start,
                  period_start);
  obs::StalenessTimeline* const timeline = options_.timeline;
  obs::SloMonitor* const slo = options_.slo;
  obs::DriftDetector* const drift = options_.drift;
  // Accesses served within the SLO monitor's age threshold (fresh counts
  // too: age 0). Only tracked when a monitor is attached.
  uint64_t age_good_accesses = 0;
  PeriodStats stats;
  std::vector<LoopEvent> events;

  // Due syncs: each element fires at interval 1/f from its last sync (or
  // from the period start if it has never been synced).
  const std::vector<double>& freqs = controller_->frequencies();
  std::vector<sync::SyncTask> due;
  for (size_t i = 0; i < truth_.size(); ++i) {
    const double f = freqs[i];
    if (f <= 0.0) continue;
    const double interval = 1.0 / f;
    double t = mirror_.LastSyncTime(i) > 0.0
                   ? mirror_.LastSyncTime(i) + interval
                   : period_start +
                         interval * (static_cast<double>(i) /
                                     static_cast<double>(truth_.size()));
    for (; t < period_end; t += interval) {
      if (t >= period_start) {
        due.push_back({i, t, truth_[i].size});
      }
    }
  }

  if (options_.executor != nullptr) {
    // Executor path: fetches can fail, be refused, or land late. Only
    // applied syncs become events; a sync completing past the period
    // boundary applies at the boundary (after every access — genuinely
    // late), and everything else leaves the copy stale.
    const std::vector<sync::SyncOutcome> outcomes =
        options_.executor->Execute(due);
    for (const sync::SyncOutcome& outcome : outcomes) {
      stats.wasted_bandwidth += outcome.wasted_bandwidth;
      switch (outcome.kind) {
        case sync::SyncOutcomeKind::kApplied:
          events.push_back({std::min(outcome.apply_time, period_end), true,
                            static_cast<uint32_t>(outcome.element)});
          break;
        case sync::SyncOutcomeKind::kFailed:
          ++stats.failed_syncs;
          break;
        case sync::SyncOutcomeKind::kBreakerOpen:
          ++stats.breaker_skipped_syncs;
          break;
        case sync::SyncOutcomeKind::kDropped:
          ++stats.dropped_syncs;
          break;
      }
    }
  } else {
    for (const sync::SyncTask& task : due) {
      events.push_back({task.time, true, static_cast<uint32_t>(task.element)});
    }
  }

  // This period's accesses: Poisson arrivals from the true profile.
  if (options_.accesses_per_period > 0.0) {
    for (double t = period_start + SampleExponential(
                                       access_rng_,
                                       options_.accesses_per_period);
         t < period_end;
         t += SampleExponential(access_rng_, options_.accesses_per_period)) {
      events.push_back(
          {t, false,
           static_cast<uint32_t>(access_table_->Sample(access_rng_))});
    }
  }

  std::sort(events.begin(), events.end(),
            [](const LoopEvent& a, const LoopEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.is_sync && !b.is_sync;
            });

  KahanSum age_sum;
  for (const LoopEvent& event : events) {
    if (event.is_sync) {
      if (timeline != nullptr) {
        // Attribute the stale interval this sync is about to close: the
        // onset is now minus the copy's age (the first unpicked update).
        source_.AdvanceTo(event.time);
        if (!mirror_.IsFresh(event.element, source_)) {
          const double age =
              mirror_.Age(event.element, event.time, source_);
          timeline->MarkStale(event.element, event.time - age);
          timeline->MarkFresh(event.element, event.time);
        }
      }
      const double previous_sync = mirror_.LastSyncTime(event.element);
      const bool changed = mirror_.Sync(event.element, event.time, source_);
      controller_->ObserveSync(event.element, changed, event.time);
      if (drift != nullptr) {
        // The copy has existed since t=0, so a first sync's watched window
        // starts there (LastSyncTime is 0 before the first sync).
        drift->ObserveSync(event.element, changed,
                           event.time - previous_sync);
      }
      if (options_.on_period_end) synced_scratch_.push_back(event.element);
      syncs_counter_->Increment();
      bandwidth_counter_->Add(truth_[event.element].size);
    } else {
      source_.AdvanceTo(event.time);
      controller_->ObserveAccess(event.element);
      accesses_counter_->Increment();
      if (mirror_.IsFresh(event.element, source_)) {
        fresh_accesses_counter_->Increment();
        ++age_good_accesses;  // Age 0 is within any age SLO.
        if (timeline != nullptr) {
          timeline->OnAccess(event.element, event.time, 0.0);
        }
      } else {
        const double age = mirror_.Age(event.element, event.time, source_);
        age_sum.Add(age);
        if (slo != nullptr && age <= slo->age_slo()) ++age_good_accesses;
        if (timeline != nullptr) {
          timeline->OnAccess(event.element, event.time, age);
        }
      }
    }
  }
  source_.AdvanceTo(period_end);
  if (timeline != nullptr) {
    // Open a ledger interval for everything still stale at the boundary
    // (MarkStale is idempotent, so already-open intervals are untouched),
    // then close this period's attribution window.
    for (size_t i = 0; i < truth_.size(); ++i) {
      if (!mirror_.IsFresh(i, source_)) {
        timeline->MarkStale(
            i, period_end - mirror_.Age(i, period_end, source_));
      }
    }
    timeline->CloseWindow(period_end);
  }
  now_ = period_end;
  periods_counter_->Increment();

  stats.syncs =
      static_cast<uint64_t>(syncs_counter_->value() - syncs_mark);
  stats.accesses =
      static_cast<uint64_t>(accesses_counter_->value() - accesses_mark);
  stats.bandwidth_spent = bandwidth_counter_->value() - bandwidth_mark;
  const double fresh_accesses = fresh_accesses_counter_->value() - fresh_mark;
  if (stats.accesses > 0) {
    stats.perceived_freshness =
        fresh_accesses / static_cast<double>(stats.accesses);
    stats.mean_access_age =
        age_sum.Total() / static_cast<double>(stats.accesses);
  }
  freshness_gauge_->Set(stats.perceived_freshness);
  access_age_gauge_->Set(stats.mean_access_age);

  controller_->EndPeriod();
  auto replanned = controller_->MaybeReplan(now_);
  FRESHEN_CHECK(replanned.ok());
  stats.replanned = *replanned;
  if (stats.replanned) {
    const AdaptiveFreshener::ReplanInfo& info = controller_->last_replan();
    stats.replan_used_delta = info.used_delta;
    stats.replan_path = ToString(info.path);
    stats.plan_all_touched = info.all_touched;
  }

  // Estimator quality against the ground truth only the loop knows: mean
  // relative change-rate error of the controller's believed catalog.
  const ElementSet believed = controller_->BelievedCatalog();
  KahanSum error_sum;
  size_t rated = 0;
  for (size_t i = 0; i < truth_.size(); ++i) {
    if (truth_[i].change_rate <= 0.0) continue;
    error_sum.Add(std::fabs(believed[i].change_rate - truth_[i].change_rate) /
                  truth_[i].change_rate);
    ++rated;
  }
  if (rated > 0) {
    lambda_error_gauge_->Set(error_sum.Total() / static_cast<double>(rated));
  }

  if (drift != nullptr) {
    // Score this period's evidence against the rates the CURRENT plan was
    // solved with (pre-forced-replan, by construction: EndPeriod first).
    drift->EndPeriod(now_, controller_->PlannedChangeRates());
    if (options_.drift_replan && !stats.replanned &&
        drift->replan_recommended()) {
      auto forced = controller_->MaybeReplan(now_, /*force=*/true);
      FRESHEN_CHECK(forced.ok());
      if (*forced) {
        drift->AcknowledgeReplan();
        const AdaptiveFreshener::ReplanInfo& info =
            controller_->last_replan();
        stats.replanned = true;
        stats.replan_used_delta = info.used_delta;
        stats.replan_path = ToString(info.path);
        stats.plan_all_touched = info.all_touched;
      }
    }
  }
  if (slo != nullptr) {
    slo->ObservePeriod(now_, stats.accesses,
                       static_cast<uint64_t>(fresh_accesses),
                       age_good_accesses);
  }
  if (options_.on_period_end) {
    std::sort(synced_scratch_.begin(), synced_scratch_.end());
    synced_scratch_.erase(
        std::unique(synced_scratch_.begin(), synced_scratch_.end()),
        synced_scratch_.end());
    options_.on_period_end(stats, synced_scratch_);
    synced_scratch_.clear();
  }
  EmitPeriodEvent(recorder, obs::EventPhase::kEnd, period_end, period_start);
  return stats;
}

}  // namespace freshen
