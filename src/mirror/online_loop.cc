#include "mirror/online_loop.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "profile/profile.h"
#include "rng/distributions.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

// One scheduled operation inside a period.
struct LoopEvent {
  double time;
  bool is_sync;  // Syncs sort before accesses at equal times.
  uint32_t element;
};

}  // namespace

Result<OnlineFreshenLoop> OnlineFreshenLoop::Create(ElementSet truth,
                                                    double bandwidth,
                                                    Options options) {
  if (truth.empty()) {
    return Status::InvalidArgument("truth catalog is empty");
  }
  if (!(options.accesses_per_period >= 0.0)) {
    return Status::InvalidArgument("accesses_per_period must be >= 0");
  }
  FRESHEN_ASSIGN_OR_RETURN(
      VersionedSource source,
      VersionedSource::Create(ChangeRates(truth), options.seed ^ 0x737263ULL));
  FRESHEN_ASSIGN_OR_RETURN(
      AdaptiveFreshener controller,
      AdaptiveFreshener::Create(Sizes(truth), bandwidth, options.controller));
  return OnlineFreshenLoop(std::move(truth), std::move(source),
                           std::move(controller), options);
}

OnlineFreshenLoop::OnlineFreshenLoop(ElementSet truth, VersionedSource source,
                                     AdaptiveFreshener controller,
                                     Options options)
    : truth_(std::move(truth)),
      options_(options),
      source_(std::move(source)),
      mirror_(truth_.size()),
      controller_(
          std::make_unique<AdaptiveFreshener>(std::move(controller))),
      access_table_(std::make_unique<AliasTable>(AccessProbs(truth_))),
      access_rng_(options.seed ^ 0x616363ULL) {}

Status OnlineFreshenLoop::SetTrueProfile(const std::vector<double>& weights) {
  if (weights.size() != truth_.size()) {
    return Status::InvalidArgument("profile length mismatch");
  }
  FRESHEN_ASSIGN_OR_RETURN(std::vector<double> probs,
                           NormalizeProbabilities(weights));
  for (size_t i = 0; i < truth_.size(); ++i) {
    truth_[i].access_prob = probs[i];
  }
  access_table_ = std::make_unique<AliasTable>(probs);
  return Status::OK();
}

PeriodStats OnlineFreshenLoop::RunPeriod() {
  const double period_start = now_;
  const double period_end = now_ + 1.0;
  std::vector<LoopEvent> events;

  // Due syncs: each element fires at interval 1/f from its last sync (or
  // from the period start if it has never been synced).
  const std::vector<double>& freqs = controller_->frequencies();
  for (size_t i = 0; i < truth_.size(); ++i) {
    const double f = freqs[i];
    if (f <= 0.0) continue;
    const double interval = 1.0 / f;
    double t = mirror_.LastSyncTime(i) > 0.0
                   ? mirror_.LastSyncTime(i) + interval
                   : period_start +
                         interval * (static_cast<double>(i) /
                                     static_cast<double>(truth_.size()));
    for (; t < period_end; t += interval) {
      if (t >= period_start) {
        events.push_back({t, true, static_cast<uint32_t>(i)});
      }
    }
  }

  // This period's accesses: Poisson arrivals from the true profile.
  if (options_.accesses_per_period > 0.0) {
    for (double t = period_start + SampleExponential(
                                       access_rng_,
                                       options_.accesses_per_period);
         t < period_end;
         t += SampleExponential(access_rng_, options_.accesses_per_period)) {
      events.push_back(
          {t, false,
           static_cast<uint32_t>(access_table_->Sample(access_rng_))});
    }
  }

  std::sort(events.begin(), events.end(),
            [](const LoopEvent& a, const LoopEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.is_sync && !b.is_sync;
            });

  PeriodStats stats;
  uint64_t fresh_accesses = 0;
  KahanSum age_sum;
  for (const LoopEvent& event : events) {
    if (event.is_sync) {
      const bool changed = mirror_.Sync(event.element, event.time, source_);
      controller_->ObserveSync(event.element, changed, event.time);
      ++stats.syncs;
      stats.bandwidth_spent += truth_[event.element].size;
    } else {
      source_.AdvanceTo(event.time);
      controller_->ObserveAccess(event.element);
      ++stats.accesses;
      if (mirror_.IsFresh(event.element, source_)) {
        ++fresh_accesses;
      } else {
        age_sum.Add(mirror_.Age(event.element, event.time, source_));
      }
    }
  }
  source_.AdvanceTo(period_end);
  now_ = period_end;

  if (stats.accesses > 0) {
    stats.perceived_freshness = static_cast<double>(fresh_accesses) /
                                static_cast<double>(stats.accesses);
    stats.mean_access_age =
        age_sum.Total() / static_cast<double>(stats.accesses);
  }

  controller_->EndPeriod();
  auto replanned = controller_->MaybeReplan(now_);
  FRESHEN_CHECK(replanned.ok());
  stats.replanned = *replanned;
  return stats;
}

}  // namespace freshen
