// OnlineFreshenLoop: a complete, steppable mirror deployment. Wires the
// versioned source/mirror state machines to the adaptive controller and a
// profile-driven access stream, one period at a time:
//
//   while (true) {
//     stats = loop.RunPeriod();   // syncs fire, users hit the mirror,
//                                 // the controller observes everything
//   }                             // ...and re-plans at the boundary.
//
// The ground truth (real change rates and real access profile) lives only in
// the loop; the controller sees nothing but its own observations — this is
// the deployment the paper's §7 sketches, runnable end to end. The true
// profile can be swapped mid-run (SetTrueProfile) for interest-drift
// experiments (bench_ablation_drift).
#ifndef FRESHEN_MIRROR_ONLINE_LOOP_H_
#define FRESHEN_MIRROR_ONLINE_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adaptive/adaptive_freshener.h"
#include "common/result.h"
#include "mirror/mirror_state.h"
#include "model/element.h"
#include "obs/metrics.h"
#include "rng/alias_table.h"
#include "rng/rng.h"
#include "sync/executor.h"

namespace freshen {
namespace obs {
class DriftDetector;
class SloMonitor;
class StalenessTimeline;
}  // namespace obs

/// One period's observable outcomes. The event counts (accesses, syncs,
/// bandwidth_spent) are per-period deltas of the loop's registry counters
/// (freshen_mirror_*) — the registry is the source of truth, this struct is
/// the per-period view of it.
struct PeriodStats {
  /// Fraction of this period's accesses that saw a fresh copy.
  double perceived_freshness = 0.0;
  /// Mean copy age over this period's accesses (0 when fresh).
  double mean_access_age = 0.0;
  /// Accesses served this period.
  uint64_t accesses = 0;
  /// Syncs executed this period.
  uint64_t syncs = 0;
  /// Bandwidth spent on *applied* syncs this period (sum of synced sizes).
  double bandwidth_spent = 0.0;
  /// Bandwidth burned by failed fetch attempts this period (executor path
  /// only; the inline path never fails). Tracked separately from
  /// bandwidth_spent so failures are visible in the period view.
  double wasted_bandwidth = 0.0;
  /// Syncs that exhausted their retries this period (copy left stale).
  uint64_t failed_syncs = 0;
  /// Syncs refused by executor queue backpressure this period.
  uint64_t dropped_syncs = 0;
  /// Syncs refused by an open circuit breaker this period.
  uint64_t breaker_skipped_syncs = 0;
  /// True when the controller installed a new plan at the boundary.
  bool replanned = false;
  /// Valid when replanned: true when the plan came from the incremental
  /// delta replanner (controller delta mode) rather than a full planner
  /// run.
  bool replan_used_delta = false;
  /// Valid when replanned: which replanner path ran ("pinned" / "warm" /
  /// "full"; full planner runs report "full").
  const char* replan_path = "none";
  /// Valid when replanned: false only when the installed plan is provably
  /// byte-identical to the previous one (publication layers may skip
  /// republishing frequencies entirely).
  bool plan_all_touched = true;
};

/// A steppable closed-loop mirror.
class OnlineFreshenLoop {
 public:
  struct Options {
    /// Controller configuration.
    AdaptiveFreshener::Options controller;
    /// User accesses per period (Poisson arrivals from the true profile).
    double accesses_per_period = 1000.0;
    /// Seed for update/access randomness.
    uint64_t seed = 17;
    /// Metrics registry backing the loop's counters/gauges (and, unless the
    /// controller options name their own, the controller's too). nullptr
    /// means the process-wide obs::MetricsRegistry::Global().
    obs::MetricsRegistry* registry = nullptr;
    /// When set, due syncs are routed through this executor instead of
    /// applying instantly: a fetch that fails (or is refused by the breaker
    /// or queue) leaves the copy stale, and a slow fetch applies late — at
    /// its scheduled time plus transport latency. Non-owning; must outlive
    /// the loop. With a sync::PerfectSource behind it, per-period results
    /// are bit-identical to the inline path on the same seed.
    sync::SyncExecutor* executor = nullptr;
    /// Optional staleness-attribution ledger. When set, every period feeds
    /// it the mirror's fresh<->stale transitions and accesses, and closes
    /// one ledger window per period at the boundary (per-period offender
    /// rankings). Its window should start at 0 and end at/after the last
    /// period the caller will run. Non-owning; must outlive the loop.
    obs::StalenessTimeline* timeline = nullptr;
    /// Optional freshness SLO monitor. When set, every access is also
    /// scored against its age_slo() threshold and the boundary feeds it
    /// one ObservePeriod(now, accesses, fresh, age_good) sample — this is
    /// what drives the freshen_slo_* burn-rate alerting. Non-owning; must
    /// outlive the loop. Loop-thread writes only.
    obs::SloMonitor* slo = nullptr;
    /// Optional estimator drift detector. When set, every applied sync
    /// feeds it (element, changed, gap since the previous sync) and the
    /// boundary scores the evidence against the controller's
    /// PlannedChangeRates(). Non-owning; must outlive the loop.
    obs::DriftDetector* drift = nullptr;
    /// When true (and `drift` is set), a sustained drift recommendation
    /// forces an early replan at the boundary instead of waiting out the
    /// controller's cadence. Off by default: detection is free, acting on
    /// it is a policy decision.
    bool drift_replan = false;
    /// Publication hook for serving (freshend): when set, RunPeriod invokes
    /// it once at the period boundary, after the controller's replan
    /// decision, with this period's stats and the sorted, deduplicated ids
    /// of elements whose copies were actually refreshed. During the call
    /// the loop is at a consistent boundary: frequencies(), the mirror's
    /// last-sync times, and BelievedCatalog() all reflect the new period —
    /// exactly what a snapshot publisher needs for O(changed-shards)
    /// publication.
    std::function<void(const PeriodStats& stats,
                       const std::vector<uint32_t>& synced_elements)>
        on_period_end;
  };

  /// `truth` holds the real change rates, real profile, and sizes; only the
  /// sizes are shown to the controller.
  static Result<OnlineFreshenLoop> Create(ElementSet truth, double bandwidth,
                                          Options options);

  /// Advances one full period: executes due syncs under the controller's
  /// current frequencies, serves the period's accesses, feeds the controller
  /// every observation, and lets it re-plan at the boundary.
  PeriodStats RunPeriod();

  /// Replaces the true access profile (non-negative weights, normalized
  /// internally) — user interest just drifted. The controller is not told.
  Status SetTrueProfile(const std::vector<double>& weights);

  /// The controller, for inspection.
  const AdaptiveFreshener& controller() const { return *controller_; }

  /// Current simulated time (whole periods completed).
  double Now() const { return now_; }

  /// The true catalog (rates/profile/sizes currently in force).
  const ElementSet& truth() const { return truth_; }

  /// The mirror's local-copy state (last-sync times), for publication hooks.
  const MirrorState& mirror() const { return mirror_; }

  /// The registry this loop reports into.
  obs::MetricsRegistry& registry() const { return *registry_; }

  /// Point-in-time copy of every metric in the loop's registry — feed it to
  /// an obs::MetricsSink (JSON / Prometheus / CSV) to export a run.
  obs::RegistrySnapshot SnapshotMetrics() const { return registry_->Snapshot(); }

 private:
  OnlineFreshenLoop(ElementSet truth, VersionedSource source,
                    AdaptiveFreshener controller, Options options);

  ElementSet truth_;
  Options options_;
  VersionedSource source_;
  MirrorState mirror_;
  // unique_ptr: AdaptiveFreshener is movable but this keeps the loop cheap
  // to move itself.
  std::unique_ptr<AdaptiveFreshener> controller_;
  std::unique_ptr<AliasTable> access_table_;
  Rng access_rng_;
  double now_ = 0.0;
  // Scratch for the on_period_end hook: distinct elements synced this
  // period (sorted). Reused across periods to avoid reallocation.
  std::vector<uint32_t> synced_scratch_;

  // Registry handles (cached once; valid for the registry's lifetime).
  obs::MetricsRegistry* registry_;
  obs::Counter* periods_counter_;
  obs::Counter* syncs_counter_;
  obs::Counter* accesses_counter_;
  obs::Counter* fresh_accesses_counter_;
  obs::Counter* bandwidth_counter_;
  obs::Gauge* freshness_gauge_;
  obs::Gauge* access_age_gauge_;
  obs::Gauge* lambda_error_gauge_;
};

}  // namespace freshen

#endif  // FRESHEN_MIRROR_ONLINE_LOOP_H_
