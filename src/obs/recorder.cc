#include "obs/recorder.h"

#include <algorithm>

namespace freshen {
namespace obs {
namespace {

// Process-unique recorder ids so the thread-local ring cache can never
// confuse a destroyed recorder with a new one at the same address.
std::atomic<uint64_t> g_next_recorder_id{1};

// One cached (recorder id -> ring) binding. Threads emit into a handful of
// recorders at most (the global one plus test instances), so a tiny linear
// scan beats any map.
struct RingBinding {
  uint64_t recorder_id = 0;
  void* ring = nullptr;
};

thread_local std::vector<RingBinding> t_ring_cache;

size_t RoundUpPowerOfTwo(size_t value) {
  size_t pow2 = 1;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

}  // namespace

const char* EventPhaseName(EventPhase phase) {
  switch (phase) {
    case EventPhase::kBegin:
      return "B";
    case EventPhase::kEnd:
      return "E";
    case EventPhase::kInstant:
      return "i";
  }
  return "?";
}

EventRecorder::EventRecorder(Options options)
    : capacity_(RoundUpPowerOfTwo(std::max<size_t>(options.ring_capacity, 1))),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

EventRecorder& EventRecorder::Global() {
  static EventRecorder* recorder = new EventRecorder();
  return *recorder;
}

EventRecorder::Ring* EventRecorder::RingForThisThread() {
  for (const RingBinding& binding : t_ring_cache) {
    if (binding.recorder_id == id_) return static_cast<Ring*>(binding.ring);
  }
  // First emit from this thread into this recorder: register a ring (the
  // only lock and the only allocations on the emit path, once per thread).
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_, rings_.size() + 1));
  Ring* ring = rings_.back().get();
  t_ring_cache.push_back({id_, ring});
  return ring;
}

void EventRecorder::Emit(const Event& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = RingForThisThread();
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  Event& slot = ring->slots[head & (capacity_ - 1)];
  slot = event;
  if (event.clock == EventClock::kWall) slot.track = ring->tid;
  // Publish after the slot write so a collector that honors the
  // quiesce-first contract always reads fully written events.
  ring->head.store(head + 1, std::memory_order_release);
}

EventRecorder::Stats EventRecorder::stats() const {
  Stats stats;
  stats.ring_capacity = capacity_;
  std::lock_guard<std::mutex> lock(mu_);
  stats.rings = rings_.size();
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(head, capacity_);
    stats.emitted += head;
    stats.recorded += kept;
    stats.dropped += head - kept;
  }
  return stats;
}

std::vector<Event> EventRecorder::Collect() const {
  std::vector<Event> events;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(head, capacity_);
    for (uint64_t i = head - kept; i < head; ++i) {
      events.push_back(ring->slots[i & (capacity_ - 1)]);
    }
  }
  return events;
}

void EventRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

void EventRecorder::ExportMetrics(MetricsRegistry& registry) const {
  const Stats stats = this->stats();
  registry.GetGauge("freshen_obs_recorder_ring_capacity")
      ->Set(static_cast<double>(stats.ring_capacity));
  registry.GetGauge("freshen_obs_recorder_rings")
      ->Set(static_cast<double>(stats.rings));
  registry.GetGauge("freshen_obs_recorder_emitted_events")
      ->Set(static_cast<double>(stats.emitted));
  registry.GetGauge("freshen_obs_recorder_recorded_events")
      ->Set(static_cast<double>(stats.recorded));
  registry.GetGauge("freshen_obs_recorder_dropped_events")
      ->Set(static_cast<double>(stats.dropped));
}

}  // namespace obs
}  // namespace freshen
