// freshen::obs exporters — turn a RegistrySnapshot into bytes. Three wire
// formats (JSON for tooling, Prometheus text exposition for scrapers, CSV
// via table_writer for plotting scripts) behind one MetricsSink interface so
// callers can be handed "somewhere to ship metrics" without caring which.
#ifndef FRESHEN_OBS_EXPORT_H_
#define FRESHEN_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string JsonEscape(const std::string& text);

/// Escapes a Prometheus label value for the text exposition format. Only
/// three escapes are legal there: backslash, double quote, and line feed
/// (notably NOT \t or \r, which a JSON escaper would produce and a
/// Prometheus parser would reject).
std::string PromEscapeLabelValue(const std::string& value);

/// Escapes one label value for the CSV labels cell: values containing
/// `,` `"` `=` `\` or a newline are double-quoted with `\"` / `\\`
/// escapes, so the comma-joined k=v list stays parseable even when values
/// contain the separators.
std::string CsvLabelEscape(const std::string& value);

/// Formats the snapshot as a JSON document: {"metrics": [...]} with one
/// object per series (name, type, labels, value or count/sum/buckets).
/// Deterministic: series keep the snapshot's name-ordering.
std::string FormatJson(const RegistrySnapshot& snapshot);

/// Formats the snapshot in the Prometheus text exposition format (one
/// # TYPE line per metric name; histograms expand to _bucket/_sum/_count
/// with cumulative le edges and +Inf).
std::string FormatPrometheus(const RegistrySnapshot& snapshot);

/// Formats the snapshot as CSV (columns metric,labels,type,value,count,sum)
/// rendered by TableWriter, histograms reporting count/sum.
std::string FormatCsv(const RegistrySnapshot& snapshot);

/// Somewhere snapshots can be shipped.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// Consumes one snapshot. Implementations may be called repeatedly (one
  /// scrape each).
  virtual Status Export(const RegistrySnapshot& snapshot) = 0;
};

/// Discards snapshots (the "instrumentation on, export off" configuration).
class NullSink : public MetricsSink {
 public:
  Status Export(const RegistrySnapshot& snapshot) override;
};

/// Writes FormatJson to a stream.
class JsonSink : public MetricsSink {
 public:
  explicit JsonSink(std::ostream& out) : out_(out) {}
  Status Export(const RegistrySnapshot& snapshot) override;

 private:
  std::ostream& out_;
};

/// Writes FormatPrometheus to a stream.
class PrometheusSink : public MetricsSink {
 public:
  explicit PrometheusSink(std::ostream& out) : out_(out) {}
  Status Export(const RegistrySnapshot& snapshot) override;

 private:
  std::ostream& out_;
};

/// Writes FormatCsv to a stream.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  Status Export(const RegistrySnapshot& snapshot) override;

 private:
  std::ostream& out_;
};

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_EXPORT_H_
