// freshen::obs metrics — a process-wide, thread-safe registry of named
// counters, gauges, and fixed-bucket histograms with label support.
//
// Design: registration (name + labels -> metric object) takes a mutex once;
// callers cache the returned pointer and every subsequent update is a single
// relaxed atomic op, so instrumentation is safe on hot paths. Metric objects
// live for the registry's lifetime and are never deallocated or invalidated
// (Reset() zeroes values in place), so cached pointers stay valid forever.
//
// Naming scheme (see docs/observability.md): freshen_<subsystem>_<name>,
// e.g. freshen_solver_iterations{solver="water_filling"}. Counters carry a
// _total suffix in the Prometheus exposition, not in the registry name.
//
// The registry can be disabled at runtime (set_enabled(false)); updates then
// reduce to one relaxed load + branch, which is the "~zero-cost when off"
// guarantee bench_micro's BM_Metrics* cases watch.
#ifndef FRESHEN_OBS_METRICS_H_
#define FRESHEN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace freshen {
namespace obs {

/// Sorted key=value pairs identifying one time series of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// What a metric measures.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Returns "counter" / "gauge" / "histogram".
const char* MetricKindName(MetricKind kind);

/// Monotonically increasing value. Double-valued so it can carry bandwidth
/// sums as well as event counts (integer increments are exact below 2^53).
class Counter {
 public:
  /// Adds 1.
  void Increment() { Add(1.0); }

  /// Adds `delta` (callers pass non-negative deltas; not enforced on the
  /// hot path).
  void Add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current total.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  /// Replaces the value.
  void Set(double value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }

  /// Current value.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges; one overflow
/// bucket catches everything above the last bound. Bucket counts, the total
/// count, and the sum are each relaxed atomics — a concurrent Snapshot() may
/// catch one Record mid-flight (count ahead of sum by one observation), which
/// is the standard tearing tolerance for lock-free histograms.
class Histogram {
 public:
  /// Records one observation.
  void Record(double value);

  /// Inclusive upper bucket edges (ascending, fixed at registration).
  const std::vector<double>& bounds() const { return bounds_; }

  /// Count per bucket; size bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  /// Total observations.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of observed values.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(std::vector<double> bounds, const std::atomic<bool>* enabled);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  const std::atomic<bool>* enabled_;
};

/// `count` bucket edges starting at `start`, each `factor` times the last
/// (Prometheus-style exponential buckets). start > 0, factor > 1, count >= 1.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// `count` bucket edges start, start+width, ... (width > 0, count >= 1).
std::vector<double> LinearBuckets(double start, double width, int count);

/// Default bucket sets used by the built-in instrumentation.
const std::vector<double>& LatencySecondsBuckets();   // 1us .. ~100s.
const std::vector<double>& IterationCountBuckets();   // 1 .. 5120.

/// One exported time series (see MetricsRegistry::Snapshot).
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter total or gauge value (unused for histograms).
  double value = 0.0;
  /// Histogram payload (empty for counters/gauges).
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time copy of every registered series, ordered by name then
/// labels — the unit all MetricsSink implementations consume.
struct RegistrySnapshot {
  std::vector<MetricSample> samples;

  /// First sample matching name (+ labels when given); nullptr when absent.
  const MetricSample* Find(const std::string& name) const;
  const MetricSample* Find(const std::string& name,
                           const Labels& labels) const;
};

/// Thread-safe metric registry. Use Global() for the process-wide instance;
/// separate instances are handy for isolated tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Global();

  /// Returns the counter for (name, labels), registering it on first use.
  /// The pointer is valid for the registry's lifetime — cache it.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});

  /// Returns the gauge for (name, labels), registering it on first use.
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});

  /// Returns the histogram for (name, labels). `bounds` is used only on
  /// first registration (must be non-empty and ascending then); later calls
  /// return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  /// Copies every registered series.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric in place. Registered objects stay valid (cached
  /// pointers keep working) — intended for tests and benchmarks.
  void Reset();

  /// Runtime kill switch: when false, all updates become no-ops. Reads
  /// (value(), Snapshot()) still work.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Number of registered series (across all kinds).
  size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(MetricKind kind, const std::string& name,
                      const Labels& labels,
                      const std::vector<double>* bounds);

  mutable std::mutex mu_;
  // Keyed by name + serialized sorted labels; map keeps Snapshot() ordering
  // deterministic for the golden-file exporter tests.
  std::map<std::string, Entry> entries_;
  std::atomic<bool> enabled_{true};
};

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_METRICS_H_
