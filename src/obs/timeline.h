// Per-element staleness attribution — the freshness ledger behind the
// paper's PF objective. Aggregate freshness says *how much* of the
// perceived-staleness budget p_i * (1 - F(f_i, lambda_i)) is being spent;
// this timeline says *which elements* are spending it: it accounts
// time-in-fresh / time-in-stale per element from fresh<->stale transitions
// (fed by the simulator or the online loop), tracks a fresh-access SLO
// (fraction of accesses served fresh, and served within a configurable age
// threshold), and ranks per-window "staleness offenders" by
// p_i * stale_fraction_i.
//
// Determinism: transition and access calls touch only the element's own
// slots (safe from the sharded simulator — each element belongs to exactly
// one shard), and every aggregate is computed sequentially in element-index
// order at window close, so reports are byte-identical at any thread count.
// `timeline_test` pins the cross-check the accounting exists for: the
// ledger's weighted time-in-fresh reproduces the simulator's measured
// perceived freshness to 1e-9.
#ifndef FRESHEN_OBS_TIMELINE_H_
#define FRESHEN_OBS_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// One element's ledger totals over the whole observation window.
struct TimelineElementStats {
  size_t element = 0;
  /// Normalized access weight p_i.
  double weight = 0.0;
  /// Seconds (period units) the copy was stale inside the window.
  double stale_time = 0.0;
  /// 1 - stale_time / window length.
  double fresh_fraction = 1.0;
  /// p_i * stale_fraction — the element's bite out of the PF budget.
  double stale_score = 0.0;
  uint64_t accesses = 0;
  uint64_t fresh_accesses = 0;
  /// Accesses whose copy age was <= the configured SLO threshold (fresh
  /// accesses count: their age is 0).
  uint64_t slo_accesses = 0;
  /// Mean copy age over this element's accesses (0 when always fresh).
  double mean_access_age = 0.0;
};

/// One observation window (a period for the online loop, the whole horizon
/// for the simulator).
struct TimelineWindow {
  double begin = 0.0;
  double end = 0.0;
  /// Sum over i of p_i * fresh_fraction_i inside this window — the
  /// time-averaged perceived freshness the ledger measured.
  double weighted_freshness = 0.0;
  uint64_t accesses = 0;
  uint64_t fresh_accesses = 0;
  uint64_t slo_accesses = 0;
  /// Top-k elements by p_i * stale_fraction_i inside this window,
  /// descending (ties by element index).
  std::vector<TimelineElementStats> offenders;
};

/// The finalized report: the overall window, every per-period window closed
/// along the way, and the full per-element ledger.
struct TimelineReport {
  TimelineWindow overall;
  std::vector<TimelineWindow> periods;
  std::vector<TimelineElementStats> elements;
  /// Fraction of all accesses served fresh / served within the age SLO.
  double fresh_access_ratio = 0.0;
  double slo_access_ratio = 0.0;
  double age_slo = 0.0;
};

/// Per-element time-in-fresh/time-in-stale ledger. Feed it transitions and
/// accesses, optionally close per-period windows, then Finalize() once.
class StalenessTimeline {
 public:
  struct Options {
    /// Observation window, in period units. Transitions outside it are
    /// clamped; end must be > begin (the fresh-fraction denominator).
    double window_begin = 0.0;
    double window_end = 1.0;
    /// Age threshold for the access SLO (period units).
    double age_slo = 0.25;
    /// Offenders reported per window.
    size_t top_k = 10;
    /// Registry for the freshen_timeline_* gauges published at Finalize;
    /// nullptr means the process-wide MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
  };

  /// A ledger over `weights.size()` elements. Weights are the access
  /// probabilities p_i (non-negative, not all zero; normalized internally).
  static Result<StalenessTimeline> Create(std::vector<double> weights,
                                          Options options);

  /// Marks `element` stale as of `time` (no-op if already stale — the
  /// earliest onset wins). Safe to call concurrently for distinct elements;
  /// calls for one element must be ordered by the caller.
  void MarkStale(size_t element, double time);

  /// Marks `element` fresh as of `time`, charging the closed stale
  /// interval (clamped to the window). No-op if already fresh.
  void MarkFresh(size_t element, double time);

  /// Records one access at `time` with observed copy `age` (0 = fresh).
  void OnAccess(size_t element, double time, double age);

  /// Closes the current per-period window at `end` and appends its
  /// TimelineWindow (offenders, SLO, weighted freshness). Call from one
  /// thread with emitters quiesced.
  void CloseWindow(double end);

  /// Charges still-open stale intervals up to window_end, publishes the
  /// freshen_timeline_* gauges, and returns the report. Call once.
  TimelineReport Finalize();

  size_t size() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }

 private:
  StalenessTimeline(std::vector<double> weights, Options options);

  // Overlap of [from, to] with the observation window.
  double ClampedInterval(double from, double to) const;

  // Builds the window view over [begin, end) from (total - mark) deltas.
  TimelineWindow BuildWindow(double begin, double end,
                             bool against_marks) const;

  Options options_;
  std::vector<double> weights_;  // Normalized p_i.

  // Whole-run ledger, indexed by element. stale_since_ < 0 means fresh.
  std::vector<double> stale_since_;
  std::vector<double> stale_total_;
  std::vector<uint64_t> accesses_;
  std::vector<uint64_t> fresh_accesses_;
  std::vector<uint64_t> slo_accesses_;
  std::vector<double> age_sum_;

  // Marks at the last CloseWindow, for per-period deltas.
  std::vector<double> stale_mark_;
  std::vector<uint64_t> accesses_mark_;
  std::vector<uint64_t> fresh_mark_;
  std::vector<uint64_t> slo_mark_;

  double window_cursor_ = 0.0;  // Begin of the currently open period window.
  std::vector<TimelineWindow> closed_windows_;
};

/// Per-element ledger as CSV (schema documented in EXPERIMENTS.md):
/// element,weight,stale_time,fresh_fraction,stale_score,accesses,
/// fresh_accesses,slo_accesses,mean_access_age.
std::string FormatTimelineCsv(const TimelineReport& report);

/// The report as a JSON document: overall + per-period windows (each with
/// its offender ranking) and the SLO summary.
std::string FormatTimelineJson(const TimelineReport& report);

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_TIMELINE_H_
