// Estimator drift detector — "is the plan solved against the right λ?".
//
// The planner's output is only as good as the believed change rates it was
// solved with (Avrachenkov et al., "Online Algorithms for Estimating Change
// Rates of Web Pages"). Between replans the believed rates drift with new
// evidence, and the *plan* keeps running on the old ones; if the world
// shifted (a flash crowd of edits, a source going quiet), staleness shows
// up at users long before the next scheduled replan. This detector watches
// for that gap continuously:
//
//   * Every applied sync is a free poll: ObserveSync(element, changed, gap)
//     accumulates per-element evidence (polls, detected changes, watched
//     time), exponentially decayed each period so old evidence fades.
//   * At every period close, EndPeriod(now, planned_rates) turns each
//     element's evidence into a bias-reduced observed-rate estimate
//     (-log(1 - c/p) per mean gap — the paper's [4] estimator form) and
//     scores it against the rate the CURRENT PLAN was solved with:
//     score = |ln(observed / planned)|, so score ln(2) means the believed
//     rate is off by 2x in either direction.
//   * The report carries the evidence-weighted aggregate score, the top-k
//     worst offenders, and a replan recommendation that arms after the
//     aggregate stays above threshold for a configurable number of
//     consecutive periods (debounced so one noisy period can't force an
//     early replan).
//
// Threading: ObserveSync and EndPeriod are loop-thread-only. Report() /
// replan_recommended() are safe from any thread (the report is rebuilt
// under a mutex at period close; readers copy it under the same mutex).
#ifndef FRESHEN_OBS_DRIFT_H_
#define FRESHEN_OBS_DRIFT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// One drifted element in a DriftReport, worst first.
struct DriftOffender {
  size_t element = 0;
  /// The rate the current plan was solved against.
  double planned_rate = 0.0;
  /// Bias-reduced estimate from the decayed sync evidence.
  double observed_rate = 0.0;
  /// |ln(observed / planned)| (ln 2 = off by 2x).
  double score = 0.0;
  /// Decayed effective poll count backing the estimate.
  double evidence = 0.0;
};

/// A coherent sample of the detector at the last period close.
struct DriftReport {
  /// Virtual time of the last EndPeriod.
  double now = 0.0;
  /// Elements with enough evidence to score this period.
  size_t scored_elements = 0;
  /// Elements whose score exceeded flag_threshold.
  size_t flagged_elements = 0;
  /// Evidence-weighted mean score over scored elements.
  double aggregate_score = 0.0;
  double max_score = 0.0;
  /// Worst offenders, descending by score (at most Options::top_k).
  std::vector<DriftOffender> top;
  /// True when the aggregate has stayed above replan_score for
  /// replan_consecutive_periods closes.
  bool replan_recommended = false;
  /// Consecutive period closes with aggregate_score >= replan_score.
  uint32_t periods_above_threshold = 0;
  /// Early replans this detector has triggered (loop-reported).
  uint64_t replans_triggered = 0;
};

/// Believed-vs-observed λ drift detector. Loop-thread writer, any-thread
/// readers.
class DriftDetector {
 public:
  struct Options {
    /// Catalog size; evidence arrays are sized once here.
    size_t num_elements = 0;
    /// Per-period multiplicative decay of the evidence (1 = never forget).
    double decay = 0.97;
    /// Effective (decayed) polls an element needs before it is scored.
    double min_evidence = 3.0;
    /// Offender-list length.
    size_t top_k = 8;
    /// Per-element score above which the element counts as flagged.
    /// Default ln(2): believed rate off by 2x.
    double flag_threshold = 0.6931471805599453;
    /// Aggregate score at which a replan is recommended. Default ln(3).
    double replan_score = 1.0986122886681098;
    /// Consecutive periods the aggregate must stay above replan_score
    /// before replan_recommended() arms (debounce).
    uint32_t replan_consecutive_periods = 2;
    /// Floor for both rates before taking the log ratio, so zero-change
    /// evidence against a hot believed rate still yields a finite score.
    double rate_floor = 1e-4;
    /// Registry for freshen_drift_* metrics; nullptr = process-wide.
    MetricsRegistry* registry = nullptr;
  };

  static Result<DriftDetector> Create(Options options);

  DriftDetector(DriftDetector&&) = default;
  DriftDetector& operator=(DriftDetector&&) = default;

  /// Records one applied sync: `changed` is whether the fetched copy
  /// differed, `gap` the time since the element's previous sync (periods;
  /// non-positive gaps are ignored). Loop thread only.
  void ObserveSync(size_t element, bool changed, double gap);

  /// Closes a period: decays evidence, scores every element against
  /// `planned_rates` (the rates the CURRENT plan was solved with — size
  /// num_elements), rebuilds the report, updates metrics. Loop thread only.
  void EndPeriod(double now, const std::vector<double>& planned_rates);

  /// True when drift has persisted long enough to justify an early replan.
  /// Any thread.
  bool replan_recommended() const {
    return recommend_->load(std::memory_order_acquire);
  }

  /// The loop calls this after acting on the recommendation: clears the
  /// armed flag and the debounce counter, and counts the triggered replan.
  void AcknowledgeReplan();

  /// Copy of the last period's report (any thread).
  DriftReport Report() const;

  const Options& options() const { return options_; }

 private:
  explicit DriftDetector(Options options);

  Options options_;

  // Loop-thread evidence (decayed): effective polls, detected changes,
  // watched time per element.
  std::vector<double> polls_;
  std::vector<double> changes_;
  std::vector<double> watch_time_;

  // Reader-shared state. unique_ptr keeps the detector movable.
  std::unique_ptr<std::mutex> mu_;
  DriftReport report_;  // Guarded by *mu_.
  std::unique_ptr<std::atomic<bool>> recommend_;

  uint32_t periods_above_ = 0;
  uint64_t replans_triggered_ = 0;

  // Cached registry handles.
  Gauge* aggregate_gauge_;
  Gauge* max_gauge_;
  Gauge* flagged_gauge_;
  Counter* replans_counter_;
};

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_DRIFT_H_
