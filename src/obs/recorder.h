// freshen::obs event recorder — a per-thread, bounded, lock-free "flight
// recorder" for structured events. Where the metrics registry answers "how
// much / how often" in aggregate, the recorder answers "what happened, in
// what order, on which thread": span begin/end pairs, sync attempt / retry /
// timeout / breaker transitions, replans, period boundaries, and per-shard
// simulator milestones.
//
// Design:
//   * Each emitting thread owns one fixed-capacity ring of Event slots,
//     created on its first emit (the only allocation on that thread — every
//     subsequent Emit is a slot copy plus one release store, zero
//     allocations and zero shared writes, so it is safe on hot paths and
//     wait-free under any contention).
//   * Rings never block and never lose silently: when a ring is full the
//     oldest event is overwritten (flight-recorder semantics) and the
//     per-ring drop count grows, so emitted == recorded + dropped always
//     holds (see stats()).
//   * Events carry either a wall-clock timestamp (spans) or a virtual-time
//     timestamp in period units (sync commit replay, simulator, online
//     loop). Virtual events also carry a logical track id instead of a
//     thread id, which makes their merged, sorted dump a pure function of
//     the seed — byte-identical at any thread count (see chrome_trace.h).
//   * Event name/category/arg-name pointers must be string literals (or
//     otherwise outlive the recorder); nothing is copied on emit.
//
// The recorder is disabled by default; when disabled an Emit is one relaxed
// load + branch. freshenctl enables the global instance for `trace` and any
// command given --trace-out.
#ifndef FRESHEN_OBS_RECORDER_H_
#define FRESHEN_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// How an event relates to a duration: a span opening, a span closing, or a
/// point event.
enum class EventPhase : uint8_t { kBegin, kEnd, kInstant };

/// Which clock an event's timestamp belongs to. Wall events are real time
/// (seconds on a process-wide steady clock) stamped with the emitting
/// thread; virtual events are deterministic period-unit time stamped with a
/// logical track id chosen by the emitter.
enum class EventClock : uint8_t { kWall, kVirtual };

/// Returns "B" / "E" / "i" (the Chrome trace_event phase letters).
const char* EventPhaseName(EventPhase phase);

/// Well-known virtual track ids. Tracks only group events for display and
/// deterministic sorting; they carry no synchronization meaning.
inline constexpr uint64_t kTrackOnlineLoop = 0;   // Period boundaries, replans.
inline constexpr uint64_t kTrackSyncCommit = 1;   // Executor commit replay.
inline constexpr uint64_t kTrackSimShardBase = 8;  // + shard index.

/// One recorded event. Plain data, fixed size; all pointers must be
/// static-lifetime strings (literals at every built-in call site).
struct Event {
  /// Seconds: wall (RecorderNowSeconds) or virtual (period units).
  double ts = 0.0;
  /// Up to two numeric arguments; a nullptr name marks the slot unused.
  double arg0 = 0.0;
  double arg1 = 0.0;
  const char* name = "";
  const char* category = "";
  const char* arg0_name = nullptr;
  const char* arg1_name = nullptr;
  /// Thread id (wall, assigned by Emit) or logical track (virtual, set by
  /// the emitter; see kTrack* above).
  uint64_t track = 0;
  EventPhase phase = EventPhase::kInstant;
  EventClock clock = EventClock::kWall;
};

/// Process-wide wall timestamp for events: seconds on the steady clock,
/// comparable across threads.
inline double RecorderNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The flight recorder. Use Global() for the process-wide instance every
/// built-in instrumentation site emits into; separate instances are handy
/// for isolated tests.
class EventRecorder {
 public:
  struct Options {
    /// Event slots per emitting thread. Rounded up to a power of two;
    /// must be >= 1.
    size_t ring_capacity = 1 << 13;
  };

  EventRecorder() : EventRecorder(Options{}) {}
  explicit EventRecorder(Options options);
  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  /// The process-wide recorder (disabled until someone enables it).
  static EventRecorder& Global();

  /// Records one event into the calling thread's ring. Wait-free and
  /// allocation-free except for the thread's first emit (ring creation).
  /// Wall-clock events get `track` replaced by the thread's recorder id.
  void Emit(const Event& event);

  /// Convenience emitters.
  void EmitInstant(const char* name, const char* category, EventClock clock,
                   double ts, uint64_t track) {
    Event event;
    event.name = name;
    event.category = category;
    event.clock = clock;
    event.ts = ts;
    event.track = track;
    Emit(event);
  }

  /// Runtime switch; when disabled, Emit is one relaxed load + branch.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregate accounting across all rings. emitted == recorded + dropped
  /// even while emitters are running (each term is read per ring).
  struct Stats {
    uint64_t emitted = 0;   // Events ever passed to Emit while enabled.
    uint64_t recorded = 0;  // Events currently held in rings.
    uint64_t dropped = 0;   // Oldest events overwritten by ring wrap.
    size_t rings = 0;       // Emitting threads seen.
    size_t ring_capacity = 0;
  };
  Stats stats() const;

  /// Copies every held event, ring by ring in thread-registration order
  /// (within a ring: oldest to newest). Stable only once emitters have
  /// quiesced (join or happens-before edge); a concurrent emit may replace
  /// an old event mid-copy on its own ring.
  std::vector<Event> Collect() const;

  /// Empties every ring and zeroes the drop accounting. Emitters must be
  /// quiesced (test/bench use).
  void Reset();

  /// Publishes the recorder's accounting as freshen_obs_recorder_* gauges.
  void ExportMetrics(MetricsRegistry& registry) const;

  size_t ring_capacity() const { return capacity_; }

 private:
  struct Ring {
    explicit Ring(size_t capacity, uint64_t tid)
        : slots(new Event[capacity]), tid(tid) {}
    std::unique_ptr<Event[]> slots;
    std::atomic<uint64_t> head{0};  // Events ever written to this ring.
    uint64_t tid = 0;               // 1-based thread id within this recorder.
  };

  Ring* RingForThisThread();

  size_t capacity_ = 0;  // Power of two.
  std::atomic<bool> enabled_{false};
  uint64_t id_ = 0;  // Process-unique; keys the thread-local ring cache.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_RECORDER_H_
