// freshen::obs trace spans — RAII wall-time timers that record into the
// metrics registry and nest. Each thread keeps a span stack; a span's full
// path is its ancestors' names joined with '/', so an exported histogram
//
//   freshen_trace_span_seconds{span="replan/solve/kkt_verify"}
//
// shows both the timing and the call hierarchy. Typical use:
//
//   {
//     ScopedSpan replan("replan");          // global registry
//     ...
//     { ScopedSpan solve("solve"); ... }    // recorded as "replan/solve"
//   }
//
// Overhead: one registry lookup (mutex + map) per span close plus a clock
// read at each end — intended for coarse operations (a solve, a replan, a
// simulation run), not per-element loops. With the registry disabled the
// close is a relaxed load and nothing is recorded.
#ifndef FRESHEN_OBS_TRACE_H_
#define FRESHEN_OBS_TRACE_H_

#include <string>

#include "common/timer.h"
#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// Histogram name every span records into (label span="<path>").
inline constexpr char kSpanHistogramName[] = "freshen_trace_span_seconds";

/// RAII span: starts timing at construction, records elapsed seconds into
/// `registry` at destruction. Not copyable/movable — bind it to a scope.
class ScopedSpan {
 public:
  /// Opens a span named `name` (no '/'; it would corrupt the path) under the
  /// calling thread's current span, in the global registry.
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, MetricsRegistry::Global()) {}

  /// Same, recording into a specific registry.
  ScopedSpan(const char* name, MetricsRegistry& registry);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's full path ("replan/solve").
  const std::string& path() const { return path_; }

 private:
  MetricsRegistry& registry_;
  std::string path_;
  WallTimer timer_;
  ScopedSpan* parent_;  // Enclosing span on this thread, or nullptr.
  const char* name_;    // Literal; reused for the recorder End event.
  int depth_ = 0;       // Nesting depth on this thread (root = 0).
};

/// The calling thread's innermost open span path ("" when none) — lets tests
/// assert nesting without exporting.
std::string CurrentSpanPath();

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_TRACE_H_
