// Freshness SLO monitor — the runtime answer to "is the plan keeping its
// promise?". The planner targets an aggregate freshness level; Mao et al.
// ("Revisiting Cache Freshness for Emerging Real-Time Applications") argue
// applications actually care about SLO-style guarantees: "at least
// `objective` of accesses are served good", where good means either
// served-fresh or served-within-the-age-SLO. This monitor tracks that
// guarantee continuously against the live access stream.
//
// Mechanics (multi-window error-budget burn rate, the SRE alerting idiom):
//   * Every period the online loop reports (accesses, fresh_accesses,
//     age_slo_accesses) for the period that just closed.
//   * error budget = 1 - objective. The burn rate of a window is
//     bad_fraction / error_budget: 1.0 means the budget is being consumed
//     exactly as fast as the SLO allows, 10 means ten times too fast.
//   * Two sliding windows: a short fast window (paging-grade: reacts within
//     a few periods) and a long slow window (trend: filters blips).
//   * State machine evaluated at every period close:
//       kOk      fast burn below warn_burn_rate
//       kBurning fast burn >= warn_burn_rate (budget burning too fast)
//       kAlert   fast burn >= page_burn_rate AND slow burn >=
//                warn_burn_rate (it is bad AND it is not a blip)
//     Transitions are counted and exported as freshen_slo_* metrics.
//
// Threading: ObservePeriod is called by one thread (the loop thread) at
// period boundaries. Report()/state() are safe from any number of
// concurrent reader threads (admin commands, WATCH streams): per-period
// slots live in a lock-free ring of atomics sized far beyond the slow
// window, so readers never contend with the writer.
#ifndef FRESHEN_OBS_SLO_H_
#define FRESHEN_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// Alerting state of the freshness SLO.
enum class SloState : uint8_t { kOk = 0, kBurning = 1, kAlert = 2 };

/// Returns "ok" / "burning" / "alert".
const char* SloStateName(SloState state);

/// One sliding window's view at the last period close.
struct SloWindowView {
  /// Configured length, in periods.
  double length_periods = 0.0;
  /// Periods currently inside the window.
  uint64_t periods = 0;
  uint64_t accesses = 0;
  uint64_t good = 0;
  /// 1 - good/accesses (0 when the window saw no accesses).
  double bad_ratio = 0.0;
  /// bad_ratio / error_budget.
  double burn_rate = 0.0;
};

/// A coherent sample of the monitor (one Report() call).
struct SloReport {
  /// Target good-access fraction and its complement.
  double objective = 0.0;
  double error_budget = 0.0;
  /// True when "good" means within the age SLO rather than strictly fresh.
  bool good_is_age_slo = false;
  /// The age threshold fed back to the access stream (period units).
  double age_slo = 0.0;
  SloState state = SloState::kOk;
  /// Total state changes since creation, and when the last one happened
  /// (virtual period time; 0 if none yet).
  uint64_t transitions = 0;
  double last_transition_time = 0.0;
  SloWindowView fast;
  SloWindowView slow;
  /// Whole-run totals.
  uint64_t total_accesses = 0;
  uint64_t total_good = 0;
  /// good/accesses over the whole run (1 when no accesses yet).
  double overall_good_ratio = 1.0;
  /// Fraction of the slow window's error budget still unspent, in [0, 1].
  double budget_remaining = 1.0;
  /// Virtual time of the last observed period close.
  double now = 0.0;
};

/// Sliding-window freshness SLO monitor. One writer, many readers.
class SloMonitor {
 public:
  struct Options {
    /// The SLO: target fraction of accesses served good, in (0, 1).
    double objective = 0.99;
    /// Age threshold (period units) defining "served within the age SLO".
    /// The access-stream feeder reads this via age_slo().
    double age_slo = 0.25;
    /// When true, "good" = age_slo_accesses; when false, "good" =
    /// fresh_accesses (strictly fresh).
    bool good_is_age_slo = false;
    /// Fast (paging-grade) and slow (trend) window lengths, in periods.
    /// 1 <= fast < slow.
    double fast_window_periods = 4.0;
    double slow_window_periods = 32.0;
    /// Burn-rate thresholds: warn <= page.
    double warn_burn_rate = 2.0;
    double page_burn_rate = 8.0;
    /// Registry for freshen_slo_* metrics; nullptr = process-wide.
    MetricsRegistry* registry = nullptr;
  };

  /// Validates options. The monitor allocates its ring up front; no
  /// allocation happens on ObservePeriod.
  static Result<SloMonitor> Create(Options options);

  SloMonitor(SloMonitor&&) = default;
  SloMonitor& operator=(SloMonitor&&) = default;

  /// Records one closed period [period_end - 1, period_end): how many
  /// accesses it served, how many saw a strictly fresh copy, and how many
  /// were served within the age SLO. Evaluates the state machine and
  /// publishes metrics. Loop thread only; period_end must be increasing.
  void ObservePeriod(double period_end, uint64_t accesses,
                     uint64_t fresh_accesses, uint64_t age_slo_accesses);

  /// Current alert state (any thread).
  SloState state() const {
    return static_cast<SloState>(state_->load(std::memory_order_acquire));
  }

  /// One coherent sample (any thread, lock-free).
  SloReport Report() const;

  /// The configured age threshold, for the access-stream feeder.
  double age_slo() const { return options_.age_slo; }

  const Options& options() const { return options_; }

 private:
  // One closed period. Fields are individually atomic: the single writer
  // fills them before publishing the slot via the shared head counter, and
  // the ring is sized so a reader would have to stall for >ring_size
  // periods before its slots could be overwritten mid-read.
  struct Slot {
    std::atomic<double> end{0.0};
    std::atomic<uint64_t> accesses{0};
    std::atomic<uint64_t> fresh{0};
    std::atomic<uint64_t> age_good{0};
  };

  // State shared between the writer and readers. Heap-allocated so the
  // monitor stays movable (Result<SloMonitor> returns by value).
  struct Shared {
    explicit Shared(size_t ring_size);
    const size_t ring_size;
    std::unique_ptr<Slot[]> ring;
    std::atomic<uint64_t> head{0};  // Periods ever observed.
    std::atomic<uint64_t> total_accesses{0};
    std::atomic<uint64_t> total_good{0};
    std::atomic<uint64_t> transitions{0};
    std::atomic<double> last_transition_time{0.0};
    std::atomic<double> now{0.0};
  };

  explicit SloMonitor(Options options);

  // Sums the trailing `window` periods from the ring (reader-safe).
  SloWindowView WindowView(uint64_t head, double window) const;

  Options options_;
  std::unique_ptr<Shared> shared_;
  std::unique_ptr<std::atomic<uint8_t>> state_;

  // Cached registry handles.
  Gauge* state_gauge_;
  Gauge* fast_burn_gauge_;
  Gauge* slow_burn_gauge_;
  Gauge* budget_remaining_gauge_;
  Counter* transitions_to_ok_;
  Counter* transitions_to_burning_;
  Counter* transitions_to_alert_;
};

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_SLO_H_
