#include "obs/build_info.h"

#include "common/string_util.h"
#include "obs/export.h"

// The build system stamps these (src/CMakeLists.txt); the fallbacks keep
// non-CMake compiles (tooling, IDE indexers) working.
#ifndef FRESHEN_BUILD_VERSION
#define FRESHEN_BUILD_VERSION "0.0.0"
#endif
#ifndef FRESHEN_BUILD_COMPILER
#define FRESHEN_BUILD_COMPILER "unknown"
#endif
#ifndef FRESHEN_BUILD_TYPE
#define FRESHEN_BUILD_TYPE "unknown"
#endif
#ifndef FRESHEN_BUILD_FLAGS
#define FRESHEN_BUILD_FLAGS ""
#endif

namespace freshen {
namespace obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      FRESHEN_BUILD_VERSION, FRESHEN_BUILD_COMPILER, FRESHEN_BUILD_TYPE,
      FRESHEN_BUILD_FLAGS,
#if defined(__cplusplus)
      __cplusplus >= 202002L ? "c++20" : "pre-c++20",
#else
      "unknown",
#endif
  };
  return info;
}

void ExportBuildInfo(MetricsRegistry* registry) {
  MetricsRegistry& r =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  const BuildInfo& info = GetBuildInfo();
  r.GetGauge("freshen_build_info", {{"build_type", info.build_type},
                                    {"compiler", info.compiler},
                                    {"flags", info.flags},
                                    {"version", info.version}})
      ->Set(1.0);
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  return StrFormat(
      "{\"version\":\"%s\",\"compiler\":\"%s\",\"build_type\":\"%s\","
      "\"flags\":\"%s\",\"cxx_standard\":\"%s\"}",
      JsonEscape(info.version).c_str(), JsonEscape(info.compiler).c_str(),
      JsonEscape(info.build_type).c_str(), JsonEscape(info.flags).c_str(),
      JsonEscape(info.cxx_standard).c_str());
}

}  // namespace obs
}  // namespace freshen
