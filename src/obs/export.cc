#include "obs/export.h"

#include <cmath>
#include <cstdint>

#include "common/string_util.h"
#include "common/table_writer.h"

namespace freshen {
namespace obs {
namespace {

// Exact for integer-valued doubles (counters, bucket counts), compact
// otherwise — keeps exporter output deterministic for golden tests.
std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.9g", value);
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// name{k="v",...} — the Prometheus series suffix; `extra` appends a label
// (used for the histogram le edge).
std::string PromSeries(const std::string& name, const Labels& labels,
                       const std::string& extra = "") {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + PromEscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

// One comma-separated k=v string for the CSV labels column; values are
// quoted/escaped so embedded commas or quotes cannot split a pair.
std::string CsvLabels(const Labels& labels) {
  std::vector<std::string> parts;
  parts.reserve(labels.size());
  for (const auto& [key, value] : labels) {
    parts.push_back(key + "=" + CsvLabelEscape(value));
  }
  return Join(parts, ",");
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        // Everything else (including \t and \r) passes through raw — the
        // exposition format defines no escapes for them.
        out += c;
    }
  }
  return out;
}

std::string CsvLabelEscape(const std::string& value) {
  const bool needs_quoting =
      value.find_first_of(",\"=\\\n") != std::string::npos;
  if (!needs_quoting) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string FormatJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& sample = snapshot.samples[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\":\"" + JsonEscape(sample.name) + "\",";
    out += "\"type\":\"" + std::string(MetricKindName(sample.kind)) + "\",";
    out += "\"labels\":" + JsonLabels(sample.labels) + ",";
    if (sample.kind == MetricKind::kHistogram) {
      out += "\"count\":" + StrFormat("%llu",
                                      (unsigned long long)sample.count) +
             ",";
      out += "\"sum\":" + FormatMetricValue(sample.sum) + ",";
      out += "\"buckets\":[";
      uint64_t cumulative = 0;
      for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
        if (b > 0) out += ",";
        cumulative += sample.bucket_counts[b];
        const std::string le =
            b < sample.bounds.size()
                ? "\"" + FormatMetricValue(sample.bounds[b]) + "\""
                : "\"+Inf\"";
        out += "{\"le\":" + le + ",\"count\":" +
               StrFormat("%llu", (unsigned long long)cumulative) + "}";
      }
      out += "]}";
    } else {
      out += "\"value\":" + FormatMetricValue(sample.value) + "}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string FormatPrometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_typed_name;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != last_typed_name) {
      out += "# TYPE " + sample.name + " " + MetricKindName(sample.kind) +
             "\n";
      last_typed_name = sample.name;
    }
    if (sample.kind == MetricKind::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
        cumulative += sample.bucket_counts[b];
        const std::string le =
            b < sample.bounds.size() ? FormatMetricValue(sample.bounds[b])
                                     : "+Inf";
        out += PromSeries(sample.name + "_bucket", sample.labels,
                          "le=\"" + le + "\"") +
               " " + StrFormat("%llu", (unsigned long long)cumulative) + "\n";
      }
      out += PromSeries(sample.name + "_sum", sample.labels) + " " +
             FormatMetricValue(sample.sum) + "\n";
      out += PromSeries(sample.name + "_count", sample.labels) + " " +
             StrFormat("%llu", (unsigned long long)sample.count) + "\n";
    } else {
      out += PromSeries(sample.name, sample.labels) + " " +
             FormatMetricValue(sample.value) + "\n";
    }
  }
  return out;
}

std::string FormatCsv(const RegistrySnapshot& snapshot) {
  TableWriter table({"metric", "labels", "type", "value", "count", "sum"});
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.kind == MetricKind::kHistogram) {
      table.AddRow({sample.name, CsvLabels(sample.labels),
                    MetricKindName(sample.kind), "",
                    StrFormat("%llu", (unsigned long long)sample.count),
                    FormatMetricValue(sample.sum)});
    } else {
      table.AddRow({sample.name, CsvLabels(sample.labels),
                    MetricKindName(sample.kind),
                    FormatMetricValue(sample.value), "", ""});
    }
  }
  return table.ToCsv();
}

Status NullSink::Export(const RegistrySnapshot& snapshot) {
  (void)snapshot;
  return Status::OK();
}

Status JsonSink::Export(const RegistrySnapshot& snapshot) {
  out_ << FormatJson(snapshot);
  return out_.good() ? Status::OK() : Status::Internal("json sink write failed");
}

Status PrometheusSink::Export(const RegistrySnapshot& snapshot) {
  out_ << FormatPrometheus(snapshot);
  return out_.good() ? Status::OK()
                     : Status::Internal("prometheus sink write failed");
}

Status CsvSink::Export(const RegistrySnapshot& snapshot) {
  out_ << FormatCsv(snapshot);
  return out_.good() ? Status::OK() : Status::Internal("csv sink write failed");
}

}  // namespace obs
}  // namespace freshen
