#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/status.h"

namespace freshen {
namespace obs {

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kBurning:
      return "burning";
    case SloState::kAlert:
      return "alert";
  }
  return "unknown";
}

SloMonitor::Shared::Shared(size_t size)
    : ring_size(size), ring(new Slot[size]) {}

SloMonitor::SloMonitor(Options options)
    : options_(options), state_(new std::atomic<uint8_t>(0)) {
  // Capacity far beyond the slow window: a reader would have to stall
  // across 4x slow_window ObservePeriod calls for its scan to race a
  // wrap-around overwrite.
  size_t ring_size = 1;
  const size_t want =
      static_cast<size_t>(std::ceil(options_.slow_window_periods)) * 4;
  while (ring_size < want) ring_size <<= 1;
  shared_ = std::make_unique<Shared>(ring_size);

  MetricsRegistry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : MetricsRegistry::Global();
  state_gauge_ = registry.GetGauge("freshen_slo_state");
  fast_burn_gauge_ = registry.GetGauge("freshen_slo_fast_burn_rate");
  slow_burn_gauge_ = registry.GetGauge("freshen_slo_slow_burn_rate");
  budget_remaining_gauge_ =
      registry.GetGauge("freshen_slo_budget_remaining");
  transitions_to_ok_ =
      registry.GetCounter("freshen_slo_transitions", {{"to", "ok"}});
  transitions_to_burning_ =
      registry.GetCounter("freshen_slo_transitions", {{"to", "burning"}});
  transitions_to_alert_ =
      registry.GetCounter("freshen_slo_transitions", {{"to", "alert"}});
}

Result<SloMonitor> SloMonitor::Create(Options options) {
  if (!(options.objective > 0.0 && options.objective < 1.0)) {
    return Status::InvalidArgument("SloMonitor: objective must be in (0, 1)");
  }
  if (!(options.age_slo >= 0.0) || !std::isfinite(options.age_slo)) {
    return Status::InvalidArgument(
        "SloMonitor: age_slo must be finite and >= 0");
  }
  if (!(options.fast_window_periods >= 1.0)) {
    return Status::InvalidArgument(
        "SloMonitor: fast_window_periods must be >= 1");
  }
  if (!(options.slow_window_periods > options.fast_window_periods)) {
    return Status::InvalidArgument(
        "SloMonitor: slow_window_periods must exceed fast_window_periods");
  }
  if (!std::isfinite(options.slow_window_periods) ||
      options.slow_window_periods > 1e6) {
    return Status::InvalidArgument(
        "SloMonitor: slow_window_periods out of range (max 1e6)");
  }
  if (!(options.warn_burn_rate > 0.0) ||
      !(options.page_burn_rate >= options.warn_burn_rate)) {
    return Status::InvalidArgument(
        "SloMonitor: need 0 < warn_burn_rate <= page_burn_rate");
  }
  return SloMonitor(options);
}

void SloMonitor::ObservePeriod(double period_end, uint64_t accesses,
                               uint64_t fresh_accesses,
                               uint64_t age_slo_accesses) {
  Shared& s = *shared_;
  const uint64_t head = s.head.load(std::memory_order_relaxed);
  Slot& slot = s.ring[head % s.ring_size];
  slot.end.store(period_end, std::memory_order_relaxed);
  slot.accesses.store(accesses, std::memory_order_relaxed);
  slot.fresh.store(std::min(fresh_accesses, accesses),
                   std::memory_order_relaxed);
  slot.age_good.store(std::min(age_slo_accesses, accesses),
                      std::memory_order_relaxed);
  const uint64_t good =
      options_.good_is_age_slo ? std::min(age_slo_accesses, accesses)
                               : std::min(fresh_accesses, accesses);
  s.total_accesses.fetch_add(accesses, std::memory_order_relaxed);
  s.total_good.fetch_add(good, std::memory_order_relaxed);
  s.now.store(period_end, std::memory_order_relaxed);
  // Publish the slot: readers only scan below head.
  s.head.store(head + 1, std::memory_order_release);

  const SloWindowView fast =
      WindowView(head + 1, options_.fast_window_periods);
  const SloWindowView slow =
      WindowView(head + 1, options_.slow_window_periods);

  const SloState prev = state();
  SloState next = SloState::kOk;
  if (fast.burn_rate >= options_.page_burn_rate &&
      slow.burn_rate >= options_.warn_burn_rate) {
    next = SloState::kAlert;
  } else if (fast.burn_rate >= options_.warn_burn_rate) {
    next = SloState::kBurning;
  }
  if (next != prev) {
    s.transitions.fetch_add(1, std::memory_order_relaxed);
    s.last_transition_time.store(period_end, std::memory_order_relaxed);
    switch (next) {
      case SloState::kOk:
        transitions_to_ok_->Increment();
        break;
      case SloState::kBurning:
        transitions_to_burning_->Increment();
        break;
      case SloState::kAlert:
        transitions_to_alert_->Increment();
        break;
    }
  }
  state_->store(static_cast<uint8_t>(next), std::memory_order_release);

  state_gauge_->Set(static_cast<double>(next));
  fast_burn_gauge_->Set(fast.burn_rate);
  slow_burn_gauge_->Set(slow.burn_rate);
  budget_remaining_gauge_->Set(
      std::clamp(1.0 - slow.burn_rate * slow.periods /
                           options_.slow_window_periods,
                 0.0, 1.0));
}

SloWindowView SloMonitor::WindowView(uint64_t head, double window) const {
  const Shared& s = *shared_;
  SloWindowView view;
  view.length_periods = window;
  const uint64_t periods =
      std::min<uint64_t>(head, static_cast<uint64_t>(window));
  for (uint64_t i = 0; i < periods; ++i) {
    const Slot& slot = s.ring[(head - 1 - i) % s.ring_size];
    view.accesses += slot.accesses.load(std::memory_order_relaxed);
    view.good += options_.good_is_age_slo
                     ? slot.age_good.load(std::memory_order_relaxed)
                     : slot.fresh.load(std::memory_order_relaxed);
  }
  view.periods = periods;
  if (view.accesses > 0) {
    view.bad_ratio = 1.0 - static_cast<double>(view.good) /
                               static_cast<double>(view.accesses);
  }
  view.burn_rate = view.bad_ratio / (1.0 - options_.objective);
  return view;
}

SloReport SloMonitor::Report() const {
  const Shared& s = *shared_;
  SloReport report;
  report.objective = options_.objective;
  report.error_budget = 1.0 - options_.objective;
  report.good_is_age_slo = options_.good_is_age_slo;
  report.age_slo = options_.age_slo;
  // Acquire pairs with the writer's release store: every slot below this
  // head is fully written.
  const uint64_t head = s.head.load(std::memory_order_acquire);
  report.state = state();
  report.transitions = s.transitions.load(std::memory_order_relaxed);
  report.last_transition_time =
      s.last_transition_time.load(std::memory_order_relaxed);
  report.fast = WindowView(head, options_.fast_window_periods);
  report.slow = WindowView(head, options_.slow_window_periods);
  report.total_accesses = s.total_accesses.load(std::memory_order_relaxed);
  report.total_good = s.total_good.load(std::memory_order_relaxed);
  report.overall_good_ratio =
      report.total_accesses > 0
          ? static_cast<double>(report.total_good) /
                static_cast<double>(report.total_accesses)
          : 1.0;
  report.budget_remaining = std::clamp(
      1.0 - report.slow.burn_rate * report.slow.periods /
                options_.slow_window_periods,
      0.0, 1.0);
  report.now = s.now.load(std::memory_order_relaxed);
  return report;
}

}  // namespace obs
}  // namespace freshen
