#include "obs/metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace freshen {
namespace obs {
namespace {

// Serialized identity of one series: name{k1=v1,k2=v2} with labels sorted,
// so the same label set in any order maps to the same entry.
std::string SeriesKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      enabled_(enabled) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  FRESHEN_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds(count);
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[i] = edge;
    edge *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  FRESHEN_CHECK(width > 0.0 && count >= 1);
  std::vector<double> bounds(count);
  for (int i = 0; i < count; ++i) {
    bounds[i] = start + width * i;
  }
  return bounds;
}

const std::vector<double>& LatencySecondsBuckets() {
  // 1us .. ~107s in decade-and-a-half steps.
  static const std::vector<double> kBuckets =
      ExponentialBuckets(1e-6, 4.0, 14);
  return kBuckets;
}

const std::vector<double>& IterationCountBuckets() {
  static const std::vector<double> kBuckets = ExponentialBuckets(1.0, 2.0, 13);
  return kBuckets;
}

const MetricSample* RegistrySnapshot::Find(const std::string& name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const MetricSample* RegistrySnapshot::Find(const std::string& name,
                                           const Labels& labels) const {
  const Labels sorted = SortedLabels(labels);
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.labels == sorted) return &sample;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrumentation in static destructors stays safe.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    MetricKind kind, const std::string& name, const Labels& labels,
    const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = SeriesKey(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    FRESHEN_CHECK(it->second.kind == kind);  // One kind per series name.
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = name;
  entry.labels = SortedLabels(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter.reset(new Counter(&enabled_));
      break;
    case MetricKind::kGauge:
      entry.gauge.reset(new Gauge(&enabled_));
      break;
    case MetricKind::kHistogram:
      FRESHEN_CHECK(bounds != nullptr && !bounds->empty());
      FRESHEN_CHECK(std::is_sorted(bounds->begin(), bounds->end()));
      entry.histogram.reset(new Histogram(*bounds, &enabled_));
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return FindOrCreate(MetricKind::kCounter, name, labels, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return FindOrCreate(MetricKind::kGauge, name, labels, nullptr)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  return FindOrCreate(MetricKind::kHistogram, name, labels, &bounds)
      ->histogram.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snapshot;
  snapshot.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.labels = entry.labels;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.bounds = entry.histogram->bounds();
        sample.bucket_counts = entry.histogram->BucketCounts();
        // Prometheus conformance: the +Inf cumulative bucket MUST equal
        // _count in one exposition. Record() bumps bucket then count, so
        // reading count() here could exceed the bucket sum mid-Record;
        // derive the count from the buckets we actually copied instead
        // (the sum may still trail by the in-flight observation, which is
        // the documented tearing tolerance).
        sample.count = 0;
        for (uint64_t bucket_count : sample.bucket_counts) {
          sample.count += bucket_count;
        }
        sample.sum = entry.histogram->sum();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace freshen
