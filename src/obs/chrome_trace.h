// Chrome trace_event export for the flight recorder — any freshen run can
// be opened in Perfetto (ui.perfetto.dev) or chrome://tracing. Wall-clock
// events land in pid 1 ("freshen wall clock", one tid per emitting thread);
// virtual-time events land in pid 2 ("freshen virtual time", one tid per
// logical track) with period units rendered as seconds.
//
// Two text forms back the tests:
//   * FormatEventsText — every event, merged in thread order (the order
//     Collect returns), for human eyes and span-pairing checks.
//   * FormatVirtualEventsText — only virtual-clock events, sorted on a
//     total deterministic key. Virtual events are pure functions of the
//     seed, so this dump is byte-identical across thread counts — the
//     reproducibility contract freshenctl trace and chrome_trace_test pin.
#ifndef FRESHEN_OBS_CHROME_TRACE_H_
#define FRESHEN_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/recorder.h"

namespace freshen {
namespace obs {

/// Formats events as a Chrome trace_event JSON document
/// ({"traceEvents":[...]}) with one event object per line, plus process /
/// thread name metadata. Events are stably sorted by (pid, tid, ts), which
/// preserves each thread's emission order at equal timestamps so B/E pairs
/// stay properly nested.
std::string FormatChromeTrace(const std::vector<Event>& events);

/// One line per event: "wall|virt track=<t> ts=<s> <B|E|i> <cat>/<name>
/// [arg=value ...]", in the order given (Collect order = thread order).
std::string FormatEventsText(const std::vector<Event>& events);

/// Only the virtual-clock events, sorted by (track, ts, phase, name, args)
/// — a total order on deterministic fields, so two same-seed runs produce
/// byte-identical output at any thread count.
std::string FormatVirtualEventsText(const std::vector<Event>& events);

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_CHROME_TRACE_H_
