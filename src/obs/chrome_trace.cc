#include "obs/chrome_trace.h"

#include <algorithm>
#include <set>
#include <string_view>
#include <utility>

#include "common/string_util.h"
#include "obs/export.h"

namespace freshen {
namespace obs {
namespace {

// pid 1 = wall clock, pid 2 = virtual time (period units shown as seconds).
constexpr int kWallPid = 1;
constexpr int kVirtualPid = 2;

int EventPid(const Event& event) {
  return event.clock == EventClock::kWall ? kWallPid : kVirtualPid;
}

// Phases sort B < i < E at equal timestamps so instants nest inside the
// span that contains them and zero-length spans stay properly paired.
int PhaseRank(EventPhase phase) {
  switch (phase) {
    case EventPhase::kBegin:
      return 0;
    case EventPhase::kInstant:
      return 1;
    case EventPhase::kEnd:
      return 2;
  }
  return 3;
}

std::string FormatArgs(const Event& event) {
  std::string out = "{";
  if (event.arg0_name != nullptr) {
    out += "\"" + JsonEscape(event.arg0_name) + "\":" +
           StrFormat("%.9g", event.arg0);
  }
  if (event.arg1_name != nullptr) {
    if (event.arg0_name != nullptr) out += ",";
    out += "\"" + JsonEscape(event.arg1_name) + "\":" +
           StrFormat("%.9g", event.arg1);
  }
  out += "}";
  return out;
}

void AppendMetadata(std::string& out, const char* name, int pid,
                    uint64_t tid, bool with_tid, const std::string& value) {
  out += " {\"name\":\"";
  out += name;
  out += StrFormat("\",\"ph\":\"M\",\"pid\":%d", pid);
  if (with_tid) out += StrFormat(",\"tid\":%llu", (unsigned long long)tid);
  out += ",\"args\":{\"name\":\"" + JsonEscape(value) + "\"}},\n";
}

std::string VirtualTrackName(uint64_t track) {
  if (track == kTrackOnlineLoop) return "online-loop";
  if (track == kTrackSyncCommit) return "sync-commit";
  if (track >= kTrackSimShardBase) {
    return StrFormat("sim-shard-%llu",
                     (unsigned long long)(track - kTrackSimShardBase));
  }
  return StrFormat("track-%llu", (unsigned long long)track);
}

std::string EventLine(const Event& event) {
  std::string line = event.clock == EventClock::kWall ? "wall" : "virt";
  line += StrFormat(" track=%llu ts=%.9g ",
                    (unsigned long long)event.track, event.ts);
  line += EventPhaseName(event.phase);
  line += " ";
  line += event.category;
  line += "/";
  line += event.name;
  if (event.arg0_name != nullptr) {
    line += StrFormat(" %s=%.9g", event.arg0_name, event.arg0);
  }
  if (event.arg1_name != nullptr) {
    line += StrFormat(" %s=%.9g", event.arg1_name, event.arg1);
  }
  line += "\n";
  return line;
}

}  // namespace

std::string FormatChromeTrace(const std::vector<Event>& events) {
  // Stable sort keeps each thread's emission order at equal (pid, tid, ts),
  // which is what keeps B/E pairs properly nested.
  std::vector<const Event*> order;
  order.reserve(events.size());
  for (const Event& event : events) order.push_back(&event);
  std::stable_sort(order.begin(), order.end(),
                   [](const Event* a, const Event* b) {
                     const int pa = EventPid(*a);
                     const int pb = EventPid(*b);
                     if (pa != pb) return pa < pb;
                     if (a->track != b->track) return a->track < b->track;
                     return a->ts < b->ts;
                   });

  std::string out = "{\"traceEvents\":[\n";
  AppendMetadata(out, "process_name", kWallPid, 0, false,
                 "freshen wall clock");
  AppendMetadata(out, "process_name", kVirtualPid, 0, false,
                 "freshen virtual time (period units)");
  std::set<uint64_t> virtual_tracks;
  for (const Event& event : events) {
    if (event.clock == EventClock::kVirtual) {
      virtual_tracks.insert(event.track);
    }
  }
  for (uint64_t track : virtual_tracks) {
    AppendMetadata(out, "thread_name", kVirtualPid, track, true,
                   VirtualTrackName(track));
  }

  for (size_t i = 0; i < order.size(); ++i) {
    const Event& event = *order[i];
    out += " {\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
           JsonEscape(event.category) + "\",\"ph\":\"" +
           EventPhaseName(event.phase) + "\",";
    // trace_event timestamps are microseconds.
    out += StrFormat("\"ts\":%.3f,\"pid\":%d,\"tid\":%llu,", event.ts * 1e6,
                     EventPid(event), (unsigned long long)event.track);
    if (event.phase == EventPhase::kInstant) out += "\"s\":\"t\",";
    out += "\"args\":" + FormatArgs(event) + "}";
    if (i + 1 < order.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

std::string FormatEventsText(const std::vector<Event>& events) {
  std::string out;
  for (const Event& event : events) out += EventLine(event);
  return out;
}

std::string FormatVirtualEventsText(const std::vector<Event>& events) {
  std::vector<Event> virtual_events;
  for (const Event& event : events) {
    if (event.clock == EventClock::kVirtual) virtual_events.push_back(event);
  }
  // Total order on deterministic fields only — never on ring or emission
  // order, which depend on thread scheduling.
  std::sort(virtual_events.begin(), virtual_events.end(),
            [](const Event& a, const Event& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.ts != b.ts) return a.ts < b.ts;
              const int ra = PhaseRank(a.phase);
              const int rb = PhaseRank(b.phase);
              if (ra != rb) return ra < rb;
              const int name_cmp = std::string_view(a.name).compare(b.name);
              if (name_cmp != 0) return name_cmp < 0;
              if (a.arg0 != b.arg0) return a.arg0 < b.arg0;
              return a.arg1 < b.arg1;
            });
  return FormatEventsText(virtual_events);
}

}  // namespace obs
}  // namespace freshen
