#include "obs/trace.h"

#include "obs/recorder.h"

namespace freshen {
namespace obs {
namespace {

// Innermost open span on this thread; ScopedSpan links form the stack.
thread_local ScopedSpan* t_current_span = nullptr;

// Begin/End events for the flight recorder. The span name must be a
// literal (the Event keeps the pointer); depth lets trace viewers sanity
// check nesting without re-deriving it.
void EmitSpanEvent(const char* name, EventPhase phase, int depth) {
  EventRecorder& recorder = EventRecorder::Global();
  if (!recorder.enabled()) return;
  Event event;
  event.name = name;
  event.category = "span";
  event.phase = phase;
  event.clock = EventClock::kWall;
  event.ts = RecorderNowSeconds();
  event.arg0 = static_cast<double>(depth);
  event.arg0_name = "depth";
  recorder.Emit(event);
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name, MetricsRegistry& registry)
    : registry_(registry), parent_(t_current_span), name_(name) {
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + std::char_traits<char>::length(name));
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
    depth_ = parent_->depth_ + 1;
  } else {
    path_ = name;
  }
  t_current_span = this;
  EmitSpanEvent(name_, EventPhase::kBegin, depth_);
}

ScopedSpan::~ScopedSpan() {
  t_current_span = parent_;
  // The recorder event is independent of the metrics kill switch — the
  // flight recorder has its own enabled bit.
  EmitSpanEvent(name_, EventPhase::kEnd, depth_);
  if (!registry_.enabled()) return;
  registry_
      .GetHistogram(kSpanHistogramName, LatencySecondsBuckets(),
                    {{"span", path_}})
      ->Record(timer_.ElapsedSeconds());
}

std::string CurrentSpanPath() {
  return t_current_span != nullptr ? t_current_span->path() : std::string();
}

}  // namespace obs
}  // namespace freshen
