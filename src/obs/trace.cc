#include "obs/trace.h"

namespace freshen {
namespace obs {
namespace {

// Innermost open span on this thread; ScopedSpan links form the stack.
thread_local ScopedSpan* t_current_span = nullptr;

}  // namespace

ScopedSpan::ScopedSpan(const char* name, MetricsRegistry& registry)
    : registry_(registry), parent_(t_current_span) {
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + std::char_traits<char>::length(name));
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = name;
  }
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  t_current_span = parent_;
  if (!registry_.enabled()) return;
  registry_
      .GetHistogram(kSpanHistogramName, LatencySecondsBuckets(),
                    {{"span", path_}})
      ->Record(timer_.ElapsedSeconds());
}

std::string CurrentSpanPath() {
  return t_current_span != nullptr ? t_current_span->path() : std::string();
}

}  // namespace obs
}  // namespace freshen
