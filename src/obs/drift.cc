#include "obs/drift.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace freshen {
namespace obs {

DriftDetector::DriftDetector(Options options)
    : options_(options),
      polls_(options.num_elements, 0.0),
      changes_(options.num_elements, 0.0),
      watch_time_(options.num_elements, 0.0),
      mu_(new std::mutex),
      recommend_(new std::atomic<bool>(false)) {
  MetricsRegistry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : MetricsRegistry::Global();
  aggregate_gauge_ = registry.GetGauge("freshen_drift_aggregate_score");
  max_gauge_ = registry.GetGauge("freshen_drift_max_score");
  flagged_gauge_ = registry.GetGauge("freshen_drift_flagged_elements");
  replans_counter_ = registry.GetCounter("freshen_drift_replans_triggered");
}

Result<DriftDetector> DriftDetector::Create(Options options) {
  if (options.num_elements == 0) {
    return Status::InvalidArgument("DriftDetector: num_elements must be > 0");
  }
  if (!(options.decay > 0.0 && options.decay <= 1.0)) {
    return Status::InvalidArgument("DriftDetector: decay must be in (0, 1]");
  }
  if (!(options.min_evidence >= 1.0)) {
    return Status::InvalidArgument("DriftDetector: min_evidence must be >= 1");
  }
  if (options.top_k == 0) {
    return Status::InvalidArgument("DriftDetector: top_k must be > 0");
  }
  if (!(options.flag_threshold > 0.0) || !(options.replan_score > 0.0)) {
    return Status::InvalidArgument(
        "DriftDetector: thresholds must be positive");
  }
  if (options.replan_consecutive_periods == 0) {
    return Status::InvalidArgument(
        "DriftDetector: replan_consecutive_periods must be >= 1");
  }
  if (!(options.rate_floor > 0.0)) {
    return Status::InvalidArgument("DriftDetector: rate_floor must be > 0");
  }
  return DriftDetector(options);
}

void DriftDetector::ObserveSync(size_t element, bool changed, double gap) {
  if (element >= polls_.size()) return;
  if (!(gap > 0.0) || !std::isfinite(gap)) return;
  polls_[element] += 1.0;
  if (changed) changes_[element] += 1.0;
  watch_time_[element] += gap;
}

void DriftDetector::EndPeriod(double now,
                              const std::vector<double>& planned_rates) {
  DriftReport report;
  report.now = now;
  report.top.reserve(options_.top_k);

  double weighted_score = 0.0;
  double weight = 0.0;
  const size_t n = std::min(polls_.size(), planned_rates.size());
  for (size_t i = 0; i < n; ++i) {
    const double p = polls_[i];
    const double w = watch_time_[i];
    if (p < options_.min_evidence || !(w > 0.0)) continue;
    // Bias-reduced rate from poll evidence: with mean inter-poll gap w/p
    // and detection ratio c/p, a Poisson change process has
    // rate = -ln(1 - c/p) / (w/p). Cap the ratio so all-changed evidence
    // yields a large finite rate instead of infinity.
    const double ratio = std::min(changes_[i] / p, 0.999);
    const double observed =
        std::max(-std::log1p(-ratio) / (w / p), options_.rate_floor);
    const double planned = std::max(
        i < planned_rates.size() ? planned_rates[i] : 0.0,
        options_.rate_floor);
    const double score = std::fabs(std::log(observed / planned));

    ++report.scored_elements;
    weighted_score += score * p;
    weight += p;
    report.max_score = std::max(report.max_score, score);
    if (score >= options_.flag_threshold) ++report.flagged_elements;

    if (report.top.size() < options_.top_k ||
        score > report.top.back().score) {
      DriftOffender offender;
      offender.element = i;
      offender.planned_rate = planned;
      offender.observed_rate = observed;
      offender.score = score;
      offender.evidence = p;
      auto pos = std::upper_bound(
          report.top.begin(), report.top.end(), offender,
          [](const DriftOffender& a, const DriftOffender& b) {
            return a.score > b.score;
          });
      report.top.insert(pos, offender);
      if (report.top.size() > options_.top_k) report.top.pop_back();
    }
  }
  if (weight > 0.0) report.aggregate_score = weighted_score / weight;

  // Debounced recommendation: require sustained aggregate drift.
  if (report.aggregate_score >= options_.replan_score &&
      report.scored_elements > 0) {
    ++periods_above_;
  } else {
    periods_above_ = 0;
    recommend_->store(false, std::memory_order_release);
  }
  if (periods_above_ >= options_.replan_consecutive_periods) {
    recommend_->store(true, std::memory_order_release);
  }
  report.periods_above_threshold = periods_above_;
  report.replan_recommended =
      recommend_->load(std::memory_order_relaxed);
  report.replans_triggered = replans_triggered_;

  aggregate_gauge_->Set(report.aggregate_score);
  max_gauge_->Set(report.max_score);
  flagged_gauge_->Set(static_cast<double>(report.flagged_elements));

  {
    std::lock_guard<std::mutex> lock(*mu_);
    report_ = std::move(report);
  }

  // Decay AFTER scoring so the period's own syncs count at full weight.
  if (options_.decay < 1.0) {
    for (size_t i = 0; i < polls_.size(); ++i) {
      polls_[i] *= options_.decay;
      changes_[i] *= options_.decay;
      watch_time_[i] *= options_.decay;
    }
  }
}

void DriftDetector::AcknowledgeReplan() {
  recommend_->store(false, std::memory_order_release);
  periods_above_ = 0;
  ++replans_triggered_;
  replans_counter_->Increment();
  std::lock_guard<std::mutex> lock(*mu_);
  report_.replan_recommended = false;
  report_.periods_above_threshold = 0;
  report_.replans_triggered = replans_triggered_;
}

DriftReport DriftDetector::Report() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return report_;
}

}  // namespace obs
}  // namespace freshen
