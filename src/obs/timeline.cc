#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "obs/export.h"

namespace freshen {
namespace obs {
namespace {

constexpr double kFresh = -1.0;  // stale_since_ sentinel: element is fresh.

std::string WindowJson(const TimelineWindow& window) {
  std::string out = "{";
  out += StrFormat("\"begin\":%.9g,\"end\":%.9g,", window.begin, window.end);
  out += StrFormat("\"weighted_freshness\":%.17g,", window.weighted_freshness);
  out += StrFormat("\"accesses\":%llu,\"fresh_accesses\":%llu,"
                   "\"slo_accesses\":%llu,",
                   (unsigned long long)window.accesses,
                   (unsigned long long)window.fresh_accesses,
                   (unsigned long long)window.slo_accesses);
  out += "\"offenders\":[";
  for (size_t i = 0; i < window.offenders.size(); ++i) {
    const TimelineElementStats& e = window.offenders[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"element\":%llu,\"weight\":%.9g,"
                     "\"stale_time\":%.9g,\"fresh_fraction\":%.9g,"
                     "\"stale_score\":%.9g}",
                     (unsigned long long)e.element, e.weight, e.stale_time,
                     e.fresh_fraction, e.stale_score);
  }
  out += "]}";
  return out;
}

}  // namespace

StalenessTimeline::StalenessTimeline(std::vector<double> weights,
                                     Options options)
    : options_(options), weights_(std::move(weights)) {
  const size_t n = weights_.size();
  stale_since_.assign(n, kFresh);
  stale_total_.assign(n, 0.0);
  accesses_.assign(n, 0);
  fresh_accesses_.assign(n, 0);
  slo_accesses_.assign(n, 0);
  age_sum_.assign(n, 0.0);
  stale_mark_.assign(n, 0.0);
  accesses_mark_.assign(n, 0);
  fresh_mark_.assign(n, 0);
  slo_mark_.assign(n, 0);
  window_cursor_ = options_.window_begin;
}

Result<StalenessTimeline> StalenessTimeline::Create(
    std::vector<double> weights, Options options) {
  if (weights.empty()) {
    return Status::InvalidArgument("timeline needs at least one element");
  }
  if (!(options.window_end > options.window_begin)) {
    return Status::InvalidArgument("timeline window must have positive length");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("timeline weights must be finite and >= 0");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("timeline weights must not all be zero");
  }
  for (double& w : weights) w /= total;
  return StalenessTimeline(std::move(weights), options);
}

double StalenessTimeline::ClampedInterval(double from, double to) const {
  const double lo = std::max(from, options_.window_begin);
  const double hi = std::min(to, options_.window_end);
  return std::max(0.0, hi - lo);
}

void StalenessTimeline::MarkStale(size_t element, double time) {
  if (element >= stale_since_.size()) return;
  if (stale_since_[element] != kFresh) return;  // Earliest onset wins.
  stale_since_[element] = time;
}

void StalenessTimeline::MarkFresh(size_t element, double time) {
  if (element >= stale_since_.size()) return;
  const double since = stale_since_[element];
  if (since == kFresh) return;
  stale_total_[element] += ClampedInterval(since, time);
  stale_since_[element] = kFresh;
}

void StalenessTimeline::OnAccess(size_t element, double time, double age) {
  if (element >= accesses_.size()) return;
  (void)time;
  ++accesses_[element];
  age_sum_[element] += age;
  if (age <= 0.0) ++fresh_accesses_[element];
  if (age <= options_.age_slo) ++slo_accesses_[element];
}

TimelineWindow StalenessTimeline::BuildWindow(double begin, double end,
                                              bool against_marks) const {
  TimelineWindow window;
  window.begin = begin;
  window.end = end;
  const double length = end - begin;
  const size_t n = weights_.size();

  std::vector<TimelineElementStats> rows(n);
  // Weighted freshness summed in index order with Kahan compensation — the
  // same tree the per-period windows and the whole-run report both use, so
  // window stats never depend on which thread fed which element.
  double sum = 0.0;
  double comp = 0.0;
  for (size_t i = 0; i < n; ++i) {
    TimelineElementStats& row = rows[i];
    row.element = i;
    row.weight = weights_[i];
    double stale = stale_total_[i];
    uint64_t acc = accesses_[i];
    uint64_t fresh_acc = fresh_accesses_[i];
    uint64_t slo_acc = slo_accesses_[i];
    if (against_marks) {
      stale -= stale_mark_[i];
      acc -= accesses_mark_[i];
      fresh_acc -= fresh_mark_[i];
      slo_acc -= slo_mark_[i];
    }
    // An element still stale at window close is charged up to `end`
    // without mutating the ledger (Finalize/CloseWindow own the mutation).
    if (stale_since_[i] != kFresh) {
      const double lo = std::max(stale_since_[i], begin);
      stale += std::max(0.0, std::min(end, options_.window_end) - lo);
    }
    stale = std::min(std::max(stale, 0.0), length);
    row.stale_time = stale;
    row.fresh_fraction = length > 0.0 ? 1.0 - stale / length : 1.0;
    row.stale_score = row.weight * (1.0 - row.fresh_fraction);
    row.accesses = acc;
    row.fresh_accesses = fresh_acc;
    row.slo_accesses = slo_acc;
    row.mean_access_age = acc > 0 ? age_sum_[i] / static_cast<double>(acc)
                                  : 0.0;
    window.accesses += acc;
    window.fresh_accesses += fresh_acc;
    window.slo_accesses += slo_acc;

    const double term = row.weight * row.fresh_fraction;
    const double y = term - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  window.weighted_freshness = sum;

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  const size_t k = std::min(options_.top_k, n);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&rows](size_t a, size_t b) {
                      if (rows[a].stale_score != rows[b].stale_score) {
                        return rows[a].stale_score > rows[b].stale_score;
                      }
                      return a < b;
                    });
  window.offenders.reserve(k);
  for (size_t i = 0; i < k; ++i) window.offenders.push_back(rows[order[i]]);
  return window;
}

void StalenessTimeline::CloseWindow(double end) {
  closed_windows_.push_back(BuildWindow(window_cursor_, end,
                                        /*against_marks=*/true));
  // Materialize open stale intervals so the next window's delta starts
  // clean; the element stays stale with onset reset to the boundary.
  for (size_t i = 0; i < stale_since_.size(); ++i) {
    if (stale_since_[i] != kFresh) {
      stale_total_[i] += ClampedInterval(stale_since_[i], end);
      stale_since_[i] = std::max(end, options_.window_begin);
    }
  }
  stale_mark_ = stale_total_;
  accesses_mark_ = accesses_;
  fresh_mark_ = fresh_accesses_;
  slo_mark_ = slo_accesses_;
  window_cursor_ = end;
}

TimelineReport StalenessTimeline::Finalize() {
  // Close the trailing partial window so `periods` tiles the whole run —
  // only when per-period windows are in use at all (the simulator path
  // never calls CloseWindow and reports just the overall window).
  if (!closed_windows_.empty() && window_cursor_ < options_.window_end) {
    CloseWindow(options_.window_end);
  }
  // Charge whatever is still stale up to the window end.
  for (size_t i = 0; i < stale_since_.size(); ++i) {
    if (stale_since_[i] != kFresh) {
      stale_total_[i] +=
          ClampedInterval(stale_since_[i], options_.window_end);
      stale_since_[i] = kFresh;
    }
  }

  TimelineReport report;
  report.age_slo = options_.age_slo;
  report.periods = closed_windows_;

  TimelineWindow overall = BuildWindow(options_.window_begin,
                                       options_.window_end,
                                       /*against_marks=*/false);
  // The overall window keeps the full per-element ledger; offenders stay
  // the top-k view of the same rows.
  const size_t n = weights_.size();
  report.elements.resize(n);
  {
    // Rebuild rows exactly as BuildWindow computed them (same arithmetic).
    const double length = options_.window_end - options_.window_begin;
    for (size_t i = 0; i < n; ++i) {
      TimelineElementStats& row = report.elements[i];
      row.element = i;
      row.weight = weights_[i];
      row.stale_time = std::min(std::max(stale_total_[i], 0.0), length);
      row.fresh_fraction =
          length > 0.0 ? 1.0 - row.stale_time / length : 1.0;
      row.stale_score = row.weight * (1.0 - row.fresh_fraction);
      row.accesses = accesses_[i];
      row.fresh_accesses = fresh_accesses_[i];
      row.slo_accesses = slo_accesses_[i];
      row.mean_access_age =
          accesses_[i] > 0 ? age_sum_[i] / static_cast<double>(accesses_[i])
                           : 0.0;
    }
  }
  report.overall = std::move(overall);
  report.fresh_access_ratio =
      report.overall.accesses > 0
          ? static_cast<double>(report.overall.fresh_accesses) /
                static_cast<double>(report.overall.accesses)
          : 1.0;
  report.slo_access_ratio =
      report.overall.accesses > 0
          ? static_cast<double>(report.overall.slo_accesses) /
                static_cast<double>(report.overall.accesses)
          : 1.0;

  MetricsRegistry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : MetricsRegistry::Global();
  registry.GetGauge("freshen_timeline_elements")
      ->Set(static_cast<double>(n));
  registry.GetGauge("freshen_timeline_weighted_freshness")
      ->Set(report.overall.weighted_freshness);
  registry.GetGauge("freshen_timeline_fresh_access_ratio")
      ->Set(report.fresh_access_ratio);
  registry.GetGauge("freshen_timeline_slo_access_ratio")
      ->Set(report.slo_access_ratio);
  registry.GetGauge("freshen_timeline_windows")
      ->Set(static_cast<double>(report.periods.size()));
  return report;
}

std::string FormatTimelineCsv(const TimelineReport& report) {
  TableWriter table({"element", "weight", "stale_time", "fresh_fraction",
                     "stale_score", "accesses", "fresh_accesses",
                     "slo_accesses", "mean_access_age"});
  for (const TimelineElementStats& e : report.elements) {
    table.AddRow({StrFormat("%llu", (unsigned long long)e.element),
                  StrFormat("%.9g", e.weight),
                  StrFormat("%.9g", e.stale_time),
                  StrFormat("%.9g", e.fresh_fraction),
                  StrFormat("%.9g", e.stale_score),
                  StrFormat("%llu", (unsigned long long)e.accesses),
                  StrFormat("%llu", (unsigned long long)e.fresh_accesses),
                  StrFormat("%llu", (unsigned long long)e.slo_accesses),
                  StrFormat("%.9g", e.mean_access_age)});
  }
  return table.ToCsv();
}

std::string FormatTimelineJson(const TimelineReport& report) {
  std::string out = "{\n";
  out += " \"overall\":" + WindowJson(report.overall) + ",\n";
  out += StrFormat(" \"fresh_access_ratio\":%.9g,\n"
                   " \"slo_access_ratio\":%.9g,\n"
                   " \"age_slo\":%.9g,\n",
                   report.fresh_access_ratio, report.slo_access_ratio,
                   report.age_slo);
  out += " \"periods\":[\n";
  for (size_t i = 0; i < report.periods.size(); ++i) {
    out += "  " + WindowJson(report.periods[i]);
    if (i + 1 < report.periods.size()) out += ",";
    out += "\n";
  }
  out += " ]\n}\n";
  return out;
}

}  // namespace obs
}  // namespace freshen
