// Build identification, exported the Prometheus way: a constant
// `freshen_build_info` gauge whose value is always 1 and whose labels carry
// the interesting facts (version, compiler, build type, flags). Dashboards
// join on it to answer "which build is serving this traffic?" without the
// binary having to expose a bespoke endpoint.
#ifndef FRESHEN_OBS_BUILD_INFO_H_
#define FRESHEN_OBS_BUILD_INFO_H_

#include <string>

#include "obs/metrics.h"

namespace freshen {
namespace obs {

/// Compile-time facts about this binary. All strings are static.
struct BuildInfo {
  const char* version;     // Project version (CMake project VERSION).
  const char* compiler;    // "GNU 13.2.0"-style compiler id.
  const char* build_type;  // Release / Debug / RelWithDebInfo...
  const char* flags;       // Notable flag summary (native ISA, sanitizer).
  const char* cxx_standard;
};

/// The facts baked into this binary.
const BuildInfo& GetBuildInfo();

/// Registers the constant freshen_build_info{version=...,compiler=...,
/// build_type=...,flags=...} = 1 gauge. Idempotent; nullptr = process-wide
/// registry.
void ExportBuildInfo(MetricsRegistry* registry = nullptr);

/// The same facts as a single-line JSON object (for STATS payloads).
std::string BuildInfoJson();

}  // namespace obs
}  // namespace freshen

#endif  // FRESHEN_OBS_BUILD_INFO_H_
