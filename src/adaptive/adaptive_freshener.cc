#include "adaptive/adaptive_freshener.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "opt/problem.h"
#include "stats/descriptive.h"

namespace freshen {

Result<AdaptiveFreshener> AdaptiveFreshener::Create(std::vector<double> sizes,
                                                    double bandwidth,
                                                    Options options) {
  if (sizes.empty()) {
    return Status::InvalidArgument("controller needs at least one element");
  }
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (!(sizes[i] > 0.0) || !std::isfinite(sizes[i])) {
      return Status::InvalidArgument(
          StrFormat("size %zu must be positive and finite", i));
    }
  }
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (!(options.replan_every_periods > 0.0)) {
    return Status::InvalidArgument("replan cadence must be positive");
  }
  if (!(options.prior_change_rate > 0.0)) {
    return Status::InvalidArgument("prior change rate must be positive");
  }
  if (options.learner.smoothing <= 0.0) {
    return Status::InvalidArgument(
        "learner smoothing must be positive for cold starts");
  }
  if (options.delta.enable) {
    if (options.planner.mode != PlanMode::kExact) {
      return Status::InvalidArgument(
          "incremental replanning requires the exact planner "
          "(partitioned plans have no per-element solve to patch)");
    }
    if (!(options.delta.full_churn_threshold > 0.0)) {
      return Status::InvalidArgument(
          "delta.full_churn_threshold must be positive");
    }
    if (!(options.delta.value_deadband >= 0.0)) {
      return Status::InvalidArgument("delta.value_deadband must be >= 0");
    }
  }
  // Streaming trackers start from the same prior the batch path reports
  // for unobserved elements, so the cold-start plans coincide.
  options.streaming.initial_rate = options.prior_change_rate;
  if (options.streaming.initial_rate < options.streaming.min_rate ||
      options.streaming.initial_rate > options.streaming.max_rate ||
      !(options.streaming.min_rate > 0.0) || !(options.streaming.gain > 0.0)) {
    return Status::InvalidArgument(
        "streaming options must satisfy 0 < min_rate <= prior <= max_rate "
        "with positive gain");
  }
  AdaptiveFreshener controller(std::move(sizes), bandwidth, options);
  // Install the initial plan from priors.
  FRESHEN_RETURN_IF_ERROR(
      controller.MaybeReplan(0.0, /*force=*/true).status());
  return controller;
}

AdaptiveFreshener::AdaptiveFreshener(std::vector<double> sizes,
                                     double bandwidth, Options options)
    : options_(options),
      sizes_(std::move(sizes)),
      bandwidth_(bandwidth),
      learner_(sizes_.size(), options.learner),
      polls_(sizes_.size(), 0),
      changes_(sizes_.size(), 0),
      watch_time_(sizes_.size(), 0.0),
      last_sync_time_(sizes_.size(), 0.0),
      synced_before_(sizes_.size(), 0),
      streaming_(options.estimator_mode == RateEstimatorMode::kStreaming
                     ? std::vector<StreamingRateEstimator>(
                           sizes_.size(),
                           StreamingRateEstimator(options.streaming))
                     : std::vector<StreamingRateEstimator>()),
      frequencies_(sizes_.size(), 0.0) {
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  replans_counter_ = registry.GetCounter("freshen_adaptive_replans_total");
  replan_latency_ = registry.GetHistogram("freshen_adaptive_replan_seconds",
                                          obs::LatencySecondsBuckets());
}

void AdaptiveFreshener::ObserveAccess(size_t element) {
  learner_.Observe(element);
}

void AdaptiveFreshener::ObserveSync(size_t element, bool changed,
                                    double now) {
  FRESHEN_CHECK(element < sizes_.size());
  if (synced_before_[element]) {
    // Only gaps between consecutive syncs carry change evidence; gap <= 0
    // is a zero-observation window (duplicate timestamp, clock step) and
    // is ignored by both estimator modes.
    const double gap = now - last_sync_time_[element];
    if (gap > 0.0) {
      ++polls_[element];
      if (changed) ++changes_[element];
      watch_time_[element] += gap;
      if (!streaming_.empty()) {
        streaming_[element].ObservePoll(changed, gap);
      }
    }
  }
  synced_before_[element] = 1;
  last_sync_time_[element] = now;
}

void AdaptiveFreshener::EndPeriod() { learner_.EndPeriod(); }

double AdaptiveFreshener::BelievedChangeRate(size_t element) const {
  FRESHEN_CHECK(element < sizes_.size());
  if (!streaming_.empty()) {
    return streaming_[element].observations() > 0
               ? streaming_[element].rate()
               : options_.prior_change_rate;
  }
  if (polls_[element] == 0) return options_.prior_change_rate;
  // Bias-reduced detector estimate with the mean inter-sync gap as the
  // effective poll interval (exact for equal gaps; a documented
  // approximation otherwise). BiasReducedRate floors the zero-detection
  // case away from the solver's absorbing lambda = 0 state.
  return BiasReducedRate(polls_[element], changes_[element],
                         watch_time_[element] /
                             static_cast<double>(polls_[element]));
}

ElementSet AdaptiveFreshener::BelievedCatalog() const {
  ElementSet catalog(sizes_.size());
  const auto profile = learner_.Snapshot();
  FRESHEN_CHECK(profile.ok());  // Smoothing > 0 makes this infallible.
  for (size_t i = 0; i < sizes_.size(); ++i) {
    catalog[i].access_prob = (*profile)[i];
    catalog[i].size = sizes_[i];
    catalog[i].change_rate = BelievedChangeRate(i);
  }
  return catalog;
}

const CoreProblem* AdaptiveFreshener::solved_problem() const {
  return replanner_ != nullptr ? &replanner_->problem() : nullptr;
}

Status AdaptiveFreshener::ReplanDelta() {
  const ElementSet catalog = BelievedCatalog();
  CoreProblem target =
      options_.planner.technique == Technique::kPerceived
          ? MakePerceivedProblem(catalog, bandwidth_,
                                 options_.planner.size_aware)
          : MakeGeneralProblem(catalog, bandwidth_,
                               options_.planner.size_aware);
  ReplanInfo info;
  info.used_delta = true;
  if (replanner_ == nullptr) {
    DeltaReplanner::Options replan_options;
    replan_options.threads = options_.delta.threads;
    replan_options.full_churn_threshold = options_.delta.full_churn_threshold;
    replan_options.registry = options_.registry;
    FRESHEN_ASSIGN_OR_RETURN(
        replanner_, DeltaReplanner::Create(std::move(target), replan_options));
    info.path = ReplanPath::kFull;
    info.dirty = sizes_.size();
  } else {
    // Deadbanded diff against the problem the current plan solves. The
    // learner's renormalization nudges EVERY weight every period; the
    // relative deadband keeps that global drift from forcing 100% churn,
    // while any real movement (including activation/deactivation, where
    // the old value 0 makes the band vacuous) is re-submitted.
    const CoreProblem& solved = replanner_->problem();
    const double band = options_.delta.value_deadband;
    std::vector<ElementUpdate> updates;
    for (size_t i = 0; i < sizes_.size(); ++i) {
      const bool weight_moved =
          std::fabs(target.weights[i] - solved.weights[i]) >
          band * solved.weights[i];
      const bool rate_moved =
          std::fabs(target.change_rates[i] - solved.change_rates[i]) >
          band * solved.change_rates[i];
      if (weight_moved || rate_moved) {
        updates.push_back({i, target.weights[i], target.change_rates[i],
                           target.costs[i]});
      }
    }
    FRESHEN_ASSIGN_OR_RETURN(DeltaReplanner::ReplanResult replan,
                             replanner_->Replan(updates));
    info.path = replan.path;
    info.dirty = replan.dirty;
    // The feasibility rescale below couples every frequency to the total
    // spend: the plan is byte-unchanged only when the replanner's output
    // is byte-unchanged everywhere.
    info.all_touched = replan.all_touched || !replanner_->touched().empty();
  }
  // Materialize and apply the planner's feasibility rescale with the exact
  // same arithmetic FreshenPlanner::Plan uses (KahanSum of size * f, then
  // one in-place multiply), so a delta-mode plan is byte-identical to the
  // full planner run on the solved catalog.
  replanner_->MaterializeFrequencies(&frequencies_);
  KahanSum spend_acc;
  for (size_t i = 0; i < sizes_.size(); ++i) {
    spend_acc.Add(sizes_[i] * frequencies_[i]);
  }
  const double spend = spend_acc.Total();
  if (spend > 0.0) {
    const double scale = bandwidth_ / spend;
    for (double& f : frequencies_) f *= scale;
  }
  last_replan_ = info;
  return Status::OK();
}

Result<bool> AdaptiveFreshener::MaybeReplan(double now, bool force) {
  if (!force && num_replans_ > 0 &&
      now - last_plan_time_ < options_.replan_every_periods) {
    return false;
  }
  obs::ScopedSpan span("replan");
  WallTimer timer;
  if (options_.delta.enable) {
    FRESHEN_RETURN_IF_ERROR(ReplanDelta());
  } else {
    FRESHEN_ASSIGN_OR_RETURN(
        FreshenPlan plan,
        FreshenPlanner(options_.planner).Plan(BelievedCatalog(), bandwidth_));
    frequencies_ = std::move(plan.frequencies);
    last_replan_ = ReplanInfo();
    last_replan_.dirty = sizes_.size();
  }
  // Freeze the rates this plan was solved with (the drift detector's
  // reference point). Delta mode solves the deadbanded problem, not the
  // raw beliefs, so take the rates from the solved problem there.
  if (options_.delta.enable && replanner_ != nullptr) {
    planned_rates_ = replanner_->problem().change_rates;
  } else {
    planned_rates_.resize(sizes_.size());
    for (size_t i = 0; i < sizes_.size(); ++i) {
      planned_rates_[i] = BelievedChangeRate(i);
    }
  }
  last_plan_time_ = now;
  ++num_replans_;
  replans_counter_->Increment();
  replan_latency_->Record(timer.ElapsedSeconds());
  {
    obs::EventRecorder& recorder = obs::EventRecorder::Global();
    if (recorder.enabled()) {
      obs::Event event;
      event.name = "replan";
      event.category = "adaptive";
      event.clock = obs::EventClock::kVirtual;
      event.track = obs::kTrackOnlineLoop;
      event.ts = now;
      event.arg0 = static_cast<double>(num_replans_);
      event.arg0_name = "replans";
      recorder.Emit(event);
    }
  }
  return true;
}

}  // namespace freshen
