#include "adaptive/adaptive_freshener.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace freshen {

Result<AdaptiveFreshener> AdaptiveFreshener::Create(std::vector<double> sizes,
                                                    double bandwidth,
                                                    Options options) {
  if (sizes.empty()) {
    return Status::InvalidArgument("controller needs at least one element");
  }
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (!(sizes[i] > 0.0) || !std::isfinite(sizes[i])) {
      return Status::InvalidArgument(
          StrFormat("size %zu must be positive and finite", i));
    }
  }
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (!(options.replan_every_periods > 0.0)) {
    return Status::InvalidArgument("replan cadence must be positive");
  }
  if (!(options.prior_change_rate > 0.0)) {
    return Status::InvalidArgument("prior change rate must be positive");
  }
  if (options.learner.smoothing <= 0.0) {
    return Status::InvalidArgument(
        "learner smoothing must be positive for cold starts");
  }
  AdaptiveFreshener controller(std::move(sizes), bandwidth, options);
  // Install the initial plan from priors.
  FRESHEN_RETURN_IF_ERROR(
      controller.MaybeReplan(0.0, /*force=*/true).status());
  return controller;
}

AdaptiveFreshener::AdaptiveFreshener(std::vector<double> sizes,
                                     double bandwidth, Options options)
    : options_(options),
      sizes_(std::move(sizes)),
      bandwidth_(bandwidth),
      learner_(sizes_.size(), options.learner),
      polls_(sizes_.size(), 0),
      changes_(sizes_.size(), 0),
      watch_time_(sizes_.size(), 0.0),
      last_sync_time_(sizes_.size(), 0.0),
      synced_before_(sizes_.size(), 0),
      frequencies_(sizes_.size(), 0.0) {
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  replans_counter_ = registry.GetCounter("freshen_adaptive_replans_total");
  replan_latency_ = registry.GetHistogram("freshen_adaptive_replan_seconds",
                                          obs::LatencySecondsBuckets());
}

void AdaptiveFreshener::ObserveAccess(size_t element) {
  learner_.Observe(element);
}

void AdaptiveFreshener::ObserveSync(size_t element, bool changed,
                                    double now) {
  FRESHEN_CHECK(element < sizes_.size());
  if (synced_before_[element]) {
    // Only gaps between consecutive syncs carry change evidence.
    const double gap = now - last_sync_time_[element];
    if (gap > 0.0) {
      ++polls_[element];
      if (changed) ++changes_[element];
      watch_time_[element] += gap;
    }
  }
  synced_before_[element] = 1;
  last_sync_time_[element] = now;
}

void AdaptiveFreshener::EndPeriod() { learner_.EndPeriod(); }

ElementSet AdaptiveFreshener::BelievedCatalog() const {
  ElementSet catalog(sizes_.size());
  const auto profile = learner_.Snapshot();
  FRESHEN_CHECK(profile.ok());  // Smoothing > 0 makes this infallible.
  for (size_t i = 0; i < sizes_.size(); ++i) {
    catalog[i].access_prob = (*profile)[i];
    catalog[i].size = sizes_[i];
    if (polls_[i] == 0) {
      catalog[i].change_rate = options_.prior_change_rate;
    } else {
      // Bias-reduced detector estimate with the mean inter-sync gap as the
      // effective poll interval (exact for equal gaps; a documented
      // approximation otherwise).
      const double n = static_cast<double>(polls_[i]);
      const double x = static_cast<double>(changes_[i]);
      const double mean_gap = watch_time_[i] / n;
      catalog[i].change_rate =
          -std::log((n - x + 0.5) / (n + 0.5)) / mean_gap;
    }
  }
  return catalog;
}

Result<bool> AdaptiveFreshener::MaybeReplan(double now, bool force) {
  if (!force && num_replans_ > 0 &&
      now - last_plan_time_ < options_.replan_every_periods) {
    return false;
  }
  obs::ScopedSpan span("replan");
  WallTimer timer;
  FRESHEN_ASSIGN_OR_RETURN(
      FreshenPlan plan,
      FreshenPlanner(options_.planner).Plan(BelievedCatalog(), bandwidth_));
  frequencies_ = std::move(plan.frequencies);
  last_plan_time_ = now;
  ++num_replans_;
  replans_counter_->Increment();
  replan_latency_->Record(timer.ElapsedSeconds());
  {
    obs::EventRecorder& recorder = obs::EventRecorder::Global();
    if (recorder.enabled()) {
      obs::Event event;
      event.name = "replan";
      event.category = "adaptive";
      event.clock = obs::EventClock::kVirtual;
      event.track = obs::kTrackOnlineLoop;
      event.ts = now;
      event.arg0 = static_cast<double>(num_replans_);
      event.arg0_name = "replans";
      recorder.Emit(event);
    }
  }
  return true;
}

}  // namespace freshen
