// Closed-loop freshening controller — the deployment story the paper
// sketches in §7: "gather information on user access-patterns ... through
// direct feedback from users or from a simple learning algorithm that
// monitors the system request log", combined with poll-based change-rate
// estimation ([4]/[6], §2.1) and periodic re-solving of the Core Problem
// ("for large real-world problems for which the contents of the mirror or
// the user interests might change, we would need to periodically solve the
// Core Problem").
//
// The controller owns three pieces of evolving state:
//   * an AccessLogLearner fed by ObserveAccess() (the request log),
//   * a per-element change detector fed by ObserveSync() (every refresh is
//     a free poll: did the fetched copy differ?),
//   * the current plan, re-computed by MaybeReplan() on a fixed cadence
//     using any FreshenPlanner configuration (exact or partitioned).
#ifndef FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_
#define FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/planner.h"
#include "estimate/change_estimator.h"
#include "model/element.h"
#include "obs/metrics.h"
#include "opt/delta_replan.h"
#include "profile/learner.h"

namespace freshen {

/// How the controller turns sync observations into believed change rates.
enum class RateEstimatorMode {
  /// Batched bias-reduced detector estimate over all evidence (the
  /// paper's [4] form, with the zero-detection floor).
  kBatchBiasReduced,
  /// Streaming stochastic-approximation tracker (StreamingRateEstimator):
  /// O(1) per sync, and only synced elements' beliefs move — the natural
  /// dirty-set source for incremental replanning.
  kStreaming,
};

/// Periodically re-planning freshening controller.
class AdaptiveFreshener {
 public:
  /// Incremental replanning configuration. When enabled (requires
  /// PlanMode::kExact), period-boundary replans go through a DeltaReplanner
  /// primed with the previous solve: only elements whose believed values
  /// moved past the deadband are re-submitted, and the plan is re-derived
  /// on the pinned/warm path instead of a cold O(N) solve. The resulting
  /// frequencies are byte-identical to running the full planner on the
  /// deadbanded (solved) catalog.
  struct DeltaOptions {
    bool enable = false;
    /// Relative belief drift below which an element is NOT re-submitted
    /// (the learner's renormalization nudges every weight every period;
    /// without a deadband each replan would be 100% churn). 0 disables
    /// deadbanding: any bit of drift re-submits.
    double value_deadband = 1e-3;
    /// Passed through to DeltaReplanner: dirty fraction above which the
    /// replan falls back to a cold solve.
    double full_churn_threshold = 0.05;
    /// Worker threads for the replanner (0 = hardware concurrency).
    size_t threads = 0;
  };

  struct Options {
    /// Planner configuration used at every re-plan.
    PlannerOptions planner;
    /// Request-log learner configuration (decay, smoothing). Smoothing
    /// defaults to 1.0 here so a cold-started controller begins from a
    /// uniform profile instead of failing.
    AccessLogLearner::Options learner = {.decay = 1.0, .smoothing = 1.0};
    /// Re-plan cadence, in periods.
    double replan_every_periods = 1.0;
    /// Change-rate prior used for elements with no sync evidence yet.
    double prior_change_rate = 1.0;
    /// Change-rate estimation mode (see RateEstimatorMode).
    RateEstimatorMode estimator_mode = RateEstimatorMode::kBatchBiasReduced;
    /// Streaming-mode tuning (initial_rate is overridden by
    /// prior_change_rate so the cold-start plan matches batch mode).
    StreamingRateEstimator::Options streaming;
    /// Incremental replanning (see DeltaOptions).
    DeltaOptions delta;
    /// Metrics registry for replan counters/latency (freshen_adaptive_*).
    /// nullptr means the process-wide obs::MetricsRegistry::Global().
    obs::MetricsRegistry* registry = nullptr;
  };

  /// What the last installed plan did — the publication contract serving
  /// layers consume (see serve::FreshendDaemon::PublishBoundary).
  struct ReplanInfo {
    /// True when the plan came from the incremental replanner.
    bool used_delta = false;
    /// Which replanner path ran (kFull for the non-delta planner).
    ReplanPath path = ReplanPath::kFull;
    /// Elements the last replan re-submitted (distinct).
    size_t dirty = 0;
    /// False only when the installed frequencies are provably byte-
    /// identical to the previous plan's — a serving layer may then skip
    /// republishing the plan entirely.
    bool all_touched = true;
  };

  /// A controller over `sizes.size()` elements with the given per-period
  /// bandwidth. Starts with a uniform-profile, prior-rate plan.
  static Result<AdaptiveFreshener> Create(std::vector<double> sizes,
                                          double bandwidth, Options options);

  /// Records one user access (feeds the profile learner).
  void ObserveAccess(size_t element);

  /// Records the outcome of one sync of `element` at time `now` (periods):
  /// `changed` is whether the fetched copy differed from the local one.
  void ObserveSync(size_t element, bool changed, double now);

  /// Marks a period boundary: applies the learner's decay so old interest
  /// fades (no-op at decay = 1).
  void EndPeriod();

  /// Re-plans when the cadence has elapsed since the last plan (or `force`).
  /// Returns true when a new plan was installed.
  Result<bool> MaybeReplan(double now, bool force = false);

  /// The current sync frequencies (per period).
  const std::vector<double>& frequencies() const { return frequencies_; }

  /// The catalog the controller currently believes in (learned profile,
  /// estimated change rates, configured sizes).
  ElementSet BelievedCatalog() const;

  /// One element's believed change rate — BelievedCatalog()[i].change_rate
  /// without the O(N) construction, for per-shard publication paths.
  double BelievedChangeRate(size_t element) const;

  /// The change rates the CURRENT plan was solved against, captured at the
  /// last replan (delta mode: the deadbanded solved problem's rates; full
  /// mode: the believed rates at replan time). Beliefs keep drifting with
  /// new evidence between replans — the gap between these and fresh
  /// observations is what obs::DriftDetector scores. Always populated
  /// (Create installs the initial plan).
  const std::vector<double>& PlannedChangeRates() const {
    return planned_rates_;
  }

  /// What the last installed plan did (meaningful after the first replan).
  const ReplanInfo& last_replan() const { return last_replan_; }

  /// In delta mode, the deadbanded problem the current plan actually
  /// solves (weights/change_rates/costs per element). nullptr when delta
  /// mode is off. The plan published by frequencies() is exact for THESE
  /// values; believed values drift within the deadband between replans.
  const CoreProblem* solved_problem() const;

  /// Number of plans installed so far (including the initial one).
  uint64_t num_replans() const { return num_replans_; }

 private:
  AdaptiveFreshener(std::vector<double> sizes, double bandwidth,
                    Options options);

  /// Delta-mode replan body: diffs believed values against the solved
  /// problem, routes the drifted elements through the DeltaReplanner, and
  /// installs the materialized plan (with the planner's exact feasibility
  /// rescale).
  Status ReplanDelta();

  Options options_;
  std::vector<double> sizes_;
  double bandwidth_;
  AccessLogLearner learner_;

  // Per-element change evidence: number of observed sync polls, number that
  // detected a change, and total watched time (sum of inter-sync gaps).
  std::vector<uint32_t> polls_;
  std::vector<uint32_t> changes_;
  std::vector<double> watch_time_;
  std::vector<double> last_sync_time_;
  std::vector<uint8_t> synced_before_;

  // Streaming-mode per-element trackers (empty in batch mode).
  std::vector<StreamingRateEstimator> streaming_;

  std::vector<double> frequencies_;
  std::vector<double> planned_rates_;
  double last_plan_time_ = 0.0;
  uint64_t num_replans_ = 0;

  // Delta mode: the incremental replanner holding the deadbanded problem
  // and the factored previous solve (created on the first replan).
  std::unique_ptr<DeltaReplanner> replanner_;
  ReplanInfo last_replan_;

  // Cached registry handles (valid for the registry's lifetime).
  obs::Counter* replans_counter_;
  obs::Histogram* replan_latency_;
};

}  // namespace freshen

#endif  // FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_
