// Closed-loop freshening controller — the deployment story the paper
// sketches in §7: "gather information on user access-patterns ... through
// direct feedback from users or from a simple learning algorithm that
// monitors the system request log", combined with poll-based change-rate
// estimation ([4]/[6], §2.1) and periodic re-solving of the Core Problem
// ("for large real-world problems for which the contents of the mirror or
// the user interests might change, we would need to periodically solve the
// Core Problem").
//
// The controller owns three pieces of evolving state:
//   * an AccessLogLearner fed by ObserveAccess() (the request log),
//   * a per-element change detector fed by ObserveSync() (every refresh is
//     a free poll: did the fetched copy differ?),
//   * the current plan, re-computed by MaybeReplan() on a fixed cadence
//     using any FreshenPlanner configuration (exact or partitioned).
#ifndef FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_
#define FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/planner.h"
#include "model/element.h"
#include "obs/metrics.h"
#include "profile/learner.h"

namespace freshen {

/// Periodically re-planning freshening controller.
class AdaptiveFreshener {
 public:
  struct Options {
    /// Planner configuration used at every re-plan.
    PlannerOptions planner;
    /// Request-log learner configuration (decay, smoothing). Smoothing
    /// defaults to 1.0 here so a cold-started controller begins from a
    /// uniform profile instead of failing.
    AccessLogLearner::Options learner = {.decay = 1.0, .smoothing = 1.0};
    /// Re-plan cadence, in periods.
    double replan_every_periods = 1.0;
    /// Change-rate prior used for elements with no sync evidence yet.
    double prior_change_rate = 1.0;
    /// Metrics registry for replan counters/latency (freshen_adaptive_*).
    /// nullptr means the process-wide obs::MetricsRegistry::Global().
    obs::MetricsRegistry* registry = nullptr;
  };

  /// A controller over `sizes.size()` elements with the given per-period
  /// bandwidth. Starts with a uniform-profile, prior-rate plan.
  static Result<AdaptiveFreshener> Create(std::vector<double> sizes,
                                          double bandwidth, Options options);

  /// Records one user access (feeds the profile learner).
  void ObserveAccess(size_t element);

  /// Records the outcome of one sync of `element` at time `now` (periods):
  /// `changed` is whether the fetched copy differed from the local one.
  void ObserveSync(size_t element, bool changed, double now);

  /// Marks a period boundary: applies the learner's decay so old interest
  /// fades (no-op at decay = 1).
  void EndPeriod();

  /// Re-plans when the cadence has elapsed since the last plan (or `force`).
  /// Returns true when a new plan was installed.
  Result<bool> MaybeReplan(double now, bool force = false);

  /// The current sync frequencies (per period).
  const std::vector<double>& frequencies() const { return frequencies_; }

  /// The catalog the controller currently believes in (learned profile,
  /// estimated change rates, configured sizes).
  ElementSet BelievedCatalog() const;

  /// Number of plans installed so far (including the initial one).
  uint64_t num_replans() const { return num_replans_; }

 private:
  AdaptiveFreshener(std::vector<double> sizes, double bandwidth,
                    Options options);

  Options options_;
  std::vector<double> sizes_;
  double bandwidth_;
  AccessLogLearner learner_;

  // Per-element change evidence: number of observed sync polls, number that
  // detected a change, and total watched time (sum of inter-sync gaps).
  std::vector<uint32_t> polls_;
  std::vector<uint32_t> changes_;
  std::vector<double> watch_time_;
  std::vector<double> last_sync_time_;
  std::vector<uint8_t> synced_before_;

  std::vector<double> frequencies_;
  double last_plan_time_ = 0.0;
  uint64_t num_replans_ = 0;

  // Cached registry handles (valid for the registry's lifetime).
  obs::Counter* replans_counter_;
  obs::Histogram* replan_latency_;
};

}  // namespace freshen

#endif  // FRESHEN_ADAPTIVE_ADAPTIVE_FRESHENER_H_
