#include "opt/problem.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "model/freshness.h"
#include "stats/descriptive.h"

namespace freshen {

Status CoreProblem::Validate() const {
  const size_t n = weights.size();
  if (n == 0) return Status::InvalidArgument("problem has no variables");
  if (change_rates.size() != n || costs.size() != n) {
    return Status::InvalidArgument(StrFormat(
        "column length mismatch: %zu weights, %zu rates, %zu costs", n,
        change_rates.size(), costs.size()));
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument(
        StrFormat("bandwidth must be positive and finite, got %g", bandwidth));
  }
  for (size_t i = 0; i < n; ++i) {
    if (!(weights[i] >= 0.0) || !std::isfinite(weights[i])) {
      return Status::InvalidArgument(
          StrFormat("weight %zu is negative or non-finite", i));
    }
    if (!(change_rates[i] >= 0.0) || !std::isfinite(change_rates[i])) {
      return Status::InvalidArgument(
          StrFormat("change rate %zu is negative or non-finite", i));
    }
    if (!(costs[i] > 0.0) || !std::isfinite(costs[i])) {
      return Status::InvalidArgument(
          StrFormat("cost %zu must be positive and finite", i));
    }
  }
  return Status::OK();
}

double CoreProblem::Objective(const std::vector<double>& frequencies,
                              const par::Executor* executor) const {
  FRESHEN_CHECK(frequencies.size() == size());
  const par::Executor inline_executor(1);
  const par::Executor& exec = executor != nullptr ? *executor : inline_executor;
  return exec.Sum(size(), [&](size_t i) {
    return weights[i] * FixedOrderFreshness(frequencies[i], change_rates[i]);
  });
}

double CoreProblem::Spend(const std::vector<double>& frequencies,
                          const par::Executor* executor) const {
  FRESHEN_CHECK(frequencies.size() == size());
  const par::Executor inline_executor(1);
  const par::Executor& exec = executor != nullptr ? *executor : inline_executor;
  return exec.Sum(size(),
                  [&](size_t i) { return costs[i] * frequencies[i]; });
}

CoreProblem MakePerceivedProblem(const ElementSet& elements, double bandwidth,
                                 bool size_aware) {
  CoreProblem problem;
  problem.weights = AccessProbs(elements);
  problem.change_rates = ChangeRates(elements);
  problem.costs = size_aware ? Sizes(elements)
                             : std::vector<double>(elements.size(), 1.0);
  problem.bandwidth = bandwidth;
  return problem;
}

CoreProblem MakeGeneralProblem(const ElementSet& elements, double bandwidth,
                               bool size_aware) {
  CoreProblem problem;
  const double uniform =
      elements.empty() ? 0.0 : 1.0 / static_cast<double>(elements.size());
  problem.weights.assign(elements.size(), uniform);
  problem.change_rates = ChangeRates(elements);
  problem.costs = size_aware ? Sizes(elements)
                             : std::vector<double>(elements.size(), 1.0);
  problem.bandwidth = bandwidth;
  return problem;
}

}  // namespace freshen
