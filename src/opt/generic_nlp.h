// A deliberately *generic* nonlinear-programming solver: projected gradient
// ascent that treats the objective as a black box. This stands in for the
// IMSL package the paper used (see DESIGN.md): it reaches the same optimum on
// small instances but scales poorly — which is precisely the paper's §3
// motivation for the partitioning heuristics. bench_solver_scaling measures
// this solver against the exact KKT solver.
#ifndef FRESHEN_OPT_GENERIC_NLP_H_
#define FRESHEN_OPT_GENERIC_NLP_H_

#include "common/result.h"
#include "opt/problem.h"
#include "opt/solution.h"

namespace freshen {

/// Projected-gradient solver for the Core Problem.
class GenericNlpSolver {
 public:
  /// How the solver obtains gradients.
  enum class GradientMode {
    /// Forward finite differences: N+1 objective evaluations per gradient,
    /// i.e. O(N^2) work per iteration — the "generic black-box NLP" regime.
    kFiniteDifference,
    /// Closed-form dF/df: O(N) per iteration (still far slower than KKT).
    kAnalytic,
  };

  struct Options {
    GradientMode gradient_mode = GradientMode::kFiniteDifference;
    /// Maximum outer iterations.
    int max_iterations = 2000;
    /// Wall-clock budget; the solver stops (converged=false) when exceeded.
    double time_budget_seconds = 30.0;
    /// Stop when the relative objective improvement over a window of 10
    /// iterations drops below this.
    double convergence_tolerance = 1e-10;
    /// Finite-difference step.
    double fd_step = 1e-7;
  };

  GenericNlpSolver() = default;
  explicit GenericNlpSolver(Options options) : options_(options) {}

  /// Runs projected gradient ascent from the proportional-fair starting
  /// point f_i = B / (N c_i). Always returns a feasible allocation; check
  /// `converged` to see whether it finished or hit a budget.
  Result<Allocation> Solve(const CoreProblem& problem) const;

 private:
  Options options_;
};

/// Euclidean projection of `point` onto {f >= 0, sum c_i f_i = B}:
/// f_i = max(0, x_i - nu * c_i) with nu chosen by bisection. Exposed for
/// testing.
std::vector<double> ProjectOntoBudget(const std::vector<double>& point,
                                      const std::vector<double>& costs,
                                      double bandwidth);

}  // namespace freshen

#endif  // FRESHEN_OPT_GENERIC_NLP_H_
