#include "opt/water_filling.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/macros.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

// Frequency assigned to element i at multiplier mu, where
// ratio_i = c_i * l_i / w_i (the g-target per unit of mu).
double FrequencyAt(double mu, double ratio, double lambda) {
  double y = mu * ratio;
  if (y >= 1.0) return 0.0;  // Marginal value below mu even at f -> 0+.
  y = std::max(y, 1e-300);   // Guard underflow; maps to an enormous f.
  return lambda / InverseMarginalGainG(y);
}

}  // namespace

Result<Allocation> KktWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  // Active elements: positive weight and positive change rate. Elements with
  // lambda = 0 are always fresh and never need bandwidth; weight-0 elements
  // contribute nothing to the objective.
  std::vector<size_t> active;
  active.reserve(n);
  std::vector<double> ratio(n, 0.0);  // c_i l_i / w_i for active i.
  double mu_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      active.push_back(i);
      ratio[i] =
          problem.costs[i] * problem.change_rates[i] / problem.weights[i];
      mu_max = std::max(mu_max, 1.0 / ratio[i]);
    }
  }

  if (active.empty()) {
    // Nothing productive to spend on: the all-zero schedule is optimal under
    // the (equivalent, since F is increasing) <=-budget reading.
    out.objective = problem.Objective(out.frequencies);
    out.bandwidth_used = 0.0;
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  auto spend_at = [&](double mu) {
    KahanSum acc;
    for (size_t i : active) {
      acc.Add(problem.costs[i] *
              FrequencyAt(mu, ratio[i], problem.change_rates[i]));
    }
    return acc.Total();
  };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu = mu_max). Find the
  // bracket's lower edge, then bisect.
  double hi = mu_max;
  double lo = mu_max * 0.5;
  while (spend_at(lo) <= problem.bandwidth) {
    hi = lo;
    lo *= 0.5;
    FRESHEN_CHECK(lo > 0.0);  // spend -> inf as mu -> 0; must bracket.
  }

  // Bisect until the multiplier interval itself collapses: matching the
  // budget alone is NOT enough to pin mu (near-cutoff elements make f(mu)
  // arbitrarily sensitive, so a loosely-resolved mu reproduces the spend
  // while distorting the allocation mix).
  double mu = 0.5 * (lo + hi);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    mu = 0.5 * (lo + hi);
    if (spend_at(mu) > problem.bandwidth) {
      lo = mu;  // Spending too much: raise the price.
    } else {
      hi = mu;
    }
    if ((hi - lo) <= 1e-15 * hi) break;
  }
  // Evaluate at the under-spending edge of the final interval so the
  // residual is non-negative.
  mu = hi;
  for (size_t i : active) {
    out.frequencies[i] = FrequencyAt(mu, ratio[i], problem.change_rates[i]);
  }
  // Remove the residual budget slack. spend(mu) is continuous in exact
  // arithmetic but jumps at funding cutoffs in floating point (f tends to 0
  // only logarithmically as g_target -> 1, so the smallest representable
  // funded frequency is ~lambda/37). When such a boundary element exists,
  // the optimal recipient of the residual is exactly that element: its
  // marginal value equals mu across the whole gap, so giving it the slack
  // preserves every other element's stationarity exactly. Otherwise spend
  // is locally continuous and a proportional rescale is below tolerance.
  const double spend = problem.Spend(out.frequencies);
  double residual = problem.bandwidth - spend;
  if (residual > 0.0) {
    // A boundary element is one parked at the cutoff: its zero-frequency
    // marginal w/(c*lambda) equals mu to rounding. Only such an element may
    // absorb the residual without violating stationarity.
    size_t boundary = SIZE_MAX;
    double best_marginal = 0.0;
    for (size_t i : active) {
      if (out.frequencies[i] > 0.0) continue;
      const double marginal_at_zero = 1.0 / ratio[i];  // w/(c*lambda).
      if (marginal_at_zero >= mu * (1.0 - 1e-9) &&
          marginal_at_zero > best_marginal) {
        best_marginal = marginal_at_zero;
        boundary = i;
      }
    }
    if (boundary != SIZE_MAX) {
      out.frequencies[boundary] = residual / problem.costs[boundary];
      residual = 0.0;
    }
  }
  if (residual != 0.0 && spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    for (double& f : out.frequencies) f *= scale;
  }

  out.multiplier = mu;
  out.iterations = iterations;
  out.objective = problem.Objective(out.frequencies);
  out.bandwidth_used = problem.Spend(out.frequencies);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
