#include "opt/water_filling.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {

Result<Allocation> KktWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  // Active elements — positive weight and positive change rate (lambda = 0
  // is always fresh; weight 0 contributes nothing) — compacted into
  // contiguous SoA arrays so the bisection's inner loop streams cache lines
  // instead of chasing a sparse index set.
  std::vector<size_t> index;   // Active k -> original i.
  std::vector<double> ratio;   // c_i l_i / w_i: g-target per unit of mu.
  std::vector<double> lambda;  // Change rate.
  std::vector<double> cost;    // Bandwidth cost.
  index.reserve(n);
  double mu_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      index.push_back(i);
      ratio.push_back(problem.costs[i] * problem.change_rates[i] /
                      problem.weights[i]);
      lambda.push_back(problem.change_rates[i]);
      cost.push_back(problem.costs[i]);
      mu_max = std::max(mu_max, 1.0 / ratio.back());
    }
  }
  const size_t active = index.size();
  const par::Executor exec(options_.threads);

  if (active == 0) {
    // Nothing productive to spend on: the all-zero schedule is optimal under
    // the (equivalent, since F is increasing) <=-budget reading.
    out.objective = problem.Objective(out.frequencies, &exec);
    out.bandwidth_used = 0.0;
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  // Previous Newton root per active element; 0 = no guess yet. The bisection
  // re-inverts g at every probe, and consecutive probes move mu by at most
  // the shrinking bracket width, so the last root is an excellent seed.
  // Written only by the element's own shard — deterministic at any thread
  // count because the probe sequence is (see spend_at below).
  std::vector<double> warm(active, 0.0);

  // Frequency of active element k at multiplier mu (0 when mu prices the
  // element out of the schedule).
  auto frequency_at = [&](double mu, size_t k) {
    double y = mu * ratio[k];
    if (y >= 1.0) return 0.0;  // Marginal value below mu even at f -> 0+.
    y = std::max(y, 1e-300);   // Guard underflow; maps to an enormous f.
    const double r = InverseMarginalGainG(y, warm[k]);
    warm[k] = r;
    return lambda[k] / r;
  };

  // Deterministic sharded reduction: bit-identical at every thread count,
  // so the bisection takes the same branch sequence whether this solver
  // runs on 1 thread or 8.
  auto spend_at = [&](double mu) {
    return exec.Sum(active,
                    [&](size_t k) { return cost[k] * frequency_at(mu, k); });
  };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu = mu_max). Find the
  // bracket's lower edge, then bisect.
  double hi = mu_max;
  double lo = mu_max * 0.5;
  while (spend_at(lo) <= problem.bandwidth) {
    hi = lo;
    lo *= 0.5;
    FRESHEN_CHECK(lo > 0.0);  // spend -> inf as mu -> 0; must bracket.
  }

  // Bisect until the multiplier interval itself collapses: matching the
  // budget alone is NOT enough to pin mu (near-cutoff elements make f(mu)
  // arbitrarily sensitive, so a loosely-resolved mu reproduces the spend
  // while distorting the allocation mix).
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    const double mid = 0.5 * (lo + hi);
    if (spend_at(mid) > problem.bandwidth) {
      lo = mid;  // Spending too much: raise the price.
    } else {
      hi = mid;
    }
    if ((hi - lo) <= 1e-15 * hi) break;
  }
  // Evaluate at the under-spending edge of the final interval so the
  // residual is non-negative.
  const double mu = hi;
  exec.ForEach(active, [&](size_t k) {
    out.frequencies[index[k]] = frequency_at(mu, k);
  });
  // Remove the residual budget slack. spend(mu) is continuous in exact
  // arithmetic but jumps at funding cutoffs in floating point (f tends to 0
  // only logarithmically as g_target -> 1, so the smallest representable
  // funded frequency is ~lambda/37). When such a boundary element exists,
  // the optimal recipient of the residual is exactly that element: its
  // marginal value equals mu across the whole gap, so giving it the slack
  // preserves every other element's stationarity exactly. Otherwise spend
  // is locally continuous and a proportional rescale is below tolerance.
  const double spend = problem.Spend(out.frequencies, &exec);
  double residual = problem.bandwidth - spend;
  if (residual > 0.0) {
    // A boundary element is one parked at the cutoff: its zero-frequency
    // marginal w/(c*lambda) equals mu to rounding. Only such an element may
    // absorb the residual without violating stationarity.
    size_t boundary = SIZE_MAX;
    double best_marginal = 0.0;
    for (size_t k = 0; k < active; ++k) {
      if (out.frequencies[index[k]] > 0.0) continue;
      const double marginal_at_zero = 1.0 / ratio[k];  // w/(c*lambda).
      if (marginal_at_zero >= mu * (1.0 - 1e-9) &&
          marginal_at_zero > best_marginal) {
        best_marginal = marginal_at_zero;
        boundary = index[k];
      }
    }
    if (boundary != SIZE_MAX) {
      out.frequencies[boundary] = residual / problem.costs[boundary];
      residual = 0.0;
    }
  }
  if (residual != 0.0 && spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    exec.ForEach(n, [&](size_t i) { out.frequencies[i] *= scale; });
  }

  out.multiplier = mu;
  out.iterations = iterations;
  out.objective = problem.Objective(out.frequencies, &exec);
  out.bandwidth_used = problem.Spend(out.frequencies, &exec);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
