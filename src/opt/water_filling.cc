#include "opt/water_filling.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {

Result<Allocation> KktWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  // Active elements — positive weight and positive change rate (lambda = 0
  // is always fresh; weight 0 contributes nothing) — compacted into
  // contiguous SoA arrays so the search's batched inner loop streams cache
  // lines instead of chasing a sparse index set.
  std::vector<size_t> index;        // Active k -> original i.
  std::vector<double> ratio;        // c_i l_i / w_i: g-target per unit of mu.
  std::vector<double> lambda;       // Change rate.
  std::vector<double> spend_scale;  // c_i l_i: spend per unit of 1/root.
  index.reserve(n);
  double mu_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      index.push_back(i);
      ratio.push_back(problem.costs[i] * problem.change_rates[i] /
                      problem.weights[i]);
      lambda.push_back(problem.change_rates[i]);
      spend_scale.push_back(problem.costs[i] * problem.change_rates[i]);
      mu_max = std::max(mu_max, 1.0 / ratio.back());
    }
  }
  const size_t active = index.size();
  const par::Executor exec(options_.threads);

  if (active == 0) {
    // Nothing productive to spend on: the all-zero schedule is optimal under
    // the (equivalent, since F is increasing) <=-budget reading.
    out.objective = problem.Objective(out.frequencies, &exec);
    out.bandwidth_used = 0.0;
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  // Sharded, SIMD-batched spend evaluation over the compacted set, with
  // per-element warm-started kernel roots. Bit-identical at every thread
  // count, so the search takes the same probe sequence whether this solver
  // runs on 1 thread or 8.
  BreakpointSpendEvaluator eval(BreakpointSpendEvaluator::Kernel::kFreshnessG,
                                ratio, lambda, spend_scale, &exec);
  auto spend_at = [&](double mu) { return eval.SpendAt(mu); };

  // Activation thresholds inside a band: element k leaves the schedule at
  // mu = 1/ratio[k] (its marginal value at f -> 0+).
  std::function<void(double, double, std::vector<double>*)> gather =
      [&](double lo, double hi, std::vector<double>* band) {
        for (size_t k = 0; k < active; ++k) {
          const double threshold = 1.0 / ratio[k];
          if (threshold > lo && threshold < hi) band->push_back(threshold);
        }
      };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu = mu_max): find the
  // unique lattice flip. Matching the budget alone would NOT pin mu
  // (near-cutoff elements make f(mu) arbitrarily sensitive, so a
  // loosely-resolved mu reproduces the spend while distorting the
  // allocation mix); the lattice edge is exact and search-path-free.
  const GridSearchResult search = SolveMultiplierOnGrid(
      spend_at, problem.bandwidth, mu_max, options_.search, &gather,
      options_.max_iterations);
  // mu is the under-spending lattice edge, so the residual is non-negative.
  const double mu = search.mu;
  // Cold-started fill: a pure function of mu, byte-identical regardless of
  // which probe path (or search mode) found it.
  std::vector<double> frequencies(active);
  eval.FillFrequenciesAt(mu, &frequencies);
  exec.ForEach(active, [&](size_t k) {
    out.frequencies[index[k]] = frequencies[k];
  });
  // Remove the residual budget slack. spend(mu) is continuous in exact
  // arithmetic but jumps at funding cutoffs in floating point (f tends to 0
  // only logarithmically as g_target -> 1, so the smallest representable
  // funded frequency is ~lambda/37). When such a boundary element exists,
  // the optimal recipient of the residual is exactly that element: its
  // marginal value equals mu across the whole gap, so giving it the slack
  // preserves every other element's stationarity exactly. Otherwise spend
  // is locally continuous and a proportional rescale is below tolerance.
  //
  // The spend feeding this step uses the decomposable block-Kahan tree over
  // the active elements' cost*frequency (opt/scan_breakpoint.h) rather than
  // problem.Spend: the delta replanner maintains the same tree
  // incrementally, so its residual/rescale arithmetic lands on the same
  // bits as this cold path.
  std::vector<double> finish_contrib(active);
  exec.ForEach(active, [&](size_t k) {
    finish_contrib[k] = problem.costs[index[k]] * frequencies[k];
  });
  std::vector<double> finish_partials;
  SpendBlockPartials(finish_contrib, &exec, &finish_partials);
  const double spend = MergeSpendBlockPartials(finish_partials);
  double residual = problem.bandwidth - spend;
  if (residual > 0.0) {
    // A boundary element is one parked at the cutoff: its zero-frequency
    // marginal w/(c*lambda) equals mu to rounding. Only such an element may
    // absorb the residual without violating stationarity.
    size_t boundary = SIZE_MAX;
    double best_marginal = 0.0;
    for (size_t k = 0; k < active; ++k) {
      if (out.frequencies[index[k]] > 0.0) continue;
      const double marginal_at_zero = 1.0 / ratio[k];  // w/(c*lambda).
      if (marginal_at_zero >= mu * (1.0 - 1e-9) &&
          marginal_at_zero > best_marginal) {
        best_marginal = marginal_at_zero;
        boundary = index[k];
      }
    }
    if (boundary != SIZE_MAX) {
      out.frequencies[boundary] = residual / problem.costs[boundary];
      residual = 0.0;
    }
  }
  if (residual != 0.0 && spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    exec.ForEach(n, [&](size_t i) { out.frequencies[i] *= scale; });
  }

  out.multiplier = mu;
  out.iterations = search.probes;
  out.objective = problem.Objective(out.frequencies, &exec);
  out.bandwidth_used = problem.Spend(out.frequencies, &exec);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
