#include "opt/scan_breakpoint.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "model/freshness_batch.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

/// Elements per batch-kernel call: 4 KiB buffers, resident in L1 alongside
/// the SoA streams.
constexpr size_t kBlock = 512;

/// Pad inputs for priced-out lanes (freshness kernel only): any mid-range
/// target with a near-root seed, so dead lanes converge immediately instead
/// of dragging their vector through cold iterations.
constexpr double kPadTarget = 0.25;
constexpr double kPadSeed = 0.85;  // ~ g^{-1}(0.25).

/// Illinois works on phi = log((spend + eps*B) / ((1+eps)*B)): log-log
/// secant (spend is near power-law in mu, so phi is near-linear in log mu)
/// with an epsilon floor so a zero spend at the top of the bracket stays
/// finite. Root location is exact: phi = 0 iff spend = B, for any eps.
double Phi(double spend, double budget) {
  constexpr double kEps = 0x1p-45;
  return std::log((spend + kEps * budget) / ((1.0 + kEps) * budget));
}

}  // namespace

BreakpointSpendEvaluator::BreakpointSpendEvaluator(
    Kernel kernel, const std::vector<double>& target_scale,
    const std::vector<double>& lambda, const std::vector<double>& spend_scale,
    const par::Executor* exec)
    : kernel_(kernel),
      target_scale_(target_scale),
      lambda_(lambda),
      spend_scale_(spend_scale),
      exec_(exec),
      plan_(par::ShardPlanFor(target_scale.size(), par::kTranscendentalGrain,
                              par::kTranscendentalMaxShards)),
      warm_(target_scale.size(), 0.0) {
  FRESHEN_CHECK(lambda_.size() == target_scale_.size());
  FRESHEN_CHECK(spend_scale_.size() == target_scale_.size());
}

double BreakpointSpendEvaluator::SpendAt(double mu) {
  const size_t n = target_scale_.size();
  if (n == 0) return 0.0;
  std::vector<double> partial(plan_.size(), 0.0);
  exec_->ForShards(plan_, [&](const par::Shard& shard) {
    KahanSum acc;
    double target[kBlock];
    double seed[kBlock];
    double root[kBlock];
    bool funded[kBlock];
    for (size_t b = shard.begin; b < shard.end; b += kBlock) {
      const size_t m = std::min(kBlock, shard.end - b);
      if (kernel_ == Kernel::kFreshnessG) {
        for (size_t j = 0; j < m; ++j) {
          const double y = mu * target_scale_[b + j];
          const bool f = y < 1.0;
          funded[j] = f;
          target[j] = f ? std::max(y, 1e-300) : kPadTarget;
          seed[j] = f ? warm_[b + j] : kPadSeed;
        }
        BatchInverseMarginalGainG(target, seed, root, m);
        for (size_t j = 0; j < m; ++j) {
          if (funded[j]) {
            // The warm root is per-element state: written only here, by the
            // owning shard, as a function of the probe sequence alone.
            warm_[b + j] = root[j];
            acc.Add(spend_scale_[b + j] / root[j]);
          } else {
            acc.Add(0.0);  // Keep the summation tree independent of mu.
          }
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          target[j] = std::max(mu * target_scale_[b + j], 1e-300);
          seed[j] = warm_[b + j];
        }
        BatchInverseAgeMarginalKernelH(target, seed, root, m);
        for (size_t j = 0; j < m; ++j) {
          warm_[b + j] = root[j];
          acc.Add(spend_scale_[b + j] / root[j]);
        }
      }
    }
    partial[shard.index] = acc.Total();
  });
  KahanSum total;
  for (double value : partial) total.Add(value);
  return total.Total();
}

void BreakpointSpendEvaluator::FillFrequenciesAt(
    double mu, std::vector<double>* frequencies) const {
  CaptureAt(mu, frequencies, /*contributions=*/nullptr);
}

void BreakpointSpendEvaluator::CaptureAt(
    double mu, std::vector<double>* frequencies,
    std::vector<double>* contributions) const {
  const size_t n = target_scale_.size();
  if (frequencies != nullptr) frequencies->assign(n, 0.0);
  if (contributions != nullptr) contributions->assign(n, 0.0);
  exec_->ForShards(plan_, [&](const par::Shard& shard) {
    double target[kBlock];
    double root[kBlock];
    bool funded[kBlock];
    for (size_t b = shard.begin; b < shard.end; b += kBlock) {
      const size_t m = std::min(kBlock, shard.end - b);
      if (kernel_ == Kernel::kFreshnessG) {
        for (size_t j = 0; j < m; ++j) {
          const double y = mu * target_scale_[b + j];
          funded[j] = y < 1.0;
          target[j] = funded[j] ? std::max(y, 1e-300) : kPadTarget;
        }
        BatchInverseMarginalGainG(target, /*seeds=*/nullptr, root, m);
        for (size_t j = 0; j < m; ++j) {
          if (!funded[j]) continue;
          if (frequencies != nullptr) {
            (*frequencies)[b + j] = lambda_[b + j] / root[j];
          }
          if (contributions != nullptr) {
            (*contributions)[b + j] = spend_scale_[b + j] / root[j];
          }
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          target[j] = std::max(mu * target_scale_[b + j], 1e-300);
        }
        BatchInverseAgeMarginalKernelH(target, /*seeds=*/nullptr, root, m);
        for (size_t j = 0; j < m; ++j) {
          if (frequencies != nullptr) {
            (*frequencies)[b + j] = lambda_[b + j] / root[j];
          }
          if (contributions != nullptr) {
            (*contributions)[b + j] = spend_scale_[b + j] / root[j];
          }
        }
      }
    }
  });
}

double SpendBlockPartial(const std::vector<double>& values, size_t block) {
  const size_t begin = block * kSpendBlock;
  const size_t end = std::min(values.size(), begin + kSpendBlock);
  KahanSum acc;
  for (size_t i = begin; i < end; ++i) acc.Add(values[i]);
  return acc.Total();
}

void SpendBlockPartials(const std::vector<double>& values,
                        const par::Executor* exec,
                        std::vector<double>* partials) {
  const size_t blocks = SpendBlockCount(values.size());
  partials->assign(blocks, 0.0);
  exec->ForEach(blocks, [&](size_t b) {
    (*partials)[b] = SpendBlockPartial(values, b);
  });
}

double MergeSpendBlockPartials(const std::vector<double>& partials) {
  KahanSum acc;
  for (double value : partials) acc.Add(value);
  return acc.Total();
}

namespace {

/// Shared narrowing stages: Illinois secant, breakpoint scan, final lattice
/// bisection. On entry (*lo, *hi) is a lattice bracket with spend(*lo) >
/// budget >= spend(*hi); on return *hi is the flip edge (mu*). `probe` must
/// count its own evaluations into out->probes.
void NarrowBracketToFlip(
    const std::function<double(double)>& probe, double budget, double* lo_io,
    double* spend_lo_io, double* hi_io, double* spend_hi_io,
    const std::function<void(double lo, double hi, std::vector<double>*)>*
        gather_thresholds,
    int max_probes, GridSearchResult* out) {
  double lo = *lo_io;
  double hi = *hi_io;
  double spend_lo = *spend_lo_io;
  double spend_hi = *spend_hi_io;

  // Stage 1: Illinois secant in (log mu, phi) space. Collapses the bracket
  // to a few lattice steps in ~6-10 probes where bisection needs ~36 per
  // binade.
  double t_lo = std::log(lo);
  double t_hi = std::log(hi);
  double phi_lo = Phi(spend_lo, budget);
  double phi_hi = Phi(spend_hi, budget);
  int last_side = 0;  // -1: last probe replaced lo; +1: replaced hi.
  while (MuLatticeDistance(lo, hi) > 8 && out->probes < max_probes) {
    if (!(phi_lo > 0.0) || !(phi_hi < 0.0)) break;  // Flat side: bisect.
    const double t = t_lo - phi_lo * (t_hi - t_lo) / (phi_hi - phi_lo);
    double cand = MuLatticeRound(std::exp(t));
    const double inner_lo = MuLatticeNext(lo);
    const double inner_hi = MuLatticePrev(hi);
    if (!(cand >= inner_lo)) cand = inner_lo;
    if (!(cand <= inner_hi)) cand = inner_hi;
    const double s = probe(cand);
    if (s > budget) {
      lo = cand;
      t_lo = std::log(cand);
      phi_lo = Phi(s, budget);
      if (last_side == -1) phi_hi *= 0.5;  // Illinois anti-stall halving.
      last_side = -1;
    } else {
      hi = cand;
      t_hi = std::log(cand);
      phi_hi = Phi(s, budget);
      if (last_side == +1) phi_lo *= 0.5;
      last_side = +1;
    }
  }

  // Stage 2: breakpoint scan. Pin the crossing between adjacent activation
  // thresholds: gather every threshold inside the band, sort (this is the
  // "sorted by activation threshold" order — only materialized for the
  // handful of elements whose cutoff lies within a few lattice steps of
  // mu*), and binary-search the flip over the thresholds' bracketing
  // lattice points with full sharded spend evaluations.
  if (gather_thresholds != nullptr && MuLatticeDistance(lo, hi) > 1) {
    std::vector<double> band;
    (*gather_thresholds)(lo, hi, &band);
    std::sort(band.begin(), band.end());
    std::vector<double> cands;
    cands.reserve(2 * band.size());
    for (double threshold : band) {
      ++out->breakpoints;
      for (double c : {MuLatticeFloor(threshold), MuLatticeCeil(threshold)}) {
        if (c > lo && c < hi) cands.push_back(c);
      }
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    size_t a = 0;
    size_t b = cands.size();
    while (a < b && out->probes < max_probes) {
      const size_t mid = (a + b) / 2;
      if (probe(cands[mid]) > budget) {
        lo = cands[mid];
        a = mid + 1;
      } else {
        hi = cands[mid];
        b = mid;
      }
    }
  }

  // Stage 3: finish with lattice bisection down to the adjacent pair.
  while (MuLatticeDistance(lo, hi) > 1 && out->probes < max_probes) {
    const double mid = MuLatticeMidpoint(lo, hi);
    if (probe(mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  *lo_io = lo;
  *hi_io = hi;
  *spend_lo_io = spend_lo;
  *spend_hi_io = spend_hi;
}

}  // namespace

GridSearchResult SolveMultiplierOnGrid(
    const std::function<double(double)>& spend_at, double budget,
    double mu_hi_hint, MultiplierSearch mode,
    const std::function<void(double lo, double hi, std::vector<double>*)>*
        gather_thresholds,
    int max_probes) {
  FRESHEN_CHECK(budget > 0.0);
  GridSearchResult out;
  auto probe = [&](double mu) {
    ++out.probes;
    return spend_at(mu);
  };

  // Upper edge: a lattice point with spend <= budget. The bracket phases
  // ignore max_probes — they are bounded by the representable range of mu —
  // so a valid (P, not-P) pair always exists before the cap can bite.
  double hi;
  double spend_hi;
  if (mu_hi_hint > 0.0) {
    hi = MuLatticeCeil(mu_hi_hint);
    spend_hi = probe(hi);
    while (spend_hi > budget) {  // Hint too low: escalate (defensive).
      hi = MuLatticeCeil(hi * 2.0);
      FRESHEN_CHECK(hi < 1e300);
      spend_hi = probe(hi);
    }
  } else {
    hi = 1.0;  // On-lattice; *4 is an exponent shift, so stays on-lattice.
    spend_hi = probe(hi);
    while (spend_hi > budget) {
      hi *= 4.0;
      FRESHEN_CHECK(hi < 1e300);
      spend_hi = probe(hi);
    }
  }

  // Lower edge: descend geometrically until spend exceeds budget (spend is
  // unbounded as mu -> 0, so this terminates well before underflow).
  double lo = 0.0;
  double spend_lo = 0.0;
  for (double x = hi;;) {
    const double cand = MuLatticeFloor(x * 0.5);  // Halving is exact.
    FRESHEN_CHECK(cand > 0.0);
    const double s = probe(cand);
    if (s > budget) {
      lo = cand;
      spend_lo = s;
      break;
    }
    hi = cand;
    spend_hi = s;
    x = cand;
  }

  if (mode == MultiplierSearch::kBisectionOracle) {
    // Plain lattice bisection: ~36 probes per bracket binade. This is the
    // oracle path — structurally independent of everything below, yet lands
    // on the same lattice edge because the flip is unique.
    while (MuLatticeDistance(lo, hi) > 1 && out.probes < max_probes) {
      const double mid = MuLatticeMidpoint(lo, hi);
      if (probe(mid) > budget) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    out.mu = hi;
    return out;
  }

  NarrowBracketToFlip(probe, budget, &lo, &spend_lo, &hi, &spend_hi,
                      gather_thresholds, max_probes, &out);
  out.mu = hi;
  return out;
}

GridSearchResult SolveMultiplierFromPrevious(
    const std::function<double(double)>& spend_at, double budget,
    double prev_mu,
    const std::function<void(double lo, double hi, std::vector<double>*)>*
        gather_thresholds,
    int max_probes) {
  FRESHEN_CHECK(budget > 0.0);
  FRESHEN_CHECK(IsMuLatticePoint(prev_mu));
  GridSearchResult out;
  auto probe = [&](double mu) {
    ++out.probes;
    return spend_at(mu);
  };

  // Elasticity-guided gallop. spend's log-log slope magnitude is bounded
  // below by ~1/3 everywhere (funding cutoffs only make spend drop FASTER
  // as mu rises), so a probe reading spend = s places the flip within
  // prev * (s/budget)^3 of the probe point. The cube is a step-size
  // heuristic only: every jump is re-probed and the loop continues until a
  // genuine bracket exists, so a violated bound costs probes, never
  // correctness. Jumps are clamped to 40 binades so extreme churn (spend
  // off by >> 2^40) cannot overflow the candidate.
  constexpr double kMaxJump = 0x1p40;
  const double s0 = probe(prev_mu);
  double lo = prev_mu;
  double hi = prev_mu;
  double spend_lo = s0;
  double spend_hi = s0;
  if (s0 > budget) {
    // Flip moved up. Gallop ascending until a probe comes in at/under
    // budget (spend reaches exact 0 beyond the last activation threshold,
    // so this always terminates).
    lo = prev_mu;
    spend_lo = s0;
    for (;;) {
      const double r = spend_lo / budget;
      double f = r * r * r;
      if (!(f < kMaxJump)) f = kMaxJump;
      double cand = MuLatticeCeil(lo * f);
      if (!(cand > lo)) cand = MuLatticeNext(lo);
      FRESHEN_CHECK(cand < 1e300);
      const double s = probe(cand);
      if (s > budget) {
        lo = cand;
        spend_lo = s;
      } else {
        hi = cand;
        spend_hi = s;
        break;
      }
    }
  } else {
    // Flip at or below prev_mu. Gallop descending until a probe exceeds
    // budget (spend is unbounded as mu -> 0). A collapsed spend (s near 0
    // says nothing about how far down the flip sits) falls back to
    // 40-binade jumps.
    hi = prev_mu;
    spend_hi = s0;
    for (;;) {
      const double r = spend_hi / budget;
      double f = r * r * r;
      if (!(f > 1.0 / kMaxJump)) f = 1.0 / kMaxJump;
      double cand = MuLatticeFloor(hi * f);
      if (!(cand < hi)) cand = MuLatticePrev(hi);
      FRESHEN_CHECK(cand > 0.0);
      const double s = probe(cand);
      if (s > budget) {
        lo = cand;
        spend_lo = s;
        break;
      }
      hi = cand;
      spend_hi = s;
    }
  }

  NarrowBracketToFlip(probe, budget, &lo, &spend_lo, &hi, &spend_hi,
                      gather_thresholds, max_probes, &out);
  out.mu = hi;
  return out;
}

}  // namespace freshen
