// Shared instrumentation bundle for the Core Problem solvers. Each solver
// resolves its handles once (function-local static) and then updates them
// with lock-free atomic ops per solve — see docs/observability.md.
#ifndef FRESHEN_OPT_SOLVER_METRICS_H_
#define FRESHEN_OPT_SOLVER_METRICS_H_

#include "obs/metrics.h"

namespace freshen {

/// Cached registry handles for one solver implementation (labelled
/// solver="<name>" in the global registry).
struct SolverMetrics {
  obs::Counter* solves;          // freshen_solver_solves_total
  obs::Histogram* iterations;    // freshen_solver_iterations
  obs::Histogram* solve_seconds; // freshen_solver_solve_seconds
  obs::Gauge* residual;          // freshen_solver_residual (relative budget
                                 // mismatch at the returned allocation)
};

/// Registers (or looks up) the bundle for `solver`.
inline SolverMetrics MakeSolverMetrics(const char* solver) {
  auto& registry = obs::MetricsRegistry::Global();
  const obs::Labels labels = {{"solver", solver}};
  return SolverMetrics{
      registry.GetCounter("freshen_solver_solves_total", labels),
      registry.GetHistogram("freshen_solver_iterations",
                            obs::IterationCountBuckets(), labels),
      registry.GetHistogram("freshen_solver_solve_seconds",
                            obs::LatencySecondsBuckets(), labels),
      registry.GetGauge("freshen_solver_residual", labels)};
}

}  // namespace freshen

#endif  // FRESHEN_OPT_SOLVER_METRICS_H_
