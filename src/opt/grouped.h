// Grouped (multi-source) bandwidth constraints — an extension past the
// paper's single shared budget. A mirror pulling from several origin
// servers typically faces a *per-server* politeness limit rather than one
// pooled budget:
//
//   maximize   sum_i w_i F(f_i, lambda_i)
//   subject to sum_{i in group s} c_i f_i = B_s   for each server s,
//              f_i >= 0.
//
// The program separates across groups, so each group is an independent
// Core Problem solved exactly. The pooled problem (one budget sum_s B_s)
// always weakly dominates any fixed split; the split induced by the pooled
// optimum (spend per group at the shared multiplier) is the best possible
// one and equalizes the groups' marginal values — both facts are tested,
// and bench_ablation_multisource measures what naive splits lose.
#ifndef FRESHEN_OPT_GROUPED_H_
#define FRESHEN_OPT_GROUPED_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "opt/problem.h"
#include "opt/solution.h"

namespace freshen {

/// A Core Problem whose elements belong to origin servers with individual
/// bandwidth budgets. `base.bandwidth` is ignored; the effective total is
/// the sum of group budgets.
struct GroupedProblem {
  /// The element columns (weights, change rates, costs).
  CoreProblem base;
  /// Group (server) id per element, in [0, group_budgets.size()).
  std::vector<uint32_t> group;
  /// Per-group bandwidth budget (> 0 each).
  std::vector<double> group_budgets;

  /// Validates shape and ranges.
  Status Validate() const;
};

/// Result of a grouped solve.
struct GroupedAllocation {
  /// Sync frequency per element.
  std::vector<double> frequencies;
  /// Objective value at the solution.
  double objective = 0.0;
  /// Per-group Lagrange multiplier (marginal objective value of one extra
  /// unit of that group's bandwidth). Groups with a higher multiplier are
  /// the bandwidth-starved ones.
  std::vector<double> group_multipliers;
  /// Per-group bandwidth actually spent (== the group budget, to roundoff,
  /// whenever the group has anything worth syncing).
  std::vector<double> group_spend;
};

/// Solves each group's Core Problem exactly and assembles the result.
Result<GroupedAllocation> SolveGrouped(const GroupedProblem& problem);

/// The pooled-optimal budget split: solves the pooled problem (one budget =
/// sum of group budgets) and returns each group's spend under the shared
/// multiplier. Feeding this split back into SolveGrouped reproduces the
/// pooled optimum — it is the best achievable per-server split.
Result<std::vector<double>> PooledOptimalSplit(const GroupedProblem& problem);

}  // namespace freshen

#endif  // FRESHEN_OPT_GROUPED_H_
