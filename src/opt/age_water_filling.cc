#include "opt/age_water_filling.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {

Result<Allocation> AgeWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("age_water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  // Active elements compacted into contiguous SoA arrays (see the matching
  // comment in water_filling.cc).
  std::vector<size_t> index;         // Active k -> original i.
  std::vector<double> target_scale;  // c l^2 / w: h-target per unit of mu.
  std::vector<double> lambda;
  std::vector<double> cost;
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      index.push_back(i);
      target_scale.push_back(problem.costs[i] * problem.change_rates[i] *
                             problem.change_rates[i] / problem.weights[i]);
      lambda.push_back(problem.change_rates[i]);
      cost.push_back(problem.costs[i]);
    }
  }
  const size_t active = index.size();
  const par::Executor exec(options_.threads);

  auto weighted_age = [&](const std::vector<double>& freqs) {
    return exec.Sum(n, [&](size_t i) {
      // Skip zero-weight entries instead of multiplying: with f = 0 the age
      // is +inf and 0 * inf would poison the sum with NaN.
      if (problem.weights[i] <= 0.0) return 0.0;
      return problem.weights[i] *
             FixedOrderAge(freqs[i], problem.change_rates[i]);
    });
  };

  if (active == 0) {
    out.objective = weighted_age(out.frequencies);
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  // Previous Newton root per active element (see water_filling.cc).
  std::vector<double> warm(active, 0.0);

  auto frequency_at = [&](double mu, size_t k) {
    const double y = std::max(mu * target_scale[k], 1e-300);
    const double r = InverseAgeMarginalKernelH(y, warm[k]);
    warm[k] = r;
    return lambda[k] / r;
  };

  auto spend_at = [&](double mu) {
    return exec.Sum(active,
                    [&](size_t k) { return cost[k] * frequency_at(mu, k); });
  };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu -> inf): unlike the
  // freshness problem there is no finite mu_max, so bracket upward first.
  double hi = 1.0;
  while (spend_at(hi) > problem.bandwidth) {
    hi *= 4.0;
    FRESHEN_CHECK(hi < 1e300);
  }
  double lo = hi * 0.25;
  while (spend_at(lo) <= problem.bandwidth) {
    hi = lo;
    lo *= 0.25;
    FRESHEN_CHECK(lo > 0.0);
  }

  // Bisect until the multiplier interval collapses (see the matching
  // comment in water_filling.cc: the spend alone does not pin mu).
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    const double mid = 0.5 * (lo + hi);
    if (spend_at(mid) > problem.bandwidth) {
      lo = mid;
    } else {
      hi = mid;
    }
    if ((hi - lo) <= 1e-15 * hi) break;
  }
  const double mu = 0.5 * (lo + hi);
  exec.ForEach(active, [&](size_t k) {
    out.frequencies[index[k]] = frequency_at(mu, k);
  });
  const double spend = problem.Spend(out.frequencies, &exec);
  if (spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    exec.ForEach(n, [&](size_t i) { out.frequencies[i] *= scale; });
  }

  out.multiplier = mu;
  out.iterations = iterations;
  out.objective = weighted_age(out.frequencies);
  out.bandwidth_used = problem.Spend(out.frequencies, &exec);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
