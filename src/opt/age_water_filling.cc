#include "opt/age_water_filling.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/scan_breakpoint.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {

Result<Allocation> AgeWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("age_water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  // Active elements compacted into contiguous SoA arrays (see the matching
  // comment in water_filling.cc).
  std::vector<size_t> index;         // Active k -> original i.
  std::vector<double> target_scale;  // c l^2 / w: h-target per unit of mu.
  std::vector<double> lambda;
  std::vector<double> spend_scale;  // c l: spend per unit of 1/root.
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      index.push_back(i);
      target_scale.push_back(problem.costs[i] * problem.change_rates[i] *
                             problem.change_rates[i] / problem.weights[i]);
      lambda.push_back(problem.change_rates[i]);
      spend_scale.push_back(problem.costs[i] * problem.change_rates[i]);
    }
  }
  const size_t active = index.size();
  const par::Executor exec(options_.threads);

  auto weighted_age = [&](const std::vector<double>& freqs) {
    return exec.Sum(n, [&](size_t i) {
      // Skip zero-weight entries instead of multiplying: with f = 0 the age
      // is +inf and 0 * inf would poison the sum with NaN.
      if (problem.weights[i] <= 0.0) return 0.0;
      return problem.weights[i] *
             FixedOrderAge(freqs[i], problem.change_rates[i]);
    });
  };

  if (active == 0) {
    out.objective = weighted_age(out.frequencies);
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  // Sharded, SIMD-batched spend evaluation with warm-started kernel roots
  // (see the matching comment in water_filling.cc).
  BreakpointSpendEvaluator eval(BreakpointSpendEvaluator::Kernel::kAgeH,
                                target_scale, lambda, spend_scale, &exec);
  auto spend_at = [&](double mu) { return eval.SpendAt(mu); };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu -> inf): unlike the
  // freshness problem there is no finite mu_max (mu_hi_hint = 0 brackets
  // upward) and no activation thresholds (h is unbounded: no element is
  // ever priced out, so there are no breakpoints to scan).
  const GridSearchResult search = SolveMultiplierOnGrid(
      spend_at, problem.bandwidth, /*mu_hi_hint=*/0.0, options_.search,
      /*gather_thresholds=*/nullptr, options_.max_iterations);
  const double mu = search.mu;
  std::vector<double> frequencies(active);
  eval.FillFrequenciesAt(mu, &frequencies);
  exec.ForEach(active, [&](size_t k) {
    out.frequencies[index[k]] = frequencies[k];
  });
  const double spend = problem.Spend(out.frequencies, &exec);
  if (spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    exec.ForEach(n, [&](size_t i) { out.frequencies[i] *= scale; });
  }

  out.multiplier = mu;
  out.iterations = search.probes;
  out.objective = weighted_age(out.frequencies);
  out.bandwidth_used = problem.Spend(out.frequencies, &exec);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
