#include "opt/age_water_filling.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

// Frequency at multiplier mu, where target_scale = c_i * l_i^2 / w_i.
double FrequencyAt(double mu, double target_scale, double lambda) {
  const double y = std::max(mu * target_scale, 1e-300);
  return lambda / InverseAgeMarginalKernelH(y);
}

}  // namespace

Result<Allocation> AgeWaterFillingSolver::Solve(
    const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("age_water_filling");
  obs::ScopedSpan span("solve");
  WallTimer timer;

  const size_t n = problem.size();
  Allocation out;
  out.frequencies.assign(n, 0.0);

  std::vector<size_t> active;
  active.reserve(n);
  std::vector<double> target_scale(n, 0.0);  // c l^2 / w per active element.
  for (size_t i = 0; i < n; ++i) {
    if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
      active.push_back(i);
      target_scale[i] = problem.costs[i] * problem.change_rates[i] *
                        problem.change_rates[i] / problem.weights[i];
    }
  }

  auto weighted_age = [&](const std::vector<double>& freqs) {
    KahanSum acc;
    for (size_t i = 0; i < n; ++i) {
      if (problem.weights[i] <= 0.0) continue;
      acc.Add(problem.weights[i] *
              FixedOrderAge(freqs[i], problem.change_rates[i]));
    }
    return acc.Total();
  };

  if (active.empty()) {
    out.objective = weighted_age(out.frequencies);
    out.solve_seconds = timer.ElapsedSeconds();
    metrics.solves->Increment();
    metrics.iterations->Record(0.0);
    metrics.solve_seconds->Record(out.solve_seconds);
    return out;
  }

  auto spend_at = [&](double mu) {
    KahanSum acc;
    for (size_t i : active) {
      acc.Add(problem.costs[i] *
              FrequencyAt(mu, target_scale[i], problem.change_rates[i]));
    }
    return acc.Total();
  };

  // spend(mu) decreases from +inf (mu -> 0) to 0 (mu -> inf): unlike the
  // freshness problem there is no finite mu_max, so bracket upward first.
  double hi = 1.0;
  while (spend_at(hi) > problem.bandwidth) {
    hi *= 4.0;
    FRESHEN_CHECK(hi < 1e300);
  }
  double lo = hi * 0.25;
  while (spend_at(lo) <= problem.bandwidth) {
    hi = lo;
    lo *= 0.25;
    FRESHEN_CHECK(lo > 0.0);
  }

  // Bisect until the multiplier interval collapses (see the matching
  // comment in water_filling.cc: the spend alone does not pin mu).
  double mu = std::sqrt(lo * hi);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    mu = 0.5 * (lo + hi);
    if (spend_at(mu) > problem.bandwidth) {
      lo = mu;
    } else {
      hi = mu;
    }
    if ((hi - lo) <= 1e-15 * hi) break;
  }
  mu = 0.5 * (lo + hi);
  for (size_t i : active) {
    out.frequencies[i] =
        FrequencyAt(mu, target_scale[i], problem.change_rates[i]);
  }
  const double spend = problem.Spend(out.frequencies);
  if (spend > 0.0) {
    const double scale = problem.bandwidth / spend;
    for (double& f : out.frequencies) f *= scale;
  }

  out.multiplier = mu;
  out.iterations = iterations;
  out.objective = weighted_age(out.frequencies);
  out.bandwidth_used = problem.Spend(out.frequencies);
  out.converged = true;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(std::fabs(out.bandwidth_used - problem.bandwidth) /
                        problem.bandwidth);
  return out;
}

}  // namespace freshen
