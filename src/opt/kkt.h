// KKT-condition verification for Core Problem solutions. Used by tests and
// by benches to certify that "optimal" lines really are optimal.
#ifndef FRESHEN_OPT_KKT_H_
#define FRESHEN_OPT_KKT_H_

#include <string>

#include "opt/problem.h"
#include "opt/solution.h"

namespace freshen {

/// Outcome of checking an allocation against the KKT conditions.
struct KktReport {
  /// Largest relative deviation of w_i F'(f_i)/c_i from the multiplier over
  /// elements with f_i > 0.
  double max_stationarity_violation = 0.0;
  /// Largest relative excess of the zero-allocation marginal w_i/(c_i l_i)
  /// over the multiplier (elements with f_i = 0 whose marginal says they
  /// should receive bandwidth).
  double max_complementarity_violation = 0.0;
  /// Relative budget mismatch |spend - B| / B.
  double budget_violation = 0.0;
  /// True when every violation is within the tolerance passed to VerifyKkt.
  bool satisfied = false;

  /// Human-readable summary.
  std::string ToString() const;
};

/// Checks `allocation` (using its stored multiplier; when the multiplier is
/// 0 — e.g. from the generic solver — a consistent one is inferred from the
/// allocated elements' average marginal). `tolerance` is relative. Pass an
/// executor to run the per-element scans in parallel — the report is
/// bit-identical at every thread count (sharded deterministic reductions;
/// see common/parallel.h).
KktReport VerifyKkt(const CoreProblem& problem, const Allocation& allocation,
                    double tolerance = 1e-6,
                    const par::Executor* executor = nullptr);

}  // namespace freshen

#endif  // FRESHEN_OPT_KKT_H_
