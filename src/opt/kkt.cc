#include "opt/kkt.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "model/freshness.h"
#include "obs/trace.h"

namespace freshen {

std::string KktReport::ToString() const {
  return StrFormat(
      "KKT{stationarity=%.3e complementarity=%.3e budget=%.3e satisfied=%s}",
      max_stationarity_violation, max_complementarity_violation,
      budget_violation, satisfied ? "yes" : "no");
}

namespace {

// Registered once; updated lock-free per verification.
struct KktMetrics {
  obs::Counter* checks;
  obs::Gauge* max_violation;
};

const KktMetrics& GetKktMetrics() {
  static const KktMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return KktMetrics{
        registry.GetCounter("freshen_solver_kkt_checks_total"),
        registry.GetGauge("freshen_solver_kkt_max_violation")};
  }();
  return metrics;
}

}  // namespace

KktReport VerifyKkt(const CoreProblem& problem, const Allocation& allocation,
                    double tolerance) {
  FRESHEN_CHECK(allocation.frequencies.size() == problem.size());
  obs::ScopedSpan span("kkt_verify");
  GetKktMetrics().checks->Increment();
  KktReport report;

  // Marginal per unit of bandwidth for element i at its current frequency.
  auto marginal = [&](size_t i) {
    return problem.weights[i] *
           FixedOrderFreshnessDerivative(allocation.frequencies[i],
                                         problem.change_rates[i]) /
           problem.costs[i];
  };

  double mu = allocation.multiplier;
  if (mu <= 0.0) {
    // Infer a multiplier from the allocated elements.
    double sum = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < problem.size(); ++i) {
      if (allocation.frequencies[i] > 0.0 && problem.weights[i] > 0.0 &&
          problem.change_rates[i] > 0.0) {
        sum += marginal(i);
        ++count;
      }
    }
    if (count == 0) {
      report.budget_violation =
          std::fabs(problem.Spend(allocation.frequencies) -
                    problem.bandwidth) /
          problem.bandwidth;
      // No allocated elements: satisfied iff no element wanted bandwidth.
      report.satisfied = true;
      for (size_t i = 0; i < problem.size(); ++i) {
        if (problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0) {
          report.satisfied = false;
        }
      }
      return report;
    }
    mu = sum / static_cast<double>(count);
  }

  for (size_t i = 0; i < problem.size(); ++i) {
    if (problem.weights[i] <= 0.0 || problem.change_rates[i] <= 0.0) continue;
    if (allocation.frequencies[i] > 0.0) {
      const double violation = std::fabs(marginal(i) - mu) / mu;
      report.max_stationarity_violation =
          std::max(report.max_stationarity_violation, violation);
    } else {
      // Marginal at f = 0+ is w/(c*l); it must not exceed mu.
      const double at_zero = problem.weights[i] /
                             (problem.costs[i] * problem.change_rates[i]);
      const double excess = (at_zero - mu) / mu;
      report.max_complementarity_violation =
          std::max(report.max_complementarity_violation, excess);
    }
  }
  report.budget_violation =
      std::fabs(problem.Spend(allocation.frequencies) - problem.bandwidth) /
      problem.bandwidth;
  report.satisfied = report.max_stationarity_violation <= tolerance &&
                     report.max_complementarity_violation <= tolerance &&
                     report.budget_violation <= tolerance;
  GetKktMetrics().max_violation->Set(
      std::max({report.max_stationarity_violation,
                report.max_complementarity_violation,
                report.budget_violation}));
  return report;
}

}  // namespace freshen
