#include "opt/kkt.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "model/freshness.h"
#include "model/freshness_batch.h"
#include "obs/trace.h"

namespace freshen {

std::string KktReport::ToString() const {
  return StrFormat(
      "KKT{stationarity=%.3e complementarity=%.3e budget=%.3e satisfied=%s}",
      max_stationarity_violation, max_complementarity_violation,
      budget_violation, satisfied ? "yes" : "no");
}

namespace {

// Registered once; updated lock-free per verification.
struct KktMetrics {
  obs::Counter* checks;
  obs::Gauge* max_violation;
};

const KktMetrics& GetKktMetrics() {
  static const KktMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return KktMetrics{
        registry.GetCounter("freshen_solver_kkt_checks_total"),
        registry.GetGauge("freshen_solver_kkt_max_violation")};
  }();
  return metrics;
}

}  // namespace

KktReport VerifyKkt(const CoreProblem& problem, const Allocation& allocation,
                    double tolerance, const par::Executor* executor) {
  FRESHEN_CHECK(allocation.frequencies.size() == problem.size());
  obs::ScopedSpan span("kkt_verify");
  GetKktMetrics().checks->Increment();
  KktReport report;
  const par::Executor inline_executor(1);
  const par::Executor& exec = executor != nullptr ? *executor : inline_executor;
  const size_t n = problem.size();

  // Marginal per unit of bandwidth for element i at its current frequency.
  auto marginal = [&](size_t i) {
    return problem.weights[i] *
           FixedOrderFreshnessDerivative(allocation.frequencies[i],
                                         problem.change_rates[i]) /
           problem.costs[i];
  };
  auto eligible = [&](size_t i) {
    return problem.weights[i] > 0.0 && problem.change_rates[i] > 0.0;
  };

  double mu = allocation.multiplier;
  if (mu <= 0.0) {
    // Infer a multiplier from the allocated elements. Deterministic sharded
    // reductions: sum and count are bit-identical at every thread count.
    auto allocated = [&](size_t i) {
      return allocation.frequencies[i] > 0.0 && eligible(i);
    };
    const double sum =
        exec.Sum(n, [&](size_t i) { return allocated(i) ? marginal(i) : 0.0; });
    const double count =
        exec.Sum(n, [&](size_t i) { return allocated(i) ? 1.0 : 0.0; });
    if (count == 0.0) {
      report.budget_violation =
          std::fabs(problem.Spend(allocation.frequencies, &exec) -
                    problem.bandwidth) /
          problem.bandwidth;
      // No allocated elements: satisfied iff no element wanted bandwidth.
      report.satisfied =
          exec.Max(n, [&](size_t i) { return eligible(i) ? 1.0 : 0.0; },
                   0.0) == 0.0;
      return report;
    }
    mu = sum / count;
  }

  // Stationarity sweep: the one transcendental-per-element pass here, so it
  // runs batched (model/freshness_batch.h) over a transcendental-sized
  // shard plan. Deterministic: each element's violation is a pure function
  // of its own row, and max is order-free.
  {
    const std::vector<par::Shard> plan = par::ShardPlanFor(
        n, par::kTranscendentalGrain, par::kTranscendentalMaxShards);
    std::vector<double> partial(plan.size(), 0.0);
    exec.ForShards(plan, [&](const par::Shard& shard) {
      constexpr size_t kBlock = 512;
      double rate_over_f[kBlock];
      double gain[kBlock];
      double best = 0.0;
      for (size_t b = shard.begin; b < shard.end; b += kBlock) {
        const size_t m = std::min(kBlock, shard.end - b);
        for (size_t j = 0; j < m; ++j) {
          const size_t i = b + j;
          const bool on = eligible(i) && allocation.frequencies[i] > 0.0;
          rate_over_f[j] =
              on ? problem.change_rates[i] / allocation.frequencies[i] : 1.0;
        }
        BatchMarginalGainG(rate_over_f, gain, m);
        for (size_t j = 0; j < m; ++j) {
          const size_t i = b + j;
          if (!eligible(i) || allocation.frequencies[i] <= 0.0) continue;
          // marginal = w * (g(l/f)/l) / c, as in `marginal` above but with
          // the batched g.
          const double value =
              problem.weights[i] * gain[j] /
              (problem.change_rates[i] * problem.costs[i]);
          const double violation = std::fabs(value - mu) / mu;
          if (violation > best) best = violation;
        }
      }
      partial[shard.index] = best;
    });
    double best = 0.0;
    for (double value : partial) best = std::max(best, value);
    report.max_stationarity_violation = best;
  }
  report.max_complementarity_violation = exec.Max(
      n,
      [&](size_t i) {
        if (!eligible(i) || allocation.frequencies[i] > 0.0) return 0.0;
        // Marginal at f = 0+ is w/(c*l); it must not exceed mu.
        const double at_zero = problem.weights[i] /
                               (problem.costs[i] * problem.change_rates[i]);
        return (at_zero - mu) / mu;
      },
      0.0);
  report.budget_violation =
      std::fabs(problem.Spend(allocation.frequencies, &exec) -
                problem.bandwidth) /
      problem.bandwidth;
  report.satisfied = report.max_stationarity_violation <= tolerance &&
                     report.max_complementarity_violation <= tolerance &&
                     report.budget_violation <= tolerance;
  GetKktMetrics().max_violation->Set(
      std::max({report.max_stationarity_violation,
                report.max_complementarity_violation,
                report.budget_violation}));
  return report;
}

}  // namespace freshen
