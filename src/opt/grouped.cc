#include "opt/grouped.h"

#include <cmath>

#include "common/string_util.h"
#include "opt/water_filling.h"
#include "stats/descriptive.h"

namespace freshen {

Status GroupedProblem::Validate() const {
  FRESHEN_RETURN_IF_ERROR([&] {
    // Column validation without the (ignored) bandwidth: borrow the base
    // validator by substituting a placeholder positive budget.
    CoreProblem probe = base;
    probe.bandwidth = 1.0;
    return probe.Validate();
  }());
  if (group.size() != base.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu group ids for %zu elements", group.size(),
                  base.size()));
  }
  if (group_budgets.empty()) {
    return Status::InvalidArgument("no groups");
  }
  for (size_t s = 0; s < group_budgets.size(); ++s) {
    if (!(group_budgets[s] >= 0.0) || !std::isfinite(group_budgets[s])) {
      return Status::InvalidArgument(
          StrFormat("group %zu budget must be >= 0 and finite", s));
    }
  }
  for (size_t i = 0; i < group.size(); ++i) {
    if (group[i] >= group_budgets.size()) {
      return Status::InvalidArgument(
          StrFormat("element %zu has out-of-range group %u", i, group[i]));
    }
  }
  return Status::OK();
}

Result<GroupedAllocation> SolveGrouped(const GroupedProblem& problem) {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  const size_t n = problem.base.size();
  const size_t num_groups = problem.group_budgets.size();

  GroupedAllocation out;
  out.frequencies.assign(n, 0.0);
  out.group_multipliers.assign(num_groups, 0.0);
  out.group_spend.assign(num_groups, 0.0);

  // Member lists per group.
  std::vector<std::vector<size_t>> members(num_groups);
  for (size_t i = 0; i < n; ++i) {
    members[problem.group[i]].push_back(i);
  }

  KktWaterFillingSolver solver;
  for (size_t s = 0; s < num_groups; ++s) {
    if (members[s].empty() || problem.group_budgets[s] <= 0.0) continue;
    CoreProblem sub;
    sub.bandwidth = problem.group_budgets[s];
    sub.weights.reserve(members[s].size());
    for (size_t i : members[s]) {
      sub.weights.push_back(problem.base.weights[i]);
      sub.change_rates.push_back(problem.base.change_rates[i]);
      sub.costs.push_back(problem.base.costs[i]);
    }
    FRESHEN_ASSIGN_OR_RETURN(Allocation allocation, solver.Solve(sub));
    for (size_t j = 0; j < members[s].size(); ++j) {
      out.frequencies[members[s][j]] = allocation.frequencies[j];
    }
    out.group_multipliers[s] = allocation.multiplier;
    out.group_spend[s] = allocation.bandwidth_used;
  }

  // Objective over the full element set (covers empty/zero-budget groups).
  CoreProblem whole = problem.base;
  whole.bandwidth = 1.0;  // Unused by Objective.
  out.objective = whole.Objective(out.frequencies);
  return out;
}

Result<std::vector<double>> PooledOptimalSplit(const GroupedProblem& problem) {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  CoreProblem pooled = problem.base;
  pooled.bandwidth = Sum(problem.group_budgets);
  if (!(pooled.bandwidth > 0.0)) {
    return Status::InvalidArgument("total bandwidth must be positive");
  }
  FRESHEN_ASSIGN_OR_RETURN(Allocation allocation,
                           KktWaterFillingSolver().Solve(pooled));
  std::vector<double> split(problem.group_budgets.size(), 0.0);
  for (size_t i = 0; i < problem.base.size(); ++i) {
    split[problem.group[i]] +=
        problem.base.costs[i] * allocation.frequencies[i];
  }
  return split;
}

}  // namespace freshen
