// The Core Problem (paper §2.1) in its general weighted form:
//
//   maximize   sum_i  w_i * F(f_i, lambda_i)
//   subject to sum_i  c_i * f_i = B,   f_i >= 0
//
// Instances:
//   * Perceived Freshening (PF): w_i = p_i, c_i = 1 (or s_i with sizes, §5).
//   * General Freshening (GF, the baseline from [5]): w_i = 1/N.
//   * The Transformed Problem (§3.2): one entry per partition with
//     w_j = n_j * mean(p), lambda_j = mean(lambda), c_j = n_j * mean(s).
#ifndef FRESHEN_OPT_PROBLEM_H_
#define FRESHEN_OPT_PROBLEM_H_

#include <cstddef>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "model/element.h"

namespace freshen {

/// A weighted core problem instance. All vectors have equal length.
struct CoreProblem {
  /// Objective weights (w_i >= 0). Zero-weight elements never get bandwidth.
  std::vector<double> weights;
  /// Poisson change rates (lambda_i >= 0).
  std::vector<double> change_rates;
  /// Bandwidth cost per unit of sync frequency (c_i > 0).
  std::vector<double> costs;
  /// Total bandwidth per period (B > 0).
  double bandwidth = 0.0;

  /// Number of variables.
  size_t size() const { return weights.size(); }

  /// Validates shape and ranges; returns a descriptive error on failure.
  Status Validate() const;

  /// Objective value of a frequency vector (no feasibility check). The sum
  /// is a deterministic sharded Kahan reduction (par::ShardPlan(size())):
  /// pass an executor to run the shards in parallel — the result is
  /// bit-identical at every thread count, including the default inline run.
  double Objective(const std::vector<double>& frequencies,
                   const par::Executor* executor = nullptr) const;

  /// Constraint left-hand side: sum_i c_i f_i. Same reduction contract as
  /// Objective().
  double Spend(const std::vector<double>& frequencies,
               const par::Executor* executor = nullptr) const;
};

/// Builds the PF instance: weights from the profile; costs from sizes when
/// `size_aware`, else 1. `bandwidth` must be > 0.
CoreProblem MakePerceivedProblem(const ElementSet& elements, double bandwidth,
                                 bool size_aware = false);

/// Builds the GF (prior-work baseline) instance: uniform weights 1/N.
CoreProblem MakeGeneralProblem(const ElementSet& elements, double bandwidth,
                               bool size_aware = false);

}  // namespace freshen

#endif  // FRESHEN_OPT_PROBLEM_H_
