#include "opt/delta_replan.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "model/freshness_batch.h"
#include "obs/trace.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

/// Relative guard band around the budget for the pinned-path flip test.
/// The cached edge totals and a fresh evaluation of the same points differ
/// only by compensated-summation jitter (~1e-15 relative); demoting to the
/// warm path whenever an edge total sits within 1e-13 * budget of the
/// budget means that jitter can never flip the pinned decision — at the
/// cost of taking the (always-correct) warm path in the few percent of
/// replans whose flip margin is that thin.
constexpr double kPinnedGuard = 1e-13;

/// Mirror of the evaluator's pricing rule (opt/scan_breakpoint.cc): lane k
/// is funded at mu iff mu * ratio < 1, and its kernel target is clamped to
/// 1e-300. Kept textually in sync so single-lane recomputation lands on the
/// same bits as a full capture.
constexpr double kMinTarget = 1e-300;

/// Batch size for re-inverting dirty lanes (matches the evaluator's block).
constexpr size_t kDirtyBatch = 512;

const std::vector<double>& CountBuckets() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double edge = 1.0; edge <= 1048576.0; edge *= 4.0) b.push_back(edge);
    return b;
  }();
  return buckets;
}

}  // namespace

const char* ToString(ReplanPath path) {
  switch (path) {
    case ReplanPath::kPinned:
      return "pinned";
    case ReplanPath::kWarm:
      return "warm";
    case ReplanPath::kFull:
      return "full";
  }
  return "unknown";
}

DeltaReplanner::DeltaReplanner(CoreProblem problem, Options options)
    : options_(options),
      problem_(std::move(problem)),
      exec_(std::make_unique<par::Executor>(options.threads)) {
  obs::MetricsRegistry& registry = options_.registry != nullptr
                                       ? *options_.registry
                                       : obs::MetricsRegistry::Global();
  replans_pinned_ =
      registry.GetCounter("freshen_replan_total", {{"path", "pinned"}});
  replans_warm_ =
      registry.GetCounter("freshen_replan_total", {{"path", "warm"}});
  replans_full_ =
      registry.GetCounter("freshen_replan_total", {{"path", "full"}});
  dirty_hist_ =
      registry.GetHistogram("freshen_replan_dirty_elements", CountBuckets());
  probes_hist_ =
      registry.GetHistogram("freshen_replan_probes", CountBuckets());
  seconds_hist_ = registry.GetHistogram("freshen_replan_seconds",
                                        obs::LatencySecondsBuckets());
}

Result<std::unique_ptr<DeltaReplanner>> DeltaReplanner::Create(
    CoreProblem problem, Options options) {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  if (!(options.full_churn_threshold > 0.0)) {
    return Status::InvalidArgument("full_churn_threshold must be positive");
  }
  std::unique_ptr<DeltaReplanner> replanner(
      new DeltaReplanner(std::move(problem), options));
  replanner->FullSolve();
  return replanner;
}

void DeltaReplanner::Compact() {
  // Identical construction to KktWaterFillingSolver::Solve: membership is
  // weight > 0 && rate > 0, ascending original index, same value formulas.
  const size_t n = problem_.size();
  index_.clear();
  ratio_.clear();
  lambda_.clear();
  spend_scale_.clear();
  active_of_.assign(n, 0);
  mu_max_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (problem_.weights[i] > 0.0 && problem_.change_rates[i] > 0.0) {
      active_of_[i] = index_.size() + 1;
      index_.push_back(i);
      ratio_.push_back(problem_.costs[i] * problem_.change_rates[i] /
                       problem_.weights[i]);
      lambda_.push_back(problem_.change_rates[i]);
      spend_scale_.push_back(problem_.costs[i] * problem_.change_rates[i]);
      mu_max_ = std::max(mu_max_, 1.0 / ratio_.back());
    }
  }
  // The evaluator aliases the SoA vectors and sizes its plan/warm state at
  // construction, so it must be rebuilt whenever the active set is.
  eval_ = std::make_unique<BreakpointSpendEvaluator>(
      BreakpointSpendEvaluator::Kernel::kFreshnessG, ratio_, lambda_,
      spend_scale_, exec_.get());
}

void DeltaReplanner::FullSolve() {
  Compact();
  const size_t active = index_.size();
  if (active == 0) {
    mu_ = 0.0;
    edge_lo_ = 0.0;
    contrib_lo_.clear();
    contrib_hi_.clear();
    partial_lo_.clear();
    partial_hi_.clear();
    total_lo_ = total_hi_ = 0.0;
    fill_.clear();
    finish_contrib_.clear();
    finish_partials_.clear();
    spend_ = 0.0;
    scale_ = 1.0;
    boundary_index_ = SIZE_MAX;
    boundary_grant_ = 0.0;
    boundary_band_.clear();
    last_probes_ = 0;
    return;
  }
  auto spend_at = [this](double mu) { return eval_->SpendAt(mu); };
  std::function<void(double, double, std::vector<double>*)> gather =
      [this, active](double lo, double hi, std::vector<double>* band) {
        for (size_t k = 0; k < active; ++k) {
          const double threshold = 1.0 / ratio_[k];
          if (threshold > lo && threshold < hi) band->push_back(threshold);
        }
      };
  const GridSearchResult search = SolveMultiplierOnGrid(
      spend_at, problem_.bandwidth, mu_max_, MultiplierSearch::kScanBreakpoint,
      &gather, options_.max_probes);
  mu_ = search.mu;
  last_probes_ = search.probes;
  RefreshAtMu();
}

bool DeltaReplanner::InBoundaryBand(size_t k) const {
  if (fill_[k] > 0.0) return false;
  return 1.0 / ratio_[k] >= mu_ * (1.0 - 1e-9);
}

void DeltaReplanner::RefreshAtMu() {
  const size_t active = index_.size();
  edge_lo_ = MuLatticePrev(mu_);
  // Cold captures at both flip edges: per-lane pure, so a later single-lane
  // patch reproduces exactly the value a fresh capture would hold.
  eval_->CaptureAt(mu_, &fill_, &contrib_hi_);
  eval_->CaptureAt(edge_lo_, /*frequencies=*/nullptr, &contrib_lo_);
  SpendBlockPartials(contrib_hi_, exec_.get(), &partial_hi_);
  SpendBlockPartials(contrib_lo_, exec_.get(), &partial_lo_);
  total_hi_ = MergeSpendBlockPartials(partial_hi_);
  total_lo_ = MergeSpendBlockPartials(partial_lo_);
  // Finish-spend tree over cost * fill — the cold solver's exact finish
  // arithmetic (opt/water_filling.cc).
  finish_contrib_.resize(active);
  exec_->ForEach(active, [&](size_t k) {
    finish_contrib_[k] = problem_.costs[index_[k]] * fill_[k];
  });
  SpendBlockPartials(finish_contrib_, exec_.get(), &finish_partials_);
  spend_ = MergeSpendBlockPartials(finish_partials_);
  boundary_band_.clear();
  for (size_t k = 0; k < active; ++k) {
    if (InBoundaryBand(k)) boundary_band_.insert({1.0 / ratio_[k], k});
  }
  FinishResidual();
}

void DeltaReplanner::FinishResidual() {
  // Bit-for-bit mirror of the cold solver's residual removal: hand the
  // slack to the boundary element whose zero-frequency marginal is largest
  // (first such element on ties — the band's ordering), else rescale.
  double residual = problem_.bandwidth - spend_;
  boundary_index_ = SIZE_MAX;
  boundary_grant_ = 0.0;
  scale_ = 1.0;
  if (residual > 0.0 && !boundary_band_.empty()) {
    const size_t k = boundary_band_.begin()->second;
    boundary_index_ = index_[k];
    boundary_grant_ = residual / problem_.costs[boundary_index_];
    residual = 0.0;
  }
  if (residual != 0.0 && spend_ > 0.0) {
    scale_ = problem_.bandwidth / spend_;
  }
}

Result<DeltaReplanner::ReplanResult> DeltaReplanner::Replan(
    const std::vector<ElementUpdate>& updates) {
  obs::ScopedSpan span("delta_replan");
  WallTimer timer;

  // Validate the whole batch before mutating anything (appends grow the
  // admissible index range as the batch applies).
  size_t n_after = problem_.size();
  for (const ElementUpdate& u : updates) {
    if (u.index > n_after) {
      return Status::InvalidArgument(
          StrFormat("update index %zu out of range (size %zu)", u.index,
                    n_after));
    }
    if (u.index == n_after) ++n_after;
    if (!(u.weight >= 0.0) || !std::isfinite(u.weight)) {
      return Status::InvalidArgument("update weight negative or non-finite");
    }
    if (!(u.change_rate >= 0.0) || !std::isfinite(u.change_rate)) {
      return Status::InvalidArgument("update rate negative or non-finite");
    }
    if (!(u.cost > 0.0) || !std::isfinite(u.cost)) {
      return Status::InvalidArgument("update cost must be positive, finite");
    }
  }

  // Classify: an append or an active-set membership flip changes the
  // compaction's shape — those force the full path.
  bool structural = false;
  for (const ElementUpdate& u : updates) {
    if (u.index >= problem_.size()) {
      structural = true;
      break;
    }
    const bool was_active = problem_.weights[u.index] > 0.0 &&
                            problem_.change_rates[u.index] > 0.0;
    const bool now_active = u.weight > 0.0 && u.change_rate > 0.0;
    if (was_active != now_active) {
      structural = true;
      break;
    }
  }

  std::vector<size_t> dirty;
  dirty.reserve(updates.size());
  for (const ElementUpdate& u : updates) dirty.push_back(u.index);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  ReplanResult result;
  result.dirty = dirty.size();

  auto apply_updates = [&] {
    for (const ElementUpdate& u : updates) {
      if (u.index == problem_.size()) {
        problem_.weights.push_back(u.weight);
        problem_.change_rates.push_back(u.change_rate);
        problem_.costs.push_back(u.cost);
      } else {
        problem_.weights[u.index] = u.weight;
        problem_.change_rates[u.index] = u.change_rate;
        problem_.costs[u.index] = u.cost;
      }
    }
  };

  const size_t active = index_.size();
  std::vector<size_t> dirty_lanes;
  if (!structural) {
    for (size_t i : dirty) {
      if (active_of_[i] != 0) dirty_lanes.push_back(active_of_[i] - 1);
    }
  }

  if (structural ||
      (active > 0 && static_cast<double>(dirty_lanes.size()) >
                         options_.full_churn_threshold *
                             static_cast<double>(active))) {
    apply_updates();
    FullSolve();
    result.path = ReplanPath::kFull;
    result.probes = last_probes_;
    result.all_touched = true;
    touched_.clear();
    replans_full_->Increment();
  } else if (dirty_lanes.empty()) {
    // Only inactive elements changed (and stayed inactive): the solve is
    // untouched. Record the values; the plan is provably byte-unchanged.
    apply_updates();
    result.path = ReplanPath::kPinned;
    result.probes = 0;
    result.all_touched = false;
    touched_.clear();
    last_probes_ = 0;
    replans_pinned_->Increment();
  } else {
    // Value-only churn on active lanes. Evict stale boundary-band entries
    // (membership is judged against pre-update ratio/fill), patch the SoA,
    // then try to prove the flip did not move.
    for (size_t k : dirty_lanes) {
      if (InBoundaryBand(k)) boundary_band_.erase({1.0 / ratio_[k], k});
    }
    apply_updates();
    for (size_t k : dirty_lanes) {
      const size_t i = index_[k];
      ratio_[k] =
          problem_.costs[i] * problem_.change_rates[i] / problem_.weights[i];
      lambda_[k] = problem_.change_rates[i];
      spend_scale_[k] = problem_.costs[i] * problem_.change_rates[i];
    }

    // Re-invert the dirty lanes cold at both cached edges (SIMD batches;
    // per-lane purity makes each value equal to the same lane of a full
    // capture) and fold them into the edge contribution trees.
    const size_t d = dirty_lanes.size();
    std::vector<double> new_fill(d), new_contrib_hi(d), new_contrib_lo(d);
    {
      double target[kDirtyBatch];
      double root[kDirtyBatch];
      bool funded[kDirtyBatch];
      for (int edge = 0; edge < 2; ++edge) {
        const double mu_e = edge == 0 ? mu_ : edge_lo_;
        for (size_t b = 0; b < d; b += kDirtyBatch) {
          const size_t m = std::min(kDirtyBatch, d - b);
          for (size_t j = 0; j < m; ++j) {
            const double y = mu_e * ratio_[dirty_lanes[b + j]];
            funded[j] = y < 1.0;
            target[j] = funded[j] ? std::max(y, kMinTarget) : 0.25;
          }
          BatchInverseMarginalGainG(target, /*seeds=*/nullptr, root, m);
          for (size_t j = 0; j < m; ++j) {
            const size_t k = dirty_lanes[b + j];
            const double contrib =
                funded[j] ? spend_scale_[k] / root[j] : 0.0;
            if (edge == 0) {
              new_contrib_hi[b + j] = contrib;
              new_fill[b + j] = funded[j] ? lambda_[k] / root[j] : 0.0;
            } else {
              new_contrib_lo[b + j] = contrib;
            }
          }
        }
      }
    }
    std::vector<size_t> dirty_blocks;
    dirty_blocks.reserve(d);
    for (size_t j = 0; j < d; ++j) {
      const size_t k = dirty_lanes[j];
      contrib_hi_[k] = new_contrib_hi[j];
      contrib_lo_[k] = new_contrib_lo[j];
      dirty_blocks.push_back(k / kSpendBlock);
    }
    std::sort(dirty_blocks.begin(), dirty_blocks.end());
    dirty_blocks.erase(std::unique(dirty_blocks.begin(), dirty_blocks.end()),
                       dirty_blocks.end());
    exec_->ForEach(dirty_blocks.size(), [&](size_t j) {
      const size_t b = dirty_blocks[j];
      partial_hi_[b] = SpendBlockPartial(contrib_hi_, b);
      partial_lo_[b] = SpendBlockPartial(contrib_lo_, b);
    });
    total_hi_ = MergeSpendBlockPartials(partial_hi_);
    total_lo_ = MergeSpendBlockPartials(partial_lo_);

    const double budget = problem_.bandwidth;
    const bool pinned =
        total_lo_ - budget > kPinnedGuard * budget &&
        budget - total_hi_ > kPinnedGuard * budget;
    if (pinned) {
      // The flip cannot have moved: spend still crosses the budget between
      // the same adjacent lattice points, with margin above any evaluation
      // jitter. mu_ stands; only dirty fills and the finish arithmetic
      // change.
      const double old_scale = scale_;
      const size_t old_boundary = boundary_index_;
      const double old_grant = boundary_grant_;
      touched_.clear();
      for (size_t j = 0; j < d; ++j) {
        const size_t k = dirty_lanes[j];
        if (std::memcmp(&fill_[k], &new_fill[j], sizeof(double)) != 0) {
          touched_.push_back(index_[k]);
        }
        fill_[k] = new_fill[j];
        finish_contrib_[k] = problem_.costs[index_[k]] * fill_[k];
        if (InBoundaryBand(k)) boundary_band_.insert({1.0 / ratio_[k], k});
      }
      exec_->ForEach(dirty_blocks.size(), [&](size_t j) {
        finish_partials_[dirty_blocks[j]] =
            SpendBlockPartial(finish_contrib_, dirty_blocks[j]);
      });
      spend_ = MergeSpendBlockPartials(finish_partials_);
      FinishResidual();
      std::sort(touched_.begin(), touched_.end());
      result.path = ReplanPath::kPinned;
      result.probes = 0;
      result.all_touched =
          !(std::memcmp(&scale_, &old_scale, sizeof(double)) == 0 &&
            boundary_index_ == old_boundary &&
            std::memcmp(&boundary_grant_, &old_grant, sizeof(double)) == 0);
      last_probes_ = 0;
      replans_pinned_->Increment();
    } else {
      // The flip (may have) moved: warm search from the cached flip point.
      // The evaluator's warm seeds are stale for the dirty lanes — hints
      // only; converged probes stay faithful, and the final fill is cold.
      auto spend_at = [this](double mu) { return eval_->SpendAt(mu); };
      const size_t n_active = index_.size();
      std::function<void(double, double, std::vector<double>*)> gather =
          [this, n_active](double lo, double hi, std::vector<double>* band) {
            for (size_t k = 0; k < n_active; ++k) {
              const double threshold = 1.0 / ratio_[k];
              if (threshold > lo && threshold < hi) band->push_back(threshold);
            }
          };
      const GridSearchResult search = SolveMultiplierFromPrevious(
          spend_at, budget, mu_, &gather, options_.max_probes);
      mu_ = search.mu;
      last_probes_ = search.probes;
      RefreshAtMu();
      result.path = ReplanPath::kWarm;
      result.probes = search.probes;
      result.all_touched = true;
      touched_.clear();
      replans_warm_->Increment();
    }
  }

  result.multiplier = mu_;
  result.replan_seconds = timer.ElapsedSeconds();
  dirty_hist_->Record(static_cast<double>(result.dirty));
  probes_hist_->Record(static_cast<double>(result.probes));
  seconds_hist_->Record(result.replan_seconds);
  return result;
}

void DeltaReplanner::MaterializeFrequencies(
    std::vector<double>* frequencies) const {
  const size_t n = problem_.size();
  frequencies->assign(n, 0.0);
  const size_t active = index_.size();
  const double scale = scale_;
  exec_->ForEach(active, [&](size_t k) {
    // fl(fill * 1.0) == fill, so the no-rescale case is exact; with a
    // rescale this is the cold solver's `frequencies[i] *= scale` (zeros
    // stay +0.0 either way).
    (*frequencies)[index_[k]] = fill_[k] * scale;
  });
  if (boundary_index_ != SIZE_MAX) {
    (*frequencies)[boundary_index_] = boundary_grant_;
  }
}

Allocation DeltaReplanner::MaterializeAllocation() const {
  Allocation out;
  MaterializeFrequencies(&out.frequencies);
  out.multiplier = mu_;
  out.iterations = last_probes_;
  out.objective = problem_.Objective(out.frequencies, exec_.get());
  out.bandwidth_used = index_.empty()
                           ? 0.0
                           : problem_.Spend(out.frequencies, exec_.get());
  out.converged = !index_.empty();
  return out;
}

}  // namespace freshen
