// Solver output shared by every Core Problem solver.
#ifndef FRESHEN_OPT_SOLUTION_H_
#define FRESHEN_OPT_SOLUTION_H_

#include <vector>

namespace freshen {

/// A bandwidth allocation: synchronization frequencies plus diagnostics.
struct Allocation {
  /// Sync frequency per element (same order as the problem's columns).
  std::vector<double> frequencies;
  /// The Lagrange multiplier at the solution (marginal objective value of one
  /// extra unit of bandwidth). 0 when the solver does not compute one.
  double multiplier = 0.0;
  /// Objective value sum_i w_i F(f_i, lambda_i) at the solution.
  double objective = 0.0;
  /// Constraint value sum_i c_i f_i actually spent.
  double bandwidth_used = 0.0;
  /// Outer iterations the solver performed.
  int iterations = 0;
  /// Wall-clock seconds spent solving.
  double solve_seconds = 0.0;
  /// True when the solver met its convergence criterion (the generic NLP
  /// solver can exhaust its budget first; the KKT solver always converges).
  bool converged = true;
};

}  // namespace freshen

#endif  // FRESHEN_OPT_SOLUTION_H_
