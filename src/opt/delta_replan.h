// Incremental delta replanning for the freshness water-filling solver.
//
// A cold KktWaterFillingSolver solve is O(N): ~15 sharded SIMD spend probes
// plus a full cold fill (2.28 s at N=1M single-threaded). A live catalog
// whose lambda/p/s churn continuously cannot afford that every period.
// DeltaReplanner caches the previous solve's state and re-solves an updated
// problem at a cost that scales with how much the answer can actually move:
//
//   * kPinned — the update batch provably left the lattice flip point in
//     place (spend at BOTH cached edge lattice points still brackets the
//     budget, with a guard band). mu* is unchanged by the flip-uniqueness
//     contract (opt/scan_breakpoint.h), clean lanes' cold fills are
//     untouched by per-lane purity, and only the dirty lanes are
//     re-inverted. O(dirty) kernel work + O(dirty + blocks) reduction
//     maintenance — sub-millisecond at N=1M for small batches.
//   * kWarm — the flip moved. The multiplier search restarts from the
//     cached flip point (SolveMultiplierFromPrevious: ~2-4 probes instead
//     of ~15 cold) and the allocation is re-derived. O(active) — the
//     honest floor once mu moves, since every funded frequency changes.
//   * kFull — churn exceeded Options::full_churn_threshold, or the update
//     stream changed the problem's structure (append, or an element
//     entering/leaving the active set): recompaction + cold search.
//
// Hard guarantee, enforced in tests/delta_replan_test.cc and bench_replan:
// after any accepted update batch, MaterializeAllocation() is BYTE-IDENTICAL
// (memcmp) to KktWaterFillingSolver (scan mode) solving the updated problem
// from scratch, at every thread count. The pieces that buy this:
//
//   * mu*: the spend predicate's flip on the 36-bit mu lattice is unique
//     across every faithful evaluation path (margin >> evaluation jitter),
//     so warm searches, cached-capture pinned checks, and cold searches all
//     land on the same edge. The pinned check additionally demotes itself
//     to kWarm inside a relative guard band around the budget, so cache-vs-
//     fresh summation jitter can never flip the decision.
//   * fills: always cold-seeded (pure per-lane functions of mu), so a
//     single re-inverted lane equals the same lane of a full cold fill.
//   * residual removal: the cold solver's finish spend runs on the same
//     deterministic block-Kahan tree this class maintains incrementally
//     (SpendBlockPartials), so residual, boundary grant, and rescale
//     arithmetic agree bit-for-bit; the boundary hunt here uses an
//     incrementally-maintained ordered candidate band that provably selects
//     the same element as the cold solver's linear scan.
//
// The allocation is held FACTORED: compact cold fills, one rescale factor,
// and an optional boundary grant. Replan() updates that state (this is the
// sub-millisecond operation the bench gates); MaterializeAllocation() pays
// the O(N) write only when a full frequency vector is actually needed —
// a serving layer can instead read `touched()`/`all_touched()` and
// materialize per shard. See docs/replanning.md for the latency physics.
#ifndef FRESHEN_OPT_DELTA_REPLAN_H_
#define FRESHEN_OPT_DELTA_REPLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/solution.h"

namespace freshen {

/// One element's new values (absolute, not deltas). index == problem size
/// appends a new element (structural: forces a full solve this replan).
/// weight or change_rate of 0 deactivates the element (also structural when
/// it flips membership). Several updates to the same index in one batch
/// apply in order; the last one wins.
struct ElementUpdate {
  size_t index = 0;
  double weight = 0.0;
  double change_rate = 0.0;
  double cost = 1.0;
};

/// Which code path a replan took.
enum class ReplanPath { kPinned, kWarm, kFull };

const char* ToString(ReplanPath path);

/// Incremental re-solver over one evolving CoreProblem.
class DeltaReplanner {
 public:
  struct Options {
    /// Worker threads for sharded work (0 = hardware concurrency). The
    /// result is bit-identical at every thread count.
    size_t threads = 0;
    /// Dirty-active fraction above which Replan() falls back to a full
    /// cold solve (the warm machinery would win nothing).
    double full_churn_threshold = 0.05;
    /// Soft probe cap handed to the multiplier searches.
    int max_probes = 400;
    /// Metrics registry for freshen_replan_* (nullptr = process global).
    obs::MetricsRegistry* registry = nullptr;
  };

  struct ReplanResult {
    ReplanPath path = ReplanPath::kFull;
    /// The (possibly unchanged) flip multiplier after this replan.
    double multiplier = 0.0;
    /// Spend probes this replan issued (0 on the pinned path).
    int probes = 0;
    /// Distinct elements the batch updated.
    size_t dirty = 0;
    /// Replan wall time (state update only; excludes materialization).
    double replan_seconds = 0.0;
    /// True when any element's materialized frequency may have changed
    /// bits. False only when the plan is provably byte-unchanged — then
    /// touched() lists the (possibly empty) set of changed elements.
    bool all_touched = true;
  };

  /// Primes the cache with a full cold solve of `problem`.
  static Result<std::unique_ptr<DeltaReplanner>> Create(CoreProblem problem,
                                                        Options options);

  /// Applies the batch and re-solves. On success the internal state is
  /// byte-equivalent to a cold scan solve of problem() — see file comment.
  /// On invalid updates, returns the error with the problem unchanged.
  Result<ReplanResult> Replan(const std::vector<ElementUpdate>& updates);

  /// The current problem (all applied updates included).
  const CoreProblem& problem() const { return problem_; }

  /// The current flip multiplier (0 when no element is active).
  double multiplier() const { return mu_; }

  /// Original indexes whose materialized frequency changed bits in the last
  /// replan. Meaningful only when the last ReplanResult had
  /// all_touched == false (sorted; often empty under pure tail churn).
  const std::vector<size_t>& touched() const { return touched_; }

  /// Writes the full frequency vector: byte-identical to the cold solver's
  /// Allocation::frequencies for problem(). O(N).
  void MaterializeFrequencies(std::vector<double>* frequencies) const;

  /// Full Allocation with diagnostics (objective / bandwidth_used computed
  /// exactly as the cold solver computes them). O(N) plus two reductions.
  Allocation MaterializeAllocation() const;

 private:
  DeltaReplanner(CoreProblem problem, Options options);

  /// Rebuilds the compacted active set + evaluator from problem_.
  void Compact();
  /// Cold search from scratch (Compact() first), then RefreshAtMu().
  void FullSolve();
  /// Re-derives every mu-dependent cache for the current mu_: edge
  /// captures, block partials, fills, finish spend, boundary band, and the
  /// residual-removal outcome.
  void RefreshAtMu();
  /// Residual/boundary/rescale decision from the current spend_ (mirrors
  /// the cold solver's finish bit-for-bit).
  void FinishResidual();
  /// True iff lane k belongs in the boundary candidate band.
  bool InBoundaryBand(size_t k) const;

  Options options_;
  CoreProblem problem_;
  std::unique_ptr<par::Executor> exec_;

  // Compacted active set (ascending original index; identical construction
  // to the cold solver's).
  std::vector<size_t> index_;       // k -> original i.
  std::vector<double> ratio_;       // c l / w.
  std::vector<double> lambda_;      // Change rate.
  std::vector<double> spend_scale_; // c l.
  std::vector<size_t> active_of_;   // i -> k + 1 (0 = inactive).
  double mu_max_ = 0.0;
  std::unique_ptr<BreakpointSpendEvaluator> eval_;

  // Flip state: mu_ is the not-P edge, edge_lo_ its lattice predecessor
  // (spend above budget). Per-element cold spend contributions at both
  // edges plus their block-partial trees and merged totals.
  double mu_ = 0.0;
  double edge_lo_ = 0.0;
  std::vector<double> contrib_lo_, contrib_hi_;
  std::vector<double> partial_lo_, partial_hi_;
  double total_lo_ = 0.0, total_hi_ = 0.0;

  // Factored allocation: compact cold fills at mu_, the finish-spend tree
  // over cost*fill, and the residual-removal outcome.
  std::vector<double> fill_;
  std::vector<double> finish_contrib_;
  std::vector<double> finish_partials_;
  double spend_ = 0.0;
  double scale_ = 1.0;               // 1.0 = no rescale applied.
  size_t boundary_index_ = SIZE_MAX; // Original index; SIZE_MAX = none.
  double boundary_grant_ = 0.0;

  // Zero-fill active lanes whose zero-frequency marginal sits in the cold
  // solver's qualifying band, ordered (marginal desc, lane asc) — the head
  // is exactly the element the cold linear scan would grant the residual.
  struct BandOrder {
    bool operator()(const std::pair<double, size_t>& a,
                    const std::pair<double, size_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };
  std::set<std::pair<double, size_t>, BandOrder> boundary_band_;

  std::vector<size_t> touched_;
  int last_probes_ = 0;

  // Metrics handles (registry-owned).
  obs::Counter* replans_pinned_;
  obs::Counter* replans_warm_;
  obs::Counter* replans_full_;
  obs::Histogram* dirty_hist_;
  obs::Histogram* probes_hist_;
  obs::Histogram* seconds_hist_;
};

}  // namespace freshen

#endif  // FRESHEN_OPT_DELTA_REPLAN_H_
