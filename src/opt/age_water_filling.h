// Exact solver for the age variant of the Core Problem — an extension in
// the direction of the paper's conclusion (richer quality measures than
// binary freshness):
//
//   minimize   sum_i  w_i * A(f_i, lambda_i)
//   subject to sum_i  c_i * f_i = B,   f_i >= 0
//
// where A is the time-averaged copy age (model/freshness.h). A is strictly
// convex and decreasing in f, so the same KKT/water-filling machinery
// applies with the marginal -dA/df = h(lambda/f) / lambda^2:
//
//   w_i * h(r_i) / lambda_i^2 = mu * c_i  =>  r_i = h^{-1}(mu c_i l_i^2/w_i).
//
// Because h is unbounded, EVERY element with positive weight and positive
// change rate receives bandwidth — age-optimal schedules never starve an
// element, unlike freshness-optimal ones (Table 1 row (b)'s zero). The
// bench bench_ablation_age quantifies the trade.
#ifndef FRESHEN_OPT_AGE_WATER_FILLING_H_
#define FRESHEN_OPT_AGE_WATER_FILLING_H_

#include "common/result.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/solution.h"

namespace freshen {

/// Exact KKT solver for weighted age minimization. Reuses CoreProblem for
/// the inputs; the returned Allocation's `objective` is the *weighted age*
/// (lower is better), and `multiplier` is the marginal age reduction per
/// unit of bandwidth.
class AgeWaterFillingSolver {
 public:
  struct Options {
    /// Soft cap on multiplier-search spend evaluations (the search
    /// otherwise runs until the multiplier lattice interval collapses to
    /// adjacency; any budget residual is removed exactly by a final
    /// proportional rescale).
    int max_iterations = 400;
    /// Worker threads for the sharded reductions (0 = hardware
    /// concurrency). Purely an execution knob: the allocation is
    /// bit-identical at every thread count (see common/parallel.h).
    size_t threads = 0;
    /// Multiplier search strategy; both modes return byte-identical
    /// allocations (see opt/scan_breakpoint.h). h has no activation
    /// thresholds, so scan mode here is secant + lattice bisection.
    MultiplierSearch search = MultiplierSearch::kScanBreakpoint;
  };

  AgeWaterFillingSolver() = default;
  explicit AgeWaterFillingSolver(Options options) : options_(options) {}

  /// Solves the age-minimization problem. Fails on invalid input. Elements
  /// with zero weight or zero change rate get zero frequency; all others
  /// get strictly positive frequency.
  Result<Allocation> Solve(const CoreProblem& problem) const;

 private:
  Options options_;
};

}  // namespace freshen

#endif  // FRESHEN_OPT_AGE_WATER_FILLING_H_
