#include "opt/generic_nlp.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/timer.h"
#include "model/freshness.h"
#include "obs/trace.h"
#include "opt/solver_metrics.h"
#include "stats/descriptive.h"

namespace freshen {

std::vector<double> ProjectOntoBudget(const std::vector<double>& point,
                                      const std::vector<double>& costs,
                                      double bandwidth) {
  FRESHEN_CHECK(point.size() == costs.size());
  FRESHEN_CHECK(bandwidth > 0.0);
  const size_t n = point.size();

  auto spend_at = [&](double nu) {
    KahanSum acc;
    for (size_t i = 0; i < n; ++i) {
      acc.Add(costs[i] * std::max(0.0, point[i] - nu * costs[i]));
    }
    return acc.Total();
  };

  // spend(nu) is continuous and non-increasing. Bracket the root:
  // spend(nu_lo) >= B by construction, spend(nu_hi) = 0 <= B.
  double s1 = 0.0;
  double s2 = 0.0;
  double hi = -1e308;
  for (size_t i = 0; i < n; ++i) {
    s1 += costs[i] * point[i];
    s2 += costs[i] * costs[i];
    hi = std::max(hi, point[i] / costs[i]);
  }
  double lo = (s1 - bandwidth) / s2;
  if (lo > hi) lo = hi - 1.0;
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-16 * (std::fabs(hi) + 1.0);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (spend_at(mid) > bandwidth) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double nu = 0.5 * (lo + hi);
  std::vector<double> projected(n);
  for (size_t i = 0; i < n; ++i) {
    projected[i] = std::max(0.0, point[i] - nu * costs[i]);
  }
  // Exact budget via proportional rescale of the (near-feasible) point.
  const double spend = [&] {
    KahanSum acc;
    for (size_t i = 0; i < n; ++i) acc.Add(costs[i] * projected[i]);
    return acc.Total();
  }();
  if (spend > 0.0) {
    const double scale = bandwidth / spend;
    for (double& f : projected) f *= scale;
  }
  return projected;
}

Result<Allocation> GenericNlpSolver::Solve(const CoreProblem& problem) const {
  FRESHEN_RETURN_IF_ERROR(problem.Validate());
  static const SolverMetrics metrics = MakeSolverMetrics("generic_nlp");
  obs::ScopedSpan span("solve");
  WallTimer timer;
  const size_t n = problem.size();

  // Proportional-fair start: every element gets an equal bandwidth share.
  std::vector<double> freq(n);
  for (size_t i = 0; i < n; ++i) {
    freq[i] = problem.bandwidth /
              (static_cast<double>(n) * problem.costs[i]);
  }

  auto gradient_analytic = [&](const std::vector<double>& f,
                               std::vector<double>& grad) {
    for (size_t i = 0; i < n; ++i) {
      grad[i] = problem.weights[i] *
                FixedOrderFreshnessDerivative(f[i], problem.change_rates[i]);
    }
  };
  auto gradient_fd = [&](const std::vector<double>& f,
                         std::vector<double>& grad) {
    // Black-box forward differences: N+1 full objective evaluations.
    const double base = problem.Objective(f);
    std::vector<double> probe = f;
    for (size_t i = 0; i < n; ++i) {
      const double h = options_.fd_step * (1.0 + std::fabs(f[i]));
      probe[i] = f[i] + h;
      grad[i] = (problem.Objective(probe) - base) / h;
      probe[i] = f[i];
    }
  };

  std::vector<double> grad(n);
  std::vector<double> candidate;
  double objective = problem.Objective(freq);
  double step = 1.0;
  // Window of recent objective values for the convergence test.
  double window_start_objective = objective;
  int window_counter = 0;
  bool converged = false;
  int iterations = 0;

  for (; iterations < options_.max_iterations; ++iterations) {
    if (timer.ElapsedSeconds() > options_.time_budget_seconds) break;
    if (options_.gradient_mode == GradientMode::kAnalytic) {
      gradient_analytic(freq, grad);
    } else {
      gradient_fd(freq, grad);
    }
    // Normalize the step by the gradient scale so `step` is dimensionless.
    double grad_norm = 0.0;
    for (double g : grad) grad_norm = std::max(grad_norm, std::fabs(g));
    if (grad_norm <= 0.0) {
      converged = true;
      break;
    }

    // Backtracking: shrink until the projected step improves the objective.
    bool improved = false;
    for (int bt = 0; bt < 40; ++bt) {
      candidate = freq;
      const double scale =
          step * problem.bandwidth / (grad_norm * static_cast<double>(n));
      for (size_t i = 0; i < n; ++i) candidate[i] += scale * grad[i];
      candidate =
          ProjectOntoBudget(candidate, problem.costs, problem.bandwidth);
      const double candidate_objective = problem.Objective(candidate);
      if (candidate_objective > objective) {
        freq.swap(candidate);
        objective = candidate_objective;
        step = std::min(step * 1.25, 1e6);
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved) {
      converged = true;  // No ascent direction within machine resolution.
      break;
    }
    if (++window_counter >= 10) {
      const double rel_gain = (objective - window_start_objective) /
                              std::max(1e-300, std::fabs(objective));
      if (rel_gain < options_.convergence_tolerance) {
        converged = true;
        break;
      }
      window_start_objective = objective;
      window_counter = 0;
    }
  }

  Allocation out;
  out.frequencies = std::move(freq);
  out.objective = objective;
  out.bandwidth_used = problem.Spend(out.frequencies);
  out.iterations = iterations;
  out.converged = converged;
  out.solve_seconds = timer.ElapsedSeconds();
  metrics.solves->Increment();
  metrics.iterations->Record(static_cast<double>(out.iterations));
  metrics.solve_seconds->Record(out.solve_seconds);
  metrics.residual->Set(
      std::fabs(out.bandwidth_used - problem.bandwidth) / problem.bandwidth);
  return out;
}

}  // namespace freshen
