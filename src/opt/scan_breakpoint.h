// Scan-based exact multiplier search for the water-filling solvers.
//
// Both KKT solvers reduce to: find the multiplier mu* where the strictly
// decreasing total spend(mu) crosses the bandwidth budget. The bisection
// loop this module replaces re-inverted the freshness kernel for every
// element at every probe — O(N log(1/eps)) transcendental inversions with a
// hard-to-pin floating-point answer (the crossing lives between two
// adjacent doubles whose spends differ by less than the reduction's
// rounding jitter, so "the" bisection limit was only defined to ~1 ulp of
// mu and per-path).
//
// This solver makes the answer EXACT by changing the question's domain, not
// its math: mu is searched on a fixed 36-bit-mantissa lattice (the low 16
// bits of the double's significand forced to zero, ~1.5e-11 relative
// spacing). On that lattice the predicate P(mu) = spend(mu) > budget is
// strictly monotone *with margin*: one lattice step moves the true spend by
// at least ~5e-12 * spend (the kernels' spend elasticity in mu is bounded
// below by ~1/3 everywhere, and spend only jumps DOWN at funding cutoffs),
// while any evaluation's total rounding jitter — converged kernel roots are
// correct to a few ulps regardless of warm-start history, and the sharded
// Kahan reduction is bit-fixed by plan — is orders of magnitude smaller.
// P restricted to the lattice therefore has a unique flip, and ANY
// bracketing strategy that only probes lattice points converges to the SAME
// adjacent pair (P-edge, not-P-edge). mu* is defined as the not-P edge: the
// smallest lattice multiplier whose spend is within budget.
//
// That uniqueness is what the two search modes exploit:
//   * kScanBreakpoint (default): geometric descent to bracket, secant
//     (Illinois) in log-log space to collapse the bracket to a few lattice
//     steps, then a scan of the activation-threshold breakpoints inside the
//     band — elements sorted by the mu at which they leave the schedule,
//     binary-searched with full sharded spend evaluations — and a final
//     lattice bisection. ~15 spend evaluations total, independent of N.
//   * kBisectionOracle: plain lattice bisection from the same initial
//     bracket. ~50 evaluations; structurally different probe path kept as
//     the verification oracle: byte-equal results at every thread count
//     AND between the two modes (tests/scan_breakpoint_test.cc).
//
// Honest deviation from the classic prefix-sum breakpoint scan: for these
// kernels the per-element spend at the breakpoint depends on mu itself
// (f_k(mu) = lambda_k / g^{-1}(mu c_k l_k / w_k) is not piecewise-constant
// or -linear between cutoffs), so no static prefix sum over sorted
// thresholds can read off mu* exactly. The scan here pins mu* to a
// breakpoint-free lattice interval (the "between adjacent prefix sums"
// step, with evaluations instead of sums); the lattice bisection inside
// that interval is exact by the margin argument above.
#ifndef FRESHEN_OPT_SCAN_BREAKPOINT_H_
#define FRESHEN_OPT_SCAN_BREAKPOINT_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/parallel.h"

namespace freshen {

// ---------------------------------------------------------------------------
// The multiplier lattice: positive doubles whose low 16 significand bits are
// zero. Every operation is a bit manipulation on the IEEE-754 pattern
// (positive doubles order-match their bit patterns), so lattice arithmetic
// is exact — no rounding, no drift between search paths.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kMuLatticeMask = 0xFFFFull;
inline constexpr uint64_t kMuLatticeStep = kMuLatticeMask + 1;

/// Largest lattice point <= mu. Requires mu > 0 and finite.
inline double MuLatticeFloor(double mu) {
  return std::bit_cast<double>(std::bit_cast<uint64_t>(mu) & ~kMuLatticeMask);
}

/// True iff mu is on the lattice.
inline bool IsMuLatticePoint(double mu) {
  return mu > 0.0 && (std::bit_cast<uint64_t>(mu) & kMuLatticeMask) == 0;
}

/// Next lattice point above a lattice point (exact: bit increment; steps
/// across binades land on the next binade's lattice naturally).
inline double MuLatticeNext(double g) {
  return std::bit_cast<double>(std::bit_cast<uint64_t>(g) + kMuLatticeStep);
}

/// Previous lattice point below a lattice point.
inline double MuLatticePrev(double g) {
  return std::bit_cast<double>(std::bit_cast<uint64_t>(g) - kMuLatticeStep);
}

/// Smallest lattice point >= mu.
inline double MuLatticeCeil(double mu) {
  const double f = MuLatticeFloor(mu);
  return f == mu ? f : MuLatticeNext(f);
}

/// Nearest lattice point (ties away from zero).
inline double MuLatticeRound(double mu) {
  return std::bit_cast<double>(
      (std::bit_cast<uint64_t>(mu) + kMuLatticeStep / 2) & ~kMuLatticeMask);
}

/// Lattice midpoint of two lattice points a < b: the bit-space average
/// masked back onto the lattice — geometric-mean-like, so bisection spends
/// its steps evenly across binades. Returns a when the pair is adjacent.
inline double MuLatticeMidpoint(double a, double b) {
  const uint64_t ia = std::bit_cast<uint64_t>(a);
  const uint64_t ib = std::bit_cast<uint64_t>(b);
  const uint64_t mid = ((ia + ib) / 2) & ~kMuLatticeMask;
  return std::bit_cast<double>(mid < ia ? ia : mid);
}

/// Lattice steps from a to b (lattice points, a <= b).
inline uint64_t MuLatticeDistance(double a, double b) {
  return (std::bit_cast<uint64_t>(b) - std::bit_cast<uint64_t>(a)) /
         kMuLatticeStep;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

enum class MultiplierSearch {
  kScanBreakpoint,   // Secant + breakpoint scan (default).
  kBisectionOracle,  // Plain lattice bisection (verification oracle).
};

struct GridSearchResult {
  /// The smallest lattice multiplier with spend(mu) <= budget.
  double mu = 0.0;
  /// Total spend evaluations.
  int probes = 0;
  /// Activation-threshold breakpoints scanned in the final band (scan mode
  /// with a gatherer only).
  int breakpoints = 0;
};

/// Finds mu* on the lattice. `spend_at` is evaluated only at lattice points
/// and must be (a) deterministic per mu for the process lifetime and
/// (b) decreasing in mu up to jitter far below one lattice step's true
/// spend decrement (see the file comment). `budget` must be > 0.
///
/// Bracketing: with mu_hi_hint > 0 the search starts at
/// MuLatticeCeil(mu_hi_hint), expected to satisfy spend <= budget (the
/// freshness solver's mu_max; escalated by doubling if not). With
/// mu_hi_hint == 0 it brackets upward from 1.0 (the age solver's unbounded
/// multiplier).
///
/// `gather_thresholds`, if non-null, appends to its output every activation
/// threshold (the exact mu at which some element's frequency reaches zero)
/// strictly inside (lo, hi); used by scan mode to pin mu* between adjacent
/// breakpoints. Pass nullptr when elements never deactivate (age solver).
///
/// `max_probes` soft-caps spend evaluations in the narrowing stages (the
/// bracketing stages are bounded by the representable range of mu and
/// ignore it): an exhausted cap returns the current upper edge, coarser but
/// valid — mirroring the old bisection's max_iterations semantics. The
/// default solver cap (400) is ~8x more than the oracle mode ever uses.
GridSearchResult SolveMultiplierOnGrid(
    const std::function<double(double)>& spend_at, double budget,
    double mu_hi_hint, MultiplierSearch mode,
    const std::function<void(double lo, double hi, std::vector<double>*)>*
        gather_thresholds,
    int max_probes);

/// Warm multiplier search for incremental replanning: instead of the cold
/// geometric bracket, starts at `prev_mu` — the flip point of the previous
/// solve, a lattice point — and gallops to a fresh bracket using the spend
/// elasticity bound (|d ln spend / d ln mu| >= ~1/3 everywhere, so the new
/// flip lies within prev_mu * (spend/budget)^3; used purely as a step-size
/// heuristic, with a defensive re-probe loop that never relies on it).
/// Then runs the same Illinois + breakpoint-scan + lattice-bisection
/// narrowing as SolveMultiplierOnGrid's scan mode.
///
/// Returns the SAME lattice edge as a cold solve of the same spend curve —
/// the flip is unique (file comment), so where the search starts cannot
/// change where it ends — in ~2-4 probes when the flip moved a few thousand
/// lattice steps (small churn), vs ~15 cold.
GridSearchResult SolveMultiplierFromPrevious(
    const std::function<double(double)>& spend_at, double budget,
    double prev_mu,
    const std::function<void(double lo, double hi, std::vector<double>*)>*
        gather_thresholds,
    int max_probes);

// ---------------------------------------------------------------------------
// Deterministic block reduction
// ---------------------------------------------------------------------------
//
// A fixed-shape compensated summation tree over a value array: per-block
// Kahan partials (kSpendBlock contiguous elements each, any block computable
// independently at any thread count) merged by a sequential Kahan pass in
// block order. Unlike par::Executor::Sum — whose shard plan folds every
// element of the ORIGINAL index space, zeros included, into per-shard
// compensation streams — this tree is decomposable: changing d elements
// invalidates only their blocks, so a replan re-sums O(d) blocks plus one
// O(n / kSpendBlock) merge. The cold solver's finish spend and the delta
// replanner's incrementally-maintained spend use this same tree, which is
// what makes their residual-removal arithmetic bit-identical.

inline constexpr size_t kSpendBlock = 512;

inline size_t SpendBlockCount(size_t n) {
  return n == 0 ? 0 : (n - 1) / kSpendBlock + 1;
}

/// Kahan total of values[kSpendBlock*block, min(n, kSpendBlock*(block+1))).
double SpendBlockPartial(const std::vector<double>& values, size_t block);

/// All block partials, computed in parallel (each block independent).
void SpendBlockPartials(const std::vector<double>& values,
                        const par::Executor* exec,
                        std::vector<double>* partials);

/// Sequential Kahan merge of the partials, in block order.
double MergeSpendBlockPartials(const std::vector<double>& partials);

// ---------------------------------------------------------------------------
// Spend evaluation
// ---------------------------------------------------------------------------

/// Batched, sharded spend evaluator over a compacted active set:
///
///   spend(mu) = sum_k spend_scale[k] / K^{-1}(mu * target_scale[k])
///
/// with K = g (freshness; elements with mu * target_scale >= 1 are priced
/// out and contribute 0) or K = h (age; never priced out). The kernel
/// inversions run through model/freshness_batch.h — simd::kLanes elements
/// per instruction — over a shard plan sized for transcendental-bound work
/// (par::kTranscendentalGrain/MaxShards, recomputed for THIS compacted set,
/// not the original problem size).
///
/// Determinism: the plan is fixed at construction; per-shard Kahan partials
/// accumulate in index order and merge in shard order; warm-start roots are
/// written only by the owning element's lane. SpendAt(mu) is therefore
/// bit-identical at every thread count, and its value depends only on the
/// sequence of multipliers probed so far (the warm seeds) — with every
/// sequence yielding the same converged roots to a few ulps, which is all
/// the lattice search needs.
class BreakpointSpendEvaluator {
 public:
  enum class Kernel { kFreshnessG, kAgeH };

  /// The vectors alias the caller's SoA arrays and must outlive the
  /// evaluator. lambda[k] / root is element k's frequency.
  BreakpointSpendEvaluator(Kernel kernel,
                           const std::vector<double>& target_scale,
                           const std::vector<double>& lambda,
                           const std::vector<double>& spend_scale,
                           const par::Executor* exec);

  /// Total spend at mu, warm-started from the previous call.
  double SpendAt(double mu);

  /// frequencies[k] = lambda[k] / K^{-1}(mu * target_scale[k]) (0 when
  /// priced out), cold-started: a pure function of mu alone, so the final
  /// allocation is byte-identical no matter which search path found mu*.
  void FillFrequenciesAt(double mu, std::vector<double>* frequencies) const;

  /// Cold evaluation at mu that exports per-element state for the delta
  /// replanner: `frequencies` as FillFrequenciesAt (may be nullptr), and
  /// `contributions`[k] = spend_scale[k] / K^{-1}(mu * target_scale[k])
  /// (0 for priced-out lanes; may be nullptr) — the exact summands SpendAt
  /// reduces. Both come from ONE cold inversion per lane, and being
  /// cold-started each output lane is a pure function of (mu, lane inputs):
  /// a cached contribution is bit-equal to what a fresh capture would
  /// produce, which is what lets the replanner patch single lanes into a
  /// cached capture and still match a from-scratch evaluation.
  void CaptureAt(double mu, std::vector<double>* frequencies,
                 std::vector<double>* contributions) const;

  const std::vector<par::Shard>& plan() const { return plan_; }

 private:
  Kernel kernel_;
  const std::vector<double>& target_scale_;
  const std::vector<double>& lambda_;
  const std::vector<double>& spend_scale_;
  const par::Executor* exec_;
  std::vector<par::Shard> plan_;
  std::vector<double> warm_;
};

}  // namespace freshen

#endif  // FRESHEN_OPT_SCAN_BREAKPOINT_H_
