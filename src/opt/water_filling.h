// Exact solver for the Core Problem via its KKT conditions (the paper's
// Appendix, "method of Lagrange multipliers", made scalable).
//
// The objective is separable and strictly concave in each f_i, so at the
// optimum there is a single multiplier mu with
//
//   w_i * dF/df(f_i, l_i) = mu * c_i          when f_i > 0
//   w_i / (c_i * l_i)    <= mu                when f_i = 0
//
// Substituting dF/df = g(l/f)/l gives g(r_i) = mu * c_i * l_i / w_i, so
// f_i(mu) = l_i / g^{-1}(mu c_i l_i / w_i) — strictly decreasing in mu.
// Total spend(mu) is therefore strictly decreasing, and the budget-matching
// mu is found on a fixed multiplier lattice by the scan-breakpoint search
// (opt/scan_breakpoint.h): secant narrowing plus an activation-threshold
// scan, ~15 sharded SIMD spend evaluations regardless of N, with a plain
// lattice-bisection oracle retained for verification. This is the "solution
// for small cases" of the paper made exact at any scale, standing in for
// the IMSL nonlinear-programming package (see DESIGN.md substitutions).
#ifndef FRESHEN_OPT_WATER_FILLING_H_
#define FRESHEN_OPT_WATER_FILLING_H_

#include "common/result.h"
#include "opt/problem.h"
#include "opt/scan_breakpoint.h"
#include "opt/solution.h"

namespace freshen {

/// Exact KKT solver.
class KktWaterFillingSolver {
 public:
  struct Options {
    /// Soft cap on multiplier-search spend evaluations (the search
    /// otherwise runs until the multiplier lattice interval collapses to
    /// adjacency; any budget residual is removed exactly afterwards).
    int max_iterations = 400;
    /// Worker threads for the sharded reductions (0 = hardware
    /// concurrency). Purely an execution knob: the allocation is
    /// bit-identical at every thread count (see common/parallel.h).
    size_t threads = 0;
    /// Multiplier search strategy. Both modes return byte-identical
    /// allocations (the lattice flip they converge to is unique — see
    /// opt/scan_breakpoint.h); kBisectionOracle simply takes ~4x more
    /// spend evaluations and exists to verify that claim.
    MultiplierSearch search = MultiplierSearch::kScanBreakpoint;
  };

  KktWaterFillingSolver() = default;
  explicit KktWaterFillingSolver(Options options) : options_(options) {}

  /// Solves the problem. Fails on invalid input; always converges otherwise.
  /// The returned frequencies satisfy the budget exactly (to roundoff): the
  /// multiplier search's residual slack is handed to the element at the
  /// funding cutoff (whose marginal equals the multiplier, so stationarity
  /// is preserved) or, absent one, removed by a proportional rescale.
  Result<Allocation> Solve(const CoreProblem& problem) const;

 private:
  Options options_;
};

}  // namespace freshen

#endif  // FRESHEN_OPT_WATER_FILLING_H_
