// Estimating an element's change frequency from periodic polls — the
// mechanism the paper assumes supplies lambda to the mirror ("Prior work has
// shown how the source can use estimation [4] and sampling [6] techniques to
// obtain a good estimate of these update frequencies").
//
// A poll at interval tau only reveals *whether* the element changed since the
// last poll, not how many times. For a Poisson process with rate lambda the
// probability a poll detects a change is 1 - e^{-lambda tau}; Cho &
// Garcia-Molina's bias-reduced estimator from n polls with x detections is
//
//   lambda_hat = -log( (n - x + 1/2) / (n + 1/2) ) / tau
//
// which stays finite even when every poll saw a change.
#ifndef FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_
#define FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace freshen {

/// Accumulates poll outcomes for one element and estimates its change rate.
class ChangeRateEstimator {
 public:
  /// `poll_interval` is the (fixed) time between polls, > 0.
  explicit ChangeRateEstimator(double poll_interval);

  /// Records one poll outcome: `changed` is whether the element differed
  /// from the previously fetched copy.
  void RecordPoll(bool changed);

  /// Number of polls recorded.
  uint64_t num_polls() const { return polls_; }
  /// Number of polls that detected a change.
  uint64_t num_changes() const { return changes_; }

  /// The bias-reduced rate estimate. Fails before the first poll.
  Result<double> EstimatedRate() const;

 private:
  double poll_interval_;
  uint64_t polls_ = 0;
  uint64_t changes_ = 0;
};

/// Simulates `num_polls` polls of a Poisson(lambda) element at interval tau
/// and returns the resulting estimate. Deterministic in `seed`. Used by the
/// imperfect-knowledge ablation (A3).
double SimulatePollEstimate(double true_rate, double poll_interval,
                            uint64_t num_polls, uint64_t seed);

/// Sampling-based change *ratio* of a set of elements (after [6]): polls a
/// random subset of `sample_size` elements once over `window` time units and
/// returns the fraction that changed. Deterministic in `seed`.
double SampleChangeRatio(const std::vector<double>& true_rates,
                         size_t sample_size, double window, uint64_t seed);

}  // namespace freshen

#endif  // FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_
