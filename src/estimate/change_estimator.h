// Estimating an element's change frequency from periodic polls — the
// mechanism the paper assumes supplies lambda to the mirror ("Prior work has
// shown how the source can use estimation [4] and sampling [6] techniques to
// obtain a good estimate of these update frequencies").
//
// A poll at interval tau only reveals *whether* the element changed since the
// last poll, not how many times. For a Poisson process with rate lambda the
// probability a poll detects a change is 1 - e^{-lambda tau}; Cho &
// Garcia-Molina's bias-reduced estimator from n polls with x detections is
//
//   lambda_hat = -log( (n - x + 1/2) / (n + 1/2) ) / tau
//
// which stays finite even when every poll saw a change. Two hardenings on
// top of the textbook form, both driven by how the planner consumes these
// estimates:
//
//   * Zero-detection floor. With x = 0 the formula collapses to exactly 0,
//     and a change rate of exactly 0 removes the element from the solver's
//     active set — it is never scheduled again, so it is never polled
//     again, so the estimate can never recover (permanent poisoning from
//     finite evidence). EstimatedRate() therefore floors the x = 0 case at
//     -log(n / (n + 1/2)) / tau ~ 1 / (2 n tau): the rate whose likelihood
//     of n silent polls is still unsurprising, decaying honestly as
//     evidence accumulates but never reaching the absorbing zero.
//   * Zero-observation windows. A poll gap <= 0 (replayed logs, clock
//     steps, duplicate syncs at one timestamp) observes nothing; the
//     gap-aware overload ignores it instead of corrupting the mean gap.
#ifndef FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_
#define FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace freshen {

/// The bias-reduced estimate from `polls` observations with `changes`
/// detections over a mean inter-poll gap `mean_gap` > 0, with the
/// zero-detection floor described above. Requires polls >= 1; shared by
/// ChangeRateEstimator and the adaptive controller's believed catalog.
double BiasReducedRate(uint64_t polls, uint64_t changes, double mean_gap);

/// Accumulates poll outcomes for one element and estimates its change rate.
class ChangeRateEstimator {
 public:
  /// `poll_interval` is the default time between polls, > 0 — used by the
  /// gap-less RecordPoll overload.
  explicit ChangeRateEstimator(double poll_interval);

  /// Records one poll outcome: `changed` is whether the element differed
  /// from the previously fetched copy. Assumes the default poll interval.
  void RecordPoll(bool changed);

  /// Gap-aware overload for irregular polling: `gap` is the time since the
  /// previous poll. A gap <= 0 (or non-finite) is a zero-observation
  /// window and is ignored entirely.
  void RecordPoll(bool changed, double gap);

  /// Number of polls recorded.
  uint64_t num_polls() const { return polls_; }
  /// Number of polls that detected a change.
  uint64_t num_changes() const { return changes_; }

  /// The bias-reduced rate estimate over the mean recorded gap, floored
  /// away from zero when no poll detected a change (see file comment).
  /// Fails before the first poll. Always positive and finite afterwards.
  Result<double> EstimatedRate() const;

 private:
  double poll_interval_;
  uint64_t polls_ = 0;
  uint64_t changes_ = 0;
  double watched_time_ = 0.0;
};

/// Streaming stochastic-approximation rate tracker (after Avrachenkov et
/// al.-style online estimators): one O(1) update per poll, no counters or
/// windows to store — the form the adaptive controller uses to feed the
/// incremental replanner a small dirty set every period. For observation k
/// with inter-poll gap tau and outcome x in {0, 1}:
///
///   lambda <- clamp(lambda + (gain / k) * (x - (1 - e^{-lambda tau})) / tau)
///
/// E[x] = 1 - e^{-lambda* tau}, so the expected update vanishes exactly at
/// the true rate and the Robbins-Monro iterates converge to it; the clamp
/// keeps early transients inside [min_rate, max_rate] (min_rate > 0 keeps
/// the estimate out of the solver's absorbing zero state). Gaps <= 0 are
/// zero-observation windows and are ignored.
class StreamingRateEstimator {
 public:
  struct Options {
    /// Estimate before any evidence (the controller's prior).
    double initial_rate = 1.0;
    /// Clamp bounds, 0 < min_rate <= initial_rate <= max_rate.
    double min_rate = 1e-9;
    double max_rate = 1e9;
    /// Step-size scale; the k-th step is gain / k.
    double gain = 2.0;
  };

  StreamingRateEstimator();
  explicit StreamingRateEstimator(Options options);

  /// Folds in one poll outcome observed over `gap` time units. A gap <= 0
  /// (or non-finite) is ignored.
  void ObservePoll(bool changed, double gap);

  /// Current estimate (initial_rate until the first informative poll).
  double rate() const { return rate_; }

  /// Informative polls folded in so far.
  uint64_t observations() const { return observations_; }

 private:
  Options options_;
  double rate_;
  uint64_t observations_ = 0;
};

/// Simulates `num_polls` polls of a Poisson(lambda) element at interval tau
/// and returns the resulting estimate. Deterministic in `seed`. Used by the
/// imperfect-knowledge ablation (A3).
double SimulatePollEstimate(double true_rate, double poll_interval,
                            uint64_t num_polls, uint64_t seed);

/// Sampling-based change *ratio* of a set of elements (after [6]): polls a
/// random subset of `sample_size` elements once over `window` time units and
/// returns the fraction that changed. Deterministic in `seed`.
double SampleChangeRatio(const std::vector<double>& true_rates,
                         size_t sample_size, double window, uint64_t seed);

}  // namespace freshen

#endif  // FRESHEN_ESTIMATE_CHANGE_ESTIMATOR_H_
