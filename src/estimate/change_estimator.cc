#include "estimate/change_estimator.h"

#include <cmath>

#include "common/macros.h"
#include "rng/rng.h"

namespace freshen {

double BiasReducedRate(uint64_t polls, uint64_t changes, double mean_gap) {
  FRESHEN_CHECK(polls >= 1);
  FRESHEN_CHECK(mean_gap > 0.0);
  const double n = static_cast<double>(polls);
  if (changes == 0) {
    // The raw formula is exactly 0 here, which the planner's active-set
    // rule would make permanent (see header). Floor at the rate one "half
    // detection" of evidence supports: -log(n / (n + 1/2)) ~ 1 / (2n).
    return -std::log(n / (n + 0.5)) / mean_gap;
  }
  const double x = static_cast<double>(changes > polls ? polls : changes);
  return -std::log((n - x + 0.5) / (n + 0.5)) / mean_gap;
}

ChangeRateEstimator::ChangeRateEstimator(double poll_interval)
    : poll_interval_(poll_interval) {
  FRESHEN_CHECK(poll_interval > 0.0);
}

void ChangeRateEstimator::RecordPoll(bool changed) {
  RecordPoll(changed, poll_interval_);
}

void ChangeRateEstimator::RecordPoll(bool changed, double gap) {
  if (!(gap > 0.0) || !std::isfinite(gap)) return;  // Nothing was observed.
  ++polls_;
  if (changed) ++changes_;
  watched_time_ += gap;
}

Result<double> ChangeRateEstimator::EstimatedRate() const {
  if (polls_ == 0) {
    return Status::FailedPrecondition("no polls recorded yet");
  }
  return BiasReducedRate(polls_, changes_,
                         watched_time_ / static_cast<double>(polls_));
}

StreamingRateEstimator::StreamingRateEstimator()
    : StreamingRateEstimator(Options()) {}

StreamingRateEstimator::StreamingRateEstimator(Options options)
    : options_(options), rate_(options.initial_rate) {
  FRESHEN_CHECK(options.min_rate > 0.0);
  FRESHEN_CHECK(options.min_rate <= options.max_rate);
  FRESHEN_CHECK(options.initial_rate >= options.min_rate);
  FRESHEN_CHECK(options.initial_rate <= options.max_rate);
  FRESHEN_CHECK(options.gain > 0.0);
}

void StreamingRateEstimator::ObservePoll(bool changed, double gap) {
  if (!(gap > 0.0) || !std::isfinite(gap)) return;  // Nothing was observed.
  ++observations_;
  const double x = changed ? 1.0 : 0.0;
  const double predicted = -std::expm1(-rate_ * gap);
  const double step = options_.gain / static_cast<double>(observations_);
  rate_ += step * (x - predicted) / gap;
  if (rate_ < options_.min_rate) rate_ = options_.min_rate;
  if (rate_ > options_.max_rate) rate_ = options_.max_rate;
}

double SimulatePollEstimate(double true_rate, double poll_interval,
                            uint64_t num_polls, uint64_t seed) {
  FRESHEN_CHECK(true_rate >= 0.0);
  FRESHEN_CHECK(poll_interval > 0.0);
  FRESHEN_CHECK(num_polls > 0);
  Rng rng(seed);
  ChangeRateEstimator estimator(poll_interval);
  const double p_change = -std::expm1(-true_rate * poll_interval);
  for (uint64_t i = 0; i < num_polls; ++i) {
    estimator.RecordPoll(rng.NextBool(p_change));
  }
  return estimator.EstimatedRate().value();  // num_polls > 0, cannot fail.
}

double SampleChangeRatio(const std::vector<double>& true_rates,
                         size_t sample_size, double window, uint64_t seed) {
  FRESHEN_CHECK(!true_rates.empty());
  FRESHEN_CHECK(window > 0.0);
  Rng rng(seed);
  const size_t k = sample_size == 0
                       ? 1
                       : (sample_size < true_rates.size() ? sample_size
                                                          : true_rates.size());
  size_t changed = 0;
  for (size_t s = 0; s < k; ++s) {
    const size_t i =
        static_cast<size_t>(rng.NextUint64Below(true_rates.size()));
    const double p_change = -std::expm1(-true_rates[i] * window);
    if (rng.NextBool(p_change)) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(k);
}

}  // namespace freshen
