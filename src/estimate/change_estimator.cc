#include "estimate/change_estimator.h"

#include <cmath>

#include "common/macros.h"
#include "rng/rng.h"

namespace freshen {

ChangeRateEstimator::ChangeRateEstimator(double poll_interval)
    : poll_interval_(poll_interval) {
  FRESHEN_CHECK(poll_interval > 0.0);
}

void ChangeRateEstimator::RecordPoll(bool changed) {
  ++polls_;
  if (changed) ++changes_;
}

Result<double> ChangeRateEstimator::EstimatedRate() const {
  if (polls_ == 0) {
    return Status::FailedPrecondition("no polls recorded yet");
  }
  const double n = static_cast<double>(polls_);
  const double x = static_cast<double>(changes_);
  return -std::log((n - x + 0.5) / (n + 0.5)) / poll_interval_;
}

double SimulatePollEstimate(double true_rate, double poll_interval,
                            uint64_t num_polls, uint64_t seed) {
  FRESHEN_CHECK(true_rate >= 0.0);
  FRESHEN_CHECK(poll_interval > 0.0);
  FRESHEN_CHECK(num_polls > 0);
  Rng rng(seed);
  ChangeRateEstimator estimator(poll_interval);
  const double p_change = -std::expm1(-true_rate * poll_interval);
  for (uint64_t i = 0; i < num_polls; ++i) {
    estimator.RecordPoll(rng.NextBool(p_change));
  }
  return estimator.EstimatedRate().value();  // num_polls > 0, cannot fail.
}

double SampleChangeRatio(const std::vector<double>& true_rates,
                         size_t sample_size, double window, uint64_t seed) {
  FRESHEN_CHECK(!true_rates.empty());
  FRESHEN_CHECK(window > 0.0);
  Rng rng(seed);
  const size_t k = sample_size == 0
                       ? 1
                       : (sample_size < true_rates.size() ? sample_size
                                                          : true_rates.size());
  size_t changed = 0;
  for (size_t s = 0; s < k; ++s) {
    const size_t i =
        static_cast<size_t>(rng.NextUint64Below(true_rates.size()));
    const double p_change = -std::expm1(-true_rates[i] * window);
    if (rng.NextBool(p_change)) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(k);
}

}  // namespace freshen
