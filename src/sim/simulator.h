// Discrete-event simulation of the paper's Figure 4 model: an Update
// Generator drives Poisson changes at the Source, the Synchronization
// Scheduler executes the plan's fixed-order sync timeline against the
// Mirror, a User Request Generator issues profile-driven accesses, and the
// Freshness Evaluator scores what users actually observed.
//
// The evaluator reports both of the paper's modes: the *empirical* metrics
// tracked from simulated activity, and the *analytic* closed-form values for
// the same schedule — the paper states its results "have been verified using
// both modes", and the sim tests assert exactly that agreement.
#ifndef FRESHEN_SIM_SIMULATOR_H_
#define FRESHEN_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "model/element.h"
#include "model/freshness.h"

namespace freshen {
namespace obs {
class StalenessTimeline;
}  // namespace obs

/// Simulation knobs.
struct SimulationConfig {
  /// Length of the simulated run, in sync periods.
  double horizon_periods = 100.0;
  /// User accesses per period (Poisson arrivals; elements drawn from the
  /// master profile).
  double accesses_per_period = 10000.0;
  /// Accesses and freshness-integration before this time are discarded
  /// (mirror starts fully fresh, which biases early measurements up).
  double warmup_periods = 5.0;
  /// Root seed for update and access streams.
  uint64_t seed = 7;
  /// How sync instants are scheduled: regular fixed-order intervals (the
  /// paper's policy) or a memoryless Poisson process per element (the
  /// ablation baseline).
  SyncPolicy sync_policy = SyncPolicy::kFixedOrder;
  /// Worker threads for the element-sharded run (0 = hardware concurrency).
  /// Purely an execution knob: shard boundaries and per-shard RNG streams
  /// depend only on the catalog size and seed, and per-shard statistics are
  /// merged in shard order, so the SimulationResult is bit-identical at
  /// every thread count (see common/parallel.h).
  size_t threads = 0;
  /// Optional staleness-attribution ledger. When set, each shard feeds its
  /// elements' fresh<->stale transitions and accesses into it (disjoint
  /// elements per shard, so concurrent feeding is race-free). The ledger's
  /// window should be [warmup_periods, horizon_periods]; its weighted
  /// freshness then reproduces measured_weighted_freshness below. Not owned.
  obs::StalenessTimeline* timeline = nullptr;
};

/// Metrics from one simulation run.
struct SimulationResult {
  /// Fraction of (post-warmup) accesses that saw an up-to-date copy — the
  /// empirical time-averaged perceived freshness (Definition 4).
  double empirical_perceived_freshness = 0.0;
  /// Time-integrated mean database freshness (Definition 2).
  double empirical_general_freshness = 0.0;
  /// Mean copy age observed over accesses (0 for fresh copies).
  double empirical_perceived_age = 0.0;
  /// Closed-form perceived freshness of the same schedule (cross-check).
  double analytic_perceived_freshness = 0.0;
  /// Closed-form general freshness of the same schedule.
  double analytic_general_freshness = 0.0;
  /// Time-averaged perceived freshness measured from per-element
  /// time-in-fresh: sum over i of p_i * (1 - stale_time_i / (horizon -
  /// warmup)) with p_i the normalized access probabilities. Uses the exact
  /// interval arithmetic the staleness timeline uses, so a timeline fed by
  /// this run agrees to float-rounding (the timeline_test 1e-9 contract).
  double measured_weighted_freshness = 0.0;
  /// Post-warmup event counts.
  uint64_t num_accesses = 0;
  uint64_t num_updates = 0;
  uint64_t num_syncs = 0;
};

/// Simulates a mirror executing a synchronization plan.
///
/// Execution model: the catalog is split into fixed element shards
/// (par::ShardPlan). Updates, syncs, and accesses are per-element
/// independent under both sync policies, so each shard owns a private
/// event queue (its elements' sync timeline, Poisson update stream, and
/// the accesses routed to it), sorts it, and runs the Figure 4 state
/// machine locally; per-shard statistics are merged in shard order.
class MirrorSimulator {
 public:
  /// The catalog is copied; the simulator is reusable across plans.
  MirrorSimulator(ElementSet elements, SimulationConfig config);

  /// Runs the full simulation for the given per-element sync frequencies.
  /// Fails on shape mismatches or invalid frequencies.
  Result<SimulationResult> Run(const std::vector<double>& frequencies) const;

 private:
  ElementSet elements_;
  SimulationConfig config_;
};

}  // namespace freshen

#endif  // FRESHEN_SIM_SIMULATOR_H_
