#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rng/alias_table.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "schedule/schedule.h"
#include "stats/descriptive.h"

namespace freshen {
namespace {

enum class EventType : uint8_t {
  // Order matters for simultaneous events: process the source update first,
  // then the sync (a sync at time t picks up an update at time t), and score
  // accesses against the post-transition state.
  kUpdate = 0,
  kSync = 1,
  kAccess = 2,
};

struct SimEvent {
  double time;
  EventType type;
  uint32_t element;
};

// Registered once; updated lock-free per Run.
struct SimMetrics {
  obs::Counter* runs;
  obs::Counter* update_events;
  obs::Counter* sync_events;
  obs::Counter* access_events;
  obs::Gauge* queue_depth;
  obs::Gauge* events_per_second;
};

const SimMetrics& GetSimMetrics() {
  static const SimMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return SimMetrics{
        registry.GetCounter("freshen_sim_runs_total"),
        registry.GetCounter("freshen_sim_events_total",
                            {{"type", "update"}}),
        registry.GetCounter("freshen_sim_events_total", {{"type", "sync"}}),
        registry.GetCounter("freshen_sim_events_total",
                            {{"type", "access"}}),
        registry.GetGauge("freshen_sim_event_queue_depth"),
        registry.GetGauge("freshen_sim_events_per_second")};
  }();
  return metrics;
}

}  // namespace

MirrorSimulator::MirrorSimulator(ElementSet elements, SimulationConfig config)
    : elements_(std::move(elements)), config_(config) {}

Result<SimulationResult> MirrorSimulator::Run(
    const std::vector<double>& frequencies) const {
  if (frequencies.size() != elements_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu frequencies for %zu elements", frequencies.size(),
                  elements_.size()));
  }
  if (elements_.empty()) {
    return Status::InvalidArgument("catalog is empty");
  }
  if (!(config_.horizon_periods > 0.0)) {
    return Status::InvalidArgument("horizon must be positive");
  }
  if (!(config_.warmup_periods >= 0.0) ||
      config_.warmup_periods >= config_.horizon_periods) {
    return Status::InvalidArgument("warmup must be in [0, horizon)");
  }
  obs::ScopedSpan run_span("sim_run");
  WallTimer run_timer;
  const double horizon = config_.horizon_periods;
  const double warmup = config_.warmup_periods;
  const size_t n = elements_.size();

  std::vector<SimEvent> events;

  // Synchronization Scheduler: materialize the sync timeline under the
  // configured policy.
  FRESHEN_ASSIGN_OR_RETURN(
      SyncSchedule schedule,
      config_.sync_policy == SyncPolicy::kFixedOrder
          ? SyncSchedule::FixedOrder(frequencies, horizon)
          : SyncSchedule::PoissonOrder(frequencies, horizon,
                                       config_.seed ^ 0x706f6973ULL));
  events.reserve(schedule.size());
  for (const SyncEvent& sync : schedule.events()) {
    events.push_back(
        {sync.time, EventType::kSync, static_cast<uint32_t>(sync.element)});
  }

  // Update Generator: per-element Poisson change processes at the source.
  Rng update_rng(config_.seed ^ 0x75706474ULL);
  for (size_t i = 0; i < n; ++i) {
    const double lambda = elements_[i].change_rate;
    if (lambda <= 0.0) continue;
    Rng element_rng = update_rng.Fork();
    for (double t = SampleExponential(element_rng, lambda); t < horizon;
         t += SampleExponential(element_rng, lambda)) {
      events.push_back({t, EventType::kUpdate, static_cast<uint32_t>(i)});
    }
  }

  // User Request Generator: Poisson arrivals, element from master profile.
  std::vector<double> probs = AccessProbs(elements_);
  const double prob_total = Sum(probs);
  uint64_t planned_accesses = 0;
  if (config_.accesses_per_period > 0.0 && prob_total > 0.0) {
    AliasTable table(probs);
    Rng access_rng(config_.seed ^ 0x61636373ULL);
    for (double t = SampleExponential(access_rng, config_.accesses_per_period);
         t < horizon;
         t += SampleExponential(access_rng, config_.accesses_per_period)) {
      events.push_back({t, EventType::kAccess,
                        static_cast<uint32_t>(table.Sample(access_rng))});
      ++planned_accesses;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return static_cast<uint8_t>(a.type) <
                     static_cast<uint8_t>(b.type);
            });

  // Mirror state: every copy starts in sync with the source.
  std::vector<uint8_t> fresh(n, 1);
  // Time of the first source update the mirror has not yet picked up
  // (defined only while stale); drives the age metric.
  std::vector<double> stale_since(n, 0.0);

  size_t fresh_count = n;
  double prev_time = warmup;
  KahanSum freshness_integral;  // integral of fresh_count dt, post-warmup.
  KahanSum age_sum;
  uint64_t accesses = 0;
  uint64_t fresh_accesses = 0;
  uint64_t updates = 0;
  uint64_t syncs = 0;

  for (const SimEvent& event : events) {
    if (event.time >= warmup) {
      freshness_integral.Add(static_cast<double>(fresh_count) *
                             (event.time - prev_time));
      prev_time = event.time;
    }
    const uint32_t i = event.element;
    switch (event.type) {
      case EventType::kUpdate:
        if (event.time >= warmup) ++updates;
        if (fresh[i]) {
          fresh[i] = 0;
          stale_since[i] = event.time;
          --fresh_count;
        }
        break;
      case EventType::kSync:
        if (event.time >= warmup) ++syncs;
        if (!fresh[i]) {
          fresh[i] = 1;
          ++fresh_count;
        }
        break;
      case EventType::kAccess:
        if (event.time < warmup) break;
        ++accesses;
        if (fresh[i]) {
          ++fresh_accesses;
          age_sum.Add(0.0);
        } else {
          age_sum.Add(event.time - stale_since[i]);
        }
        break;
    }
  }
  // Close the integration window at the horizon.
  freshness_integral.Add(static_cast<double>(fresh_count) *
                         (horizon - prev_time));

  SimulationResult result;
  result.num_accesses = accesses;
  result.num_updates = updates;
  result.num_syncs = syncs;
  result.empirical_perceived_freshness =
      accesses > 0 ? static_cast<double>(fresh_accesses) /
                         static_cast<double>(accesses)
                   : 0.0;
  result.empirical_general_freshness =
      freshness_integral.Total() /
      (static_cast<double>(n) * (horizon - warmup));
  result.empirical_perceived_age =
      accesses > 0 ? age_sum.Total() / static_cast<double>(accesses) : 0.0;
  result.analytic_perceived_freshness =
      PerceivedFreshness(elements_, frequencies, config_.sync_policy);
  result.analytic_general_freshness =
      GeneralFreshness(elements_, frequencies, config_.sync_policy);

  // Whole-horizon event counts (the post-warmup subset is in `result`).
  const SimMetrics& metrics = GetSimMetrics();
  metrics.runs->Increment();
  metrics.sync_events->Add(static_cast<double>(schedule.size()));
  metrics.access_events->Add(static_cast<double>(planned_accesses));
  metrics.update_events->Add(static_cast<double>(
      events.size() - schedule.size() - planned_accesses));
  metrics.queue_depth->Set(static_cast<double>(events.size()));
  const double elapsed = run_timer.ElapsedSeconds();
  if (elapsed > 0.0) {
    metrics.events_per_second->Set(static_cast<double>(events.size()) /
                                   elapsed);
  }
  return result;
}

}  // namespace freshen
